"""Table II — FPGA resources needed by the basic blocks of UPaRC.

Paper rows (slices):

    DyCloGen      V5: 24    V6: 18
    UReC          V5: 26    V6: 26
    Decompressor  V5: 1035  V6: 900

Regenerated from the primitive inventories + family slice packers.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.fpga.area import slices_for

PAPER_TABLE2 = {
    "dyclogen": ("DyCloGen", 24, 18),
    "urec": ("UReC", 26, 26),
    "decompressor": ("Decompressor", 1035, 900),
}


def _compute_table():
    return {module: (slices_for(module, "virtex5"),
                     slices_for(module, "virtex6"))
            for module in PAPER_TABLE2}


def test_table2_resources(benchmark):
    measured = benchmark.pedantic(_compute_table, rounds=1, iterations=1)

    rows = []
    for module, (label, paper_v5, paper_v6) in PAPER_TABLE2.items():
        v5, v6 = measured[module]
        rows.append([label, v5, paper_v5, v6, paper_v6])
    print()
    print(render_table(
        ["Module", "V5 slices", "paper", "V6 slices", "paper"],
        rows, title="Table II -- FPGA resources of UPaRC basic blocks"))

    for module, (_, paper_v5, paper_v6) in PAPER_TABLE2.items():
        assert measured[module] == (paper_v5, paper_v6)
