"""Ablation — UReC's custom burst reader vs the Xilinx central DMA.

Section III-B's design argument: the baselines "re-use DMA module
provided by Xilinx which is very large and does not permit to run at a
higher frequency than 200 MHz"; UReC's redesigned BRAM interface
transfers a word every cycle and closes timing at 362.5 MHz.

This bench quantifies both halves of that argument: per-transfer
efficiency at equal frequency, and the bandwidth unlocked by the
higher frequency ceiling.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.fpga.dma import CustomBurstReader, XilinxCentralDma
from repro.units import DataSize, Frequency

WORDS = DataSize.from_kb(216.5).words


def _sweep():
    custom = CustomBurstReader()
    central = XilinxCentralDma()
    rows = []
    for mhz in (120, 200, 362.5):
        frequency = Frequency.from_mhz(mhz)
        custom_ps = frequency.duration_of(custom.transfer_cycles(WORDS))
        custom_mbps = WORDS * 4 / 1e6 / (custom_ps / 1e12)
        if frequency <= central.max_frequency:
            central_ps = frequency.duration_of(
                central.transfer_cycles(WORDS))
            central_mbps = WORDS * 4 / 1e6 / (central_ps / 1e12)
        else:
            central_mbps = None  # cannot close timing
        rows.append((mhz, custom_mbps, central_mbps))
    return rows


def test_ablation_dma_engine(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = [[mhz, custom,
              central if central is not None else "timing fail"]
             for mhz, custom, central in rows]
    print()
    print(render_table(
        ["MHz", "UReC reader MB/s", "central DMA MB/s"],
        table, title="Ablation -- DMA engine choice (216.5 KB transfer)"))

    by_mhz = {mhz: (custom, central) for mhz, custom, central in rows}

    # At equal frequency the custom reader wins by the burst overhead.
    custom_200, central_200 = by_mhz[200]
    assert central_200 is not None
    assert custom_200 / central_200 > 1.2

    # Above 200 MHz only the custom reader exists; total advantage of
    # the UReC design over the best central-DMA operating point:
    custom_3625, central_3625 = by_mhz[362.5]
    assert central_3625 is None
    assert custom_3625 / central_200 > 2.3
