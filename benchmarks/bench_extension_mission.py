"""Extension — global power optimization over a mission (§VI).

The paper's future work, executed: 200 module swaps with mixed
deadlines, three frequency policies, total energy and deadline
accounting — under both the paper's active-wait manager and the
hardware-sequencer alternative.

Finding worth stating: under the paper's own total-power x time
metric, *static leakage dominates slow swaps* — the power-aware
policy minimizes instantaneous power (the thermal/supply constraint)
but costs ~3x the energy of running flat out, and clock-gating the
manager only softens that (it removes the 15 mW wait, not the 30 mW
static floor).  "Race-to-idle" applies to reconfiguration too.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.mission import compare_policies, generate_mission
from repro.power.model import PowerModel


def _run():
    mission = generate_mission(swap_count=200, seed=7)
    return {
        "active-wait": compare_policies(mission),
        "gated": compare_policies(
            mission, power_model=PowerModel(hardware_manager=True)),
    }


def test_extension_mission_policies(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    for manager, by_policy in results.items():
        rows = [[name, result.mean_frequency_mhz,
                 result.total_energy_uj / 1000.0,
                 result.energy_per_swap_uj,
                 result.deadline_misses]
                for name, result in by_policy.items()]
        print()
        print(render_table(
            ["policy", "mean MHz", "energy mJ", "uJ/swap", "misses"],
            rows, title=f"Mission (200 swaps) -- {manager} manager"))

    active = results["active-wait"]
    gated = results["gated"]

    # No policy misses deadlines on this mission.
    for by_policy in results.values():
        for result in by_policy.values():
            assert result.deadline_misses == 0

    # Active wait: energy-optimal == fast; power-aware pays for its
    # lower frequencies in wait energy.
    assert active["energy-optimal"].total_energy_uj \
        <= active["power-aware"].total_energy_uj
    assert active["power-aware"].mean_frequency_mhz \
        < active["max-frequency"].mean_frequency_mhz

    # Gating the manager shrinks the power-aware policy's penalty.
    active_penalty = (active["power-aware"].total_energy_uj
                      / active["energy-optimal"].total_energy_uj)
    gated_penalty = (gated["power-aware"].total_energy_uj
                     / gated["energy-optimal"].total_energy_uj)
    assert gated_penalty < active_penalty
