"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures and
prints the measured rows next to the published ones (run with ``-s``
to see them).  Benchmarks assert the reproduction *shape* — who wins,
by what factor — so a regression in the models fails the bench, not
just the prose.
"""

from __future__ import annotations

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.units import DataSize


@pytest.fixture(scope="session")
def paper_bitstream():
    """The 216.5 KB bitstream of the power/energy campaign."""
    return generate_bitstream(size=DataSize.from_kb(216.5))


@pytest.fixture(scope="session")
def table1_corpus():
    """'different partial bitstream sizes and complexities' (Table I)."""
    return [
        generate_bitstream(size=DataSize.from_kb(49), seed=101),
        generate_bitstream(size=DataSize.from_kb(81), seed=202),
        generate_bitstream(size=DataSize.from_kb(156), seed=303),
    ]
