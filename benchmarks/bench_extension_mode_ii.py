"""Extension — UPaRC_ii bandwidth vs bitstream size.

The compressed-mode companion to Fig. 5: the ceiling is the
decompressor's 1.008 GB/s output rate (64-bit X-MatchPRO at CLK_3),
not the CLK_2 plane; the same constant control overhead penalizes
small bitstreams.
"""

from __future__ import annotations

from repro.analysis.bandwidth import mode_ii_bandwidth_sweep
from repro.analysis.report import render_table


def test_extension_mode_ii_sweep(benchmark):
    points = benchmark.pedantic(
        mode_ii_bandwidth_sweep,
        kwargs={"sizes_kb": (6.5, 30.0, 81.0, 216.5)},
        rounds=1, iterations=1)

    rows = [[f"{p.size.kb:g}", p.effective_mbps, p.theoretical_mbps,
             p.efficiency_percent] for p in points]
    print()
    print(render_table(
        ["size KB", "MB/s", "decompressor ceiling", "efficiency %"],
        rows, title="Extension -- UPaRC_ii bandwidth vs size (255 MHz)"))

    largest = max(points, key=lambda p: p.size.bytes)
    assert abs(largest.effective_mbps - 1000) / 1000 < 0.02
    efficiencies = [p.efficiency_percent
                    for p in sorted(points, key=lambda p: p.size.bytes)]
    assert efficiencies == sorted(efficiencies)
