"""Ablation — the manager's active wait (Section V discussion).

The paper: "The manager waits for the end of reconfiguration actively.
This wastes some energy, that is why the energy decreases with the
frequency, but in the case of a smaller manager or without actively
waiting ... the reconfiguration energy would be the same for each
frequencies."

Three manager/model configurations are compared across the Fig. 7
frequency sweep:

1. measured model + active-wait manager (the paper's setup);
2. measured model + clock-gated (idle) manager;
3. idealized pure-CVf dynamic model + gated manager — the limit the
   paper describes, where energy is frequency-independent.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.power.calibration import ML605_CALIBRATION
from repro.units import DataSize, Frequency

SIZE = DataSize.from_kb(216.5)
FREQUENCIES = (50.0, 100.0, 200.0, 300.0)


def _reconfiguration_seconds(mhz: float) -> float:
    cycles = SIZE.words + 3
    return Frequency.from_mhz(mhz).duration_of(cycles) / 1e12


def _energies():
    calibration = ML605_CALIBRATION
    # Pure-dynamic slope through the origin (mW per MHz), least squares.
    points = [(mhz, calibration.chain_dynamic_mw(mhz))
              for mhz in FREQUENCIES]
    slope = sum(mhz * mw for mhz, mw in points) \
        / sum(mhz * mhz for mhz, _ in points)

    rows = []
    for mhz in FREQUENCIES:
        seconds = _reconfiguration_seconds(mhz)
        chain = calibration.chain_dynamic_mw(mhz)
        static = calibration.static_mw
        wait = calibration.manager_wait_mw
        active_wait_uj = (static + wait + chain) * seconds * 1e3
        gated_uj = (static + chain) * seconds * 1e3
        ideal_uj = (slope * mhz) * seconds * 1e3
        rows.append((mhz, active_wait_uj, gated_uj, ideal_uj))
    return rows


def test_ablation_manager_wait(benchmark):
    rows = benchmark.pedantic(_energies, rounds=1, iterations=1)

    print()
    print(render_table(
        ["MHz", "active-wait uJ", "gated-mgr uJ", "ideal-CVf uJ"],
        [list(row) for row in rows],
        title="Ablation -- manager wait energy (216.5 KB)"))

    actives = [row[1] for row in rows]
    gateds = [row[2] for row in rows]
    ideals = [row[3] for row in rows]

    # With the active wait, energy strictly decreases with frequency
    # (the paper's observation).
    assert actives == sorted(actives, reverse=True)

    # Gating the manager shrinks the spread.
    active_spread = max(actives) / min(actives)
    gated_spread = max(gateds) / min(gateds)
    assert gated_spread < active_spread

    # The idealized pure-dynamic limit is frequency-independent (up to
    # the constant burst-setup cycles).
    assert max(ideals) / min(ideals) < 1.001

    # Gating always saves energy, and the saving grows at low frequency
    # (longer wait).
    savings = [active - gated for _, active, gated, _ in
               [(r[0], r[1], r[2], r[3]) for r in rows]]
    assert all(saving > 0 for saving in savings)
    assert savings[0] > savings[-1]
