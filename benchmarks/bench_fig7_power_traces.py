"""Fig. 7 — FPGA core power during reconfiguration at four clocks.

Paper curves (216.5 KB uncompressed bitstream, MicroBlaze manager at
100 MHz, Virtex-6/ML605):

    50 MHz:  183 mW for 1.1 ms
    100 MHz: 259 mW for 550 us
    200 MHz: 394 mW for 270 us
    300 MHz: 453 mW for 180 us

with a manager peak before t=0 and a decay to idle afterwards.
"""

from __future__ import annotations

from repro.analysis.powersweep import PAPER_FIG7, fig7_power_sweep
from repro.analysis.report import render_series, render_table


def test_fig7_power_traces(benchmark):
    points = benchmark.pedantic(fig7_power_sweep, rounds=1, iterations=1)

    rows = []
    for point in points:
        paper_mw, paper_us = PAPER_FIG7[point.frequency.mhz]
        rows.append([f"{point.frequency.mhz:g}",
                     point.plateau_mw, paper_mw,
                     point.reconfiguration_us, paper_us,
                     point.energy_uj])
    print()
    print(render_table(
        ["MHz", "plateau mW", "paper mW", "time us", "paper us",
         "energy uJ"],
        rows, title="Fig. 7 -- Power during reconfiguration"))
    print()
    print(render_series(
        [(p.frequency.mhz, p.plateau_mw) for p in points],
        title="Power vs frequency", x_label="MHz", y_label="mW"))

    for point in points:
        paper_mw, paper_us = PAPER_FIG7[point.frequency.mhz]
        assert abs(point.plateau_mw - paper_mw) / paper_mw < 0.005
        assert abs(point.reconfiguration_us - paper_us) / paper_us < 0.03
        # The trace shape: starts at idle, ends at idle, plateau above.
        assert point.trace.samples[0].value == point.idle_mw
        assert point.trace.samples[-1].value == point.idle_mw
        assert point.plateau_mw > point.idle_mw

    # Doubling frequency halves time but does not double power.
    by_mhz = {p.frequency.mhz: p for p in points}
    assert by_mhz[100.0].plateau_mw < 2 * by_mhz[50.0].plateau_mw
    assert abs(by_mhz[50.0].reconfiguration_us
               - 2 * by_mhz[100.0].reconfiguration_us) \
        < 0.02 * by_mhz[50.0].reconfiguration_us
