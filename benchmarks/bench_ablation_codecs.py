"""Ablation — run-time decompressor swap (Section VI future work).

The paper: "We aim to further enhance the adaptivity by choosing
different bitstream compression techniques at run-time using dynamic
partial reconfiguration.  Depending on the requirements of compression
ratios, hardware resources, different frequency limits in compression
modes, a wider range of application can be supported."

This bench runs UPaRC mode ii with each decompressor in the library
and tabulates the three-way trade-off the paper describes: compression
ratio (capacity) vs decompression throughput vs area.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.fpga.area import PACKERS, ResourceInventory
from repro.fpga.decompressor import DECOMPRESSOR_LIBRARY
from repro.units import DataSize, Frequency


def _snap_to_grid(target_mhz: float) -> Frequency:
    """Lowest DCM-synthesizable CLK_2 at or above the target."""
    from repro.core.policy import FrequencyPolicy
    from repro.power.model import PowerModel
    grid = FrequencyPolicy(PowerModel()).candidate_frequencies()
    for frequency in grid:
        if frequency.mhz >= target_mhz:
            return frequency
    return grid[-1]


def _run_all():
    bitstream = generate_bitstream(size=DataSize.from_kb(81))
    results = {}
    for name, spec in DECOMPRESSOR_LIBRARY.items():
        system = UPaRCSystem(decompressor=name)
        # CLK_2 must absorb the decompressor's output rate.
        needed = min(255.0, max(50.0, spec.words_per_cycle
                                * spec.max_frequency.mhz * 1.01))
        clk2 = _snap_to_grid(needed)
        result = system.run(bitstream, frequency=clk2,
                            mode=OperationMode.COMPRESSED)
        slices = PACKERS["virtex5"].slices(
            ResourceInventory(luts=spec.luts, ffs=spec.ffs))
        ratio = (1 - result.stored_size.bytes
                 / bitstream.size.bytes) * 100
        results[name] = {
            "mbps": result.bandwidth_decimal_mbps,
            "ratio": ratio,
            "slices": slices,
            "verified": result.verified,
        }
    return results


def test_ablation_decompressor_swap(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = [[name, data["mbps"], data["ratio"], data["slices"]]
            for name, data in results.items()]
    print()
    print(render_table(
        ["Decompressor", "throughput MB/s", "ratio %", "V5 slices"],
        rows, title="Ablation -- run-time decompressor swap (mode ii)"))

    assert all(data["verified"] for data in results.values())

    xmatch = results["x-matchpro"]
    rle = results["farm-rle"]
    # X-MatchPRO: best throughput (64-bit datapath) and better ratio
    # than RLE, at much higher area -- the paper's trade-off.
    assert xmatch["mbps"] > rle["mbps"]
    assert xmatch["ratio"] > rle["ratio"]
    assert xmatch["slices"] > 2 * rle["slices"]

    # Every decompressor's throughput tracks words_per_cycle x fmax.
    for name, spec in DECOMPRESSOR_LIBRARY.items():
        ceiling = spec.words_per_cycle * spec.max_frequency.mhz * 4
        assert results[name]["mbps"] <= ceiling * 1.02
