"""Fig. 5 — reconfiguration bandwidth vs. frequency vs. bitstream size.

Paper anchors (UPaRC_i, preloading without compression, Virtex-5):

* at 362.5 MHz / 6.5 KB: 1.14 GB/s effective = 78.8 % of the 1.45 GB/s
  theoretical plane;
* at 362.5 MHz / 247 KB: 1.44 GB/s = 99 % of theoretical.

The surface runs through the sweep engine (``repro.sweep``): the
``fig5`` grid expands to 49 independent cells, each a fresh-system
UPaRC_i run — cell for cell identical to
``repro.analysis.bandwidth.bandwidth_surface``.  The benchmark times
the cold serial sweep; the second (cached) engine run at ``-j 2``
must reproduce the cold results byte-identically, which pins the
engine's determinism contract in CI.
"""

from __future__ import annotations

from repro.analysis.bandwidth import (
    FIG5_FREQUENCIES_MHZ,
    FIG5_SIZES_KB,
    anchor_points,
)
from repro.analysis.report import render_table
from repro.sweep import FIG5_GRID, SweepEngine, to_bandwidth_points


def test_fig5_bandwidth_surface(benchmark, tmp_path):
    cache_dir = str(tmp_path / "fig5-cache")

    def cold_sweep():
        return SweepEngine(FIG5_GRID, jobs=1,
                           cache_dir=cache_dir).run()

    results = benchmark.pedantic(cold_sweep, rounds=1, iterations=1)
    points = to_bandwidth_points(results)

    # Print the surface as one row per size, one column per frequency.
    by_cell = {(p.size.kb, p.frequency.mhz): p for p in points}
    headers = ["size KB \\ MHz"] + [f"{mhz:g}" for mhz in
                                    FIG5_FREQUENCIES_MHZ]
    rows = []
    for size_kb in FIG5_SIZES_KB:
        row = [f"{size_kb:g}"]
        for mhz in FIG5_FREQUENCIES_MHZ:
            row.append(by_cell[(size_kb, mhz)].effective_mbps)
        rows.append(row)
    print()
    print(render_table(headers, rows,
                       title="Fig. 5 -- Effective bandwidth (MB/s)"))

    # Anchors from the text.
    anchors = anchor_points(points)
    assert abs(anchors["small"] - 78.8) < 1.5
    assert abs(anchors["large"] - 99.0) < 1.0

    # Monotonicity along both axes.
    for size_kb in FIG5_SIZES_KB:
        series = [by_cell[(size_kb, mhz)].effective_mbps
                  for mhz in FIG5_FREQUENCIES_MHZ]
        assert series == sorted(series)
    for mhz in FIG5_FREQUENCIES_MHZ:
        series = [by_cell[(size_kb, mhz)].efficiency_percent
                  for size_kb in FIG5_SIZES_KB]
        assert series == sorted(series)

    # Every cell sits below the theoretical plane.
    assert all(p.effective_mbps < p.theoretical_mbps for p in points)

    # Determinism contract: a cached parallel sweep is byte-identical.
    cached = SweepEngine(FIG5_GRID, jobs=2, cache_dir=cache_dir)
    assert cached.run() == results
    assert cached.stats.misses == 0
