"""Extension — the Virtex-6 frequency-reliability question (§IV).

The paper: "Tests under the same conditions on a few Virtex-6
XC6VLX240T show that 362.5 MHz is not reliable, the maximum frequency
seems to be few MHz lower.  Experiments are underway on a larger
number of samples..."

This bench quantifies what that costs: the Table III headline run on
the V6 envelope (356 MHz demonstrated in our device model) versus the
V5's 362.5 MHz, plus a check that the V6 system refuses the V5
operating point rather than silently mis-clocking.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.bitstream.device import VIRTEX5_SX50T, VIRTEX6_LX240T
from repro.bitstream.generator import generate_bitstream
from repro.controllers.uparc import UparcController
from repro.errors import FrequencyError
from repro.units import DataSize, Frequency


def _run_both():
    results = {}
    for device in (VIRTEX5_SX50T, VIRTEX6_LX240T):
        bitstream = generate_bitstream(size=DataSize.from_kb(216.5),
                                       device=device)
        controller = UparcController("i", device=device)
        results[device.name] = (controller.max_frequency,
                                controller.best_result(bitstream))
    return results


def test_extension_virtex6_envelope(benchmark):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    rows = [[name, str(fmax), result.bandwidth_decimal_mbps,
             result.transfer_ps / 1e6]
            for name, (fmax, result) in results.items()]
    print()
    print(render_table(
        ["device", "max CLK_2", "MB/s", "216.5 KB in us"],
        rows, title="Extension -- V5 vs V6 frequency envelope"))

    v5_fmax, v5 = results["XC5VSX50T"]
    v6_fmax, v6 = results["XC6VLX240T"]
    assert v6_fmax < v5_fmax  # "a few MHz lower"
    assert v5.bandwidth_decimal_mbps > v6.bandwidth_decimal_mbps
    # The cost of the V6 regression is small (<3 %).
    loss = 1 - (v6.bandwidth_decimal_mbps / v5.bandwidth_decimal_mbps)
    assert 0.0 < loss < 0.03
    assert v5.verified and v6.verified

    # The V6 system must refuse the V5 operating point outright.
    bitstream = generate_bitstream(size=DataSize.from_kb(8),
                                   device=VIRTEX6_LX240T)
    from repro.core.system import UPaRCSystem
    system = UPaRCSystem(device=VIRTEX6_LX240T, decompressor=None)
    system.set_frequency(Frequency.from_mhz(362.5))
    system.preload(bitstream)
    with pytest.raises(FrequencyError):
        system.reconfigure()
