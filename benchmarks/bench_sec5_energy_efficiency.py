"""Section V — energy efficiency: UPaRC vs xps_hwicap (the 45x claim).

Paper: 'Without processor optimizations, we achieve a reconfiguration
throughput of 1.5 MB/s of configuration data and the energy efficiency
is 30 uJ/KB of bitstream.  In the same conditions, using a MicroBlaze
as manager, UPaRC (without compression) consumes only 0.66 uJ/KB
which is 45 times more efficient than xps_hwicap.'
"""

from __future__ import annotations

from repro.analysis.powersweep import energy_comparison
from repro.analysis.report import render_table


def test_sec5_energy_efficiency(benchmark):
    comparison = benchmark.pedantic(energy_comparison, rounds=1,
                                    iterations=1)

    rows = [
        ["xps_hwicap (unoptimized)", comparison.xps.uj_per_kb, 30.0,
         comparison.xps.mean_power_mw],
        ["UPaRC_i @ 100 MHz", comparison.uparc.uj_per_kb, 0.66,
         comparison.uparc.mean_power_mw],
    ]
    print()
    print(render_table(
        ["Controller", "measured uJ/KB", "paper uJ/KB", "power mW"],
        rows, title="Section V -- Energy efficiency"))
    print(f"\nefficiency ratio: {comparison.efficiency_ratio:.1f}x "
          f"(paper: 45x)")

    assert abs(comparison.xps.uj_per_kb - 30.0) / 30.0 < 0.05
    assert abs(comparison.uparc.uj_per_kb - 0.66) / 0.66 < 0.05
    assert abs(comparison.efficiency_ratio - 45.0) / 45.0 < 0.05
