"""Table III — comparison of reconfiguration controllers.

Paper rows (bandwidth MB/s, large-bitstream grade, max frequency MHz):

    xps_hwicap    14.5  +++  120
    MST_ICAP      235   +++  120
    FlashCAP_i    358   ++   120
    BRAM_HWICAP   371   -    120
    FaRM          800   ++   200
    UPaRC_ii      1008  ++   255
    UPaRC_i       1433  -    362.5

Every controller is actually run (CRC-verified transfer of the same
bitstream) at its reference conditions.
"""

from __future__ import annotations

from repro.analysis.comparison import compare_controllers
from repro.analysis.report import render_table


def test_table3_controller_comparison(benchmark):
    rows = benchmark.pedantic(compare_controllers,
                              kwargs={"size_kb": 216.5},
                              rounds=1, iterations=1)

    table = [[row.controller, row.measured_mbps, row.paper_mbps,
              f"{row.relative_error_percent:+.1f}%", row.grade,
              row.max_frequency_mhz]
             for row in rows]
    print()
    print(render_table(
        ["Controller", "measured MB/s", "paper MB/s", "err",
         "capacity", "Fmax MHz"],
        table, title="Table III -- Reconfiguration controllers"))

    # Shape assertions: ranking, verification, per-row error bound.
    assert all(row.verified for row in rows)
    measured = [row.measured_mbps for row in rows]
    assert measured == sorted(measured)
    for row in rows:
        assert abs(row.relative_error_percent) < 8.0
        assert row.grade == row.paper_grade

    by_name = {row.controller: row.measured_mbps for row in rows}
    # The headline factors.
    assert 1.7 < by_name["UPaRC_i"] / by_name["FaRM"] < 1.9
    assert by_name["UPaRC_i"] / by_name["xps_hwicap[cached]"] > 90
