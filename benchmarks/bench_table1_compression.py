"""Table I — lossless compression-ratio comparison.

Paper row (compression ratio, % space saved, high-utilization partial
bitstreams):

    RLE 63.0 | LZ77 71.4 | Huffman 72.3 | X-MatchPRO 74.2 |
    LZ78 75.6 | Zip 81.2 | 7-zip 81.9

Regenerates the table through the sweep engine's ``table1`` grid
(7 codecs x the paired 49/81/156 KB corpus) and checks the ranking
and per-codec agreement.  Compressed payloads land in the run's
artifact cache, so the per-codec throughput benches below measure
pure codec speed on a corpus the sweep already generated once.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.compress import PAPER_TABLE1_RATIOS
from repro.sweep import SweepEngine, TABLE1_GRID, table1_ratios


def test_table1_compression_ratios(benchmark, tmp_path):
    cache_dir = str(tmp_path / "table1-cache")

    def cold_sweep():
        return SweepEngine(TABLE1_GRID, jobs=1,
                           cache_dir=cache_dir).run()

    results = benchmark.pedantic(cold_sweep, rounds=1, iterations=1)
    ratios = table1_ratios(results)

    rows = [[name, ratios[name], PAPER_TABLE1_RATIOS[name],
             ratios[name] - PAPER_TABLE1_RATIOS[name]]
            for name in PAPER_TABLE1_RATIOS]
    print()
    print(render_table(
        ["Algorithm", "measured %", "paper %", "delta"],
        rows, title="Table I -- Lossless compression ratios"))

    # Shape: the paper's ranking is preserved...
    assert sorted(ratios, key=ratios.get) == list(PAPER_TABLE1_RATIOS)
    # ...and each ratio lands within 4 percentage points.
    for name, paper_value in PAPER_TABLE1_RATIOS.items():
        assert abs(ratios[name] - paper_value) < 4.0

    # Determinism contract: a cached parallel sweep is byte-identical.
    cached = SweepEngine(TABLE1_GRID, jobs=2, cache_dir=cache_dir)
    assert cached.run() == results
    assert cached.stats.misses == 0


@pytest.mark.parametrize("name", list(PAPER_TABLE1_RATIOS))
def test_codec_throughput(benchmark, paper_bitstream, name):
    """Compression wall-clock per codec (library speed tracking)."""
    from repro.compress import codec_by_name
    codec = codec_by_name(name)
    data = paper_bitstream.raw_bytes[:65536]
    compressed = benchmark.pedantic(codec.compress, args=(data,),
                                    rounds=1, iterations=1)
    assert codec.decompress(compressed) == data
