"""Table I — lossless compression-ratio comparison.

Paper row (compression ratio, % space saved, high-utilization partial
bitstreams):

    RLE 63.0 | LZ77 71.4 | Huffman 72.3 | X-MatchPRO 74.2 |
    LZ78 75.6 | Zip 81.2 | 7-zip 81.9

Regenerates the table over a corpus of synthetic bitstreams of
different sizes/complexities and checks the ranking and per-codec
agreement.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs


def _mean_ratios(corpus):
    ratios = {}
    for codec in all_codecs():
        values = [codec.measure(bs.raw_bytes).ratio_percent
                  for bs in corpus]
        ratios[codec.name] = sum(values) / len(values)
    return ratios


def test_table1_compression_ratios(benchmark, table1_corpus):
    ratios = benchmark.pedantic(_mean_ratios, args=(table1_corpus,),
                                rounds=1, iterations=1)

    rows = [[name, ratios[name], PAPER_TABLE1_RATIOS[name],
             ratios[name] - PAPER_TABLE1_RATIOS[name]]
            for name in PAPER_TABLE1_RATIOS]
    print()
    print(render_table(
        ["Algorithm", "measured %", "paper %", "delta"],
        rows, title="Table I -- Lossless compression ratios"))

    # Shape: the paper's ranking is preserved...
    assert sorted(ratios, key=ratios.get) == list(PAPER_TABLE1_RATIOS)
    # ...and each ratio lands within 4 percentage points.
    for name, paper_value in PAPER_TABLE1_RATIOS.items():
        assert abs(ratios[name] - paper_value) < 4.0


@pytest.mark.parametrize("name", list(PAPER_TABLE1_RATIOS))
def test_codec_throughput(benchmark, paper_bitstream, name):
    """Compression wall-clock per codec (library speed tracking)."""
    from repro.compress import codec_by_name
    codec = codec_by_name(name)
    data = paper_bitstream.raw_bytes[:65536]
    compressed = benchmark.pedantic(codec.compress, args=(data,),
                                    rounds=1, iterations=1)
    assert codec.decompress(compressed) == data
