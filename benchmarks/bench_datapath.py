"""Datapath kernel benchmark across accel backends, byte-checked.

Times every :mod:`repro.accel` kernel on realistic inputs (the
payload of a generated partial bitstream) plus one end-to-end mode-ii
reconfiguration, under each requested backend (pure, numpy, and the
compiled native extension when built), and verifies on the fly that
all backends return byte-identical results — a speedup measured on
diverging outputs is meaningless.

Standalone on purpose (pytest imports this module when collecting
``benchmarks/`` but finds no tests): the CI quick job and the
committed ``BENCH_datapath.json`` both come from::

    PYTHONPATH=src python benchmarks/bench_datapath.py \
        --backend all --output BENCH_datapath.json

``--quick`` shrinks payloads and repeats for a smoke-level run;
``--backend all`` times every *installed* backend (so it works on a
numpy-free or toolchain-free install by simply skipping the missing
columns); ``--backend both`` is the historical pure+numpy pair.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro import accel
from repro.bitstream.generator import (
    BitstreamSpec,
    _FrameSynthesizer,
    generate_bitstream,
)
from repro.obs.profiling import Timer
from repro.units import DataSize, Frequency

PAYLOAD_KB = 216.5      # the paper's power/energy campaign size
QUICK_KB = 24.0
SEED = 2012

# Mode-ii wall time of the pure backend at the full payload size as
# measured immediately before the compressor-stack kernels landed;
# the end-to-end report compares against it so the cumulative win
# stays visible even as the pure baseline itself gets faster.
PRE_KERNEL_PURE_MODE_II_S = 0.2590


def _bench(func: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """(best elapsed seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        with Timer() as timer:
            result = func()
        best = min(best, timer.elapsed_s)
    return best, result


def _kernel_cases(size_kb: float) -> List[Tuple[str, Callable[[], object]]]:
    """Named closures, each exercising one accel kernel on real data.

    Every closure reads the *active* backend at call time, so the same
    case list is timed once per backend selection.
    """
    spec = BitstreamSpec(size=DataSize.from_kb(size_kb), seed=SEED)
    bitstream = generate_bitstream(spec)
    payload = bitstream.frame_payload
    words = accel.bytes_to_words(payload)
    word_count = len(words)
    frame_words = spec.device.frame_words

    synthesizer = _FrameSynthesizer(spec)
    plan = synthesizer.plan(word_count // frame_words)

    # Match-search inputs shaped like the LZ chain walk: for a window
    # position deep in the payload, candidate offsets that share its
    # leading bytes (plus noise), as the hash chains would yield.
    rng = random.Random(SEED)
    position = len(payload) // 2
    limit = min(255, len(payload) - position)
    prefix = payload[position:position + 3]
    matchers = [offset for offset in range(max(0, position - 65536), position)
                if payload[offset:offset + 3] == prefix]
    candidates = (matchers or [0]) * 4
    candidates = rng.sample(candidates, min(len(candidates), 64))

    return [
        ("synthesize_payload",
         lambda: accel.active().synthesize_payload(plan)),
        ("crc32c",
         lambda: accel.active().crc32c(payload)),
        ("words_to_bytes",
         lambda: accel.active().words_to_bytes(words)),
        ("bytes_to_words",
         lambda: accel.active().bytes_to_words(payload)),
        ("equal_word_runs",
         lambda: accel.active().equal_word_runs(payload, word_count)),
        ("zero_word_runs",
         lambda: accel.active().zero_word_runs(payload, word_count)),
        ("match_lengths",
         lambda: accel.active().match_lengths(
             payload, candidates, position, limit)),
        ("chunk_words",
         lambda: accel.active().chunk_words(words, 0, frame_words)),
        ("rle_compress",
         lambda: _rle_compress(payload)),
    ]


def _rle_compress(payload: bytes) -> bytes:
    from repro.compress import RleCodec
    return RleCodec().compress(payload)


def _mode_ii_run(size_kb: float) -> int:
    """One generate + compressed-preload reconfiguration; duration ps."""
    from repro.core.system import UPaRCSystem
    from repro.core.urec import OperationMode
    bitstream = generate_bitstream(size=DataSize.from_kb(size_kb),
                                   seed=SEED)
    result = UPaRCSystem().run(bitstream,
                               frequency=Frequency.from_mhz(255),
                               mode=OperationMode.COMPRESSED)
    assert result.verified
    return result.duration_ps


def run_suite(backends: List[str], size_kb: float,
              repeats: int) -> Dict[str, object]:
    kernels: Dict[str, Dict[str, float]] = {}
    end_to_end: Dict[str, float] = {}
    reference: Dict[str, object] = {}

    for backend in backends:
        with accel.using(backend):
            assert accel.backend_name() == backend
            for name, func in _kernel_cases(size_kb):
                elapsed, result = _bench(func, repeats)
                kernels.setdefault(name, {})[backend + "_s"] = elapsed
                if name in reference:
                    # The whole point: backends must agree bytewise.
                    assert reference[name] == result, (
                        f"backend divergence in {name}")
                else:
                    reference[name] = result
            elapsed, _ = _bench(lambda: _mode_ii_run(size_kb),
                                max(1, repeats - 1))
            end_to_end[backend + "_s"] = elapsed

    if backends and backends[0] == "pure":
        for fast_name in backends[1:]:
            for row in kernels.values():
                row["speedup_" + fast_name] = round(
                    row["pure_s"] / row[fast_name + "_s"], 2)
            end_to_end["speedup_" + fast_name] = round(
                end_to_end["pure_s"] / end_to_end[fast_name + "_s"], 2)

    if size_kb == PAYLOAD_KB:
        # Only meaningful at the pinned baseline's payload size.
        for backend in backends:
            end_to_end["speedup_vs_pre_kernel_pure_" + backend] = round(
                PRE_KERNEL_PURE_MODE_II_S / end_to_end[backend + "_s"], 2)

    return {
        "payload_kb": size_kb,
        "repeats": repeats,
        "backends": backends,
        "kernels": kernels,
        "end_to_end": {"mode_ii_generate_and_reconfigure": end_to_end},
    }


def resolve_backends(choice: str) -> Optional[List[str]]:
    """Map the ``--backend`` flag to installed backends (None: usage
    error, already reported)."""
    if choice == "all":
        return (["pure"]
                + (["numpy"] if accel.numpy_available() else [])
                + (["native"] if accel.native_available() else []))
    if choice == "both":
        # Historical pure+numpy pair; degrades to pure-only rather
        # than failing on a numpy-free install.
        return ["pure"] + (["numpy"] if accel.numpy_available() else [])
    if choice == "numpy" and not accel.numpy_available():
        print("numpy backend requested but numpy is not installed",
              file=sys.stderr)
        return None
    if choice == "native" and not accel.native_available():
        print("native backend requested but the extension is not "
              "built (python -m repro.accel._native.build)",
              file=sys.stderr)
        return None
    return [choice]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend",
                        choices=("pure", "numpy", "native", "both",
                                 "all"),
                        default="all")
    parser.add_argument("--quick", action="store_true",
                        help="small payload, fewer repeats (CI smoke)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    backends = resolve_backends(args.backend)
    if backends is None:
        return 2

    size_kb = QUICK_KB if args.quick else PAYLOAD_KB
    repeats = 2 if args.quick else 5
    report = run_suite(backends, size_kb, repeats)

    blob = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(blob + "\n")
    print(blob)
    return 0


if __name__ == "__main__":
    sys.exit(main())
