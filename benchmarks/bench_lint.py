"""Cold vs warm lint of the full source tree.

The incremental cache is the analyzer's performance story: a warm
re-lint of an unchanged tree must come back near-instant (the v3
acceptance bar is >=50x faster than cold), because CI and editor
hooks re-run it on every save.  ``BENCH_lint.json`` pins both
numbers.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_lint.py --benchmark-only
"""

from pathlib import Path

import pytest

from repro.lint import LintCache, collect_files, lint_files

REPO_ROOT = Path(__file__).resolve().parent.parent
FILES = collect_files([str(REPO_ROOT / "src")])


@pytest.fixture()
def cache_root(tmp_path):
    return str(tmp_path / "lint-cache")


def test_cold_full_tree(benchmark, cache_root):
    def cold():
        cache = LintCache(cache_root)
        cache.clear()
        return lint_files(FILES, cache=cache)

    violations = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert isinstance(violations, list)


def test_warm_full_tree(benchmark, cache_root):
    warmup = LintCache(cache_root)
    expected = lint_files(FILES, cache=warmup)

    def warm():
        return lint_files(FILES, cache=LintCache(cache_root))

    violations = benchmark.pedantic(warm, rounds=5, iterations=1)
    assert violations == expected


def test_no_cache_full_tree(benchmark):
    violations = benchmark.pedantic(
        lambda: lint_files(FILES, cache=None), rounds=3, iterations=1)
    assert isinstance(violations, list)
