"""Extension — sensitivity studies beyond the paper's figures.

Not a paper table; these benches quantify how the reproduced results
move with the design parameters the paper mentions qualitatively:
hardware-manager control cost (Section III-A's "three smaller hardware
modules") and BRAM provisioning (the 256 KB / 992 KB datapoint,
generalized).
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.sensitivity import (
    bram_capacity_tradeoff,
    control_overhead_sensitivity,
)


def test_extension_control_overhead(benchmark):
    points = benchmark.pedantic(control_overhead_sensitivity,
                                rounds=1, iterations=1)
    rows = [[p.control_cycles, p.control_us, p.bandwidth_mbps,
             p.efficiency_percent] for p in points]
    print()
    print(render_table(
        ["control cycles", "us", "6.5KB MB/s", "efficiency %"],
        rows, title="Extension -- manager control cost vs efficiency"))

    by_cycles = {p.control_cycles: p for p in points}
    # The paper's software manager (120 cycles) leaves ~21 % on the
    # table for small bitstreams; a 12-cycle hardware manager recovers
    # most of it.
    assert by_cycles[120].efficiency_percent < 81
    assert by_cycles[12].efficiency_percent > 95
    assert by_cycles[0].efficiency_percent > 99.5


def test_extension_bram_provisioning(benchmark):
    points = benchmark.pedantic(bram_capacity_tradeoff,
                                rounds=1, iterations=1)
    rows = [[f"{p.bram.kb:g}", f"{p.raw_limit.kb:.0f}",
             f"{p.compressed_limit.kb:.0f}", p.stretch_factor]
            for p in points]
    print()
    print(render_table(
        ["BRAM KB", "raw limit KB", "mode-ii limit KB", "stretch"],
        rows, title="Extension -- BRAM provisioning vs module capacity"))

    # The paper's datapoint sits on this curve: 256 KB -> ~992 KB.
    for point in points:
        if abs(point.bram.kb - 256.0) < 1e-6:
            assert abs(point.compressed_limit.kb - 992) / 992 < 0.15
