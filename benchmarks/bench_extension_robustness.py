"""Extension — seed-robustness of the reproduced tables.

The synthetic-bitstream substitution (DESIGN.md §1) is only sound if
the reproduced results are properties of the content *regime* rather
than of one lucky sample.  This bench re-runs Table I and Table III
across generator seeds and asserts the spread is tight.
"""

from __future__ import annotations

from repro.analysis.campaign import table1_campaign, table3_campaign
from repro.analysis.report import render_table


def test_robustness_table1(benchmark):
    campaign = benchmark.pedantic(
        table1_campaign, kwargs={"seeds": range(1, 7), "size_kb": 32.0},
        rounds=1, iterations=1)

    rows = [[name, spread.mean, spread.std, spread.minimum,
             spread.maximum]
            for name, spread in campaign.spreads.items()]
    print()
    print(render_table(
        ["codec", "mean %", "std", "min", "max"],
        rows, title="Robustness -- Table I across 6 seeds"))

    assert campaign.mean_ranking_matches_paper
    assert campaign.max_rank_displacement <= 1
    for spread in campaign.spreads.values():
        assert spread.std < 2.0


def test_robustness_table3(benchmark):
    campaign = benchmark.pedantic(
        table3_campaign, kwargs={"seeds": range(1, 4), "size_kb": 48.0},
        rounds=1, iterations=1)

    rows = [[name, spread.mean, spread.std]
            for name, spread in campaign.spreads.items()]
    print()
    print(render_table(
        ["controller", "mean MB/s", "std"],
        rows, title="Robustness -- Table III across 3 seeds"))

    # Bandwidths are timing, not content: zero spread expected.
    for name in campaign.spreads:
        assert campaign.coefficient_of_variation(name) < 1e-6
