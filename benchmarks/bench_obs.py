"""Observability overhead — disabled instrumentation must be ~free.

Not a paper figure: these benches track the cost the ``repro.obs``
subsystem adds to the simulation.  The contract is asymmetric: the
*disabled* path (the default for every figure regeneration) pays one
no-op method call per instrumented site and must stay within noise of
an uninstrumented kernel; the *enabled* paths (``--metrics``,
``--trace``) may cost real time, but their cost is measured here so it
cannot silently grow.
"""

from __future__ import annotations

import io

import pytest

from repro import obs
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.units import DataSize, Frequency

UPDATES = 100_000


@pytest.fixture(scope="module")
def obs_bitstream():
    return generate_bitstream(size=DataSize.from_kb(64), seed=2012)


def _full_run(bitstream):
    system = UPaRCSystem(decompressor=None)
    return system.run(bitstream, frequency=Frequency.from_mhz(362.5))


def test_run_with_obs_disabled(benchmark, obs_bitstream):
    """Baseline: the default path every figure regeneration takes."""
    result = benchmark.pedantic(_full_run, args=(obs_bitstream,),
                                rounds=3, iterations=1)
    assert result.verified


def test_run_with_metrics_enabled(benchmark, obs_bitstream):
    def run():
        with obs.observed(metrics=True) as observation:
            result = _full_run(obs_bitstream)
        return result, observation

    result, observation = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.verified
    counters = observation.registry.snapshot()["counters"]
    assert counters["kernel.events_dispatched"] > 0


def test_run_with_tracing_enabled(benchmark, obs_bitstream):
    def run():
        with obs.observed(trace=True) as observation:
            result = _full_run(obs_bitstream)
        return result, observation

    result, observation = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.verified
    assert len(observation.tracer.spans) > 0


def _counter_updates(registry) -> int:
    counter = registry.counter("bench.updates")
    for _ in range(UPDATES):
        counter.inc()
    return UPDATES


def test_null_registry_update_throughput(benchmark):
    assert benchmark(_counter_updates, NULL_REGISTRY) == UPDATES


def test_live_registry_update_throughput(benchmark):
    assert benchmark(_counter_updates, MetricsRegistry()) == UPDATES


def test_chrome_trace_export_throughput(benchmark, obs_bitstream):
    with obs.observed(trace=True) as observation:
        _full_run(obs_bitstream)

    def export() -> int:
        return obs.write_chrome_trace(observation.tracer, io.StringIO())

    assert benchmark(export) > 0
