"""Ablation — bitstream prefetching into idle time (Section III-A-1).

The paper: "the configuration data preloading can be done during idle
time which does not affect the system computational performance and
that could significantly improve the reconfiguration bandwidth."

Compares sequential vs prefetch schedules for a hardware task
pipeline, at two compute granularities (long tasks hide preloads
fully; short ones expose the spill).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.bitstream.generator import generate_bitstream
from repro.core.scheduler import PrefetchScheduler, Task
from repro.units import DataSize, Frequency, ms, us


def _build_tasks(compute_ps: int):
    bitstreams = [generate_bitstream(size=DataSize.from_kb(kb), seed=kb)
                  for kb in (30, 49, 81, 49)]
    names = ["fft", "fir", "viterbi", "crc"]
    return [Task(name, bs, compute_ps=compute_ps)
            for name, bs in zip(names, bitstreams)]


def _compare():
    scheduler = PrefetchScheduler(
        reconfiguration_frequency=Frequency.from_mhz(362.5))
    rows = []
    for label, compute in (("long (5 ms)", ms(5)),
                           ("medium (1 ms)", ms(1)),
                           ("short (50 us)", us(50))):
        tasks = _build_tasks(compute)
        reports = scheduler.compare(tasks)
        sequential_ms = reports["sequential"].makespan_ps / 1e9
        prefetch_ms = reports["prefetch"].makespan_ps / 1e9
        rows.append((label, sequential_ms, prefetch_ms,
                     sequential_ms - prefetch_ms,
                     scheduler.savings_percent(tasks)))
    return rows


def test_ablation_prefetch_scheduling(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)

    print()
    print(render_table(
        ["compute per task", "sequential ms", "prefetch ms",
         "saved ms", "saved %"],
        [list(row) for row in rows],
        title="Ablation -- preload prefetching into idle time"))

    absolute = {label: saved_ms for label, _, _, saved_ms, _ in rows}
    percent = {label: saved for label, _, _, _, saved in rows}
    # Prefetch always helps and never hurts.
    assert all(saved >= 0 for saved in percent.values())
    # Longer computations hide more preload time: the 81 KB preload
    # (~1.6 ms at the preload bandwidth) fully hides under 5 ms tasks,
    # spills under 1 ms ones, and barely hides under 50 us ones.
    assert absolute["long (5 ms)"] >= absolute["medium (1 ms)"] \
        > absolute["short (50 us)"]
    # Relative saving is largest where reconfiguration dominates the
    # pipeline (medium), and still double-digit there.
    assert percent["medium (1 ms)"] > percent["long (5 ms)"]
    assert percent["medium (1 ms)"] > 10.0
