"""Library performance — discrete-event kernel and codec throughput.

Not a paper figure: these track the *reproduction's* own performance
(events/second through the kernel, a full UPaRC run end to end) so
regressions in the simulator show up in CI like any other bench.
"""

from __future__ import annotations

from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.sim import Delay, Process, Simulator
from repro.units import DataSize, Frequency

EVENTS = 20_000


def _event_storm() -> int:
    """Slot-free batch scheduling: the kernel's uncancellable path."""
    sim = Simulator()
    fired = 0

    def bump() -> None:
        nonlocal fired
        fired += 1

    sim.schedule_batch((index * 10, bump) for index in range(EVENTS))
    sim.run()
    return fired


def _handle_storm() -> int:
    """Per-event ScheduledEvent handles (the cancellable slow path)."""
    sim = Simulator()
    fired = 0

    def bump() -> None:
        nonlocal fired
        fired += 1

    for index in range(EVENTS):
        sim.at(index * 10, bump)
    sim.run()
    return fired


def test_kernel_event_throughput(benchmark):
    fired = benchmark(_event_storm)
    assert fired == EVENTS


def test_kernel_handle_throughput(benchmark):
    fired = benchmark(_handle_storm)
    assert fired == EVENTS


def _process_chain() -> int:
    sim = Simulator()
    hops = 0

    def hopper():
        nonlocal hops
        for _ in range(5_000):
            hops += 1
            yield Delay(100)

    Process(sim, hopper())
    sim.run()
    return hops


def test_process_switch_throughput(benchmark):
    hops = benchmark(_process_chain)
    assert hops == 5_000


def test_full_uparc_run(benchmark, paper_bitstream):
    """Wall-clock of one complete preload + reconfigure + verify."""

    def run():
        system = UPaRCSystem(decompressor=None)
        return system.run(paper_bitstream,
                          frequency=Frequency.from_mhz(362.5))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.verified


def test_bitstream_generation(benchmark):
    bitstream = benchmark.pedantic(
        generate_bitstream,
        kwargs={"size": DataSize.from_kb(64)},
        rounds=3, iterations=1)
    assert bitstream.size.kb > 60
