"""Compressor-stack benchmark: per-codec throughput per backend.

Times ``compress`` and ``decompress`` for every kernelised codec
(X-MatchPRO, LZ77, Huffman, RLE) over the payload of a generated
partial bitstream, under each requested accel backend (pure, numpy,
and the compiled native extension when built), and verifies on the
fly that the compressed streams are byte-identical across backends —
a throughput number measured on diverging outputs is meaningless.

Standalone on purpose (pytest imports this module when collecting
``benchmarks/`` but finds no tests): the CI smoke job and the
committed ``BENCH_compress.json`` both come from::

    PYTHONPATH=src python benchmarks/bench_compress.py \
        --backend all --output BENCH_compress.json

``--quick`` shrinks the payload and repeats for a smoke-level run;
``--backend all`` times every *installed* backend, so it works on a
numpy-free or toolchain-free install; ``--backend both`` is the
historical pure+numpy pair.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro import accel
from repro.bitstream.generator import generate_bitstream
from repro.compress import (
    HuffmanCodec,
    Lz77Codec,
    RleCodec,
    XMatchProCodec,
)
from repro.obs.profiling import Timer
from repro.units import DataSize

PAYLOAD_KB = 216.5      # the paper's power/energy campaign size
QUICK_KB = 24.0
SEED = 2012

CODECS = [XMatchProCodec(), Lz77Codec(), HuffmanCodec(), RleCodec()]


def _bench(func: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """(best elapsed seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        with Timer() as timer:
            result = func()
        best = min(best, timer.elapsed_s)
    return best, result


def run_suite(backends: List[str], size_kb: float,
              repeats: int) -> Dict[str, object]:
    payload = generate_bitstream(size=DataSize.from_kb(size_kb),
                                 seed=SEED).raw_bytes
    payload_mb = len(payload) / 1e6
    codecs: Dict[str, Dict[str, object]] = {}
    reference: Dict[str, bytes] = {}

    for backend in backends:
        with accel.using(backend):
            assert accel.backend_name() == backend
            for codec in CODECS:
                row = codecs.setdefault(codec.name, {})
                compress_s, compressed = _bench(
                    lambda codec=codec: codec.compress(payload), repeats)
                decompress_s, original = _bench(
                    lambda codec=codec, blob=compressed:
                    codec.decompress(blob), repeats)
                assert original == payload, f"{codec.name} roundtrip"
                if codec.name in reference:
                    # The whole point: backends must agree bytewise.
                    assert reference[codec.name] == compressed, (
                        f"backend divergence in {codec.name}")
                else:
                    reference[codec.name] = compressed
                row["ratio"] = round(len(payload) / len(compressed), 3)
                row[backend + "_compress_s"] = compress_s
                row[backend + "_decompress_s"] = decompress_s
                row[backend + "_compress_mb_s"] = round(
                    payload_mb / compress_s, 2)
                row[backend + "_decompress_mb_s"] = round(
                    payload_mb / decompress_s, 2)

    if backends and backends[0] == "pure":
        for fast_name in backends[1:]:
            for row in codecs.values():
                row["compress_speedup_" + fast_name] = round(
                    row["pure_compress_s"]
                    / row[fast_name + "_compress_s"], 2)
                row["decompress_speedup_" + fast_name] = round(
                    row["pure_decompress_s"]
                    / row[fast_name + "_decompress_s"], 2)

    return {
        "payload_kb": size_kb,
        "repeats": repeats,
        "backends": backends,
        "codecs": codecs,
    }


def resolve_backends(choice: str) -> Optional[List[str]]:
    """Map the ``--backend`` flag to installed backends (None: usage
    error, already reported)."""
    if choice == "all":
        return (["pure"]
                + (["numpy"] if accel.numpy_available() else [])
                + (["native"] if accel.native_available() else []))
    if choice == "both":
        # Historical pure+numpy pair; degrades to pure-only rather
        # than failing on a numpy-free install.
        return ["pure"] + (["numpy"] if accel.numpy_available() else [])
    if choice == "numpy" and not accel.numpy_available():
        print("numpy backend requested but numpy is not installed",
              file=sys.stderr)
        return None
    if choice == "native" and not accel.native_available():
        print("native backend requested but the extension is not "
              "built (python -m repro.accel._native.build)",
              file=sys.stderr)
        return None
    return [choice]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend",
                        choices=("pure", "numpy", "native", "both",
                                 "all"),
                        default="all")
    parser.add_argument("--quick", action="store_true",
                        help="small payload, fewer repeats (CI smoke)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    backends = resolve_backends(args.backend)
    if backends is None:
        return 2

    size_kb = QUICK_KB if args.quick else PAYLOAD_KB
    repeats = 2 if args.quick else 5
    report = run_suite(backends, size_kb, repeats)

    blob = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(blob + "\n")
    print(blob)
    return 0


if __name__ == "__main__":
    sys.exit(main())
