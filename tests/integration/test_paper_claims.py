"""The paper's headline claims, asserted end to end.

Each test here corresponds to a sentence in the paper; together they
are the reproduction's acceptance suite.  EXPERIMENTS.md quotes the
same numbers.
"""

import pytest

from repro import (
    Farm,
    UparcController,
    UPaRCSystem,
    XpsHwicap,
    generate_bitstream,
)
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.fpga.area import slices_for
from repro.units import DataSize, Frequency


def mhz(value):
    return Frequency.from_mhz(value)


class TestAbstractClaims:
    def test_boost_reconfiguration_throughput_to_1_433_gbps(
            self, paper_bitstream):
        """'to boost the reconfiguration throughput up to 1.433 GB/s'"""
        result = UparcController("i").best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps / 1000 \
            == pytest.approx(1.433, rel=0.01)

    def test_45x_energy_efficiency(self, paper_bitstream):
        """'up to 45 times more efficient' than xps_hwicap."""
        xps = XpsHwicap(profile="unoptimized").reconfigure(
            paper_bitstream, mhz(100))
        uparc = UPaRCSystem(decompressor=None).run(
            paper_bitstream, frequency=mhz(100))
        ratio = xps.energy.uj_per_kb / uparc.energy.uj_per_kb
        assert ratio == pytest.approx(45, rel=0.05)


class TestSection3Claims:
    def test_operates_up_to_362_5_mhz(self, small_bitstream):
        """'can operate at ultimate frequency (up to 362.5 MHz)'"""
        result = UparcController("i").reconfigure(small_bitstream,
                                                  mhz(362.5))
        assert result.verified

    def test_dcm_synthesis_m29_d8(self):
        """'F_in = 100 MHz, M = 29 and D = 8 for DyCloGen'"""
        assert mhz(100).scaled(29, 8) == mhz(362.5)

    def test_xmatchpro_four_times_smaller(self, paper_bitstream):
        """'the compressed bitstream is about four times smaller'"""
        from repro.compress import XMatchProCodec
        result = XMatchProCodec().measure(paper_bitstream.raw_bytes)
        assert result.factor == pytest.approx(4.0, rel=0.15)


class TestTable1:
    def test_ranking_matches(self, medium_bitstream):
        measured = {codec.name: codec.measure(
            medium_bitstream.raw_bytes).ratio_percent
            for codec in all_codecs()}
        assert sorted(measured, key=measured.get) \
            == list(PAPER_TABLE1_RATIOS)


class TestTable2:
    @pytest.mark.parametrize("module,family,expected", [
        ("dyclogen", "virtex5", 24), ("dyclogen", "virtex6", 18),
        ("urec", "virtex5", 26), ("urec", "virtex6", 26),
        ("decompressor", "virtex5", 1035), ("decompressor", "virtex6", 900),
    ])
    def test_slice_counts(self, module, family, expected):
        assert slices_for(module, family) == expected


class TestSection4Claims:
    def test_1_8x_faster_than_farm(self, paper_bitstream):
        """'1.8 times higher than the fastest controller ... FaRM'"""
        uparc = UparcController("i").best_result(paper_bitstream)
        farm = Farm().best_result(paper_bitstream)
        assert uparc.bandwidth_decimal_mbps / farm.bandwidth_decimal_mbps \
            == pytest.approx(1.8, rel=0.03)

    def test_fig5_small_bitstream_efficiency(self):
        """'with the bitstream size of 6.5 KB, the effective bandwidth
        is 1.14 GB/s which is 78.8% of the theoretical bandwidth'"""
        small = generate_bitstream(size=DataSize.from_kb(6.5))
        result = UPaRCSystem(decompressor=None).run(small,
                                                    frequency=mhz(362.5))
        assert result.bandwidth_decimal_mbps / 1000 \
            == pytest.approx(1.14, rel=0.02)

    def test_fig5_large_bitstream_99_percent(self, paper_bitstream):
        """'With a bitstream size of 247 KB ... 99%'"""
        large = generate_bitstream(size=DataSize.from_kb(247))
        result = UPaRCSystem(decompressor=None).run(large,
                                                    frequency=mhz(362.5))
        theoretical = 362.5e6 * 4 / 1e6
        assert result.bandwidth_decimal_mbps / theoretical \
            == pytest.approx(0.99, abs=0.01)

    def test_compression_capacity_992kb(self, paper_bitstream):
        """'256 KBytes ... allows for storing the maximum bitstream of
        992 KBytes' (a 3.9x stretch at the 74.2% ratio)."""
        from repro.compress import XMatchProCodec
        ratio = XMatchProCodec().measure(paper_bitstream.raw_bytes)
        capacity = 256 * ratio.factor
        assert capacity == pytest.approx(992, rel=0.15)

    def test_mode_ii_throughput_1008(self, paper_bitstream):
        """'supplies a reconfiguration throughput of 1.008 GB/s'"""
        result = UparcController("ii").best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps \
            == pytest.approx(1008, rel=0.02)


class TestSection5Claims:
    def test_fig7_operating_points(self, paper_bitstream):
        """183 mW/1.1 ms at 50 MHz ... 453 mW/180 us at 300 MHz."""
        expected = {50: (183, 1100), 100: (259, 550),
                    200: (394, 270), 300: (453, 180)}
        system = UPaRCSystem(decompressor=None)
        for freq, (power_mw, time_us) in expected.items():
            result = system.run(paper_bitstream, frequency=mhz(freq))
            assert result.energy.mean_power_mw \
                == pytest.approx(power_mw, rel=0.005)
            assert result.transfer_ps / 1e6 \
                == pytest.approx(time_us, rel=0.03)

    def test_frequency_doubling_halves_time_not_power(self,
                                                      paper_bitstream):
        """'when the frequency is doubled, the reconfiguration time is
        halved, but the power is not doubled'"""
        system = UPaRCSystem(decompressor=None)
        r50 = system.run(paper_bitstream, frequency=mhz(50))
        r100 = system.run(paper_bitstream, frequency=mhz(100))
        assert r50.transfer_ps / r100.transfer_ps \
            == pytest.approx(2.0, rel=0.01)
        assert r100.energy.mean_power_mw / r50.energy.mean_power_mw < 1.6

    def test_uparc_0_66_uj_per_kb(self, paper_bitstream):
        """'UPaRC (without compression) consumes only 0.66 uJ/KB'"""
        result = UPaRCSystem(decompressor=None).run(
            paper_bitstream, frequency=mhz(100))
        assert result.energy.uj_per_kb == pytest.approx(0.66, rel=0.02)

    def test_xps_30_uj_per_kb(self, paper_bitstream):
        """'the energy efficiency is 30 uJ/KB of bitstream'"""
        result = XpsHwicap(profile="unoptimized").reconfigure(
            paper_bitstream, mhz(100))
        assert result.energy.uj_per_kb == pytest.approx(30, rel=0.05)
