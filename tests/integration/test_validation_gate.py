"""The acceptance gate itself: every encoded claim must hold."""

import pytest

from repro.analysis.validation import validate_reproduction


@pytest.fixture(scope="module")
def report():
    return validate_reproduction(quick=True)


def test_gate_passes(report):
    assert report.passed, "\n".join(
        f"{claim.source}: {claim.statement} — {claim.detail}"
        for claim in report.failures())


def test_gate_covers_every_evaluation_artifact(report):
    sources = {claim.source for claim in report.claims}
    assert {"Table I", "Table II", "Table III",
            "Fig. 5", "Fig. 7", "§V", "§IV"} <= sources


def test_summary_counts(report):
    assert report.summary.endswith("claims hold")
    assert report.failures() == []


def test_claims_carry_detail_where_quantitative(report):
    quantitative = [claim for claim in report.claims
                    if "within" in claim.statement
                    or "x" in claim.statement]
    assert any(claim.detail for claim in quantitative)
