"""Simulated preload/compute overlap (Section III-A-1 on the DES)."""

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.units import DataSize, Frequency, ms


@pytest.fixture
def two_bitstreams():
    return (generate_bitstream(size=DataSize.from_kb(16), seed=1),
            generate_bitstream(size=DataSize.from_kb(16), seed=2))


def test_async_preload_completes_during_compute(two_bitstreams):
    first, second = two_bitstreams
    system = UPaRCSystem(decompressor=None)
    system.run(first, frequency=Frequency.from_mhz(362.5))

    handle = system.preload_async(second)
    assert not handle.done  # no simulated time has passed yet
    system.advance(ms(5))   # the fabric computes for 5 ms
    assert handle.done
    report = handle.result
    assert report.duration_ps <= ms(5)

    result = system.reconfigure()
    assert result.verified
    assert result.expected_crc != 0
    # It is the *second* bitstream that got loaded.
    from repro.results import stream_crc
    assert result.payload_crc == stream_crc(second.raw_bytes)


def test_overlap_saves_critical_path_time(two_bitstreams):
    first, second = two_bitstreams
    compute_ps = ms(3)

    # Sequential: compute, then preload, then reconfigure.
    seq = UPaRCSystem(decompressor=None)
    seq.run(first, frequency=Frequency.from_mhz(362.5))
    seq.advance(compute_ps)
    seq.preload(second)
    seq_result = seq.reconfigure()
    seq_total = seq_result.finish_ps

    # Overlapped: preload rides under the computation.
    ovl = UPaRCSystem(decompressor=None)
    ovl.run(first, frequency=Frequency.from_mhz(362.5))
    handle = ovl.preload_async(second)
    ovl.advance(compute_ps)
    assert handle.done
    ovl_result = ovl.reconfigure()
    ovl_total = ovl_result.finish_ps

    saved = seq_total - ovl_total
    assert saved > 0
    # The saving equals the preload duration (it fully hides).
    assert saved == pytest.approx(handle.result.duration_ps, rel=0.01)


def test_advance_returns_new_time(two_bitstreams):
    system = UPaRCSystem(decompressor=None)
    t0 = system.sim.now
    t1 = system.advance(1_000_000)
    assert t1 == t0 + 1_000_000
