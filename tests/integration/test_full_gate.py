"""The full (non-quick) acceptance gate, at the paper's exact
conditions.  The slowest test in the suite by design: it runs every
experiment end to end once, as `python -m repro validate` does."""

from repro.analysis.validation import validate_reproduction


def test_full_validation_gate_passes():
    report = validate_reproduction(quick=False)
    assert report.passed, "\n".join(
        f"{claim.source}: {claim.statement} — {claim.detail}"
        for claim in report.failures())
    # The full gate checks strictly more than the quick gate.
    assert len(report.claims) >= 13
