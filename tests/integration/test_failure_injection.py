"""Failure injection: the system must *fail loudly*, never deliver
wrong configuration silently.

Each test corrupts one link of the chain (staging BRAM content,
compressed payload, device identity, clock envelope) and asserts the
failure surfaces as the right exception at the right layer.
"""

import pytest

from repro.bitstream.device import VIRTEX6_LX240T
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode, pack_header
from repro.errors import (
    BitstreamFormatError,
    CapacityError,
    CorruptStreamError,
    DeviceMismatchError,
    FrequencyError,
)
from repro.units import DataSize, Frequency


def mhz(value):
    return Frequency.from_mhz(value)


class TestBramUpsets:
    def test_flipped_frame_bit_fails_config_crc(self, small_bitstream):
        system = UPaRCSystem(decompressor=None)
        system.preload(small_bitstream)
        # SEU in the staging BRAM: flip one bit of a frame word.
        address = 100
        word = system.bram._words[address]
        system.bram._words[address] = word ^ (1 << 7)
        with pytest.raises(BitstreamFormatError, match="CRC mismatch"):
            system.reconfigure()

    def test_corrupted_header_size_detected(self, small_bitstream):
        system = UPaRCSystem(decompressor=None)
        system.preload(small_bitstream)
        # Corrupt the Fig. 3 header: claim a shorter payload.  The
        # stream then ends mid-packet and the payload CRC cannot match.
        good_words = len(small_bitstream.raw_words)
        system.bram._words[0] = pack_header(OperationMode.RAW,
                                            good_words - 50)
        from repro.errors import ReconfigurationFailed
        with pytest.raises((BitstreamFormatError, ReconfigurationFailed)):
            system.reconfigure()


class TestCompressedPathCorruption:
    def test_corrupted_compressed_payload_detected(self, small_bitstream):
        system = UPaRCSystem()
        system.preload(small_bitstream, OperationMode.COMPRESSED)
        # Flip a byte deep inside the compressed stream.
        target = 1 + (system.bram.valid_words // 2)
        system.bram._words[target] ^= 0x00000100
        with pytest.raises((CorruptStreamError, BitstreamFormatError)):
            system.reconfigure()


class TestDeviceMismatch:
    def test_v5_bitstream_on_v6_system(self, small_bitstream):
        system = UPaRCSystem(device=VIRTEX6_LX240T, decompressor=None)
        system.preload(small_bitstream)
        with pytest.raises(DeviceMismatchError):
            system.reconfigure()


class TestEnvelopeViolations:
    def test_clk2_beyond_demonstrated_limit(self, small_bitstream):
        system = UPaRCSystem(decompressor=None)
        with pytest.raises(FrequencyError):
            system.set_frequency(mhz(380))
            system.preload(small_bitstream)
            system.reconfigure()

    def test_v6_cannot_run_at_v5_maximum(self, small_bitstream):
        bitstream = generate_bitstream(size=DataSize.from_kb(8),
                                       device=VIRTEX6_LX240T)
        system = UPaRCSystem(device=VIRTEX6_LX240T, decompressor=None)
        system.set_frequency(mhz(362.5))
        system.preload(bitstream)
        with pytest.raises(FrequencyError):
            system.reconfigure()

    def test_oversized_raw_preload_rejected(self):
        big = generate_bitstream(size=DataSize.from_kb(300))
        system = UPaRCSystem(bram_capacity=DataSize.from_kb(256),
                             decompressor=None)
        with pytest.raises(CapacityError):
            system.preload(big, OperationMode.RAW)


class TestRecoveryAfterFailure:
    def test_system_recovers_with_clean_reload(self, small_bitstream):
        system = UPaRCSystem(decompressor=None)
        system.preload(small_bitstream)
        system.bram._words[50] ^= 1
        with pytest.raises(BitstreamFormatError):
            system.reconfigure()
        # Reloading the golden bitstream restores service: abort the
        # half-consumed stream, then a fresh preload + run succeeds.
        system.config_logic.abort()
        system.preload(small_bitstream)
        result = system.reconfigure()
        assert result.verified
