"""Cross-validation of independent timing paths.

Three parts of the library compute reconfiguration time through
different code: the discrete-event simulator (UPaRCSystem), the
frequency policy's analytic predictor, and the schedulers' duration
helpers.  They must agree to sub-cycle precision, or every policy
decision and schedule would drift from what the system actually does.
"""

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.core.policy import FrequencyPolicy
from repro.core.scheduler import PrefetchScheduler
from repro.core.system import UPaRCSystem
from repro.power.model import PowerModel
from repro.units import DataSize, Frequency

CASES = [(6.5, 362.5), (49.0, 100.0), (81.0, 250.0), (216.5, 50.0)]


@pytest.mark.parametrize("size_kb,mhz", CASES)
def test_policy_prediction_matches_simulation(size_kb, mhz):
    bitstream = generate_bitstream(size=DataSize.from_kb(size_kb))
    frequency = Frequency.from_mhz(mhz)

    system = UPaRCSystem(decompressor=None)
    result = system.run(bitstream, frequency=frequency,
                        collect_power=False)

    policy = FrequencyPolicy(PowerModel())
    predicted = policy.predict_duration_ps(bitstream.size, frequency)

    # Sub-0.1% agreement (the predictor's word count uses the nominal
    # size; the generator quantizes to whole frames).
    assert result.duration_ps == pytest.approx(predicted, rel=1e-3)


@pytest.mark.parametrize("size_kb,mhz", CASES)
def test_scheduler_duration_matches_simulation(size_kb, mhz):
    bitstream = generate_bitstream(size=DataSize.from_kb(size_kb))
    frequency = Frequency.from_mhz(mhz)

    system = UPaRCSystem(decompressor=None)
    result = system.run(bitstream, frequency=frequency,
                        collect_power=False)

    scheduler = PrefetchScheduler(reconfiguration_frequency=frequency)
    assert scheduler.reconfigure_ps(bitstream.size) \
        == pytest.approx(result.duration_ps, rel=1e-3)


def test_policy_power_matches_simulated_plateau(paper_bitstream):
    policy = FrequencyPolicy(PowerModel())
    for mhz in (50.0, 200.0):
        frequency = Frequency.from_mhz(mhz)
        point = policy.operating_point(paper_bitstream.size, frequency)
        system = UPaRCSystem(decompressor=None)
        result = system.run(paper_bitstream, frequency=frequency)
        assert point.power_mw == pytest.approx(
            result.energy.mean_power_mw, rel=1e-6)


def test_policy_energy_matches_simulated_energy(paper_bitstream):
    policy = FrequencyPolicy(PowerModel())
    frequency = Frequency.from_mhz(100.0)
    point = policy.operating_point(paper_bitstream.size, frequency)
    system = UPaRCSystem(decompressor=None)
    result = system.run(paper_bitstream, frequency=frequency)
    # The policy charges the control window too; the simulator's
    # energy report covers Start..Finish.  Within 1 %.
    assert point.energy_uj == pytest.approx(result.energy.energy_uj,
                                            rel=0.01)
