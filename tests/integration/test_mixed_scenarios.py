"""Mixed-mode, multi-run scenarios on one long-lived system.

A deployed system interleaves everything: raw swaps, compressed
swaps, frequency retunes, decompressor swaps, readback scrubs.  These
tests run such sequences on a single UPaRCSystem instance and verify
every step — the long-lived-state bugs (stale CRC windows, clock
bleed-through, staging residue) that single-shot tests cannot see.
"""

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.controllers import UparcController
from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.units import DataSize, Frequency


def mhz(value):
    return Frequency.from_mhz(value)


@pytest.fixture(scope="module")
def modules():
    return {
        name: generate_bitstream(size=DataSize.from_kb(kb), seed=kb,
                                 design_name=name)
        for name, kb in (("a", 16), ("b", 24), ("c", 32))
    }


def test_long_interleaved_sequence(modules):
    system = UPaRCSystem()
    steps = [
        ("a", mhz(100), OperationMode.RAW),
        ("b", mhz(362.5), OperationMode.RAW),
        ("b", mhz(255), OperationMode.COMPRESSED),
        ("c", mhz(50), OperationMode.RAW),
        ("a", mhz(255), OperationMode.COMPRESSED),
        ("c", mhz(300), OperationMode.RAW),
    ]
    previous_end = 0
    for name, frequency, mode in steps:
        result = system.run(modules[name], frequency=frequency,
                            mode=mode)
        assert result.verified, (name, frequency, mode)
        assert result.start_ps >= previous_end
        previous_end = result.finish_ps
        from repro.results import stream_crc
        assert result.payload_crc == stream_crc(modules[name].raw_bytes)


def test_swap_decompressor_mid_sequence(modules):
    system = UPaRCSystem()
    first = system.run(modules["a"], frequency=mhz(200),
                       mode=OperationMode.COMPRESSED)
    assert first.verified
    system.swap_decompressor("farm-rle")
    second = system.run(modules["b"], frequency=mhz(200),
                        mode=OperationMode.COMPRESSED)
    assert second.verified
    system.swap_decompressor("x-matchpro")
    third = system.run(modules["a"], frequency=mhz(200),
                       mode=OperationMode.COMPRESSED)
    assert third.verified
    # Same module, same codec as the first run: identical staging size.
    assert third.stored_size == first.stored_size


def test_scrub_between_swaps(modules):
    from repro.bitstream.generator import REGION_ORIGIN
    system = UPaRCSystem(decompressor=None)
    system.run(modules["a"], frequency=mhz(362.5))
    system.icap.enable()
    data, _ = system.icap.readback(REGION_ORIGIN,
                                   modules["a"].frame_count)
    system.icap.disable()
    result = system.run(modules["b"])
    assert result.verified
    # The readback did not pollute the new run's verification.
    from repro.results import stream_crc
    assert result.payload_crc == stream_crc(modules["b"].raw_bytes)


def test_uparc_controller_with_alternate_decompressor(modules):
    controller = UparcController("ii", decompressor="farm-rle")
    result = controller.reconfigure(modules["c"], mhz(200))
    assert result.verified
    assert result.mode == "compressed"
    # RLE staging is bigger than X-MatchPRO's on the same content.
    xmatch = UparcController("ii").reconfigure(modules["c"], mhz(200))
    assert result.stored_size.bytes > xmatch.stored_size.bytes


def test_energy_accumulates_per_run_not_globally(modules):
    system = UPaRCSystem(decompressor=None)
    first = system.run(modules["a"], frequency=mhz(100))
    second = system.run(modules["a"], frequency=mhz(100))
    # Same conditions -> same per-run energy, even though the second
    # run happens much later in simulated time.
    assert second.energy.energy_uj \
        == pytest.approx(first.energy.energy_uj, rel=1e-9)
