"""Whole-pipeline determinism.

The repository's claim that every number in EXPERIMENTS.md reproduces
exactly depends on end-to-end determinism: same inputs, same events,
same traces, bit for bit.  These tests run complete experiments twice
and require identity — not approximate equality.
"""

from repro.analysis.bandwidth import bandwidth_surface
from repro.analysis.powersweep import fig7_power_sweep
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.units import DataSize, Frequency


def test_generator_bit_identical():
    first = generate_bitstream(size=DataSize.from_kb(32), seed=77)
    second = generate_bitstream(size=DataSize.from_kb(32), seed=77)
    assert first.file_bytes == second.file_bytes


def test_full_run_identical(small_bitstream):
    def run():
        system = UPaRCSystem(decompressor=None)
        return system.run(small_bitstream,
                          frequency=Frequency.from_mhz(300))

    first, second = run(), run()
    assert first.start_ps == second.start_ps
    assert first.finish_ps == second.finish_ps
    assert first.payload_crc == second.payload_crc
    assert first.energy.energy_uj == second.energy.energy_uj
    assert [(s.time_ps, s.value) for s in first.power_trace.samples] \
        == [(s.time_ps, s.value) for s in second.power_trace.samples]


def test_fig5_cell_identical():
    first = bandwidth_surface(sizes_kb=(12.0,), frequencies_mhz=(200.0,))
    second = bandwidth_surface(sizes_kb=(12.0,),
                               frequencies_mhz=(200.0,))
    assert first[0].duration_ps == second[0].duration_ps
    assert first[0].effective_mbps == second[0].effective_mbps


def test_fig7_point_identical():
    first = fig7_power_sweep(frequencies_mhz=(100.0,), size_kb=16.0)
    second = fig7_power_sweep(frequencies_mhz=(100.0,), size_kb=16.0)
    assert first[0].energy_uj == second[0].energy_uj
    assert first[0].reconfiguration_us == second[0].reconfiguration_us


def test_compression_deterministic(medium_bitstream):
    from repro.compress import all_codecs
    data = medium_bitstream.raw_bytes[:16384]
    for codec in all_codecs():
        fresh = type(codec)()
        assert codec.compress(data) == fresh.compress(data), codec.name
