"""Sweep metrics: worker registries merge to the same numbers for any
``-j``, and the cache's byte accounting shows up in them."""

import pytest

from repro.sweep import SMOKE_GRID, SweepEngine


@pytest.fixture(scope="module")
def serial_engine():
    engine = SweepEngine(SMOKE_GRID, jobs=1, collect_metrics=True)
    engine.run()
    return engine


def test_serial_metrics_cover_the_grid(serial_engine):
    counters = serial_engine.registry.snapshot()["counters"]
    assert counters["sweep.cells"] == len(SMOKE_GRID)
    assert counters["system.reconfigurations"] == len(SMOKE_GRID)
    assert counters["kernel.events_dispatched"] > 0


def test_parallel_merge_equals_serial(serial_engine):
    parallel = SweepEngine(SMOKE_GRID, jobs=4, collect_metrics=True)
    parallel.run()
    # The deterministic snapshot excludes wall.* by construction, so
    # worker count cannot leak into it.
    assert parallel.registry.snapshot() \
        == serial_engine.registry.snapshot()


def test_wall_metrics_present_but_excluded(serial_engine):
    registry = serial_engine.registry
    assert "wall.sweep.cell_ms" \
        in registry.snapshot(include_wall=True)["histograms"]
    assert "wall.sweep.cell_ms" \
        not in registry.snapshot()["histograms"]
    assert serial_engine.wall_s > 0.0
    assert 0.0 < serial_engine.utilization <= 1.5


def test_metrics_off_by_default():
    engine = SweepEngine(SMOKE_GRID, jobs=1)
    engine.run()
    assert engine.registry.snapshot() == {
        "counters": {}, "gauges": {},
        "histograms": {}}


def test_cache_byte_accounting_flows_into_metrics(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = SweepEngine(SMOKE_GRID, jobs=1, cache_dir=cache_dir,
                       collect_metrics=True)
    cold.run()
    cold_counters = cold.registry.snapshot()["counters"]
    # Record misses for every cell, plus bitstream-cache misses for
    # each unique payload (later cells may hit the bitstream cache).
    assert cold_counters["sweep.cache.misses"] >= len(SMOKE_GRID)
    assert cold_counters["sweep.cache.bytes_written"] > 0
    assert cold.stats.bytes_written \
        == cold_counters["sweep.cache.bytes_written"]

    warm = SweepEngine(SMOKE_GRID, jobs=2, cache_dir=cache_dir,
                       collect_metrics=True)
    warm.run()
    warm_counters = warm.registry.snapshot()["counters"]
    assert warm_counters["sweep.cache.hits"] == len(SMOKE_GRID)
    assert warm_counters["sweep.cache.misses"] == 0
    assert warm_counters["sweep.cache.bytes_read"] > 0
    assert warm.stats.bytes_read \
        == warm_counters["sweep.cache.bytes_read"]
