"""Grid expansion and run-spec identity."""

import pytest

from repro.errors import ReproError
from repro.sweep import (
    FIG5_GRID,
    GRIDS,
    SMOKE_GRID,
    TABLE1_GRID,
    PayloadSpec,
    RunSpec,
    SweepGrid,
)


def test_fig5_grid_is_the_full_surface():
    specs = FIG5_GRID.expand()
    assert len(specs) == 49 == len(FIG5_GRID)
    assert {spec.workload for spec in specs} == {"reconfigure"}
    assert {spec.controller for spec in specs} == {"UPaRC_i"}
    assert len({spec.key for spec in specs}) == 49


def test_table1_grid_pairs_sizes_with_seeds():
    specs = TABLE1_GRID.expand()
    assert len(specs) == 21 == len(TABLE1_GRID)
    # Paired corpus, not a cross product: each size keeps its seed.
    pairs = {(spec.payload.size_kb, spec.payload.seed) for spec in specs}
    assert pairs == {(49.0, 101), (81.0, 202), (156.0, 303)}


def test_expansion_is_sorted_by_key():
    for grid in GRIDS.values():
        keys = [spec.key for spec in grid.expand()]
        assert keys == sorted(keys)


def test_key_is_stable_and_readable():
    spec = RunSpec(workload="reconfigure", controller="UPaRC_i",
                   frequency_mhz=362.5,
                   payload=PayloadSpec(size_kb=6.5, seed=2012))
    assert spec.key == "reconfigure/UPaRC_i/362.5mhz/6.5kb-s2012"
    # Equal specs render equal keys.
    twin = RunSpec(workload="reconfigure", controller="UPaRC_i",
                   frequency_mhz=362.5,
                   payload=PayloadSpec(size_kb=6.5, seed=2012))
    assert spec == twin and spec.key == twin.key


def test_compress_key_names_the_codec():
    spec = RunSpec(workload="compress", codec="X-MatchPRO",
                   payload=PayloadSpec(size_kb=49.0, seed=101))
    assert spec.key == "compress/X-MatchPRO/49kb-s101"


def test_unknown_controller_rejected_at_build_time():
    with pytest.raises(ReproError, match="unknown controller"):
        RunSpec(workload="reconfigure", controller="HWICAP_TURBO",
                frequency_mhz=100.0,
                payload=PayloadSpec(size_kb=6.5, seed=1))


def test_unknown_codec_rejected():
    with pytest.raises(ReproError, match="unknown codec"):
        RunSpec(workload="compress", codec="bzip2",
                payload=PayloadSpec(size_kb=6.5, seed=1))


def test_unknown_workload_rejected():
    with pytest.raises(ReproError, match="unknown workload"):
        RunSpec(workload="power", payload=PayloadSpec(size_kb=1, seed=1))


def test_reconfigure_needs_frequency():
    with pytest.raises(ReproError, match="positive frequency"):
        RunSpec(workload="reconfigure", controller="UPaRC_i",
                payload=PayloadSpec(size_kb=6.5, seed=1))


def test_payload_size_must_be_positive():
    with pytest.raises(ReproError, match="positive"):
        PayloadSpec(size_kb=0.0, seed=1)


def test_incomplete_grid_fails_on_expand():
    grid = SweepGrid(name="broken", workload="reconfigure",
                     payloads=(PayloadSpec(size_kb=6.5, seed=1),))
    with pytest.raises(ReproError, match="controllers and frequencies"):
        grid.expand()


def test_smoke_grid_is_small():
    assert len(SMOKE_GRID.expand()) == 4
