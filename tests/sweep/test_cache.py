"""Content-addressed artifact cache: keys, blobs, reconstruction."""

# These tests exercise the raw artifact_key() helper with ad-hoc
# params dicts; version pinning is the caller's job (bitstream_params)
# and is covered by test_key_changes_with_any_parameter.
# repro-lint: disable=C503

import os

from repro.bitstream.generator import BitstreamSpec, generate_bitstream
from repro.sweep import ArtifactCache, CacheStats, artifact_key
from repro.sweep.cache import bitstream_params
from repro.units import DataSize


def _cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"))


def test_blob_roundtrip(tmp_path):
    cache = _cache(tmp_path)
    key = artifact_key({"kind": "test", "value": 1})
    assert cache.get(key) is None
    cache.put(key, b"payload bytes")
    assert cache.get(key) == b"payload bytes"
    assert cache.contains(key)


def test_key_is_canonical_json_order_independent():
    assert (artifact_key({"a": 1, "b": 2.5})
            == artifact_key({"b": 2.5, "a": 1}))


def test_key_changes_with_any_parameter():
    base = bitstream_params(BitstreamSpec(size=DataSize.from_kb(6.5),
                                          seed=2012))
    reseeded = dict(base)
    reseeded["seed"] = 2013
    resized = dict(base)
    resized["size_bytes"] = base["size_bytes"] + 4
    keys = {artifact_key(base), artifact_key(reseeded),
            artifact_key(resized)}
    assert len(keys) == 3


def test_two_level_fanout_layout(tmp_path):
    cache = _cache(tmp_path)
    key = artifact_key({"kind": "layout"})
    cache.put(key, b"x")
    assert os.path.exists(os.path.join(cache.root, "objects",
                                       key[:2], key[2:]))


def test_no_temp_files_left_behind(tmp_path):
    cache = _cache(tmp_path)
    key = artifact_key({"kind": "tmp-check"})
    cache.put(key, b"x" * 4096)
    leftovers = [name for _, _, names in os.walk(cache.root)
                 for name in names if name.startswith(".tmp-")]
    assert leftovers == []


def test_bitstream_cache_reconstructs_exactly(tmp_path):
    cache = _cache(tmp_path)
    spec = BitstreamSpec(size=DataSize.from_kb(6.5), seed=77)
    stats = CacheStats()
    first = cache.load_bitstream(spec, stats)
    assert (stats.hits, stats.misses) == (0, 1)
    second = cache.load_bitstream(spec, stats)
    assert (stats.hits, stats.misses) == (1, 1)

    reference = generate_bitstream(spec)
    for bitstream in (first, second):
        assert bitstream.raw_bytes == reference.raw_bytes
        assert bitstream.file_bytes == reference.file_bytes
        assert bitstream.frame_payload == reference.frame_payload
        assert bitstream.frame_count == reference.frame_count
        assert (bitstream.frame_payload_offset
                == reference.frame_payload_offset)
        assert (bitstream.frame_payload_words
                == reference.frame_payload_words)
        assert bitstream.header == reference.header


def test_compressed_payload_cache_matches_direct_measure(tmp_path):
    from repro.compress import codec_by_name
    cache = _cache(tmp_path)
    spec = BitstreamSpec(size=DataSize.from_kb(6.5), seed=77)
    stats = CacheStats()
    cold = cache.load_compressed(spec, "RLE", stats)
    warm = cache.load_compressed(spec, "RLE", stats)
    assert cold == warm
    direct = codec_by_name("RLE").measure(
        generate_bitstream(spec).raw_bytes)
    assert cold == direct


def test_record_roundtrip_preserves_floats_exactly(tmp_path):
    cache = _cache(tmp_path)
    params = {"kind": "run-record", "cell": 1}
    record = {"effective_mbps": 1147.7340271238381,
              "duration_ps": 5799253, "verified": True}
    cache.store_record(params, record)
    assert cache.load_record(params) == record


def test_clear_empties_the_store(tmp_path):
    cache = _cache(tmp_path)
    key = artifact_key({"kind": "clear-me"})
    cache.put(key, b"x")
    cache.clear()
    assert cache.get(key) is None
