"""``python -m repro sweep`` surface."""

import json

from repro.cli import main


def test_sweep_smoke_grid(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "smoke", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "sweep smoke" in out
    assert "4 cells" in out
    assert "misses" in out


def test_sweep_json_output(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    out_file = tmp_path / "results.json"
    assert main(["sweep", "smoke", "-j", "2", "--cache-dir", cache_dir,
                 "--json", str(out_file)]) == 0
    records = json.loads(out_file.read_text())
    assert len(records) == 4
    assert all(record["verified"] for record in records)
    keys = [record["key"] for record in records]
    assert keys == sorted(keys)


def test_sweep_no_cache(tmp_path, capsys):
    assert main(["sweep", "smoke", "--no-cache"]) == 0
    assert "cache off" in capsys.readouterr().out


def test_cached_rerun_reports_all_hits(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "smoke", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["sweep", "smoke", "--cache-dir", cache_dir]) == 0
    assert "4 hits, 0 misses" in capsys.readouterr().out


def test_sweep_sanitize_forces_serial_uncached_and_passes(tmp_path,
                                                          capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "smoke", "-j", "4", "--cache-dir", cache_dir,
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    # workers would escape instrumentation and cache hits would skip
    # execution entirely, so --sanitize overrides both.
    assert "-j 1" in out
    assert "cache off" in out
    assert "sanitize: 0 unjustified" in out
