"""Sweep engine: determinism, caching, parallel equivalence.

The load-bearing property is that result lists are *equal* — same
values, same order — across serial, parallel, cold and cached runs.
"""

import pytest

from repro.errors import ReproError
from repro.sweep import (
    SMOKE_GRID,
    PayloadSpec,
    RunSpec,
    SweepEngine,
    execute_spec,
    table1_ratios,
    to_bandwidth_points,
)

SMALL_PAYLOAD = PayloadSpec(size_kb=6.5, seed=2012)


@pytest.fixture(scope="module")
def smoke_serial():
    """One uncached serial run of the smoke grid (shared reference)."""
    return SweepEngine(SMOKE_GRID, jobs=1, cache_dir=None).run()


def test_results_sorted_by_key(smoke_serial):
    keys = [result.key for result in smoke_serial]
    assert keys == sorted(keys)
    assert len(keys) == 4


def test_every_cell_crc_verified(smoke_serial):
    assert all(result.verified for result in smoke_serial)
    assert all(result.payload_crc for result in smoke_serial)


def test_parallel_equals_serial_uncached(smoke_serial):
    parallel = SweepEngine(SMOKE_GRID, jobs=2, cache_dir=None).run()
    assert parallel == smoke_serial


def test_cached_run_is_byte_identical(tmp_path, smoke_serial):
    cache_dir = str(tmp_path / "cache")
    cold = SweepEngine(SMOKE_GRID, jobs=1, cache_dir=cache_dir)
    cold_results = cold.run()
    assert cold_results == smoke_serial
    assert cold.stats.misses > 0

    warm = SweepEngine(SMOKE_GRID, jobs=2, cache_dir=cache_dir)
    warm_results = warm.run()
    assert warm_results == smoke_serial
    assert warm.stats.misses == 0
    assert warm.stats.hits == len(SMOKE_GRID)


def test_matches_bandwidth_surface(smoke_serial):
    """The engine's cells equal the analysis-module measurement."""
    from repro.analysis.bandwidth import bandwidth_surface
    reference = bandwidth_surface(sizes_kb=[6.5],
                                  frequencies_mhz=[100.0, 362.5])
    by_cell = {(p.size.kb, p.frequency.mhz): p for p in reference}
    for result in smoke_serial:
        point = by_cell.get((result.size_kb, result.frequency_mhz))
        if point is None or result.seed != 2012:
            continue
        assert result.effective_mbps == point.effective_mbps
        assert result.theoretical_mbps == point.theoretical_mbps
        assert result.duration_ps == point.duration_ps


def test_execute_spec_compress_matches_direct_codec():
    from repro.bitstream.generator import generate_bitstream
    from repro.compress import codec_by_name
    from repro.units import DataSize
    spec = RunSpec(workload="compress", codec="RLE",
                   payload=SMALL_PAYLOAD)
    result, _stats = execute_spec(spec)
    raw = generate_bitstream(size=DataSize.from_kb(6.5),
                             seed=2012).raw_bytes
    direct = codec_by_name("RLE").measure(raw)
    assert result.original_size == direct.original_size
    assert result.compressed_size == direct.compressed_size
    assert result.ratio_percent == direct.ratio_percent


def test_record_cache_round_trips_results(tmp_path):
    spec = RunSpec(workload="reconfigure", controller="UPaRC_i",
                   frequency_mhz=100.0, payload=SMALL_PAYLOAD)
    cache_root = str(tmp_path / "cache")
    cold, cold_stats = execute_spec(spec, cache_root)
    warm, warm_stats = execute_spec(spec, cache_root)
    assert warm == cold
    assert cold_stats.misses > 0
    assert (warm_stats.hits, warm_stats.misses) == (1, 0)


def test_duplicate_cells_rejected():
    spec = RunSpec(workload="compress", codec="RLE",
                   payload=SMALL_PAYLOAD)
    with pytest.raises(ReproError, match="duplicate"):
        SweepEngine([spec, spec])


def test_to_bandwidth_points(smoke_serial):
    points = to_bandwidth_points(smoke_serial)
    assert len(points) == len(smoke_serial)
    for point, result in zip(points, smoke_serial):
        assert point.size.kb == result.size_kb
        assert point.frequency.mhz == result.frequency_mhz
        assert point.effective_mbps == result.effective_mbps
        assert point.efficiency_percent < 100.0


def test_table1_ratios_orders_like_the_paper():
    from repro.compress import PAPER_TABLE1_RATIOS
    specs = [RunSpec(workload="compress", codec=name,
                     payload=SMALL_PAYLOAD)
             for name in ("X-MatchPRO", "RLE")]
    results = SweepEngine(specs).run()
    ratios = table1_ratios(results)
    # Table I row order, not result-key order.
    assert list(ratios) == [name for name in PAPER_TABLE1_RATIOS
                            if name in ("RLE", "X-MatchPRO")]
    assert ratios["X-MatchPRO"] > ratios["RLE"]


def test_baseline_controller_cell_runs(tmp_path):
    """The controller axis covers the Table III baselines too."""
    spec = RunSpec(workload="reconfigure", controller="FaRM",
                   frequency_mhz=100.0, payload=SMALL_PAYLOAD)
    result, _stats = execute_spec(spec, str(tmp_path / "cache"))
    assert result.verified
    assert 0 < result.effective_mbps < result.theoretical_mbps


def _square(value):
    return value * value


def test_fan_out_serial_preserves_order():
    from repro.sweep import fan_out
    assert fan_out([3, 1, 2], _square, jobs=1) == [9, 1, 4]


def test_fan_out_parallel_matches_serial():
    from repro.sweep import fan_out
    items = list(range(7))
    assert fan_out(items, _square, jobs=3) \
        == fan_out(items, _square, jobs=1)


def test_fan_out_single_item_runs_inline():
    from repro.sweep import fan_out
    calls = []
    assert fan_out([5], calls.append, jobs=8) == [None]
    assert calls == [5]  # an unpicklable worker proves it ran inline


def test_build_controller_names():
    from repro.sweep import build_controller
    assert build_controller("UPaRC_i").name == "UPaRC_i"
    with pytest.raises(ReproError):
        build_controller("bogus")
