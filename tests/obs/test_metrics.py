"""Metrics registry: instruments, snapshots, merging, the null path."""

import gc
import sys

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("icap.words_written")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    assert registry.snapshot()["counters"] == {"icap.words_written": 42}


def test_instruments_memoised_by_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert len(registry) == 3


def test_gauge_set_and_high_water():
    registry = MetricsRegistry()
    gauge = registry.gauge("kernel.queue_depth")
    gauge.set(7)
    gauge.high_water(3)
    assert gauge.value == 7
    gauge.high_water(9)
    assert gauge.value == 9


def test_histogram_buckets_and_mean():
    histogram = Histogram("t", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.counts == [1, 1, 1, 1]
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(555.5 / 4)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("empty", bounds=())


def test_snapshot_keys_sorted_and_json_safe():
    import json

    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first").inc(2)
    registry.histogram("m.mid").observe(3.0)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a.first", "z.last"]
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_snapshot_excludes_wall_metrics_by_default():
    registry = MetricsRegistry()
    registry.counter("sim.events").inc()
    registry.histogram("wall.cell_ms", wall=True).observe(12.5)
    registry.gauge("wall.rss_mb", wall=True).set(100)
    deterministic = registry.snapshot()
    assert "wall.cell_ms" not in deterministic["histograms"]
    assert "wall.rss_mb" not in deterministic["gauges"]
    everything = registry.snapshot(include_wall=True)
    assert "wall.cell_ms" in everything["histograms"]
    assert "wall.rss_mb" in everything["gauges"]


def _worker_snapshot(counter_value, gauge_value, observations):
    registry = MetricsRegistry()
    registry.counter("cells").inc(counter_value)
    registry.gauge("depth").high_water(gauge_value)
    for value in observations:
        registry.histogram("us").observe(value)
    return registry.snapshot()


def test_merge_counters_add_gauges_max_histograms_add():
    merged = MetricsRegistry()
    merged.merge_snapshot(_worker_snapshot(2, 5, [1.0, 100.0]))
    merged.merge_snapshot(_worker_snapshot(3, 4, [50.0]))
    snapshot = merged.snapshot()
    assert snapshot["counters"]["cells"] == 5
    assert snapshot["gauges"]["depth"] == 5
    assert snapshot["histograms"]["us"]["count"] == 3
    assert snapshot["histograms"]["us"]["total"] == 151.0


def test_merge_is_order_independent():
    parts = [_worker_snapshot(1, i, [float(i)]) for i in range(5)]
    forward = MetricsRegistry()
    for part in parts:
        forward.merge_snapshot(part)
    backward = MetricsRegistry()
    for part in reversed(parts):
        backward.merge_snapshot(part)
    assert forward.snapshot() == backward.snapshot()


def test_merge_rejects_mismatched_bucket_bounds():
    left = MetricsRegistry()
    left.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
    wrong = {"counters": {}, "gauges": {},
             "histograms": {"h": {"bounds": [5.0, 6.0],
                                  "counts": [0, 0, 1],
                                  "total": 7.0, "count": 1}}}
    with pytest.raises(ValueError):
        left.merge_snapshot(wrong)


def test_rows_sorted_and_wall_filterable():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.gauge("a").set(1)
    registry.histogram("wall.t_ms", wall=True).observe(1.0)
    names = [row[0] for row in registry.rows()]
    assert names == ["a", "b", "wall.t_ms"]
    assert [row[0] for row in registry.rows(include_wall=False)] \
        == ["a", "b"]


def test_null_registry_is_shared_singletons():
    registry = NullRegistry()
    assert registry.counter("x") is NULL_REGISTRY.counter("y")
    assert registry.gauge("x") is NULL_REGISTRY.gauge("y")
    assert registry.histogram("x") is NULL_REGISTRY.histogram("y")
    assert not registry.enabled
    assert len(registry) == 0
    assert registry.rows() == []
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_null_registry_updates_allocate_nothing():
    # The disabled hot path must be allocation-free: instrumented
    # simulation code pays one no-op method call per update and the
    # heap block count stays flat.
    counter = NULL_REGISTRY.counter("kernel.events_dispatched")
    gauge = NULL_REGISTRY.gauge("kernel.queue_depth")
    histogram = NULL_REGISTRY.histogram("system.transfer_us")
    for _ in range(100):  # warm up caches/specialisation
        counter.inc()
        gauge.high_water(3)
        histogram.observe(2.0)
    gc.collect()
    before = sys.getallocatedblocks()
    for _ in range(1000):
        counter.inc()
        counter.inc(7)
        gauge.set(1)
        gauge.high_water(3)
        histogram.observe(2.0)
        NULL_REGISTRY.counter("another.name").inc()
    delta = sys.getallocatedblocks() - before
    # Interpreter-internal noise of a few blocks is fine; what must
    # not happen is one-or-more allocations per iteration.
    assert delta < 50, f"null-registry updates allocated {delta} blocks"


def test_default_buckets_ascending():
    assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


def _live_registry(counter_value, gauge_value, observations):
    registry = MetricsRegistry()
    registry.counter("cells").inc(counter_value)
    registry.counter("wall.ticks", wall=True).inc(1)
    registry.gauge("depth").high_water(gauge_value)
    for value in observations:
        registry.histogram("us", bounds=(10.0, 100.0)).observe(value)
    return registry


def test_live_merge_matches_snapshot_algebra():
    merged = MetricsRegistry()
    merged.merge(_live_registry(2, 5, [1.0, 100.0]))
    merged.merge(_live_registry(3, 4, [50.0]))
    snapshot = merged.snapshot(include_wall=True)
    assert snapshot["counters"]["cells"] == 5
    assert snapshot["gauges"]["depth"] == 5
    assert snapshot["histograms"]["us"]["count"] == 3
    assert snapshot["histograms"]["us"]["total"] == 151.0


def test_live_merge_preserves_wall_flags():
    merged = MetricsRegistry()
    merged.merge(_live_registry(1, 1, []))
    assert "wall.ticks" not in merged.snapshot()["counters"]
    assert merged.snapshot(include_wall=True)["counters"]["wall.ticks"] \
        == 1


def test_live_merge_iterates_sorted_names():
    # Creation order in the source must not leak into the merged
    # registry's instrument order (P403: deterministic iteration).
    forward = MetricsRegistry()
    forward.counter("a").inc()
    forward.counter("b").inc(2)
    backward = MetricsRegistry()
    backward.counter("b").inc(2)
    backward.counter("a").inc()
    into_forward = MetricsRegistry()
    into_forward.merge(forward)
    into_backward = MetricsRegistry()
    into_backward.merge(backward)
    assert [row[0] for row in into_forward.rows()] \
        == [row[0] for row in into_backward.rows()]


def test_live_merge_rejects_mismatched_bounds():
    left = MetricsRegistry()
    left.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
    right = MetricsRegistry()
    right.histogram("h", bounds=(5.0, 6.0)).observe(5.5)
    with pytest.raises(ValueError):
        left.merge(right)


def test_null_registry_merge_is_a_no_op():
    NULL_REGISTRY.merge(_live_registry(9, 9, [9.0]))
    assert len(NULL_REGISTRY) == 0
