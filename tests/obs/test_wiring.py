"""End-to-end wiring: systems constructed under ``observed`` report.

These tests exercise the same path the CLI's ``--trace``/``--metrics``
flags use: flip the process-wide collectors on, build a system, run,
and read the telemetry back out.
"""

from repro import obs
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.units import DataSize, Frequency


def _small_bitstream():
    return generate_bitstream(size=DataSize.from_kb(6.5), seed=2012)


def test_unobserved_system_has_no_kernel_observer():
    assert obs.current_tracer() is None
    assert not obs.current_registry().enabled
    system = UPaRCSystem(decompressor=None)
    assert system.sim.observer is None
    assert not system.scope.recording


def test_observed_metrics_count_real_work():
    with obs.observed(metrics=True) as observation:
        system = UPaRCSystem(decompressor=None)
        result = system.run(_small_bitstream(),
                            frequency=Frequency.from_mhz(100))
    counters = observation.registry.snapshot()["counters"]
    assert counters["system.reconfigurations"] == 1
    assert counters["system.preloads"] == 1
    assert counters["icap.words_written"] == result.words_delivered
    assert counters["icap.frames_written"] == result.frames_written
    assert counters["kernel.events_dispatched"] > 0


def test_observed_metrics_are_deterministic():
    def run_once():
        with obs.observed(metrics=True) as observation:
            UPaRCSystem(decompressor=None).run(_small_bitstream())
        return observation.registry.snapshot()

    assert run_once() == run_once()


def test_observed_restores_previous_collectors():
    before = (obs.current_tracer(), obs.current_registry())
    with obs.observed(trace=True, metrics=True):
        assert obs.current_tracer() is not None
        assert obs.current_registry().enabled
    assert (obs.current_tracer(), obs.current_registry()) == before


def test_observation_survives_block_exit_for_export():
    with obs.observed(trace=True) as observation:
        UPaRCSystem(decompressor=None).run(_small_bitstream())
    # Collectors stay readable after the block restores the globals.
    assert len(observation.tracer.spans) > 0
    assert obs.current_tracer() is None


def test_tracing_does_not_change_results():
    plain = UPaRCSystem(decompressor=None).run(_small_bitstream())
    with obs.observed(trace=True, metrics=True):
        traced = UPaRCSystem(decompressor=None).run(_small_bitstream())
    assert traced.duration_ps == plain.duration_ps
    assert traced.payload_crc == plain.payload_crc
    assert traced.frames_written == plain.frames_written
