"""Regenerate the golden Chrome trace after an intentional sim change.

Usage (from the repository root)::

    PYTHONPATH=src python -m tests.obs.regen_golden
"""

import io

from repro import obs

from tests.obs.test_export import GOLDEN, traced_small_run


def main() -> None:
    buffer = io.StringIO()
    count = obs.write_chrome_trace(traced_small_run(), buffer)
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(buffer.getvalue())
    print(f"wrote {count} events -> {GOLDEN}")


if __name__ == "__main__":
    main()
