"""Trace exporters: golden Chrome trace, NDJSON, summaries.

The golden file pins the full exported byte stream of a small traced
UPaRC run.  Because every timestamp is simulated picoseconds, the
trace is a pure function of the workload — any drift means either the
simulation changed (update the baselines deliberately) or tracing
stopped being deterministic (a bug).

Regenerate after an intentional simulation change with::

    PYTHONPATH=src python tests/obs/regen_golden.py
"""

import io
import json
from pathlib import Path

import pytest

from repro import obs
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.units import DataSize

GOLDEN = Path(__file__).resolve().parent / "golden" / "small_run_trace.json"


def traced_small_run() -> obs.Tracer:
    """One compressed 6.5 KB reconfiguration with tracing on."""
    with obs.observed(trace=True) as observation:
        system = UPaRCSystem()
        bitstream = generate_bitstream(size=DataSize.from_kb(6.5),
                                       seed=2012)
        system.run(bitstream, mode=OperationMode.COMPRESSED)
    return observation.tracer


@pytest.fixture(scope="module")
def trace_text():
    buffer = io.StringIO()
    obs.write_chrome_trace(traced_small_run(), buffer)
    return buffer.getvalue()


def test_chrome_trace_matches_golden(trace_text):
    assert trace_text == GOLDEN.read_text()


def test_trace_is_deterministic(trace_text):
    again = io.StringIO()
    obs.write_chrome_trace(traced_small_run(), again)
    assert again.getvalue() == trace_text


def test_trace_covers_every_layer(trace_text):
    events = json.loads(trace_text)["traceEvents"]
    span_names = {e["name"] for e in events if e["ph"] == "X"}
    # kernel, controller state machine, power tracks, urec and the
    # decompressor all show up in one compressed run.
    assert {"kernel.run", "manager.control", "chain.active",
            "decompressor.active", "decompressor.stream", "urec.run",
            "urec.header"} <= span_names
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert "kernel.queue_depth" in counter_names
    labels = {e["args"]["name"] for e in events
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert any(label.startswith("uparc:") for label in labels)


def test_span_timestamps_are_microseconds(trace_text):
    events = json.loads(trace_text)["traceEvents"]
    # Preload and reconfigure each run the kernel once.
    runs = [e for e in events if e["name"] == "kernel.run"]
    assert len(runs) == 2
    # A 6.5 KB transfer takes tens of microseconds of simulated time.
    assert all(1.0 < run["dur"] < 1e5 for run in runs)


def test_write_and_load_round_trip(tmp_path, trace_text):
    tracer = traced_small_run()
    path = tmp_path / "trace.json"
    count = obs.write_chrome_trace(tracer, str(path))
    events = obs.load_chrome_trace(str(path))
    assert len(events) == count
    assert events == json.loads(trace_text)["traceEvents"]


def test_load_accepts_bare_event_array(tmp_path):
    path = tmp_path / "bare.json"
    payload = [{"ph": "X", "name": "a", "ts": 0.0, "dur": 1.0}]
    path.write_text(json.dumps(payload))
    assert obs.load_chrome_trace(str(path)) == payload


def test_ndjson_one_record_per_line(tmp_path):
    tracer = traced_small_run()
    path = tmp_path / "trace.ndjson"
    count = obs.write_ndjson(tracer, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == count == len(tracer)
    records = [json.loads(line) for line in lines]
    assert {record["kind"] for record in records} == {"span", "counter"}
    spans = [r for r in records if r["kind"] == "span"]
    assert all(r["end_ps"] >= r["start_ps"] for r in spans)


def test_summary_rolls_up_spans_and_counters(trace_text):
    events = json.loads(trace_text)["traceEvents"]
    summary = obs.summarize_events(events)
    assert "kernel.run" in summary
    assert "manager.control" in summary
    assert "kernel.queue_depth" in summary
    assert "mean_ns" in summary


def test_summary_of_empty_trace():
    assert obs.summarize_events([]) == "(empty trace)"
