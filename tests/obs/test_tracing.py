"""TraceScope, PhaseTrack and subscriber semantics (sim-time only)."""

import gc
import sys

from repro.obs.tracing import (
    KernelObserver,
    SpanSubscriber,
    Tracer,
    TraceScope,
)


class FakeSim:
    """Minimal stand-in: tracing only ever reads ``sim.now``."""

    def __init__(self):
        self.now = 0


class Recorder(SpanSubscriber):
    def __init__(self):
        self.calls = []

    def on_span_begin(self, name, cat, time_ps: int, args):
        self.calls.append(("begin", name, time_ps))

    def on_span_end(self, name, cat, time_ps: int, args):
        self.calls.append(("end", name, time_ps))

    def on_phase(self, track, phase, time_ps: int, args):
        self.calls.append(("phase", track, phase, time_ps, args))


def test_inert_scope_returns_shared_null_span():
    scope = TraceScope(FakeSim())
    assert not scope.recording
    assert not scope.active
    assert scope.span("a") is scope.span("b")


def test_inert_span_allocates_nothing():
    scope = TraceScope(FakeSim())
    for _ in range(100):  # warm up
        with scope.span("x", cat="sim"):
            pass
    gc.collect()
    before = sys.getallocatedblocks()
    for _ in range(1000):
        with scope.span("x", cat="sim"):
            pass
        scope.instant("marker")
        scope.counter_sample("depth", 1.0)
    delta = sys.getallocatedblocks() - before
    # Interpreter-internal noise of a few blocks is fine; what must
    # not happen is one-or-more allocations per iteration.
    assert delta < 50, f"inert tracing allocated {delta} blocks"


def test_span_records_sim_time_interval():
    sim, tracer = FakeSim(), Tracer()
    scope = TraceScope(sim, tracer=tracer, label="unit")
    sim.now = 100
    with scope.span("urec.header", cat="urec", words=3):
        sim.now = 250
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert (span.name, span.cat) == ("urec.header", "urec")
    assert (span.start_ps, span.end_ps, span.duration_ps) \
        == (100, 250, 150)
    assert span.args == {"words": 3}
    assert tracer.process_labels == ["unit"]


def test_each_registered_scope_gets_its_own_pid():
    tracer = Tracer()
    first = TraceScope(FakeSim(), tracer=tracer, label="sim-a")
    second = TraceScope(FakeSim(), tracer=tracer, label="sim-b")
    assert (first.pid, second.pid) == (0, 1)
    assert tracer.process_labels == ["sim-a", "sim-b"]


def test_phase_track_one_callback_per_transition():
    # The load-bearing contract: enter() closes the previous phase and
    # opens the next with exactly ONE on_phase call, which is how
    # PowerTraceBuilder maps transitions onto its historical sampling
    # points without double-sampling.
    sim = FakeSim()
    scope = TraceScope(sim)
    recorder = Recorder()
    scope.subscribe(recorder)
    track = scope.track("manager", cat="controller")

    sim.now = 10
    track.enter("control")
    sim.now = 30
    track.enter("wait")
    sim.now = 50
    track.exit()

    assert recorder.calls == [
        ("phase", "manager", "control", 10, None),
        ("phase", "manager", "wait", 30, None),
        ("phase", "manager", None, 50, None),
    ]


def test_phase_track_spans_closed_back_to_back():
    sim, tracer = FakeSim(), Tracer()
    scope = TraceScope(sim, tracer=tracer)
    track = scope.track("manager", cat="controller")
    sim.now = 10
    track.enter("control")
    sim.now = 30
    track.enter("wait", budget_mw=50)
    sim.now = 70
    track.exit()
    names = [(s.name, s.start_ps, s.end_ps) for s in tracer.spans]
    assert names == [("manager.control", 10, 30),
                     ("manager.wait", 30, 70)]
    assert tracer.spans[1].args == {"budget_mw": 50}
    assert all(s.track == "manager" for s in tracer.spans)


def test_phase_track_exit_without_open_phase_is_noop_span():
    sim, tracer = FakeSim(), Tracer()
    scope = TraceScope(sim, tracer=tracer)
    scope.track("chain").exit()
    assert tracer.spans == []


def test_tracks_memoised_by_name():
    scope = TraceScope(FakeSim())
    assert scope.track("chain") is scope.track("chain")


def test_unsubscribe_stops_callbacks():
    sim = FakeSim()
    scope = TraceScope(sim)
    recorder = Recorder()
    scope.subscribe(recorder)
    with scope.span("a"):
        pass
    scope.unsubscribe(recorder)
    with scope.span("b"):
        pass
    assert [c[1] for c in recorder.calls] == ["a", "a"]


def test_subscribers_work_without_tracer():
    # Power sampling on untraced runs: subscribers fire, nothing is
    # collected for export.
    sim = FakeSim()
    scope = TraceScope(sim)
    recorder = Recorder()
    scope.subscribe(recorder)
    assert scope.active and not scope.recording
    sim.now = 5
    scope.track("chain").enter("active", clk2_mhz=100.0)
    scope.track("chain").exit()
    assert recorder.calls == [
        ("phase", "chain", "active", 5, {"clk2_mhz": 100.0}),
        ("phase", "chain", None, 5, None),
    ]


def test_counter_samples_collected():
    sim, tracer = FakeSim(), Tracer()
    scope = TraceScope(sim, tracer=tracer)
    sim.now = 40
    scope.counter_sample("kernel.queue_depth", 12)
    scope.counter_sample("kernel.queue_depth", 3, time_ps=99)
    assert [(c.time_ps, c.value) for c in tracer.counters] \
        == [(40, 12), (99, 3)]


def test_kernel_observer_counts_and_samples():
    from repro.obs.metrics import MetricsRegistry

    sim, tracer = FakeSim(), Tracer()
    scope = TraceScope(sim, tracer=tracer)
    registry = MetricsRegistry()
    observer = KernelObserver(scope, registry, queue_sample_interval=2)

    observer.run_started(0, 5)
    for tick in range(4):
        sim.now = (tick + 1) * 10
        observer.event_fired(sim.now, depth=4 - tick)
    observer.run_finished(sim.now, 0)

    snapshot = registry.snapshot()
    assert snapshot["counters"]["kernel.events_dispatched"] == 4
    assert snapshot["counters"]["kernel.runs"] == 1
    # Samples at run start, every 2nd event, and run end.
    assert [c.value for c in tracer.counters] == [5, 3, 1, 0]
    assert [s.name for s in tracer.spans] == ["kernel.run"]


def test_kernel_observer_nested_runs_open_one_span():
    sim, tracer = FakeSim(), Tracer()
    scope = TraceScope(sim, tracer=tracer)
    observer = KernelObserver(scope)
    observer.run_started(0, 1)
    observer.run_started(0, 1)   # nested helper re-entry
    observer.run_finished(5, 0)
    sim.now = 9
    observer.run_finished(9, 0)
    assert [(s.name, s.start_ps, s.end_ps) for s in tracer.spans] \
        == [("kernel.run", 0, 9)]
