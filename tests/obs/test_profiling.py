"""Wall-clock profiling: the one sanctioned host-time module."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import Timer, WallProfiler, now_s


def test_now_s_monotonic():
    first = now_s()
    second = now_s()
    assert second >= first


def test_timer_measures_elapsed():
    with Timer() as timer:
        pass
    assert timer.elapsed_s >= 0.0


def test_timer_feeds_registry_as_wall_metric():
    registry = MetricsRegistry()
    with Timer("cell", registry=registry):
        pass
    histogram = registry.histogram("wall.cell_ms")
    assert histogram.count == 1
    assert histogram.wall
    # Host timings never appear in a deterministic snapshot.
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}
    assert "wall.cell_ms" in registry.snapshot(
        include_wall=True)["histograms"]


def test_timer_without_label_records_nothing():
    registry = MetricsRegistry()
    with Timer(registry=registry):
        pass
    assert len(registry) == 0


def test_wall_profiler_sections_accumulate():
    registry = MetricsRegistry()
    profiler = WallProfiler(registry)
    with profiler.section("merge"):
        pass
    profiler.record_s("merge", 0.25)
    histogram = registry.histogram("wall.merge_ms")
    assert histogram.count == 2
    assert histogram.wall
