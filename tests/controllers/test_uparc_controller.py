"""UPaRC controller adapter (Table III rows UPaRC_i / UPaRC_ii)."""

import pytest

from repro.controllers import UparcController
from repro.controllers.base import LargeBitstreamGrade
from repro.errors import ControllerError
from repro.units import Frequency


def mhz(value):
    return Frequency.from_mhz(value)


def test_mode_i_table3_bandwidth(paper_bitstream):
    result = UparcController("i").best_result(paper_bitstream)
    assert result.bandwidth_decimal_mbps == pytest.approx(1433, rel=0.01)
    assert result.verified
    assert result.controller == "UPaRC_i"


def test_mode_ii_table3_bandwidth(paper_bitstream):
    result = UparcController("ii").best_result(paper_bitstream)
    assert result.bandwidth_decimal_mbps == pytest.approx(1008, rel=0.02)
    assert result.controller == "UPaRC_ii"
    assert result.mode == "compressed"


def test_mode_i_is_1_8x_faster_than_farm(paper_bitstream):
    from repro.controllers import Farm
    uparc = UparcController("i").best_result(paper_bitstream)
    farm = Farm().best_result(paper_bitstream)
    ratio = uparc.bandwidth_decimal_mbps / farm.bandwidth_decimal_mbps
    assert ratio == pytest.approx(1.8, rel=0.03)


def test_grades_match_table3():
    assert UparcController("i").large_bitstream \
        is LargeBitstreamGrade.LIMITED
    assert UparcController("ii").large_bitstream \
        is LargeBitstreamGrade.COMPRESSED


def test_max_frequencies():
    assert UparcController("i").max_frequency == mhz(362.5)
    assert UparcController("ii").max_frequency == mhz(255)


def test_invalid_mode_rejected():
    with pytest.raises(ControllerError):
        UparcController("iii")


def test_over_frequency_rejected(small_bitstream):
    with pytest.raises(ControllerError):
        UparcController("i").reconfigure(small_bitstream, mhz(400))


def test_v6_device_caps_mode_i_frequency():
    from repro.bitstream.device import VIRTEX6_LX240T
    controller = UparcController("i", device=VIRTEX6_LX240T)
    # The paper: 362.5 MHz "is not reliable" on Virtex-6.
    assert controller.max_frequency < mhz(362.5)


def test_custom_frequency_run(small_bitstream):
    result = UparcController("i").reconfigure(small_bitstream, mhz(100))
    assert result.frequency == mhz(100)
    assert result.verified
