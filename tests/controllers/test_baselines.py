"""Baseline controllers: bandwidths, capacity limits, integrity."""

import pytest

from repro.controllers import (
    BramHwicap,
    Farm,
    FlashCap,
    MstIcap,
    XpsHwicap,
)
from repro.errors import CapacityError, ControllerError
from repro.units import DataSize, Frequency


def mhz(value):
    return Frequency.from_mhz(value)


class TestXpsHwicap:
    def test_cached_profile_near_table3(self, paper_bitstream):
        result = XpsHwicap(profile="cached").best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps == pytest.approx(14.5,
                                                              rel=0.08)
        assert result.verified

    def test_unoptimized_profile_1_5_mbps(self, paper_bitstream):
        result = XpsHwicap(profile="unoptimized").reconfigure(
            paper_bitstream, mhz(100))
        assert result.bandwidth_decimal_mbps == pytest.approx(1.5,
                                                              rel=0.08)

    def test_compactflash_profile_180_kbps(self, small_bitstream):
        result = XpsHwicap(profile="compactflash").reconfigure(
            small_bitstream, mhz(100))
        kbps = result.bandwidth_decimal_mbps * 1000
        assert kbps == pytest.approx(180, rel=0.15)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ControllerError):
            XpsHwicap(profile="warp-speed")

    def test_frequency_cap(self, small_bitstream):
        with pytest.raises(ControllerError):
            XpsHwicap().reconfigure(small_bitstream, mhz(150))

    def test_energy_efficiency_30uj_per_kb(self, paper_bitstream):
        result = XpsHwicap(profile="unoptimized").reconfigure(
            paper_bitstream, mhz(100))
        assert result.energy.uj_per_kb == pytest.approx(30.0, rel=0.08)


class TestBramHwicap:
    def test_table3_bandwidth(self, paper_bitstream):
        result = BramHwicap().best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps == pytest.approx(371, rel=0.02)
        assert result.verified

    def test_capacity_limited(self):
        from repro.bitstream.generator import generate_bitstream
        oversized = generate_bitstream(size=DataSize.from_kb(300))
        with pytest.raises(CapacityError):
            BramHwicap().best_result(oversized)

    def test_dma_frequency_cap(self, small_bitstream):
        from repro.errors import FrequencyError
        with pytest.raises(FrequencyError):
            BramHwicap().reconfigure(small_bitstream, mhz(150))


class TestMstIcap:
    def test_table3_bandwidth(self, paper_bitstream):
        result = MstIcap().best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps == pytest.approx(235, rel=0.02)

    def test_handles_large_bitstreams(self):
        from repro.bitstream.generator import generate_bitstream
        large = generate_bitstream(size=DataSize.from_kb(1200))
        result = MstIcap().best_result(large)
        assert result.verified

    def test_slower_than_bram_hwicap(self, paper_bitstream):
        mst = MstIcap().best_result(paper_bitstream)
        bram = BramHwicap().best_result(paper_bitstream)
        assert mst.bandwidth_decimal_mbps < bram.bandwidth_decimal_mbps


class TestFarm:
    def test_table3_bandwidth(self, paper_bitstream):
        result = Farm().best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps == pytest.approx(800, rel=0.02)
        assert result.verified

    def test_compressed_mode_stores_less(self, paper_bitstream):
        result = Farm(mode="compressed").best_result(paper_bitstream)
        assert result.stored_size.bytes < paper_bitstream.size.bytes

    def test_direct_mode_capacity_limited(self):
        from repro.bitstream.generator import generate_bitstream
        oversized = generate_bitstream(size=DataSize.from_kb(300))
        with pytest.raises(CapacityError):
            Farm(mode="direct").best_result(oversized)

    def test_compression_extends_capacity(self, paper_bitstream):
        farm = Farm(mode="compressed")
        effective = farm.effective_capacity(paper_bitstream)
        assert effective.bytes > farm.bram_capacity.bytes * 1.5

    def test_invalid_mode_rejected(self):
        with pytest.raises(ControllerError):
            Farm(mode="turbo")


class TestFlashCap:
    def test_table3_bandwidth(self, paper_bitstream):
        result = FlashCap().best_result(paper_bitstream)
        assert result.bandwidth_decimal_mbps == pytest.approx(358, rel=0.02)
        assert result.verified

    def test_stores_compressed(self, paper_bitstream):
        result = FlashCap().best_result(paper_bitstream)
        assert result.stored_size.bytes < paper_bitstream.size.bytes // 2

    def test_frequency_cap(self, small_bitstream):
        with pytest.raises(ControllerError):
            FlashCap().reconfigure(small_bitstream, mhz(130))


def test_all_baselines_deliver_identical_payload(small_bitstream):
    controllers = [XpsHwicap(), BramHwicap(), MstIcap(), Farm(), FlashCap()]
    results = [c.best_result(small_bitstream) for c in controllers]
    crcs = {r.payload_crc for r in results}
    assert len(crcs) == 1
    assert all(r.verified for r in results)
