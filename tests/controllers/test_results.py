"""ReconfigurationResult accounting."""

import pytest

from repro.errors import ReconfigurationFailed
from repro.results import (
    LargeBitstreamGrade,
    ReconfigurationResult,
    stream_crc,
)
from repro.units import DataSize, Frequency


def make_result(**overrides):
    fields = dict(
        controller="test",
        bitstream_size=DataSize.from_kb(100),
        stored_size=DataSize.from_kb(100),
        mode="raw",
        frequency=Frequency.from_mhz(100),
        start_ps=1_000_000,
        finish_ps=257_000_000,
        control_overhead_ps=1_200_000,
        words_delivered=25_600,
        payload_crc=0xABCD,
        expected_crc=0xABCD,
    )
    fields.update(overrides)
    return ReconfigurationResult(**fields)


def test_duration_includes_control_overhead():
    result = make_result()
    assert result.duration_ps == 256_000_000 + 1_200_000
    assert result.transfer_ps == 256_000_000


def test_bandwidth_decimal_vs_binary():
    result = make_result()
    assert result.bandwidth_decimal_mbps > result.bandwidth_mbps
    ratio = result.bandwidth_decimal_mbps / result.bandwidth_mbps
    assert ratio == pytest.approx(1.048576)


def test_verified_requires_matching_crc_and_data():
    assert make_result().verified
    assert not make_result(payload_crc=0x1234).verified
    assert not make_result(words_delivered=0).verified


def test_require_verified_raises_on_mismatch():
    with pytest.raises(ReconfigurationFailed):
        make_result(payload_crc=0x9999).require_verified()


def test_require_verified_passes_through():
    result = make_result()
    assert result.require_verified() is result


def test_stream_crc_deterministic():
    assert stream_crc(b"abc") == stream_crc(b"abc")
    assert stream_crc(b"abc") != stream_crc(b"abd")


def test_grade_strings():
    assert str(LargeBitstreamGrade.UNLIMITED) == "+++"
    assert str(LargeBitstreamGrade.COMPRESSED) == "++"
    assert str(LargeBitstreamGrade.LIMITED) == "-"
