"""Shared fixtures.

Bitstream generation dominates test setup cost, so the common sizes
are generated once per session and shared read-only.
"""

from __future__ import annotations

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.sim import Simulator
from repro.units import DataSize


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def small_bitstream():
    """~8 KB partial bitstream (fast everywhere)."""
    return generate_bitstream(size=DataSize.from_kb(8))


@pytest.fixture(scope="session")
def medium_bitstream():
    """~64 KB partial bitstream (compression-grade content)."""
    return generate_bitstream(size=DataSize.from_kb(64))


@pytest.fixture(scope="session")
def paper_bitstream():
    """The 216.5 KB bitstream of the power/energy experiments."""
    return generate_bitstream(size=DataSize.from_kb(216.5))
