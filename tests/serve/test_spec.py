"""Serve specs: validation, canonical keys, stream digests."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    DEFAULT_CATALOG,
    DEFAULT_TENANTS,
    RequestSpec,
    ServeSpec,
    TenantSpec,
    request_stream_digest,
)


def request(request_id=0, tenant="iot", module="aes_core",
            arrival_ps: int = 100, deadline_ps: int = 10_000,
            priority=2):
    return RequestSpec(request_id=request_id, tenant=tenant,
                       module=module, arrival_ps=arrival_ps,
                       deadline_ps=deadline_ps, priority=priority)


class TestTenantSpec:
    def test_valid_defaults(self):
        tenant = TenantSpec("t", weight=1.0, modules=("aes_core",))
        assert tenant.priority == 2

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(weight=0.0),
        dict(modules=()),
        dict(priority=-1),
        dict(deadline_us=0.0),
    ])
    def test_rejects_bad_fields(self, kwargs):
        base = dict(name="t", weight=1.0, modules=("aes_core",))
        base.update(kwargs)
        with pytest.raises(ServeError):
            TenantSpec(**base)


class TestRequestSpec:
    def test_deadline_after_arrival(self):
        with pytest.raises(ServeError):
            request(arrival_ps=100, deadline_ps=100)

    def test_sort_key_orders_urgency_first(self):
        urgent = request(request_id=9, priority=0, deadline_ps=50_000)
        relaxed = request(request_id=1, priority=2, deadline_ps=5_000)
        assert urgent.sort_key < relaxed.sort_key

    def test_canonical_round_trips_fields(self):
        line = request(request_id=7).canonical()
        assert line == "7|iot|aes_core|100|10000|2"


class TestStreamDigest:
    def test_order_insensitive(self):
        stream = [request(request_id=i, arrival_ps=100 + i)
                  for i in range(5)]
        assert request_stream_digest(stream) \
            == request_stream_digest(list(reversed(stream)))

    def test_sensitive_to_content(self):
        one = [request(request_id=0)]
        two = [request(request_id=0, module="fir_filter")]
        assert request_stream_digest(one) != request_stream_digest(two)


class TestServeSpec:
    def test_defaults_validate(self):
        spec = ServeSpec()
        assert spec.boards == 4
        assert spec.modules == DEFAULT_CATALOG
        assert spec.tenants == DEFAULT_TENANTS

    @pytest.mark.parametrize("kwargs", [
        dict(boards=0),
        dict(controller="nope"),
        dict(frequency_mhz=0.0),
        dict(arrival="fractal"),
        dict(rate_rps=-1.0),
        dict(load=0.0),
        dict(requests=0),
        dict(queue_limit=0),
        dict(tenant_limit=0),
        dict(batch_limit=0),
        dict(warm_ps=0),
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ServeError):
            ServeSpec(**kwargs)

    def test_rejects_tenant_module_not_in_catalog(self):
        tenants = (TenantSpec("t", 1.0, modules=("missing",)),)
        with pytest.raises(ServeError, match="not in"):
            ServeSpec(tenants=tenants)

    def test_module_names_sorted(self):
        assert ServeSpec().module_names == tuple(
            sorted(m.name for m in DEFAULT_CATALOG))

    def test_key_renders_load_or_rate(self):
        assert "load0.8" in ServeSpec().key
        assert "rate5000" in ServeSpec(rate_rps=5000.0).key

    def test_key_flags(self):
        spec = ServeSpec(shed_infeasible=True, preempt=True)
        assert spec.key.endswith("+shed+preempt")

    def test_equal_specs_equal_keys(self):
        assert ServeSpec().key == ServeSpec().key

    def test_with_load(self):
        spec = ServeSpec(rate_rps=1000.0).with_load(1.5)
        assert spec.load == 1.5
        assert spec.rate_rps == 0.0
