"""The ``repro serve`` command line: run, bench, files, sanitize."""

import json

import pytest

from repro import accel
from repro.cli import main

SMALL = ["--requests", "150", "--seed", "5"]


def test_run_prints_slo_and_tenant_tables(capsys):
    assert main(["serve", "run", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "serve --" in out
    assert "throughput" in out
    assert "per-tenant" in out
    for tenant in ("radar", "video", "iot", "batch"):
        assert tenant in out


def test_run_writes_json_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert main(["serve", "run", *SMALL, "--json", str(path)]) == 0
    report = json.loads(path.read_text())
    assert report["requests"] == 150
    assert report["completed"] + report["shed"] == 150
    assert str(path) in capsys.readouterr().out


def test_run_json_is_replayable(tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert main(["serve", "run", *SMALL, "--json", str(first)]) == 0
    assert main(["serve", "run", *SMALL, "--json", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_run_metrics_table(capsys):
    assert main(["serve", "run", *SMALL, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "serve.requests.completed" in out
    assert "serve.dispatch.cold" in out


def test_run_sanitize_clean(capsys):
    assert main(["serve", "run", "--requests", "120", "--sanitize"]) \
        == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert f"accel.backend={accel.backend_name()}" in out


def test_run_reports_backend_but_json_stays_backend_free(tmp_path,
                                                         capsys):
    # The printed report attributes the run to the active backend;
    # the JSON report (and therefore its digest) must not, so reports
    # stay byte-identical across backends.
    path = tmp_path / "report.json"
    assert main(["serve", "run", *SMALL, "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "accel.backend" in out
    assert accel.backend_name() in out
    assert "backend" not in path.read_text()


def test_bench_curve_and_output(tmp_path, capsys):
    path = tmp_path / "bench.json"
    assert main(["serve", "bench", *SMALL, "--loads", "2,0.5",
                 "--output", str(path)]) == 0
    out = capsys.readouterr().out
    assert "serve bench --" in out
    assert "300 requests across 2 load levels" in out
    document = json.loads(path.read_text())
    assert document["kind"] == "serve-bench"
    assert document["accel.backend"] == accel.backend_name()
    assert document["loads"] == [0.5, 2.0]
    assert len(document["levels"]) == 2
    assert "_wall_s" not in document
    # Attribution lives at document level only; the per-level reports
    # (whose digests are pinned cross-backend) stay backend-free.
    for cell in document["levels"]:
        assert "backend" not in json.dumps(cell["report"])


def test_bench_merged_metrics(capsys):
    assert main(["serve", "bench", *SMALL, "--loads", "0.5",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "merged serve metrics" in out
    assert "serve.requests.offered" in out


def test_bench_rejects_bad_loads():
    with pytest.raises(SystemExit):
        main(["serve", "bench", "--loads", "fast"])


def test_serve_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        main(["serve"])
