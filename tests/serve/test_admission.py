"""Admission control: bounds, worst-first shedding, backpressure."""

import pytest

from repro.errors import ServeError
from repro.serve import ServeSpec
from repro.serve.admission import (
    AdmissionController,
    SHED_INFEASIBLE,
    SHED_QUEUE_FULL,
)
from repro.serve.spec import RequestSpec, TenantSpec

COLD_PS = 10_000_000  # 10 us nominal cold service

TENANTS = (
    TenantSpec("a", 1.0, modules=("aes_core",), priority=1,
               deadline_us=100.0),
    TenantSpec("b", 1.0, modules=("aes_core",), priority=3,
               deadline_us=100.0),
)


def controller(**kwargs):
    defaults = dict(tenants=TENANTS, queue_limit=8, tenant_limit=4)
    defaults.update(kwargs)
    return AdmissionController(ServeSpec(**defaults))


def request(request_id, tenant="a", priority=None, arrival_ps: int = 0,
            deadline_ps: int = 1_000_000_000):
    priorities = {"a": 1, "b": 3}
    return RequestSpec(
        request_id=request_id, tenant=tenant, module="aes_core",
        arrival_ps=arrival_ps, deadline_ps=deadline_ps,
        priority=priorities[tenant] if priority is None else priority)


def test_admits_and_tracks_depth():
    admission = controller()
    assert admission.offer(request(0), 0, COLD_PS) == []
    assert admission.depth == 1
    assert admission.tenant_depth("a") == 1
    assert admission.head("a").request_id == 0


def test_unknown_tenant_rejected():
    admission = controller()
    bad = RequestSpec(request_id=0, tenant="ghost",
                      module="aes_core", arrival_ps=0,
                      deadline_ps=100, priority=1)
    with pytest.raises(ServeError):
        admission.offer(bad, 0, COLD_PS)


def test_tenant_bound_sheds_worst_of_that_tenant():
    admission = controller()
    # Fill tenant a with deadlines 40..10: later offers are *more*
    # urgent, so each insertion evicts the least urgent survivor.
    for index, deadline in enumerate((40, 30, 20, 10)):
        shed = admission.offer(
            request(index, deadline_ps=deadline * 1_000_000), 0,
            COLD_PS)
        assert shed == []
    shed = admission.offer(
        request(9, deadline_ps=5_000_000), 0, COLD_PS)
    assert [(victim.request_id, reason) for victim, reason in shed] \
        == [(0, SHED_QUEUE_FULL)]  # deadline 40us was the worst
    assert admission.tenant_depth("a") == 4


def test_global_bound_sheds_lowest_urgency_tenant():
    admission = controller(queue_limit=4, tenant_limit=4)
    admission.offer(request(0, "a"), 0, COLD_PS)
    admission.offer(request(1, "a"), 0, COLD_PS)
    admission.offer(request(2, "b"), 0, COLD_PS)
    admission.offer(request(3, "b"), 0, COLD_PS)
    # The global victim is tenant b's tail (priority 3 > priority 1).
    shed = admission.offer(request(4, "a"), 0, COLD_PS)
    assert [(victim.request_id, reason) for victim, reason in shed] \
        == [(3, SHED_QUEUE_FULL)]
    assert admission.depth == 4


def test_infeasible_shed_when_enabled():
    admission = controller(shed_infeasible=True)
    hopeless = request(0, deadline_ps=COLD_PS // 2)
    shed = admission.offer(hopeless, 0, COLD_PS)
    assert [(victim.request_id, reason) for victim, reason in shed] \
        == [(0, SHED_INFEASIBLE)]
    assert admission.depth == 0


def test_infeasible_ignored_when_disabled():
    admission = controller()
    hopeless = request(0, deadline_ps=COLD_PS // 2)
    assert admission.offer(hopeless, 0, COLD_PS) == []
    assert admission.depth == 1


def test_take_removes_specific_request():
    admission = controller()
    admission.offer(request(0), 0, COLD_PS)
    admission.offer(request(1), 0, COLD_PS)
    admission.take(request(0))
    assert admission.depth == 1
    assert admission.head("a").request_id == 1
    with pytest.raises(ServeError):
        admission.take(request(0))


def test_match_merges_tenants_by_urgency():
    admission = controller()
    admission.offer(request(0, "b"), 0, COLD_PS)
    admission.offer(request(1, "a"), 0, COLD_PS)
    admission.offer(request(2, "a"), 0, COLD_PS)
    riders = admission.match("aes_core", limit=2, exclude_id=1)
    # Priority 1 (tenant a) outranks priority 3 (tenant b).
    assert [r.request_id for r in riders] == [2, 0]


def test_backpressure_high_water():
    admission = controller(queue_limit=10, tenant_limit=10)
    for index in range(7):
        admission.offer(request(index), 0, COLD_PS)
    assert not admission.backpressure
    admission.offer(request(7), 0, COLD_PS)
    assert admission.backpressure  # 8/10 >= 80%


def test_queued_returns_dispatch_order():
    admission = controller()
    admission.offer(request(0, deadline_ps=90_000_000), 0, COLD_PS)
    admission.offer(request(1, deadline_ps=10_000_000), 0, COLD_PS)
    assert [r.request_id for r in admission.queued("a")] == [1, 0]
