"""Deterministic replay: byte-identical reports, pinned digests.

The serve acceptance contract: one ``ServeSpec`` (stream seed
included) names exactly one SLO report, byte for byte — across fresh
processes, across accel backends, under S903 same-instant
perturbation, and for any bench worker count.
"""

import pytest

from repro import accel
from repro.sanitize import DeterminismSanitizer
from repro.serve import (
    FleetService,
    ServeSpec,
    bench_serve,
    build_report,
    generate_requests,
    render_bench,
    request_stream_digest,
)
from repro.serve.fleet import ServiceTimeTable

BACKENDS = (["pure"]
            + (["numpy"] if accel.numpy_available() else [])
            + (["native"] if accel.native_available() else []))

#: A saturating scenario (load 6 with tight queues sheds ~20% of the
#: stream) pinned by its report digest.  A change here means serve
#: semantics moved: scheduler policy, service-time model, workload
#: generation or report rendering.  Update deliberately.
PINNED_SPEC = ServeSpec(requests=600, load=6.0, seed=4242,
                        queue_limit=32, tenant_limit=16,
                        batch_limit=4, shed_infeasible=True,
                        preempt=True)
PINNED_DIGEST = \
    "49660b6561387b5a05f3e48d4995bc952c1b0c9cc7a4a31f8d0401deabc71a4b"


def run_report(spec):
    table = ServiceTimeTable(spec)
    requests = generate_requests(spec, table.resolved_rate_rps())
    outcome = FleetService(spec, table=table).run(requests)
    return build_report(outcome)


@pytest.mark.parametrize("backend", BACKENDS)
def test_pinned_digest(backend):
    with accel.using(backend):
        report = run_report(PINNED_SPEC)
    assert report.shed > 0  # the scenario really saturates
    assert report.digest == PINNED_DIGEST


def test_report_bytes_identical_across_backends():
    spec = ServeSpec(requests=400, seed=77)
    renderings = set()
    for backend in BACKENDS:
        with accel.using(backend):
            renderings.add(run_report(spec).to_json())
    assert len(renderings) == 1


def test_report_embeds_stream_digest():
    spec = ServeSpec(requests=200)
    table = ServiceTimeTable(spec)
    requests = generate_requests(spec, table.resolved_rate_rps())
    report = build_report(FleetService(spec, table=table).run(requests))
    assert report.stream_digest == request_stream_digest(requests)


def test_s903_perturbation_invariant():
    spec = ServeSpec(requests=300, load=1.5, batch_limit=4,
                     shed_infeasible=True, queue_limit=64,
                     tenant_limit=32)
    table = ServiceTimeTable(spec)
    requests = generate_requests(spec, table.resolved_rate_rps())

    def scenario():
        report = build_report(
            FleetService(spec, table=table).run(list(requests)))
        return report.digest

    sanitizer = DeterminismSanitizer(seeds=(1, 2, 3))
    findings = sanitizer.check(scenario, name="serve-replay")
    assert findings == [], "\n".join(f.describe() for f in findings)
    assert len({run.stream_digest for run in sanitizer.runs}) == 1
    assert len({run.output_digest for run in sanitizer.runs}) == 1
    assert all(run.tasks_run > 0 for run in sanitizer.runs)


def test_bench_document_identical_for_any_worker_count():
    spec = ServeSpec(requests=300, seed=9)
    serial = bench_serve(spec, loads=(0.5, 2.0), jobs=1)
    parallel = bench_serve(spec, loads=(0.5, 2.0), jobs=2)
    assert render_bench(serial) == render_bench(parallel)
