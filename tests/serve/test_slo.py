"""SLO reports: nearest-rank percentiles, accounting, digests."""

import json

import pytest

from repro.serve import ServeSpec, build_report
from repro.serve.admission import SHED_QUEUE_FULL
from repro.serve.service import (
    CompletionRecord,
    ServeOutcome,
    ShedRecord,
)
from repro.serve.slo import percentile
from repro.serve.spec import RequestSpec, TenantSpec


class TestPercentile:
    def test_nearest_rank_on_round_list(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_nearest_rank_rounds_up(self):
        assert percentile([10, 20, 30, 40], 50) == 20
        assert percentile([10, 20, 30, 40], 51) == 30
        assert percentile([10, 20, 30, 40], 25) == 10

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_empty_is_zero(self):
        assert percentile([], 95) == 0

    @pytest.mark.parametrize("percent", [0, -5, 101])
    def test_out_of_range_percent(self, percent):
        with pytest.raises(ValueError):
            percentile([1], percent)


def crafted_outcome():
    spec = ServeSpec(tenants=(
        TenantSpec("a", 1.0, modules=("aes_core",)),
        TenantSpec("b", 1.0, modules=("aes_core",)),
    ))

    def request(request_id, tenant, arrival_us, deadline_us):
        return RequestSpec(
            request_id=request_id, tenant=tenant, module="aes_core",
            arrival_ps=arrival_us * 1_000_000,
            deadline_ps=deadline_us * 1_000_000,
            priority=2)

    requests = (
        request(0, "a", 1, 50),
        request(1, "a", 2, 21),
        request(2, "b", 3, 100),
        request(3, "b", 4, 100),
    )
    completions = (
        # Requests 0 and 2 share one batch slot on board 0.
        CompletionRecord(requests[0], finish_ps=11_000_000,
                         board_id=0, warm=False, batch_size=2),
        CompletionRecord(requests[2], finish_ps=11_000_000,
                         board_id=0, warm=False, batch_size=2),
        # Request 1 finishes at 32 us against a 21 us deadline.
        CompletionRecord(requests[1], finish_ps=32_000_000,
                         board_id=0, warm=True, batch_size=1),
    )
    sheds = (ShedRecord(requests[3], SHED_QUEUE_FULL,
                        time_ps=5_000_000),)
    return ServeOutcome(spec=spec, requests=requests,
                        completions=completions, sheds=sheds,
                        end_ps=40_000_000, preemptions=2,
                        stale_completions=1)


class TestBuildReport:
    def test_counts(self):
        report = build_report(crafted_outcome())
        assert report.requests == 4
        assert report.completed == 3
        assert report.shed == 1
        assert report.shed_by_reason == {SHED_QUEUE_FULL: 1}
        assert report.deadline_missed == 1
        assert report.warm_completions == 1
        assert report.preemptions == 2
        assert report.stale_completions == 1

    def test_batches_count_distinct_slots(self):
        assert build_report(crafted_outcome()).batches == 2

    def test_rates(self):
        report = build_report(crafted_outcome())
        assert report.makespan_s == pytest.approx(3.2e-5)
        assert report.throughput_rps == pytest.approx(3 / 3.2e-5)
        assert report.goodput_rps == pytest.approx(2 / 3.2e-5)
        assert report.deadline_miss_pct == pytest.approx(100 / 3)
        assert report.shed_pct == pytest.approx(25.0)

    def test_latency_block(self):
        latency = build_report(crafted_outcome()).latency_us
        # Latencies are 8, 10 and 30 us.
        assert latency == {"p50": 10.0, "p95": 30.0, "p99": 30.0,
                           "mean": 16.0, "max": 30.0}

    def test_tenant_breakdown(self):
        tenants = build_report(crafted_outcome()).tenants
        assert tenants["a"] == {"completed": 2, "shed": 0,
                                "deadline_missed": 1, "p95_us": 30.0}
        assert tenants["b"] == {"completed": 1, "shed": 1,
                                "deadline_missed": 0, "p95_us": 8.0}

    def test_empty_outcome(self):
        outcome = crafted_outcome()
        empty = ServeOutcome(spec=outcome.spec,
                             requests=outcome.requests,
                             completions=(), sheds=(), end_ps=0,
                             preemptions=0, stale_completions=0)
        report = build_report(empty)
        assert report.throughput_rps == 0.0
        assert report.latency_us["p99"] == 0.0
        assert report.deadline_miss_pct == 0.0


class TestCanonicalJson:
    def test_json_round_trips_to_dict(self):
        report = build_report(crafted_outcome())
        assert json.loads(report.to_json()) == report.to_dict()

    def test_digest_stable_across_builds(self):
        first = build_report(crafted_outcome())
        second = build_report(crafted_outcome())
        assert first.digest == second.digest

    def test_digest_sensitive_to_content(self):
        outcome = crafted_outcome()
        trimmed = ServeOutcome(
            spec=outcome.spec, requests=outcome.requests,
            completions=outcome.completions[:-1], sheds=outcome.sheds,
            end_ps=outcome.end_ps, preemptions=outcome.preemptions,
            stale_completions=outcome.stale_completions)
        assert build_report(outcome).digest \
            != build_report(trimmed).digest
