"""Fleet service end-to-end: accounting, affinity, preemption."""

import pytest

from repro.obs import install as obs_install
from repro.obs.metrics import MetricsRegistry
from repro.serve import FleetService, ServeSpec, generate_requests
from repro.serve.admission import SHED_INFEASIBLE, SHED_QUEUE_FULL
from repro.serve.fleet import ServiceTimeTable
from repro.serve.spec import RequestSpec, TenantSpec

FAR = 1_000_000_000_000


@pytest.fixture(scope="module")
def default_table():
    # Service-time measurement is memoised process-wide, so one
    # module-scoped table keeps these tests fast.
    return ServiceTimeTable(ServeSpec())


def serve(spec, requests=None, table=None):
    service = FleetService(spec, table=table)
    if requests is None:
        rate = service.table.resolved_rate_rps()
        requests = generate_requests(spec, rate)
    return service.run(requests)


class TestAccounting:
    def test_every_request_completes_or_sheds(self, default_table):
        spec = ServeSpec(requests=300)
        outcome = serve(spec, table=default_table)
        completed = {c.request.request_id for c in outcome.completions}
        shed = {s.request.request_id for s in outcome.sheds}
        assert not completed & shed
        assert completed | shed == set(range(300))

    def test_outcome_is_sorted(self, default_table):
        spec = ServeSpec(requests=300, load=4.0, queue_limit=16,
                         tenant_limit=16)
        outcome = serve(spec, table=default_table)
        finishes = [(c.finish_ps, c.request.request_id)
                    for c in outcome.completions]
        assert finishes == sorted(finishes)
        sheds = [(s.time_ps, s.request.request_id)
                 for s in outcome.sheds]
        assert sheds == sorted(sheds)

    def test_repeat_runs_identical(self, default_table):
        spec = ServeSpec(requests=200)
        first = serve(spec, table=default_table)
        second = serve(spec, table=default_table)
        assert first.completions == second.completions
        assert first.sheds == second.sheds
        assert first.end_ps == second.end_ps


class TestWarmAffinity:
    def test_single_module_fleet_stays_warm(self, default_table):
        tenants = (TenantSpec("only", 1.0, modules=("aes_core",)),)
        spec = ServeSpec(tenants=tenants, boards=2, requests=200,
                         load=1.0)
        outcome = serve(spec, table=default_table)
        cold_batches = {(c.finish_ps, c.board_id)
                        for c in outcome.completions if not c.warm}
        # Only the first load of each board is cold.
        assert len(cold_batches) <= 2
        assert any(c.warm for c in outcome.completions)


class TestShedding:
    def test_tiny_queues_shed_queue_full(self, default_table):
        spec = ServeSpec(requests=300, load=8.0, queue_limit=2,
                         tenant_limit=2)
        outcome = serve(spec, table=default_table)
        assert outcome.sheds
        assert {s.reason for s in outcome.sheds} == {SHED_QUEUE_FULL}
        assert len(outcome.completions) + len(outcome.sheds) == 300

    def test_hopeless_deadlines_shed_infeasible(self, default_table):
        # 5 us deadlines can never cover a ~13 us cold load.
        tenants = (TenantSpec("doomed", 1.0, modules=("aes_core",),
                              deadline_us=5.0),)
        spec = ServeSpec(tenants=tenants, requests=50,
                         shed_infeasible=True)
        outcome = serve(spec, table=default_table)
        assert not outcome.completions
        assert len(outcome.sheds) == 50
        assert {s.reason for s in outcome.sheds} == {SHED_INFEASIBLE}


class TestBatching:
    def test_backlog_coalesces_into_batches(self, default_table):
        tenants = (TenantSpec("only", 1.0, modules=("aes_core",)),)
        spec = ServeSpec(tenants=tenants, boards=1, batch_limit=4)
        requests = [
            RequestSpec(request_id=i, tenant="only", module="aes_core",
                        arrival_ps=1000 + i, deadline_ps=FAR,
                        priority=2)
            for i in range(8)]
        outcome = serve(spec, requests=requests, table=default_table)
        assert len(outcome.completions) == 8
        # The first request dispatches alone; the backlog that piles
        # up behind it drains as one full and one partial batch.
        assert sorted(c.batch_size for c in outcome.completions) \
            == [1, 3, 3, 3, 4, 4, 4, 4]


def preemption_spec(preempt):
    tenants = (
        TenantSpec("bulk", 1.0, modules=("matrix_mult",), priority=3),
        TenantSpec("rt", 1.0, modules=("aes_core",), priority=0,
                   deadline_us=35.0),
    )
    return ServeSpec(tenants=tenants, boards=1, preempt=preempt)


def preemption_requests():
    # bulk occupies the only board (~47 us); rt arrives mid-flight
    # with a 30 us budget: feasible now, hopeless if it waits.
    return [
        RequestSpec(request_id=0, tenant="bulk", module="matrix_mult",
                    arrival_ps=1000, deadline_ps=FAR, priority=3),
        RequestSpec(request_id=1, tenant="rt", module="aes_core",
                    arrival_ps=5_000_000, deadline_ps=35_000_000,
                    priority=0),
    ]


class TestPreemption:
    def test_urgent_request_preempts_background(self, default_table):
        outcome = serve(preemption_spec(True),
                        requests=preemption_requests(),
                        table=default_table)
        assert outcome.preemptions == 1
        # The interrupted load's completion event fires anyway and is
        # discarded by the generation check.
        assert outcome.stale_completions == 1
        by_id = {c.request.request_id: c for c in outcome.completions}
        assert set(by_id) == {0, 1}
        assert not by_id[1].missed
        assert by_id[1].finish_ps < by_id[0].finish_ps

    def test_without_preemption_the_deadline_is_missed(
            self, default_table):
        outcome = serve(preemption_spec(False),
                        requests=preemption_requests(),
                        table=default_table)
        assert outcome.preemptions == 0
        assert outcome.stale_completions == 0
        by_id = {c.request.request_id: c for c in outcome.completions}
        assert by_id[1].missed


class TestMetrics:
    def test_serve_counters_match_outcome(self, default_table):
        registry = MetricsRegistry()
        obs_install(registry=registry)
        try:
            spec = ServeSpec(requests=200, load=4.0, queue_limit=8,
                             tenant_limit=8)
            outcome = serve(spec, table=default_table)
        finally:
            obs_install()
        counters = registry.snapshot()["counters"]
        assert counters["serve.requests.offered"] == 200
        assert counters["serve.requests.completed"] \
            == len(outcome.completions)
        assert counters.get("serve.requests.shed", 0) \
            == len(outcome.sheds)
        assert counters["serve.dispatch.cold"] >= 1
        assert counters["serve.passes"] > 0
