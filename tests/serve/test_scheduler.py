"""Fair scheduling: weighted DRR, EDF override, batching, boards."""

import pytest

from repro.controllers import UparcController
from repro.errors import ServeError
from repro.fpga import BitstreamLibrary, FleetBoard, ModuleImage
from repro.serve import ServeSpec
from repro.serve.admission import AdmissionController
from repro.serve.scheduler import Batch, FairScheduler
from repro.serve.spec import RequestSpec, TenantSpec

WARM_PS = 10
QUANTUM_PS = 100
FAR_DEADLINE = 1_000_000_000


class StubTable:
    """Service-time table with hand-picked costs (no measurement)."""

    def __init__(self, cold, quantum_ps: int = QUANTUM_PS):
        self._cold = dict(cold)
        self.quantum_ps = quantum_ps

    def cold_ps(self, module):
        return self._cold[module]

    def service_ps(self, module, warm):
        return WARM_PS if warm else self._cold[module]


def make_spec(tenants, **kwargs):
    defaults = dict(tenants=tenants, queue_limit=64, tenant_limit=64,
                    batch_limit=1)
    defaults.update(kwargs)
    return ServeSpec(**defaults)


def make_request(request_id, tenant, module="aes_core", priority=2,
                 arrival_ps: int = None,
                 deadline_ps: int = FAR_DEADLINE):
    return RequestSpec(
        request_id=request_id, tenant=tenant, module=module,
        arrival_ps=request_id * 10 if arrival_ps is None
        else arrival_ps,
        deadline_ps=deadline_ps, priority=priority)


def fill(admission, tenant, count, start_id=0, **kwargs):
    for index in range(count):
        request = make_request(start_id + index, tenant, **kwargs)
        assert admission.offer(request, 0, 0) == []


def drain(scheduler, admission, table, rounds):
    """Run ``rounds`` dispatch+charge cycles; return tenant counts."""
    counts = {}
    for _ in range(rounds):
        batch = scheduler.next_batch(admission)
        assert batch is not None
        for request in batch.requests:
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        scheduler.charge(batch, table.cold_ps(batch.module))
    return counts


class TestWeightedDrr:
    def test_shares_follow_weights(self):
        # Equal costs, weight 1 vs 2: tenant y earns two dispatches
        # per ring cycle to x's one.
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("aes_core",)),
            TenantSpec("y", 2.0, modules=("aes_core",)),
        ))
        table = StubTable({"aes_core": 100})
        admission = AdmissionController(spec)
        scheduler = FairScheduler(spec, table)
        fill(admission, "x", 20, start_id=0)
        fill(admission, "y", 20, start_id=100)
        counts = drain(scheduler, admission, table, rounds=18)
        assert counts == {"x": 6, "y": 12}

    def test_expensive_head_waits_out_turns(self):
        # x's module costs 2.5 quanta, so x banks credit across two
        # turns while y keeps dispatching, then finally affords it.
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("fir_filter",)),
            TenantSpec("y", 1.0, modules=("aes_core",)),
        ))
        table = StubTable({"fir_filter": 250, "aes_core": 100})
        admission = AdmissionController(spec)
        scheduler = FairScheduler(spec, table)
        fill(admission, "x", 2, start_id=0, module="fir_filter")
        fill(admission, "y", 4, start_id=100)
        order = []
        for _ in range(3):
            batch = scheduler.next_batch(admission)
            order.append(batch.requests[0].tenant)
            scheduler.charge(batch, table.cold_ps(batch.module))
        assert order == ["y", "y", "x"]

    def test_idle_tenant_banks_no_credit(self):
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("fir_filter",)),
            TenantSpec("y", 1.0, modules=("aes_core",)),
        ))
        table = StubTable({"fir_filter": 250, "aes_core": 100})
        admission = AdmissionController(spec)
        scheduler = FairScheduler(spec, table)
        fill(admission, "x", 1, start_id=0, module="fir_filter")
        fill(admission, "y", 3, start_id=100)
        batch = scheduler.next_batch(admission)  # credits x, runs y
        scheduler.charge(batch, table.cold_ps(batch.module))
        assert scheduler.deficit("x") == QUANTUM_PS
        admission.take(admission.head("x"))  # x goes idle
        # The next round passes over the now-empty x queue and wipes
        # its banked credit before dispatching y again.
        batch = scheduler.next_batch(admission)
        scheduler.charge(batch, table.cold_ps(batch.module))
        assert batch.requests[0].tenant == "y"
        assert scheduler.deficit("x") == 0

    def test_idle_queues_yield_none(self):
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("aes_core",)),))
        scheduler = FairScheduler(spec, StubTable({"aes_core": 100}))
        assert scheduler.next_batch(AdmissionController(spec)) is None


class TestDeadlineOverride:
    def make(self):
        spec = make_spec((
            TenantSpec("bulk", 4.0, modules=("aes_core",),
                       priority=2),
            TenantSpec("rt", 1.0, modules=("aes_core",), priority=0),
        ))
        table = StubTable({"aes_core": 100})
        return spec, AdmissionController(spec), \
            FairScheduler(spec, table)

    def test_priority_zero_bypasses_fairness(self):
        _, admission, scheduler = self.make()
        fill(admission, "bulk", 4, start_id=0)
        fill(admission, "rt", 1, start_id=100, priority=0)
        batch = scheduler.next_batch(admission)
        assert batch.requests[0].tenant == "rt"

    def test_earliest_deadline_wins_among_urgent(self):
        _, admission, scheduler = self.make()
        admission.offer(make_request(0, "rt", priority=0,
                                     deadline_ps=900_000), 0, 0)
        admission.offer(make_request(1, "rt", priority=0,
                                     deadline_ps=500_000), 0, 0)
        head = scheduler.urgent_head(admission)
        assert head.request_id == 1

    def test_no_urgent_head_without_priority_zero(self):
        _, admission, scheduler = self.make()
        fill(admission, "bulk", 2, start_id=0)
        assert scheduler.urgent_head(admission) is None


class TestBatching:
    def test_same_module_riders_coalesce_across_tenants(self):
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("aes_core",)),
            TenantSpec("y", 1.0, modules=("aes_core",)),
        ), batch_limit=3)
        admission = AdmissionController(spec)
        scheduler = FairScheduler(spec, StubTable({"aes_core": 100}))
        admission.offer(make_request(0, "x", arrival_ps=10), 0, 0)
        admission.offer(make_request(1, "x", arrival_ps=20), 0, 0)
        admission.offer(make_request(2, "y", arrival_ps=15), 0, 0)
        admission.offer(make_request(3, "y", arrival_ps=25), 0, 0)
        batch = scheduler.next_batch(admission)
        # Head is x's first request; the two most urgent matches ride.
        assert [r.request_id for r in batch.requests] == [0, 2, 1]
        assert admission.depth == 1

    def test_different_modules_never_coalesce(self):
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("aes_core",)),
            TenantSpec("y", 1.0, modules=("fir_filter",)),
        ), batch_limit=4)
        table = StubTable({"aes_core": 100, "fir_filter": 100})
        admission = AdmissionController(spec)
        scheduler = FairScheduler(spec, table)
        admission.offer(make_request(0, "x"), 0, 0)
        admission.offer(
            make_request(1, "y", module="fir_filter"), 0, 0)
        batch = scheduler.next_batch(admission)
        assert len(batch.requests) == 1

    def test_charge_splits_evenly_and_may_go_negative(self):
        spec = make_spec((
            TenantSpec("x", 1.0, modules=("aes_core",)),
            TenantSpec("y", 1.0, modules=("aes_core",)),
        ))
        scheduler = FairScheduler(spec, StubTable({"aes_core": 100}))
        batch = Batch(module="aes_core", requests=(
            make_request(0, "x"), make_request(1, "x"),
            make_request(2, "y")))
        scheduler.charge(batch, 90)
        assert scheduler.deficit("x") == -60
        assert scheduler.deficit("y") == -30

    def test_empty_batch_rejected(self):
        with pytest.raises(ServeError):
            Batch(module="aes_core", requests=())


class TestBoardChoice:
    CATALOG = (ModuleImage("aes_core", 8.0, 1),)

    def boards(self, count=3):
        library = BitstreamLibrary(self.CATALOG)
        return [FleetBoard(board_id, UparcController("i"), library)
                for board_id in range(count)]

    def test_warm_board_preferred(self):
        boards = self.boards()
        boards[2].loaded_module = "aes_core"
        board, warm = FairScheduler.pick_board(boards, "aes_core")
        assert (board.board_id, warm) == (2, True)

    def test_choice_is_order_independent(self):
        boards = self.boards()
        boards[1].loaded_module = "aes_core"
        forward = FairScheduler.pick_board(boards, "aes_core")
        backward = FairScheduler.pick_board(boards[::-1], "aes_core")
        assert forward == backward

    def test_cold_pick_is_lowest_id(self):
        board, warm = FairScheduler.pick_board(
            self.boards()[::-1], "aes_core")
        assert (board.board_id, warm) == (0, False)

    def test_no_free_board_raises(self):
        with pytest.raises(ServeError):
            FairScheduler.pick_board([], "aes_core")
