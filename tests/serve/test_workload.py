"""Workload generation: determinism, monotonicity, model shapes."""

import pytest

from repro.errors import ServeError
from repro.serve import ServeSpec, generate_requests
from repro.serve.spec import TenantSpec

RATE = 50_000.0


def spec_for(arrival="poisson", requests=2000, seed=7, **kwargs):
    return ServeSpec(arrival=arrival, requests=requests, seed=seed,
                     **kwargs)


@pytest.mark.parametrize("arrival", ["poisson", "burst", "diurnal"])
class TestAllModels:
    def test_count_and_ids(self, arrival):
        stream = generate_requests(spec_for(arrival), RATE)
        assert len(stream) == 2000
        assert [r.request_id for r in stream] == list(range(2000))

    def test_arrivals_strictly_increase(self, arrival):
        stream = generate_requests(spec_for(arrival), RATE)
        assert all(b.arrival_ps > a.arrival_ps
                   for a, b in zip(stream, stream[1:]))

    def test_deterministic_replay(self, arrival):
        first = generate_requests(spec_for(arrival), RATE)
        second = generate_requests(spec_for(arrival), RATE)
        assert first == second

    def test_seed_changes_stream(self, arrival):
        base = generate_requests(spec_for(arrival), RATE)
        other = generate_requests(spec_for(arrival, seed=8), RATE)
        assert base != other

    def test_deadline_and_priority_follow_tenant(self, arrival):
        spec = spec_for(arrival)
        tenants = {tenant.name: tenant for tenant in spec.tenants}
        for request in generate_requests(spec, RATE)[:200]:
            tenant = tenants[request.tenant]
            assert request.priority == tenant.priority
            assert request.deadline_ps - request.arrival_ps \
                == round(tenant.deadline_us * 1e6)
            assert request.module in tenant.modules


def test_rate_must_be_positive():
    with pytest.raises(ServeError):
        generate_requests(spec_for(), 0.0)


def test_mean_rate_close_to_requested():
    stream = generate_requests(spec_for(requests=20_000), RATE)
    span_s = stream[-1].arrival_ps / 1e12
    empirical = len(stream) / span_s
    assert empirical == pytest.approx(RATE, rel=0.05)


def test_tenant_mix_tracks_weights():
    spec = spec_for(requests=20_000)
    counts = {tenant.name: 0 for tenant in spec.tenants}
    for request in generate_requests(spec, RATE):
        counts[request.tenant] += 1
    total_weight = sum(t.weight for t in spec.tenants)
    for tenant in spec.tenants:
        expected = 20_000 * tenant.weight / total_weight
        assert counts[tenant.name] == pytest.approx(expected, rel=0.1)


def test_burst_has_heavier_tail_than_poisson():
    """ON/OFF modulation stretches the inter-arrival distribution."""
    poisson = generate_requests(spec_for("poisson", 5000), RATE)
    burst = generate_requests(spec_for("burst", 5000), RATE)

    def gap_p99(stream):
        gaps = sorted(b.arrival_ps - a.arrival_ps
                      for a, b in zip(stream, stream[1:]))
        return gaps[int(len(gaps) * 0.99)]

    assert gap_p99(burst) > gap_p99(poisson)


def test_single_tenant_stream():
    tenants = (TenantSpec("only", 1.0, modules=("aes_core",)),)
    stream = generate_requests(spec_for(tenants=tenants), RATE)
    assert {request.tenant for request in stream} == {"only"}
    assert {request.module for request in stream} == {"aes_core"}
