"""Kernel event-queue semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_initial_time_is_zero(sim):
    assert sim.now == 0


def test_events_fire_in_time_order(sim):
    order = []
    sim.at(300, lambda: order.append("c"))
    sim.at(100, lambda: order.append("a"))
    sim.at(200, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for label in "abcde":
        sim.at(50, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time(sim):
    seen = []
    sim.at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_after_is_relative(sim):
    seen = []
    sim.at(100, lambda: sim.after(50, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [150]


def test_scheduling_in_the_past_raises(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_run_until_bound_is_inclusive(sim):
    seen = []
    sim.at(100, lambda: seen.append("on-bound"))
    sim.at(101, lambda: seen.append("past-bound"))
    sim.run(until_ps=100)
    assert seen == ["on-bound"]
    assert sim.now == 100


def test_run_until_advances_time_even_when_idle(sim):
    sim.run(until_ps=500)
    assert sim.now == 500


def test_cancelled_event_does_not_fire(sim):
    seen = []
    handle = sim.at(10, lambda: seen.append("x"))
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_after_fire_is_noop(sim):
    seen = []
    handle = sim.at(10, lambda: seen.append("x"))
    sim.run()
    handle.cancel()
    assert seen == ["x"]


def test_step_executes_single_event(sim):
    seen = []
    sim.at(10, lambda: seen.append("a"))
    sim.at(20, lambda: seen.append("b"))
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert seen == ["a", "b"]
    assert sim.step() is False


def test_events_scheduled_during_run_are_executed(sim):
    seen = []

    def cascade(depth):
        seen.append(depth)
        if depth < 5:
            sim.after(10, lambda: cascade(depth + 1))

    sim.at(0, lambda: cascade(0))
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_reentrant_run_rejected(sim):
    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.at(5, inner)
    sim.run()


def test_pending_events_counts_queue(sim):
    sim.at(10, lambda: None)
    sim.at(20, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_run_until_idle_alias(sim):
    seen = []
    sim.at(10, lambda: seen.append(1))
    assert sim.run_until_idle() == 10
    assert seen == [1]
