"""Kernel event-queue semantics."""

# These tests schedule callbacks that append to shared lists on
# purpose: the deterministic tie-break order is the thing under test.
# repro-lint: disable=R701

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_initial_time_is_zero(sim):
    assert sim.now == 0


def test_events_fire_in_time_order(sim):
    order = []
    sim.at(300, lambda: order.append("c"))
    sim.at(100, lambda: order.append("a"))
    sim.at(200, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for label in "abcde":
        sim.at(50, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time(sim):
    seen = []
    sim.at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_after_is_relative(sim):
    seen = []
    sim.at(100, lambda: sim.after(50, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [150]


def test_scheduling_in_the_past_raises(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_run_until_bound_is_inclusive(sim):
    seen = []
    sim.at(100, lambda: seen.append("on-bound"))
    sim.at(101, lambda: seen.append("past-bound"))
    sim.run(until_ps=100)
    assert seen == ["on-bound"]
    assert sim.now == 100


def test_run_until_advances_time_even_when_idle(sim):
    sim.run(until_ps=500)
    assert sim.now == 500


def test_cancelled_event_does_not_fire(sim):
    seen = []
    handle = sim.at(10, lambda: seen.append("x"))
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_after_fire_is_noop(sim):
    seen = []
    handle = sim.at(10, lambda: seen.append("x"))
    sim.run()
    handle.cancel()
    assert seen == ["x"]


def test_step_executes_single_event(sim):
    seen = []
    sim.at(10, lambda: seen.append("a"))
    sim.at(20, lambda: seen.append("b"))
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert seen == ["a", "b"]
    assert sim.step() is False


def test_events_scheduled_during_run_are_executed(sim):
    seen = []

    def cascade(depth):
        seen.append(depth)
        if depth < 5:
            sim.after(10, lambda: cascade(depth + 1))

    sim.at(0, lambda: cascade(0))
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_reentrant_run_rejected(sim):
    def inner():
        with pytest.raises(SimulationError):
            sim.run()

    sim.at(5, inner)
    sim.run()


def test_pending_events_counts_queue(sim):
    sim.at(10, lambda: None)
    sim.at(20, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_run_until_idle_alias(sim):
    seen = []
    sim.at(10, lambda: seen.append(1))
    assert sim.run_until_idle() == 10
    assert seen == [1]


def test_pending_events_excludes_cancelled(sim):
    """Regression: cancelled handles used to count as pending."""
    keep = sim.at(10, lambda: None)
    cancelled = [sim.at(20, lambda: None) for _ in range(5)]
    for handle in cancelled:
        handle.cancel()
    assert sim.pending_events == 1
    assert keep.cancelled is False


def test_heap_compacts_when_mostly_cancelled(sim):
    """Schedule-and-cancel loops must not grow the queue unbounded."""
    survivors = []
    keepers = [sim.at(1000 + index, lambda: survivors.append(1))
               for index in range(10)]
    doomed = [sim.at(2000 + index, lambda: survivors.append("no"))
              for index in range(200)]
    for handle in doomed:
        handle.cancel()
    # Lazy compaction has rebuilt the heap without most dead entries;
    # below _COMPACT_MIN_EVENTS (64) compaction stops by design.
    assert len(sim._queue) < 64
    assert sim.pending_events == len(keepers)
    sim.run()
    assert survivors == [1] * 10


def test_compaction_preserves_order_and_semantics(sim):
    order = []
    for index in range(100):
        handle = sim.at(10 * index, lambda i=index: order.append(i))
        if index % 2:
            handle.cancel()
    sim.run()
    assert order == list(range(0, 100, 2))
    assert sim.pending_events == 0


def test_call_at_and_call_after_fire_in_order(sim):
    order = []
    sim.call_at(30, lambda: order.append("c"))
    sim.call_at(10, lambda: order.append("a"))
    sim.call_after(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_call_at_past_raises(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(50, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)


def test_schedule_batch_matches_serial_scheduling(sim):
    order = []
    count = sim.schedule_batch(
        (100 - index, lambda i=index: order.append(i))
        for index in range(100))
    assert count == 100
    assert sim.pending_events == 100
    sim.run()
    assert order == list(reversed(range(100)))


def test_schedule_batch_ties_fire_in_batch_order(sim):
    order = []
    sim.schedule_batch((50, lambda label=label: order.append(label))
                       for label in "abcde")
    sim.run()
    assert order == list("abcde")


def test_schedule_batch_interleaves_with_handles(sim):
    order = []
    sim.at(15, lambda: order.append("handle"))
    sim.schedule_batch([(10, lambda: order.append("early")),
                        (20, lambda: order.append("late"))])
    sim.run()
    assert order == ["early", "handle", "late"]


def test_schedule_batch_rejects_past_times(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_batch([(100, lambda: None), (50, lambda: None)])
    # A failed batch must not corrupt the queue.
    assert sim.pending_events == 0


def test_schedule_batch_empty_is_noop(sim):
    assert sim.schedule_batch([]) == 0
    assert sim.pending_events == 0


def test_events_scheduled_mid_run_interleave_with_drain(sim):
    """New events land on the heap while run() drains its stack; the
    (time, seq) order must stay exact across the two tiers."""
    order = []
    sim.schedule_batch((10 * index, lambda i=index: order.append(i))
                       for i in [0] for index in range(1, 6))

    def wedge():
        order.append("wedge-now")
        sim.call_at(25, lambda: order.append("wedged"))

    sim.at(5, wedge)
    sim.run()
    assert order == ["wedge-now", 1, 2, "wedged", 3, 4, 5]


def test_cancel_during_run_skips_event(sim):
    fired = []
    victim = sim.at(20, lambda: fired.append("victim"))
    sim.at(10, victim.cancel)
    sim.at(30, lambda: fired.append("after"))
    sim.run()
    assert fired == ["after"]


# -- now-bucket fast path ----------------------------------------------
# Events scheduled at exactly ``now`` while run() dispatches divert to
# a FIFO bucket instead of the heap.  The tests below pin the ordering
# contract: heap/drain entries at the current instant predate every
# bucket entry, and within the bucket scheduling order is fire order.


def test_same_instant_storm_fires_fifo(sim):
    order = []

    def storm():
        order.append("head")
        for label in "abc":
            sim.at(10, lambda label=label: order.append(label))
        # Cascade: a bucket callback appending more same-instant work.
        sim.at(10, lambda: sim.at(10, lambda: order.append("tail")))

    sim.at(10, storm)
    sim.run()
    assert order == ["head", "a", "b", "c", "tail"]
    assert sim.now == 10
    assert sim.pending_events == 0


def test_pre_queued_same_time_precedes_bucket(sim):
    order = []

    def first():
        order.append("first")
        # Lands in the bucket, but the pre-queued "second" at the same
        # instant carries a lower sequence and must fire before it.
        sim.at(10, lambda: order.append("bucketed"))

    sim.at(10, first)
    sim.at(10, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "bucketed"]


def test_bucket_respects_until_bound(sim):
    order = []

    def storm():
        order.append("now")
        sim.at(10, lambda: order.append("same-instant"))
        sim.at(11, lambda: order.append("next-instant"))

    sim.at(10, storm)
    sim.run(until_ps=10)
    # The same-instant event is inside the inclusive bound; the later
    # one is not.
    assert order == ["now", "same-instant"]
    assert sim.pending_events == 1
    sim.run()
    assert order == ["now", "same-instant", "next-instant"]


def test_cancel_inside_bucket(sim):
    order = []

    def storm():
        victim = sim.at(10, lambda: order.append("victim"))
        sim.at(10, lambda: order.append("kept"))
        victim.cancel()
        assert sim.pending_events == 1

    sim.at(10, storm)
    sim.run()
    assert order == ["kept"]
    assert sim.pending_events == 0


def test_pending_events_counts_bucket_mid_run(sim):
    depths = []

    def storm():
        for _ in range(3):
            sim.at(10, lambda: depths.append(sim.pending_events))

    sim.at(10, storm)
    sim.run()
    # Each bucket callback sees the ones still queued behind it.
    assert depths == [2, 1, 0]


def test_schedule_batch_partitions_same_instant_mid_run(sim):
    order = []

    def storm():
        order.append("head")
        count = sim.schedule_batch([
            (10, lambda: order.append("bucket-a")),
            (25, lambda: order.append("heap")),
            (10, lambda: order.append("bucket-b")),
        ])
        assert count == 3
        assert sim.pending_events == 3

    sim.at(10, storm)
    sim.run()
    assert order == ["head", "bucket-a", "bucket-b", "heap"]


def test_exception_merges_bucket_remnant_into_queue(sim):
    order = []

    def storm():
        sim.at(10, lambda: order.append("survivor-a"))
        victim = sim.at(10, lambda: order.append("victim"))
        sim.at(10, lambda: order.append("survivor-b"))
        victim.cancel()
        raise RuntimeError("boom")

    sim.at(10, storm)
    with pytest.raises(RuntimeError):
        sim.run()
    # The undispatched bucket entries survive the abort on the heap...
    assert sim.pending_events == 2
    sim.run()
    # ...and fire later in their original FIFO order, minus the
    # cancellation recorded while they sat in the bucket.
    assert order == ["survivor-a", "survivor-b"]
    assert sim.pending_events == 0


class _RecordingObserver:
    def __init__(self):
        self.fired = []

    def run_started(self, time_ps: int, pending: int) -> None:
        pass

    def run_finished(self, time_ps: int, pending: int) -> None:
        pass

    def event_fired(self, time_ps: int, depth: int) -> None:
        self.fired.append((time_ps, depth))


def test_observed_drain_matches_unobserved_for_storm():
    def build(simulator, order):
        def storm():
            order.append("head")
            for label in "abc":
                simulator.at(10, lambda label=label: order.append(label))
            simulator.at(20, lambda: order.append("later"))

        simulator.at(10, storm)
        simulator.at(10, lambda: order.append("queued"))

    plain_order = []
    plain = Simulator()
    build(plain, plain_order)
    plain.run()

    observed_order = []
    observed = Simulator()
    observed.observer = _RecordingObserver()
    build(observed, observed_order)
    observed.run()

    assert observed_order == plain_order
    assert len(observed.observer.fired) == len(plain_order)
    # Depth reported to the observer is the true pending count after
    # each dispatch, bucket share included.
    assert [depth for _, depth in observed.observer.fired] == \
        [5, 4, 3, 2, 1, 0]
