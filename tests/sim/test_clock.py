"""Clock domain retuning and cycle accounting."""

import pytest

from repro.errors import ClockError, FrequencyError
from repro.sim import Clock
from repro.units import Frequency


def mhz(value):
    return Frequency.from_mhz(value)


def test_period_of_100mhz(sim):
    clock = Clock(sim, "clk", mhz(100))
    assert clock.period_ps == 10_000


def test_period_of_362_5mhz_rounds_to_nearest_ps(sim):
    clock = Clock(sim, "clk", mhz(362.5))
    assert clock.period_ps == 2759  # 2758.62 ps rounded


def test_cycles_duration(sim):
    clock = Clock(sim, "clk", mhz(100))
    assert clock.cycles_duration(5) == 50_000


def test_negative_cycles_raises(sim):
    clock = Clock(sim, "clk", mhz(100))
    with pytest.raises(ClockError):
        clock.cycles_duration(-1)


def test_retune_changes_frequency_and_history(sim):
    clock = Clock(sim, "clk", mhz(100))
    sim.run(until_ps=1000)
    clock.retune(mhz(200))
    assert clock.frequency == mhz(200)
    assert len(clock.history) == 2
    assert clock.history[1].time_ps == 1000


def test_retune_to_same_frequency_is_silent(sim):
    clock = Clock(sim, "clk", mhz(100))
    clock.retune(mhz(100))
    assert len(clock.history) == 1


def test_max_frequency_enforced_on_retune(sim):
    clock = Clock(sim, "clk", mhz(100), max_frequency=mhz(300))
    with pytest.raises(FrequencyError):
        clock.retune(mhz(301))


def test_max_frequency_enforced_at_construction(sim):
    with pytest.raises(FrequencyError):
        Clock(sim, "clk", mhz(400), max_frequency=mhz(300))


def test_cycles_between_single_segment(sim):
    clock = Clock(sim, "clk", mhz(100))  # 10 ns period
    assert clock.cycles_between(0, 100_000) == 10


def test_cycles_between_spanning_retune(sim):
    clock = Clock(sim, "clk", mhz(100))
    sim.run(until_ps=100_000)   # 10 cycles at 100 MHz
    clock.retune(mhz(200))
    sim.run(until_ps=200_000)   # +20 cycles at 200 MHz
    assert clock.cycles_between(0, 200_000) == 30


def test_cycles_between_partial_window(sim):
    clock = Clock(sim, "clk", mhz(100))
    assert clock.cycles_between(50_000, 150_000) == 10


def test_cycles_between_backwards_raises(sim):
    clock = Clock(sim, "clk", mhz(100))
    with pytest.raises(ClockError):
        clock.cycles_between(100, 50)
