"""Signal and Event semantics."""

import pytest

from repro.sim import Event, Signal


def test_signal_initial_value(sim):
    assert Signal(sim, "s", initial=7).value == 7


def test_set_changes_value_and_notifies(sim):
    signal = Signal(sim, "s")
    seen = []
    signal.observe(lambda value, time: seen.append((value, time)))
    sim.run(until_ps=42)
    signal.set(1)
    assert signal.value == 1
    assert seen == [(1, 42)]


def test_set_same_value_does_not_notify(sim):
    signal = Signal(sim, "s", initial=5)
    seen = []
    signal.observe(lambda value, time: seen.append(value))
    signal.set(5)
    assert seen == []
    assert signal.change_count == 0


def test_pulse_produces_both_edges(sim):
    signal = Signal(sim, "start")
    seen = []
    signal.observe(lambda value, time: seen.append(value))
    signal.pulse()
    assert seen == [1, 0]


def test_unsubscribe_stops_notifications(sim):
    signal = Signal(sim, "s")
    seen = []
    unsubscribe = signal.observe(lambda value, time: seen.append(value))
    signal.set(1)
    unsubscribe()
    signal.set(2)
    assert seen == [1]


def test_on_value_fires_once(sim):
    signal = Signal(sim, "s")
    seen = []
    signal.on_value(3, lambda time: seen.append(time))
    signal.set(1)
    signal.set(3)
    signal.set(0)
    signal.set(3)
    assert len(seen) == 1


def test_event_trigger_carries_payload(sim):
    event = Event(sim, "done")
    event.trigger(payload={"words": 42})
    assert event.triggered
    assert event.payload == {"words": 42}
    assert event.trigger_time == 0


def test_event_double_trigger_raises(sim):
    event = Event(sim, "done")
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_waiter_called_on_trigger(sim):
    event = Event(sim, "done")
    seen = []
    event.add_waiter(lambda ev: seen.append(ev.payload))
    event.trigger("payload")
    assert seen == ["payload"]


def test_waiter_added_after_trigger_fires_immediately(sim):
    event = Event(sim, "done")
    event.trigger("x")
    seen = []
    event.add_waiter(lambda ev: seen.append(ev.payload))
    assert seen == ["x"]
