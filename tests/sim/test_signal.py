"""Signal and Event semantics."""

import pytest

from repro.sim import Event, Signal


def test_signal_initial_value(sim):
    assert Signal(sim, "s", initial=7).value == 7


def test_set_changes_value_and_notifies(sim):
    signal = Signal(sim, "s")
    seen = []
    signal.observe(lambda value, time: seen.append((value, time)))
    sim.run(until_ps=42)
    signal.set(1)
    assert signal.value == 1
    assert seen == [(1, 42)]


def test_set_same_value_does_not_notify(sim):
    signal = Signal(sim, "s", initial=5)
    seen = []
    signal.observe(lambda value, time: seen.append(value))
    signal.set(5)
    assert seen == []
    assert signal.change_count == 0


def test_pulse_produces_both_edges(sim):
    signal = Signal(sim, "start")
    seen = []
    signal.observe(lambda value, time: seen.append(value))
    signal.pulse()
    assert seen == [1, 0]


def test_unsubscribe_stops_notifications(sim):
    signal = Signal(sim, "s")
    seen = []
    unsubscribe = signal.observe(lambda value, time: seen.append(value))
    signal.set(1)
    unsubscribe()
    signal.set(2)
    assert seen == [1]


def test_on_value_fires_once(sim):
    signal = Signal(sim, "s")
    seen = []
    signal.on_value(3, lambda time: seen.append(time))
    signal.set(1)
    signal.set(3)
    signal.set(0)
    signal.set(3)
    assert len(seen) == 1


def test_event_trigger_carries_payload(sim):
    event = Event(sim, "done")
    event.trigger(payload={"words": 42})
    assert event.triggered
    assert event.payload == {"words": 42}
    assert event.trigger_time == 0


def test_event_double_trigger_raises(sim):
    event = Event(sim, "done")
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_waiter_called_on_trigger(sim):
    event = Event(sim, "done")
    seen = []
    event.add_waiter(lambda ev: seen.append(ev.payload))
    event.trigger("payload")
    assert seen == ["payload"]


def test_waiter_added_after_trigger_fires_immediately(sim):
    event = Event(sim, "done")
    event.trigger("x")
    seen = []
    event.add_waiter(lambda ev: seen.append(ev.payload))
    assert seen == ["x"]


# -- mutation during notification (regression: the notify loops used
# -- to iterate the live list, skipping or double-firing listeners) ----

def test_unsubscribe_of_later_observer_mid_notify_skips_it(sim):
    signal = Signal(sim, "s")
    seen = []

    def first(value, time):
        seen.append(("first", value))
        unsubscribe_second()

    unsubscribe_first = signal.observe(first)
    unsubscribe_second = signal.observe(
        lambda value, time: seen.append(("second", value)))
    signal.set(1)
    # second was unsubscribed by first *during* this notification and
    # must not see the change it was removed for.
    assert seen == [("first", 1)]
    signal.set(2)
    assert seen == [("first", 1), ("first", 2)]
    unsubscribe_first()


def test_self_unsubscribe_mid_notify_keeps_later_observers(sim):
    signal = Signal(sim, "s")
    seen = []

    def once(value, time):
        seen.append(("once", value))
        unsubscribe_once()

    unsubscribe_once = signal.observe(once)
    signal.observe(lambda value, time: seen.append(("steady", value)))
    signal.set(1)
    signal.set(2)
    # the self-removal must not shift the iteration past "steady".
    assert seen == [("once", 1), ("steady", 1), ("steady", 2)]


def test_observer_subscribed_mid_notify_sees_only_next_change(sim):
    signal = Signal(sim, "s")
    seen = []

    def subscriber(value, time):
        seen.append(("outer", value))
        if value == 1:
            signal.observe(
                lambda v, t: seen.append(("inner", v)))

    signal.observe(subscriber)
    signal.set(1)
    assert seen == [("outer", 1)]  # inner absent from the snapshot
    signal.set(2)
    assert seen == [("outer", 1), ("outer", 2), ("inner", 2)]


def test_raising_waiter_does_not_lose_queued_waiters(sim):
    event = Event(sim, "done")
    seen = []

    def bad(ev):
        raise RuntimeError("waiter failed")

    event.add_waiter(bad)
    event.add_waiter(lambda ev: seen.append("after"))
    with pytest.raises(RuntimeError, match="waiter failed"):
        event.trigger("x")
    # the event did trigger; the surviving waiter is still queued and
    # a late add_waiter fires immediately rather than being lost.
    assert event.triggered
    event.add_waiter(lambda ev: seen.append("late"))
    assert seen == ["late"]


def test_waiter_added_mid_drain_fires_exactly_once(sim):
    event = Event(sim, "done")
    seen = []

    def chaining(ev):
        seen.append("chaining")
        ev.add_waiter(lambda e: seen.append("added-mid-drain"))

    event.add_waiter(chaining)
    event.add_waiter(lambda ev: seen.append("second"))
    event.trigger()
    # the mid-drain registration fired immediately (triggered branch)
    # and exactly once, and the pre-registered waiters kept FIFO order.
    assert seen == ["chaining", "added-mid-drain", "second"]
