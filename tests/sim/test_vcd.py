"""VCD waveform export."""

import pytest

from repro.errors import SimulationError
from repro.sim import ActivityTrace, ValueTrace
from repro.sim.vcd import VcdWriter, _identifier, dump_run


class TestIdentifiers:
    def test_first_codes(self):
        assert _identifier(0) == "!"
        assert _identifier(1) == '"'

    def test_codes_unique_for_many_channels(self):
        codes = {_identifier(index) for index in range(500)}
        assert len(codes) == 500

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            _identifier(-1)


class TestVcdWriter:
    def test_header_structure(self):
        writer = VcdWriter(timescale_ps=1000, module_name="dut")
        text = writer.render()
        assert "$timescale 1000 ps $end" in text
        assert "$scope module dut $end" in text
        assert "$enddefinitions $end" in text

    def test_activity_channel(self, sim):
        activity = ActivityTrace(sim, "en")
        activity.begin()
        sim.run(until_ps=5000)
        activity.end()
        writer = VcdWriter(timescale_ps=1000)
        writer.add_activity("en", activity)
        text = writer.render()
        assert "$var wire 1 ! en $end" in text
        # 0 at t0, 1 at t0, 0 at tick 5.
        assert "#0" in text and "#5" in text
        assert "1!" in text and "0!" in text

    def test_value_channel(self):
        trace = ValueTrace("p")
        trace.record(0, 30.0)
        trace.record(2000, 259.5)
        writer = VcdWriter(timescale_ps=1000)
        writer.add_values("power", trace)
        text = writer.render()
        assert "$var real 64 ! power $end" in text
        assert "r30 !" in text
        assert "r259.5 !" in text

    def test_changes_time_ordered(self):
        trace = ValueTrace("p")
        for time, value in ((0, 1.0), (3000, 2.0), (9000, 3.0)):
            trace.record(time, value)
        writer = VcdWriter(timescale_ps=1000)
        writer.add_values("p", trace)
        lines = writer.render().splitlines()
        ticks = [int(line[1:]) for line in lines if line.startswith("#")]
        assert ticks == sorted(ticks)

    def test_duplicate_channel_rejected(self):
        writer = VcdWriter()
        trace = ValueTrace("p")
        trace.record(0, 1.0)
        writer.add_values("p", trace)
        with pytest.raises(SimulationError):
            writer.add_values("p", trace)

    def test_invalid_timescale(self):
        with pytest.raises(SimulationError):
            VcdWriter(timescale_ps=0)

    def test_write_to_file(self, tmp_path):
        trace = ValueTrace("p")
        trace.record(0, 42.0)
        writer = VcdWriter()
        writer.add_values("p", trace)
        path = tmp_path / "run.vcd"
        written = writer.write(path)
        assert path.stat().st_size == written


class TestDumpRun:
    def test_full_run_dump(self, tmp_path, small_bitstream):
        from repro.core.system import UPaRCSystem
        system = UPaRCSystem(decompressor=None)
        result = system.run(small_bitstream)
        path = tmp_path / "run.vcd"
        written = dump_run(result, system, path)
        assert written > 0
        text = path.read_text()
        for channel in ("core_power_mw", "icap_en", "bram_port_b_en",
                        "manager_busy", "manager_wait"):
            assert channel in text
        # The power plateau must appear as a real sample.
        assert "r259" in text or "r" in text
