"""Value and activity trace recorders."""

import pytest

from repro.errors import SimulationError
from repro.sim import ActivityTrace, ValueTrace


class TestValueTrace:
    def test_records_samples(self):
        trace = ValueTrace("p")
        trace.record(0, 30.0)
        trace.record(100, 250.0)
        assert len(trace) == 2

    def test_out_of_order_rejected(self):
        trace = ValueTrace("p")
        trace.record(100, 1.0)
        with pytest.raises(SimulationError):
            trace.record(50, 2.0)

    def test_value_at_zero_order_hold(self):
        trace = ValueTrace("p")
        trace.record(0, 10.0)
        trace.record(100, 20.0)
        assert trace.value_at(0) == 10.0
        assert trace.value_at(99) == 10.0
        assert trace.value_at(100) == 20.0
        assert trace.value_at(1000) == 20.0

    def test_value_at_empty_raises(self):
        with pytest.raises(SimulationError):
            ValueTrace("p").value_at(0)

    def test_integral_zero_order_hold(self):
        trace = ValueTrace("p")
        trace.record(0, 10.0)
        trace.record(100, 20.0)
        trace.record(200, 0.0)
        # 10 * 100 + 20 * 100 = 3000 (value * ps)
        assert trace.integral() == pytest.approx(3000.0)

    def test_peak(self):
        trace = ValueTrace("p")
        trace.record(0, 5.0)
        trace.record(10, 50.0)
        trace.record(20, 7.0)
        assert trace.peak() == 50.0


class TestActivityTrace:
    def test_basic_interval(self, sim):
        activity = ActivityTrace(sim, "a")
        activity.begin()
        sim.run(until_ps=100)
        activity.end()
        assert activity.intervals == [(0, 100)]

    def test_nested_begins_reference_counted(self, sim):
        activity = ActivityTrace(sim, "a")
        activity.begin()
        sim.run(until_ps=10)
        activity.begin()
        sim.run(until_ps=50)
        activity.end()
        assert activity.active
        sim.run(until_ps=100)
        activity.end()
        assert activity.intervals == [(0, 100)]

    def test_end_without_begin_raises(self, sim):
        with pytest.raises(SimulationError):
            ActivityTrace(sim, "a").end()

    def test_total_active_with_window(self, sim):
        activity = ActivityTrace(sim, "a")
        activity.begin()
        sim.run(until_ps=100)
        activity.end()
        sim.run(until_ps=200)
        activity.begin()
        sim.run(until_ps=300)
        activity.end()
        assert activity.total_active_ps() == 200
        assert activity.total_active_ps(50, 250) == 100

    def test_open_interval_counted_to_now(self, sim):
        activity = ActivityTrace(sim, "a")
        activity.begin()
        sim.run(until_ps=75)
        assert activity.total_active_ps() == 75

    def test_active_at(self, sim):
        activity = ActivityTrace(sim, "a")
        sim.run(until_ps=10)
        activity.begin()
        sim.run(until_ps=20)
        activity.end()
        assert not activity.active_at(5)
        assert activity.active_at(15)
        assert not activity.active_at(25)

    def test_close_force_closes(self, sim):
        activity = ActivityTrace(sim, "a")
        activity.begin()
        activity.begin()
        sim.run(until_ps=40)
        activity.close()
        assert not activity.active
        assert activity.intervals == [(0, 40)]
