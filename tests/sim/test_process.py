"""Generator-process scheduling."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Clock,
    Delay,
    Event,
    Process,
    Simulator,
    WaitCycles,
    WaitEvent,
)
from repro.sim.process import run_process
from repro.units import Frequency


def test_process_runs_first_segment_immediately(sim):
    seen = []

    def body():
        seen.append(sim.now)
        yield Delay(10)

    Process(sim, body())
    assert seen == [0]


def test_delay_advances_time(sim):
    times = []

    def body():
        yield Delay(100)
        times.append(sim.now)
        yield Delay(50)
        times.append(sim.now)

    Process(sim, body())
    sim.run()
    assert times == [100, 150]


def test_wait_cycles_uses_current_frequency(sim):
    clock = Clock(sim, "clk", Frequency.from_mhz(100))
    times = []

    def body():
        yield WaitCycles(clock, 10)   # 100 ns
        times.append(sim.now)
        clock.retune(Frequency.from_mhz(200))
        yield WaitCycles(clock, 10)   # 50 ns
        times.append(sim.now)

    Process(sim, body())
    sim.run()
    assert times == [100_000, 150_000]


def test_wait_event_receives_payload(sim):
    event = Event(sim, "go")
    received = []

    def waiter():
        payload = yield WaitEvent(event)
        received.append(payload)

    Process(sim, waiter())
    sim.after(500, lambda: event.trigger("data"))
    sim.run()
    assert received == ["data"]
    assert sim.now == 500


def test_process_result_after_return(sim):
    def body():
        yield Delay(1)
        return 42

    process = Process(sim, body())
    sim.run()
    assert process.done
    assert process.result == 42


def test_result_before_done_raises(sim):
    def body():
        yield Delay(1)

    process = Process(sim, body())
    with pytest.raises(SimulationError):
        _ = process.result


def test_unsupported_yield_raises(sim):
    def body():
        yield "not-a-command"

    with pytest.raises(SimulationError):
        Process(sim, body())


def test_run_process_helper_returns_result(sim):
    def body():
        yield Delay(10)
        return "done"

    assert run_process(sim, body()) == "done"


def test_run_process_unfinished_raises():
    sim = Simulator()
    event = Event(sim, "never")

    def body():
        yield WaitEvent(event)

    with pytest.raises(SimulationError):
        run_process(sim, body(), until_ps=100)


def test_two_processes_interleave(sim):
    log = []

    def producer(event):
        yield Delay(30)
        log.append(("produced", sim.now))
        event.trigger("item")

    def consumer(event):
        item = yield WaitEvent(event)
        log.append(("consumed", sim.now, item))

    event = Event(sim, "item")
    Process(sim, consumer(event), name="consumer")
    Process(sim, producer(event), name="producer")
    sim.run()
    assert log == [("produced", 30), ("consumed", 30, "item")]
