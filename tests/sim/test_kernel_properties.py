"""Hypothesis properties of the event kernel.

Total ordering, time monotonicity and cancellation correctness over
randomly generated schedules — the invariants everything above the
kernel silently relies on.
"""

# Shared-list appends from many callbacks are the point here: the
# properties assert the kernel's total ordering of exactly such sites.
# repro-lint: disable=R701

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 10_000), max_size=100))
def test_events_fire_in_global_time_order(times):
    sim = Simulator()
    fired = []
    for time_ps in times:
        sim.at(time_ps, lambda t=time_ps: fired.append((t, sim.now)))
    sim.run()
    observed = [t for t, _ in fired]
    assert observed == sorted(times)
    # sim.now at fire time equals the event's timestamp.
    assert all(t == now for t, now in fired)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60),
       st.data())
def test_cancellation_removes_exactly_the_cancelled(times, data):
    sim = Simulator()
    fired = []
    handles = [sim.at(t, lambda i=i: fired.append(i))
               for i, t in enumerate(times)]
    to_cancel = data.draw(st.sets(
        st.integers(0, len(times) - 1), max_size=len(times)))
    for index in to_cancel:
        handles[index].cancel()
    sim.run()
    assert set(fired) == set(range(len(times))) - to_cancel


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5_000), st.integers(0, 5_000)),
                max_size=40))
def test_nested_scheduling_preserves_order(pairs):
    """Events scheduled from within events still fire time-ordered."""
    sim = Simulator()
    trace = []

    for first, delta in pairs:
        def outer(first=first, delta=delta):
            trace.append(sim.now)
            sim.after(delta, lambda: trace.append(sim.now))

        sim.at(first, outer)
    sim.run()
    assert trace == sorted(trace)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1_000), max_size=50),
       st.integers(0, 1_000))
def test_run_until_splits_cleanly(times, bound):
    """run(until) then run() fires everything exactly once, in order."""
    sim = Simulator()
    fired = []
    for time_ps in times:
        sim.at(time_ps, lambda t=time_ps: fired.append(t))
    sim.run(until_ps=bound)
    early = list(fired)
    assert all(t <= bound for t in early)
    sim.run()
    assert fired == sorted(times)
