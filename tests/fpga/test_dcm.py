"""DCM / DRP model (DyCloGen's substrate)."""

import pytest

from repro.errors import DrpProtocolError, FrequencyError
from repro.fpga.dcm import (
    DADDR_D,
    DADDR_M,
    Dcm,
    DcmSettings,
    best_settings,
)
from repro.sim import Clock
from repro.units import Frequency


def mhz(value):
    return Frequency.from_mhz(value)


def make_dcm(sim, m=2, d=2, f_in=100.0):
    clock = Clock(sim, "out", mhz(f_in))
    dcm = Dcm(sim, mhz(f_in), DcmSettings(m, d), clock)
    return dcm, clock


class TestSettings:
    def test_paper_headline_operating_point(self):
        # F_in = 100 MHz, M = 29, D = 8 -> 362.5 MHz (Section IV).
        assert DcmSettings(29, 8).output(mhz(100)) == mhz(362.5)

    def test_m_range_enforced(self):
        with pytest.raises(FrequencyError):
            DcmSettings(1, 8)
        with pytest.raises(FrequencyError):
            DcmSettings(34, 8)

    def test_d_range_enforced(self):
        with pytest.raises(FrequencyError):
            DcmSettings(2, 0)
        with pytest.raises(FrequencyError):
            DcmSettings(2, 33)


class TestBestSettings:
    def test_exact_target_found(self):
        settings = best_settings(mhz(100), mhz(362.5))
        assert settings.output(mhz(100)) == mhz(362.5)

    def test_paper_m_d_pair(self):
        settings = best_settings(mhz(100), mhz(362.5))
        # Ties prefer smaller M; 29/8 is the smallest exact pair.
        assert (settings.multiplier, settings.divisor) == (29, 8)

    def test_inexact_target_close(self):
        settings = best_settings(mhz(100), mhz(126))
        achieved = settings.output(mhz(100))
        assert abs(achieved.mhz - 126) < 2.0

    def test_fout_cap_respected(self):
        settings = best_settings(mhz(100), mhz(126), fout_max=mhz(126))
        assert settings.output(mhz(100)) <= mhz(126)

    def test_unreachable_target_clamps_to_window_edge(self):
        # The grid cannot reach 10 GHz; the closest legal output is the
        # DFS window edge (DyCloGen's 1 % check rejects it upstream).
        settings = best_settings(mhz(100), mhz(10_000))
        assert settings.output(mhz(100)) <= mhz(400)
        assert settings.output(mhz(100)) >= mhz(390)

    def test_empty_window_raises(self):
        with pytest.raises(FrequencyError):
            best_settings(mhz(100), mhz(50), fout_max=mhz(10))


class TestDcm:
    def test_output_clock_synthesized_at_init(self, sim):
        dcm, clock = make_dcm(sim, m=29, d=8)
        assert clock.frequency == mhz(362.5)
        assert dcm.locked

    def test_drp_write_then_apply_retunes(self, sim):
        dcm, clock = make_dcm(sim, m=2, d=2)
        dcm.drp_write(DADDR_M, 4)
        dcm.drp_write(DADDR_D, 2)
        lock_ps = dcm.apply()
        assert clock.frequency == mhz(200)
        assert lock_ps > 0
        assert not dcm.locked  # mid-relock

    def test_locked_after_lock_time(self, sim):
        dcm, _ = make_dcm(sim)
        dcm.drp_write(DADDR_M, 4)
        lock_ps = dcm.apply()
        sim.run(until_ps=lock_ps)
        assert dcm.locked

    def test_drp_write_during_relock_rejected(self, sim):
        dcm, _ = make_dcm(sim)
        dcm.drp_write(DADDR_M, 4)
        dcm.apply()
        with pytest.raises(DrpProtocolError):
            dcm.drp_write(DADDR_M, 8)

    def test_apply_without_staged_writes_rejected(self, sim):
        dcm, _ = make_dcm(sim)
        with pytest.raises(DrpProtocolError):
            dcm.apply()

    def test_unknown_drp_address_rejected(self, sim):
        dcm, _ = make_dcm(sim)
        with pytest.raises(DrpProtocolError):
            dcm.drp_write(0x99, 1)

    def test_partial_update_keeps_other_field(self, sim):
        dcm, clock = make_dcm(sim, m=2, d=2)  # 100 MHz
        dcm.drp_write(DADDR_M, 6)
        dcm.apply()
        assert dcm.settings.divisor == 2
        assert clock.frequency == mhz(300)

    def test_out_of_window_output_rejected(self, sim):
        dcm, _ = make_dcm(sim)
        dcm.drp_write(DADDR_M, 2)
        dcm.drp_write(DADDR_D, 32)  # 6.25 MHz, below DFS window
        with pytest.raises(FrequencyError):
            dcm.apply()

    def test_retune_to_sequences_full_protocol(self, sim):
        dcm, clock = make_dcm(sim)
        lock_ps = dcm.retune_to(mhz(362.5))
        assert clock.frequency == mhz(362.5)
        assert dcm.retune_count == 1
        sim.run(until_ps=lock_ps)
        assert dcm.locked
