"""Area model — must reproduce Table II exactly."""

import pytest

from repro.errors import HardwareModelError
from repro.fpga.area import (
    MODULE_INVENTORIES,
    PACKERS,
    ResourceInventory,
    SlicePacker,
    slices_for,
)

# Table II of the paper.
PAPER_TABLE2 = {
    "dyclogen": {"virtex5": 24, "virtex6": 18},
    "urec": {"virtex5": 26, "virtex6": 26},
    "decompressor": {"virtex5": 1035, "virtex6": 900},
}


@pytest.mark.parametrize("module", sorted(PAPER_TABLE2))
@pytest.mark.parametrize("family", ["virtex5", "virtex6"])
def test_table2_reproduced_exactly(module, family):
    assert slices_for(module, family) == PAPER_TABLE2[module][family]


def test_ff_bound_modules_shrink_on_v6():
    # V6 slices hold twice the flip-flops, so FF-bound designs shrink.
    assert slices_for("dyclogen", "virtex6") < slices_for("dyclogen",
                                                          "virtex5")
    assert slices_for("decompressor", "virtex6") \
        < slices_for("decompressor", "virtex5")


def test_lut_bound_module_constant_across_families():
    assert slices_for("urec", "virtex5") == slices_for("urec", "virtex6")


def test_urec_is_tiny_relative_to_decompressor():
    assert slices_for("urec", "virtex5") * 30 \
        < slices_for("decompressor", "virtex5")


def test_microblaze_dwarfs_urec():
    # The Section III argument for hardware managers: the MicroBlaze
    # costs more than an order of magnitude more area than UReC.
    assert slices_for("microblaze", "virtex5") \
        > 10 * slices_for("urec", "virtex5")


def test_unknown_module_and_family():
    with pytest.raises(KeyError):
        slices_for("nonexistent", "virtex5")
    with pytest.raises(KeyError):
        slices_for("urec", "virtex9")


def test_inventory_addition():
    total = MODULE_INVENTORIES["dyclogen"] + MODULE_INVENTORIES["urec"]
    assert total.luts == 56 + 82
    assert total.ffs == 76 + 64
    assert total.dcm == 1


def test_negative_inventory_rejected():
    with pytest.raises(HardwareModelError):
        ResourceInventory(luts=-1, ffs=0)


def test_packer_efficiency_bounds():
    with pytest.raises(HardwareModelError):
        SlicePacker("x", 4, 4, packing_efficiency=0.0)
    with pytest.raises(HardwareModelError):
        SlicePacker("x", 4, 4, packing_efficiency=1.5)


def test_packer_takes_max_of_pressures():
    packer = SlicePacker("test", luts_per_slice=4, ffs_per_slice=4,
                         packing_efficiency=1.0)
    lut_heavy = ResourceInventory(luts=40, ffs=4)
    ff_heavy = ResourceInventory(luts=4, ffs=40)
    assert packer.slices(lut_heavy) == 10
    assert packer.slices(ff_heavy) == 10


def test_families_registered():
    assert set(PACKERS) == {"virtex4", "virtex5", "virtex6"}
    assert PACKERS["virtex6"].ffs_per_slice \
        == 2 * PACKERS["virtex5"].ffs_per_slice
