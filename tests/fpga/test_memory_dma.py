"""External memories and DMA engines (the baselines' substrates)."""

import pytest

from repro.errors import CapacityError, FrequencyError, HardwareModelError
from repro.fpga.dma import CustomBurstReader, XilinxCentralDma
from repro.fpga.memory import CacheModel, CompactFlash, Ddr2Sdram
from repro.units import DataSize, Frequency


class TestCompactFlash:
    def test_read_duration_scales_with_size(self):
        cf = CompactFlash()
        small = cf.read_duration_ps(DataSize.from_kb(1))
        large = cf.read_duration_ps(DataSize.from_kb(10))
        assert large == pytest.approx(10 * small, rel=0.01)

    def test_sustained_rate(self):
        cf = CompactFlash(sustained_bandwidth_kbps=250)
        one_second_worth = DataSize(250 * 1024)
        assert cf.read_duration_ps(one_second_worth) \
            == pytest.approx(1e12, rel=0.001)

    def test_capacity_enforced(self):
        cf = CompactFlash(capacity=DataSize.from_kb(4))
        with pytest.raises(CapacityError):
            cf.read_duration_ps(DataSize.from_kb(5))


class TestDdr2:
    def test_default_efficiency_matches_mst_icap(self):
        # 24 / (24+25) = 49 % -> 235 MB/s of 480 at 120 MHz.
        ddr = Ddr2Sdram(burst_words=24, burst_setup_cycles=25)
        assert ddr.efficiency() == pytest.approx(24 / 49)
        mbps = ddr.effective_bandwidth_mbps(Frequency.from_mhz(120))
        assert mbps == pytest.approx(480 * 24 / 49 / 1.048576, rel=0.02)

    def test_read_cycles_full_bursts(self):
        ddr = Ddr2Sdram(burst_words=16, burst_setup_cycles=17)
        assert ddr.read_cycles(32) == 32 + 2 * 17

    def test_read_cycles_ragged_burst(self):
        ddr = Ddr2Sdram(burst_words=16, burst_setup_cycles=17)
        assert ddr.read_cycles(17) == 17 + 2 * 17

    def test_invalid_parameters(self):
        with pytest.raises(HardwareModelError):
            Ddr2Sdram(burst_words=0)
        with pytest.raises(HardwareModelError):
            Ddr2Sdram(burst_words=16).read_cycles(-1)


class TestCache:
    def test_hit_cycles(self):
        assert CacheModel().read_cycles(100) == 100

    def test_fits(self):
        cache = CacheModel(capacity=DataSize.from_kb(64))
        assert cache.fits(DataSize.from_kb(64))
        assert not cache.fits(DataSize.from_kb(65))


class TestXilinxCentralDma:
    def test_efficiency_below_one(self):
        dma = XilinxCentralDma()
        assert 0 < dma.efficiency() < 1.0

    def test_bram_hwicap_parameterization(self):
        dma = XilinxCentralDma(burst_words=24, burst_setup_cycles=7)
        assert dma.efficiency() == pytest.approx(24 / 31)

    def test_frequency_cap(self):
        dma = XilinxCentralDma()
        dma.check_frequency(Frequency.from_mhz(200))
        with pytest.raises(FrequencyError):
            dma.check_frequency(Frequency.from_mhz(201))

    def test_transfer_cycles(self):
        dma = XilinxCentralDma(burst_words=16, burst_setup_cycles=5)
        assert dma.transfer_cycles(16) == 21
        assert dma.transfer_cycles(0) == 0


class TestCustomBurstReader:
    def test_one_word_per_cycle_plus_setup(self):
        reader = CustomBurstReader(setup_cycles=2)
        assert reader.transfer_cycles(1000) == 1002
        assert reader.transfer_cycles(0) == 0

    def test_efficiency_is_unity(self):
        assert CustomBurstReader().efficiency() == 1.0

    def test_demonstrated_envelope(self):
        reader = CustomBurstReader()
        reader.check_frequency(Frequency.from_mhz(362.5))
        with pytest.raises(FrequencyError):
            reader.check_frequency(Frequency.from_mhz(363))

    def test_beats_central_dma_at_every_size(self):
        custom = CustomBurstReader()
        central = XilinxCentralDma()
        for words in (16, 100, 1000, 55424):
            assert custom.transfer_cycles(words) \
                < central.transfer_cycles(words)


def test_compact_flash_word_read_time():
    cf = CompactFlash(sustained_bandwidth_kbps=250)
    # 4 bytes at 250 KB/s = 15.625 us.
    assert cf.word_read_ps() == pytest.approx(15_625_000, rel=0.001)
