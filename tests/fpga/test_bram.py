"""Dual-port BRAM model."""

import pytest

from repro.errors import CapacityError, FrequencyError, HardwareModelError
from repro.fpga.bram import Bram
from repro.sim import Clock
from repro.units import DataSize, Frequency


def make_clock(sim, mhz):
    return Clock(sim, "clk", Frequency.from_mhz(mhz))


def test_default_capacity_is_256kb(sim):
    assert Bram(sim).capacity == DataSize(256 * 1024)


def test_capacity_must_be_word_aligned(sim):
    with pytest.raises(CapacityError):
        Bram(sim, capacity=DataSize(1001))


def test_preload_then_read_roundtrip(sim):
    bram = Bram(sim)
    bram.preload([10, 20, 30])
    bram.enable_read_port(make_clock(sim, 100))
    assert bram.read_word(0) == 10
    assert bram.read_burst(1, 2) == [20, 30]


def test_preload_offset(sim):
    bram = Bram(sim)
    bram.preload([1], offset=5)
    bram.enable_read_port(make_clock(sim, 100))
    assert bram.read_word(5) == 1
    assert bram.valid_words == 6


def test_preload_overflow_rejected(sim):
    bram = Bram(sim, capacity=DataSize(16))  # 4 words
    with pytest.raises(CapacityError):
        bram.preload([0] * 5)


def test_preload_non_word_value_rejected(sim):
    bram = Bram(sim)
    with pytest.raises(HardwareModelError):
        bram.preload([1 << 32])


def test_read_requires_enabled_port(sim):
    bram = Bram(sim)
    bram.preload([1])
    with pytest.raises(HardwareModelError):
        bram.read_word(0)
    with pytest.raises(HardwareModelError):
        bram.read_burst(0, 1)


def test_burst_out_of_range_rejected(sim):
    bram = Bram(sim, capacity=DataSize(16))
    bram.enable_read_port(make_clock(sim, 100))
    with pytest.raises(CapacityError):
        bram.read_burst(2, 3)


def test_overclocked_read_port_allowed_by_default(sim):
    bram = Bram(sim)
    bram.enable_read_port(make_clock(sim, 362.5))  # above the 300 MHz spec


def test_overclock_rejected_when_disallowed(sim):
    bram = Bram(sim, allow_overclock=False)
    with pytest.raises(FrequencyError):
        bram.enable_read_port(make_clock(sim, 362.5))


def test_double_enable_rejected(sim):
    bram = Bram(sim)
    bram.enable_read_port(make_clock(sim, 100))
    with pytest.raises(HardwareModelError):
        bram.enable_read_port(make_clock(sim, 100))


def test_port_b_activity_intervals(sim):
    bram = Bram(sim)
    bram.enable_read_port(make_clock(sim, 100))
    sim.run(until_ps=700)
    bram.disable_read_port()
    assert bram.port_b_activity.intervals == [(0, 700)]


def test_fits_accounts_for_header_word(sim):
    bram = Bram(sim, capacity=DataSize(16))  # 4 words
    assert bram.fits(DataSize.from_words(3))
    assert not bram.fits(DataSize.from_words(4))  # header needs the 4th


def test_stored_reports_valid_extent(sim):
    bram = Bram(sim)
    assert bram.stored is None
    bram.preload([1, 2, 3])
    assert bram.stored == DataSize.from_words(3)


def test_preload_cycles_is_one_per_word(sim):
    assert Bram(sim).preload_cycles(100) == 100
