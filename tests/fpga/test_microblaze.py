"""MicroBlaze manager cycle-cost model."""

import pytest

from repro.errors import HardwareModelError
from repro.fpga.microblaze import (
    CONTROL_OVERHEAD_CYCLES,
    MicroBlaze,
    XPS_COPY_CYCLES_PER_WORD,
)
from repro.sim import Clock
from repro.units import Frequency


def make_cpu(sim, mhz=100.0, **kwargs):
    clock = Clock(sim, "clk1", Frequency.from_mhz(mhz))
    return MicroBlaze(sim, clock, **kwargs)


def test_control_overhead_is_1_2us_at_100mhz(sim):
    # The Fig. 5 calibration: 120 cycles at 100 MHz = 1.2 us.
    cpu = make_cpu(sim)
    assert cpu.control_duration_ps() == 1_200_000


def test_control_overhead_scales_with_clock(sim):
    fast = make_cpu(sim, mhz=200)
    assert fast.control_duration_ps() == 600_000


def test_copy_loop_gives_14_5_mbps(sim):
    # 26 cycles/word at 100 MHz -> ~14.7 decimal MB/s (paper: 14.5).
    cpu = make_cpu(sim)
    words = 25_000
    duration_s = cpu.copy_duration_ps(words) / 1e12
    mbps = words * 4 / 1e6 / duration_s
    assert mbps == pytest.approx(15.4, rel=0.02)


def test_unoptimized_profile_gives_1_5_mbps(sim):
    cpu = make_cpu(sim, copy_cycles_per_word=254)
    words = 25_000
    duration_s = cpu.copy_duration_ps(words) / 1e12
    mbps = words * 4 / 1e6 / duration_s
    assert mbps == pytest.approx(1.57, rel=0.02)


def test_preload_duration(sim):
    cpu = make_cpu(sim)
    assert cpu.preload_duration_ps(10) \
        == 10 * cpu.preload_cycles_per_word * 10_000


def test_parse_duration_positive(sim):
    assert make_cpu(sim).parse_duration_ps() > 0


def test_negative_word_counts_rejected(sim):
    cpu = make_cpu(sim)
    with pytest.raises(HardwareModelError):
        cpu.copy_duration_ps(-1)
    with pytest.raises(HardwareModelError):
        cpu.preload_duration_ps(-1)


def test_invalid_cycle_costs_rejected(sim):
    with pytest.raises(HardwareModelError):
        make_cpu(sim, control_overhead_cycles=0)
    with pytest.raises(HardwareModelError):
        make_cpu(sim, copy_cycles_per_word=-5)


def test_defaults_exported():
    assert CONTROL_OVERHEAD_CYCLES == 120
    assert XPS_COPY_CYCLES_PER_WORD == 26
