"""ICAP readback (RCFG/FDRO) and the hardware sequencer manager."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.format import (
    Command,
    ConfigPacket,
    ConfigRegister,
    Opcode,
    SYNC_WORD,
    command_packet,
    write_packet,
)
from repro.bitstream.frames import BlockType, FrameAddress
from repro.bitstream.generator import REGION_ORIGIN, generate_bitstream
from repro.errors import BitstreamFormatError, HardwareModelError
from repro.fpga.config_memory import (
    ConfigurationLogic,
    ConfigurationMemory,
)
from repro.fpga.icap import Icap
from repro.fpga.sequencer import HardwareSequencer
from repro.sim import Clock
from repro.units import DataSize, Frequency


def far(column, minor=0):
    return FrameAddress(BlockType.CLB_IO_CLK, 0, 0, column, minor)


@pytest.fixture
def configured_logic(small_bitstream):
    logic = ConfigurationLogic(ConfigurationMemory(VIRTEX5_SX50T))
    logic.feed_words(small_bitstream.raw_words)
    return logic


class TestLogicReadback:
    def _read(self, logic, origin, words):
        sequence = [SYNC_WORD] if not logic.synced else []
        sequence += command_packet(Command.RCFG).encode()
        sequence += write_packet(ConfigRegister.FAR,
                                 [origin.pack()]).encode()
        sequence += ConfigPacket(Opcode.READ, ConfigRegister.FDRO,
                                 [0] * words, type2=True).encode()[:2]
        before = len(logic.readback_data)
        logic.feed_words(sequence)
        return logic.readback_data[before:]

    def test_readback_returns_written_frames(self, configured_logic,
                                             small_bitstream):
        words = VIRTEX5_SX50T.frame_words * small_bitstream.frame_count
        data = self._read(configured_logic, REGION_ORIGIN, words)
        start = small_bitstream.frame_payload_offset
        expected = small_bitstream.raw_words[
            start:start + small_bitstream.frame_payload_words]
        assert data == expected

    def test_unconfigured_frames_read_as_zero(self, configured_logic):
        data = self._read(configured_logic, far(80), 41)
        assert data == [0] * 41

    def test_read_without_rcfg_rejected(self, configured_logic):
        logic = configured_logic
        sequence = [SYNC_WORD]
        sequence += command_packet(Command.WCFG).encode()
        sequence += write_packet(ConfigRegister.FAR,
                                 [far(4).pack()]).encode()
        sequence += ConfigPacket(Opcode.READ, ConfigRegister.FDRO,
                                 [0] * 41, type2=True).encode()[:2]
        with pytest.raises(BitstreamFormatError, match="RCFG"):
            logic.feed_words(sequence)

    def test_read_from_non_fdro_rejected(self, configured_logic):
        logic = configured_logic
        sequence = [SYNC_WORD]
        sequence += command_packet(Command.RCFG).encode()
        sequence += write_packet(ConfigRegister.FAR,
                                 [far(4).pack()]).encode()
        header = (0b001 << 29) | (1 << 27) \
            | (int(ConfigRegister.FDRI) << 13) | 1
        with pytest.raises(BitstreamFormatError, match="non-readable"):
            logic.feed_words(sequence + [header])


class TestIcapReadback:
    def test_icap_readback_roundtrip(self, small_bitstream):
        from repro.core.system import UPaRCSystem
        system = UPaRCSystem(decompressor=None)
        system.run(small_bitstream)
        system.icap.enable()
        data, duration = system.icap.readback(
            REGION_ORIGIN, small_bitstream.frame_count)
        system.icap.disable()
        start = small_bitstream.frame_payload_offset
        expected = small_bitstream.raw_words[
            start:start + small_bitstream.frame_payload_words]
        assert data == expected
        assert duration > 0

    def test_readback_does_not_disturb_payload_crc(self, small_bitstream):
        from repro.core.system import UPaRCSystem
        system = UPaRCSystem(decompressor=None)
        result = system.run(small_bitstream)
        crc_before = system.icap.payload_crc
        system.icap.enable()
        system.icap.readback(REGION_ORIGIN, 2)
        system.icap.disable()
        assert system.icap.payload_crc == crc_before
        assert result.verified

    def test_readback_requires_logic(self, sim):
        clock = Clock(sim, "clk", Frequency.from_mhz(100))
        icap = Icap(sim, VIRTEX5_SX50T, clock)
        icap.enable()
        with pytest.raises(HardwareModelError):
            icap.readback(far(4), 1)

    def test_readback_requires_enable(self, sim):
        logic = ConfigurationLogic(ConfigurationMemory(VIRTEX5_SX50T))
        clock = Clock(sim, "clk", Frequency.from_mhz(100))
        icap = Icap(sim, VIRTEX5_SX50T, clock, config_logic=logic)
        with pytest.raises(HardwareModelError):
            icap.readback(far(4), 1)


class TestHardwareSequencer:
    def test_control_cost_10x_below_microblaze(self, sim):
        clock = Clock(sim, "clk", Frequency.from_mhz(100))
        sequencer = HardwareSequencer(sim, clock)
        assert sequencer.control_duration_ps() == 120_000  # 12 cycles

    def test_invalid_costs_rejected(self, sim):
        clock = Clock(sim, "clk", Frequency.from_mhz(100))
        with pytest.raises(HardwareModelError):
            HardwareSequencer(sim, clock, control_overhead_cycles=0)
        with pytest.raises(HardwareModelError):
            HardwareSequencer(sim, clock).preload_duration_ps(-1)


class TestHardwareManagerSystem:
    def test_invalid_manager_kind_rejected(self):
        from repro.core.system import UPaRCSystem
        from repro.errors import ReconfigurationFailed
        with pytest.raises(ReconfigurationFailed):
            UPaRCSystem(manager="arm")

    def test_hardware_manager_runs_verified(self, small_bitstream):
        from repro.core.system import UPaRCSystem
        system = UPaRCSystem(decompressor=None, manager="hardware")
        result = system.run(small_bitstream)
        assert result.verified
        assert result.control_overhead_ps == 120_000

    def test_hardware_manager_improves_small_bitstream_efficiency(self):
        from repro.core.system import UPaRCSystem
        small = generate_bitstream(size=DataSize.from_kb(6.5))
        frequency = Frequency.from_mhz(362.5)
        soft = UPaRCSystem(decompressor=None).run(small,
                                                  frequency=frequency)
        hard = UPaRCSystem(decompressor=None,
                           manager="hardware").run(small,
                                                   frequency=frequency)
        assert hard.bandwidth_decimal_mbps \
            > soft.bandwidth_decimal_mbps * 1.15

    def test_hardware_manager_flattens_energy(self, paper_bitstream):
        """The Section V prediction: without active waiting the energy
        spread across frequencies shrinks."""
        from repro.core.system import UPaRCSystem

        def spread(manager):
            energies = []
            for mhz in (50, 300):
                system = UPaRCSystem(decompressor=None, manager=manager)
                result = system.run(paper_bitstream,
                                    frequency=Frequency.from_mhz(mhz))
                energies.append(result.energy.energy_uj)
            return energies[0] / energies[1]

        assert spread("hardware") < spread("microblaze")
