"""Configuration memory and packet-interpreting logic."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T, VIRTEX6_LX240T
from repro.bitstream.format import (
    Command,
    ConfigRegister,
    SYNC_WORD,
    command_packet,
    write_packet,
)
from repro.bitstream.frames import BlockType, FrameAddress
from repro.bitstream.generator import REGION_ORIGIN, generate_bitstream
from repro.errors import BitstreamFormatError, DeviceMismatchError
from repro.fpga.config_memory import (
    ConfigurationLogic,
    ConfigurationMemory,
)
from repro.units import DataSize


@pytest.fixture
def memory():
    return ConfigurationMemory(VIRTEX5_SX50T)


@pytest.fixture
def logic(memory):
    return ConfigurationLogic(memory)


class TestConfigurationMemory:
    def test_write_read_roundtrip(self, memory):
        address = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0)
        words = list(range(41))
        memory.write_frame(address, words)
        assert memory.read_frame(address) == words

    def test_unwritten_frame_is_none(self, memory):
        address = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 9, 9)
        assert memory.read_frame(address) is None

    def test_wrong_frame_size_rejected(self, memory):
        address = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0)
        with pytest.raises(BitstreamFormatError):
            memory.write_frame(address, [0] * 40)

    def test_frames_from_enumerates_consecutively(self, memory):
        start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0)
        memory.write_frame(start, [1] * 41)
        memory.write_frame(start.next_in(VIRTEX5_SX50T), [2] * 41)
        frames = memory.frames_from(start, 3)
        assert frames[0] == [1] * 41
        assert frames[1] == [2] * 41
        assert frames[2] is None

    def test_read_returns_copy(self, memory):
        address = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0)
        memory.write_frame(address, [7] * 41)
        frame = memory.read_frame(address)
        frame[0] = 99
        assert memory.read_frame(address)[0] == 7


class TestConfigurationLogic:
    def test_ignores_words_before_sync(self, logic):
        logic.feed_words([0xFFFFFFFF, 0x000000BB, 0x11220044])
        assert not logic.synced
        logic.feed_word(SYNC_WORD)
        assert logic.synced

    def test_full_generated_bitstream_configures_frames(self, logic):
        bitstream = generate_bitstream(size=DataSize.from_kb(8))
        logic.feed_words(bitstream.raw_words)
        assert logic.frames_written == bitstream.frame_count
        assert logic.crc_checks_passed == 1
        assert logic.desync_count == 1
        assert not logic.synced

    def test_frame_contents_match_generator_payload(self, logic):
        bitstream = generate_bitstream(size=DataSize.from_kb(8))
        logic.feed_words(bitstream.raw_words)
        frames = logic.memory.frames_from(REGION_ORIGIN,
                                          bitstream.frame_count)
        flat = [word for frame in frames for word in frame]
        start = bitstream.frame_payload_offset
        expected = bitstream.raw_words[start:start
                                       + bitstream.frame_payload_words]
        assert flat == expected

    def test_same_stream_twice_reconfigures(self, logic):
        bitstream = generate_bitstream(size=DataSize.from_kb(8))
        logic.feed_words(bitstream.raw_words)
        logic.feed_words(bitstream.raw_words)
        assert logic.sync_count == 2
        assert logic.frames_written == 2 * bitstream.frame_count

    def test_corrupted_frame_word_fails_crc(self, logic):
        bitstream = generate_bitstream(size=DataSize.from_kb(8))
        words = list(bitstream.raw_words)
        words[bitstream.frame_payload_offset + 5] ^= 0x00010000
        with pytest.raises(BitstreamFormatError, match="CRC mismatch"):
            logic.feed_words(words)

    def test_wrong_device_idcode_rejected(self):
        logic = ConfigurationLogic(ConfigurationMemory(VIRTEX6_LX240T))
        bitstream = generate_bitstream(size=DataSize.from_kb(8))
        with pytest.raises(DeviceMismatchError):
            logic.feed_words(bitstream.raw_words)

    def test_fdri_without_wcfg_rejected(self, logic):
        logic.feed_word(SYNC_WORD)
        words = []
        words += write_packet(ConfigRegister.IDCODE,
                              [VIRTEX5_SX50T.idcode]).encode()
        words += write_packet(
            ConfigRegister.FAR,
            [FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0).pack()]
        ).encode()
        words += write_packet(ConfigRegister.FDRI, [0]).encode()
        with pytest.raises(BitstreamFormatError, match="WCFG"):
            logic.feed_words(words)

    def test_fdri_without_far_rejected(self, logic):
        logic.feed_word(SYNC_WORD)
        words = []
        words += write_packet(ConfigRegister.IDCODE,
                              [VIRTEX5_SX50T.idcode]).encode()
        words += command_packet(Command.WCFG).encode()
        words += write_packet(ConfigRegister.FDRI, [0]).encode()
        with pytest.raises(BitstreamFormatError, match="FAR"):
            logic.feed_words(words)

    def test_fdri_before_idcode_rejected(self, logic):
        logic.feed_word(SYNC_WORD)
        words = []
        words += command_packet(Command.WCFG).encode()
        words += write_packet(
            ConfigRegister.FAR,
            [FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0).pack()]
        ).encode()
        words += write_packet(ConfigRegister.FDRI, [0]).encode()
        with pytest.raises(BitstreamFormatError, match="IDCODE"):
            logic.feed_words(words)

    def test_undefined_register_rejected(self, logic):
        logic.feed_word(SYNC_WORD)
        header = (0b001 << 29) | (2 << 27) | (31 << 13) | 1
        with pytest.raises(BitstreamFormatError):
            logic.feed_words([header, 0])

    def test_orphan_type2_rejected(self, logic):
        logic.feed_word(SYNC_WORD)
        with pytest.raises(BitstreamFormatError):
            logic.feed_word((0b010 << 29) | (2 << 27) | 5)

    def test_permissive_crc_mode(self):
        logic = ConfigurationLogic(ConfigurationMemory(VIRTEX5_SX50T),
                                   strict_crc=False)
        bitstream = generate_bitstream(size=DataSize.from_kb(8))
        words = list(bitstream.raw_words)
        words[bitstream.frame_payload_offset] ^= 1
        logic.feed_words(words)  # must not raise
        assert logic.crc_checks_passed == 0


class TestSystemIntegration:
    def test_uparc_run_configures_frames(self, small_bitstream):
        from repro.core.system import UPaRCSystem
        system = UPaRCSystem(decompressor=None)
        result = system.run(small_bitstream)
        assert result.frames_written == small_bitstream.frame_count
        frames = system.config_memory.frames_from(
            REGION_ORIGIN, small_bitstream.frame_count)
        assert all(frame is not None for frame in frames)

    def test_compressed_run_configures_identical_frames(self,
                                                        small_bitstream):
        from repro.core.system import UPaRCSystem
        from repro.core.urec import OperationMode
        raw = UPaRCSystem(decompressor=None)
        raw.run(small_bitstream)
        compressed = UPaRCSystem()
        compressed.run(small_bitstream, mode=OperationMode.COMPRESSED)
        count = small_bitstream.frame_count
        assert raw.config_memory.frames_from(REGION_ORIGIN, count) \
            == compressed.config_memory.frames_from(REGION_ORIGIN, count)

    def test_baselines_configure_frames(self, small_bitstream):
        from repro.controllers import Farm
        result = Farm().best_result(small_bitstream)
        assert result.frames_written == small_bitstream.frame_count


def test_nop_packet_with_payload_is_skipped(logic):
    """NOP headers may carry padding payload; the words must be
    consumed, not decoded as headers."""
    logic.feed_word(SYNC_WORD)
    nop_with_payload = (0b001 << 29) | (0 << 27) | 3  # NOP, count 3
    # Padding that would crash if misread as headers.
    logic.feed_words([nop_with_payload, 0xFFFFFFFF, 0x00000000,
                      0xDEADBEEF])
    assert logic.synced
    # The session continues normally afterwards (desync, then a fresh
    # full bitstream).
    logic.feed_words(command_packet(Command.DESYNC).encode())
    bitstream = generate_bitstream(size=DataSize.from_kb(8))
    logic.feed_words(bitstream.raw_words)
    assert logic.frames_written == bitstream.frame_count
