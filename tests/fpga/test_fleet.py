"""Fleet boards: module images, bitstream libraries, board state."""

import pytest

from repro.controllers import UparcController
from repro.errors import FleetError
from repro.fpga import BitstreamLibrary, FleetBoard, ModuleImage
from repro.units import Frequency

CATALOG = (
    ModuleImage("alpha", size_kb=8.0, seed=11),
    ModuleImage("beta", size_kb=12.0, seed=12),
)


def make_board(board_id=0):
    return FleetBoard(board_id, UparcController("i"),
                      BitstreamLibrary(CATALOG))


class TestModuleImage:
    def test_rejects_empty_name(self):
        with pytest.raises(FleetError):
            ModuleImage("", size_kb=8.0, seed=1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(FleetError):
            ModuleImage("x", size_kb=0.0, seed=1)

    def test_is_hashable_identity(self):
        assert ModuleImage("x", 8.0, 1) == ModuleImage("x", 8.0, 1)
        assert len({ModuleImage("x", 8.0, 1),
                    ModuleImage("x", 8.0, 1)}) == 1


class TestBitstreamLibrary:
    def test_needs_modules(self):
        with pytest.raises(FleetError):
            BitstreamLibrary(())

    def test_rejects_duplicate_names(self):
        with pytest.raises(FleetError):
            BitstreamLibrary((ModuleImage("x", 8.0, 1),
                              ModuleImage("x", 9.0, 2)))

    def test_names_sorted(self):
        library = BitstreamLibrary((ModuleImage("zeta", 8.0, 1),
                                    ModuleImage("alpha", 8.0, 2)))
        assert library.names == ("alpha", "zeta")

    def test_contains_and_len(self):
        library = BitstreamLibrary(CATALOG)
        assert "alpha" in library and "gamma" not in library
        assert len(library) == 2

    def test_unknown_module_raises(self):
        library = BitstreamLibrary(CATALOG)
        with pytest.raises(FleetError, match="unknown module"):
            library.bitstream("gamma")

    def test_bitstream_memoised(self):
        library = BitstreamLibrary(CATALOG)
        first = library.bitstream("alpha")
        assert library.bitstream("alpha") is first

    def test_bitstream_matches_image(self):
        library = BitstreamLibrary(CATALOG)
        bitstream = library.bitstream("beta")
        # The generator rounds to whole configuration frames.
        assert abs(len(bitstream.raw_bytes) - 12 * 1024) < 256
        assert bitstream.frame_count > 0


class TestFleetBoard:
    def test_rejects_negative_id(self):
        with pytest.raises(FleetError):
            FleetBoard(-1, UparcController("i"),
                       BitstreamLibrary(CATALOG))

    def test_name(self):
        assert make_board(3).name == "board3"

    def test_starts_empty(self):
        board = make_board()
        assert board.loaded_module is None
        assert board.reconfigurations == 0
        assert board.service_generation == 0

    def test_reconfigure_runs_controller(self):
        board = make_board()
        result = board.reconfigure("alpha",
                                   Frequency.from_mhz(362.5))
        assert result.verified
        assert result.duration_ps > 0
        assert board.loaded_module == "alpha"
        assert board.reconfigurations == 1

    def test_reconfigure_is_deterministic(self):
        first = make_board().reconfigure("alpha",
                                         Frequency.from_mhz(362.5))
        second = make_board().reconfigure("alpha",
                                          Frequency.from_mhz(362.5))
        assert first.duration_ps == second.duration_ps
        assert first.payload_crc == second.payload_crc

    def test_invalidate_bumps_generation(self):
        board = make_board()
        board.reconfigure("alpha", Frequency.from_mhz(362.5))
        generation = board.invalidate()
        assert generation == 1
        assert board.service_generation == 1
        assert board.loaded_module is None

    def test_repr_mentions_load_state(self):
        board = make_board()
        assert "<empty>" in repr(board)
        board.reconfigure("beta", Frequency.from_mhz(362.5))
        assert "beta" in repr(board)
