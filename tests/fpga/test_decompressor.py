"""Hardware decompressor timing model."""

import pytest

from repro.errors import FrequencyError, HardwareModelError
from repro.fpga.decompressor import (
    DECOMPRESSOR_LIBRARY,
    HardwareDecompressor,
)
from repro.sim import Clock
from repro.units import Frequency


def make(sim, name="x-matchpro", mhz=125.0):
    spec = DECOMPRESSOR_LIBRARY[name]
    clock = Clock(sim, "clk3", Frequency.from_mhz(mhz))
    return HardwareDecompressor(sim, spec, clock)


def test_library_has_the_paper_algorithms():
    assert set(DECOMPRESSOR_LIBRARY) >= {"x-matchpro", "farm-rle",
                                         "lz77", "huffman"}


def test_xmatchpro_spec_matches_paper():
    spec = DECOMPRESSOR_LIBRARY["x-matchpro"]
    # 2 words/cycle, 64-bit datapath, 126 MHz -> 1.008 GB/s.
    assert spec.words_per_cycle == 2.0
    assert spec.max_frequency == Frequency.from_mhz(126)
    bandwidth = spec.output_bandwidth_mbps(Frequency.from_mhz(126))
    assert bandwidth * 1.048576 == pytest.approx(1008, rel=0.001)


def test_farm_rle_spec():
    spec = DECOMPRESSOR_LIBRARY["farm-rle"]
    assert spec.max_frequency == Frequency.from_mhz(200)
    assert spec.words_per_cycle == 1.0


def test_output_bandwidth_respects_fmax():
    spec = DECOMPRESSOR_LIBRARY["x-matchpro"]
    with pytest.raises(FrequencyError):
        spec.output_bandwidth_mbps(Frequency.from_mhz(200))


def test_stream_cycles_two_words_per_cycle(sim):
    decompressor = make(sim, "x-matchpro")
    assert decompressor.stream_cycles(1000) == 500
    assert decompressor.stream_cycles(1001) == 501


def test_stream_cycles_half_word_per_cycle(sim):
    decompressor = make(sim, "huffman", mhz=150)
    assert decompressor.stream_cycles(100) == 200


def test_stream_cycles_negative_rejected(sim):
    with pytest.raises(HardwareModelError):
        make(sim).stream_cycles(-1)


def test_check_frequency(sim):
    fast = make(sim, "x-matchpro", mhz=150)
    with pytest.raises(FrequencyError):
        fast.check_frequency()
    ok = make(sim, "x-matchpro", mhz=125)
    ok.check_frequency()


def test_functional_roundtrip(sim, small_bitstream):
    decompressor = make(sim)
    compressed = decompressor.compress_offline(small_bitstream.raw_bytes)
    assert decompressor.expand(compressed) == small_bitstream.raw_bytes
    assert len(compressed) < len(small_bitstream.raw_bytes)


def test_each_library_entry_is_functional(sim, small_bitstream):
    data = small_bitstream.raw_bytes[:8192]
    for name in DECOMPRESSOR_LIBRARY:
        spec = DECOMPRESSOR_LIBRARY[name]
        clock = Clock(sim, name, spec.max_frequency)
        decompressor = HardwareDecompressor(sim, spec, clock)
        assert decompressor.expand(
            decompressor.compress_offline(data)) == data
