"""Hypothesis properties of the configuration logic.

For arbitrary frame workloads expressed as legal packet streams, the
configuration memory must end up exactly as written — and the CRC
check must catch any single corrupted payload word.
"""

from hypothesis import given, settings, strategies as st

from repro.bitstream.crc import ConfigCrc
from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.format import (
    Command,
    ConfigPacket,
    ConfigRegister,
    Opcode,
    SYNC_WORD,
    command_packet,
    write_packet,
)
from repro.bitstream.frames import BlockType, FrameAddress, region_frames
from repro.fpga.config_memory import (
    ConfigurationLogic,
    ConfigurationMemory,
)

DEVICE = VIRTEX5_SX50T

frame_contents = st.lists(
    st.lists(st.integers(0, 2**32 - 1),
             min_size=DEVICE.frame_words, max_size=DEVICE.frame_words),
    min_size=1, max_size=6)

origins = st.builds(
    lambda column, minor: FrameAddress(BlockType.CLB_IO_CLK, 0, 0,
                                       column, minor),
    st.integers(0, 80), st.integers(0, 30))


def build_stream(origin, frames):
    """A legal configuration stream writing ``frames`` at ``origin``."""
    crc = ConfigCrc()
    words = [SYNC_WORD]

    def emit(packet):
        encoded = packet.encode()
        words.extend(encoded)

    emit(command_packet(Command.RCRC))
    emit(write_packet(ConfigRegister.IDCODE, [DEVICE.idcode]))
    crc.update(int(ConfigRegister.IDCODE), DEVICE.idcode)
    emit(command_packet(Command.WCFG))
    crc.update(int(ConfigRegister.CMD), int(Command.WCFG))
    emit(write_packet(ConfigRegister.FAR, [origin.pack()]))
    crc.update(int(ConfigRegister.FAR), origin.pack())
    flat = [word for frame in frames for word in frame]
    emit(ConfigPacket(Opcode.WRITE, ConfigRegister.FDRI, flat,
                      type2=True))
    for word in flat:
        crc.update(int(ConfigRegister.FDRI), word)
    emit(write_packet(ConfigRegister.CRC, [crc.value]))
    emit(command_packet(Command.DESYNC))
    return words


@settings(max_examples=40, deadline=None)
@given(origins, frame_contents)
def test_frames_land_exactly_where_addressed(origin, frames):
    logic = ConfigurationLogic(ConfigurationMemory(DEVICE))
    logic.feed_words(build_stream(origin, frames))
    assert logic.frames_written == len(frames)
    assert logic.crc_checks_passed == 1
    assert not logic.synced  # DESYNC consumed
    addresses = list(region_frames(DEVICE, origin, len(frames)))
    for address, frame in zip(addresses, frames):
        assert logic.memory.read_frame(address) == frame


@settings(max_examples=30, deadline=None)
@given(origins, frame_contents, st.data())
def test_single_word_corruption_always_caught(origin, frames, data):
    words = build_stream(origin, frames)
    flat_len = len(frames) * DEVICE.frame_words
    # The FDRI payload sits right before the trailing 4 shell words
    # (CRC header+value, CMD header+DESYNC) — corrupt one payload word.
    payload_start = len(words) - 4 - flat_len
    index = payload_start + data.draw(
        st.integers(0, flat_len - 1))
    bit = data.draw(st.integers(0, 31))
    corrupted = list(words)
    corrupted[index] ^= 1 << bit
    logic = ConfigurationLogic(ConfigurationMemory(DEVICE))
    import pytest
    from repro.errors import BitstreamFormatError
    with pytest.raises(BitstreamFormatError, match="CRC mismatch"):
        logic.feed_words(corrupted)


@settings(max_examples=20, deadline=None)
@given(origins, frame_contents)
def test_permissive_mode_still_writes_frames(origin, frames):
    logic = ConfigurationLogic(ConfigurationMemory(DEVICE),
                               strict_crc=False)
    words = build_stream(origin, frames)
    logic.feed_words(words)
    assert logic.frames_written == len(frames)
