"""ICAP model: bursts, frequency envelope, integrity CRC."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T, VIRTEX6_LX240T
from repro.errors import FrequencyError, HardwareModelError
from repro.fpga.icap import Icap
from repro.results import stream_crc
from repro.sim import Clock
from repro.units import DataSize, Frequency


def make_icap(sim, mhz=100.0, device=VIRTEX5_SX50T, allow_overclock=True):
    clock = Clock(sim, "clk2", Frequency.from_mhz(mhz))
    return Icap(sim, device, clock, allow_overclock=allow_overclock)


def test_burst_duration_one_word_per_cycle(sim):
    icap = make_icap(sim, 100)
    icap.enable()
    duration = icap.accept_burst(1000)
    assert duration == 1000 * 10_000  # 10 ns per word


def test_enable_checks_frequency(sim):
    icap = make_icap(sim, 400)  # above even the demonstrated limit
    with pytest.raises(FrequencyError):
        icap.enable()


def test_demonstrated_overclock_allowed_on_v5(sim):
    icap = make_icap(sim, 362.5)
    icap.enable()
    icap.disable()


def test_nominal_mode_rejects_overclock(sim):
    icap = make_icap(sim, 150, allow_overclock=False)
    with pytest.raises(FrequencyError):
        icap.enable()


def test_v6_demonstrated_limit_lower(sim):
    icap = make_icap(sim, 362.5, device=VIRTEX6_LX240T)
    with pytest.raises(FrequencyError):
        icap.enable()


def test_burst_into_disabled_port_rejected(sim):
    icap = make_icap(sim)
    with pytest.raises(HardwareModelError):
        icap.accept_burst(10)


def test_double_enable_rejected(sim):
    icap = make_icap(sim)
    icap.enable()
    with pytest.raises(HardwareModelError):
        icap.enable()


def test_disable_without_enable_rejected(sim):
    with pytest.raises(HardwareModelError):
        make_icap(sim).disable()


def test_activity_tracks_en_gating(sim):
    icap = make_icap(sim)
    icap.enable()
    sim.run(until_ps=500)
    icap.disable()
    assert icap.activity.intervals == [(0, 500)]


def test_words_accepted_accumulates(sim):
    icap = make_icap(sim)
    icap.enable()
    icap.accept_burst(100)
    icap.accept_burst(50)
    assert icap.words_accepted == 150
    assert icap.data_accepted() == DataSize.from_words(150)


def test_absorb_updates_crc(sim):
    icap = make_icap(sim)
    icap.enable()
    words = [0xAA995566, 0x12345678, 0]
    icap.absorb(words)
    expected = stream_crc(b"\xaa\x99\x55\x66\x12\x34\x56\x78"
                          b"\x00\x00\x00\x00")
    assert icap.payload_crc == expected


def test_absorb_crc_is_order_sensitive(sim):
    icap1 = make_icap(sim)
    icap1.enable()
    icap1.absorb([1, 2])
    from repro.sim import Simulator
    sim2 = Simulator()
    icap2 = make_icap(sim2)
    icap2.enable()
    icap2.absorb([2, 1])
    assert icap1.payload_crc != icap2.payload_crc


def test_reset_payload_clears_state(sim):
    icap = make_icap(sim)
    icap.enable()
    icap.absorb([7, 8, 9])
    icap.reset_payload()
    assert icap.words_accepted == 0
    assert icap.payload_crc == 0


def test_half_rate_burst_takes_twice_as_long(sim):
    icap = make_icap(sim, 100)
    icap.enable()
    full = icap.accept_burst(1000, words_per_cycle=1.0)
    half = icap.accept_burst(1000, words_per_cycle=0.5)
    assert half == pytest.approx(2 * full, rel=0.01)


def test_invalid_issue_rate_rejected(sim):
    icap = make_icap(sim)
    icap.enable()
    with pytest.raises(HardwareModelError):
        icap.accept_burst(10, words_per_cycle=0)
    with pytest.raises(HardwareModelError):
        icap.accept_burst(10, words_per_cycle=3)


def test_theoretical_bandwidth(sim):
    icap = make_icap(sim, 362.5)
    assert icap.theoretical_bandwidth_mbps() == pytest.approx(1382.8,
                                                              rel=1e-3)


def test_burst_cycles_exact_integers_across_rates(sim):
    """Regression: fractional issue rates must yield exact int cycles.

    ``-(-words // rate)`` on a float rate returns a float; the cycle
    count feeds ``Clock.cycles_duration`` and must be an exact int at
    every supported rate (0.5 bus-fed, 1.0 UReC, 1.25 overfeed).
    """
    icap = make_icap(sim)
    cases = [
        (1000, 0.5, 2000),   # half rate: twice the cycles
        (1000, 1.0, 1000),   # UReC feeds one word per cycle
        (1000, 1.25, 800),   # 5 words per 4 cycles, exact
        (7, 1.25, 6),        # ceil(7 / 1.25) = ceil(5.6)
        (1, 1.25, 1),        # single word still costs a cycle
        (0, 1.25, 0),        # empty burst is free
        (999, 2.0, 500),     # ceil(999 / 2)
    ]
    for words, rate, expected in cases:
        cycles = icap.burst_cycles(words, words_per_cycle=rate)
        assert type(cycles) is int, (words, rate, cycles)
        assert cycles == expected, (words, rate, cycles)


def test_burst_cycles_ceiling_never_undercounts(sim):
    """At rates > 1 the port can't finish mid-cycle: always round up."""
    icap = make_icap(sim)
    for words in range(1, 64):
        for numerator, denominator in ((5, 4), (3, 2), (2, 1)):
            rate = numerator / denominator
            cycles = icap.burst_cycles(words, words_per_cycle=rate)
            # cycles is the smallest int with cycles * rate >= words.
            assert cycles * numerator >= words * denominator
            assert (cycles - 1) * numerator < words * denominator
