"""Every example script must run clean and print its key results.

Examples are the adoption surface; a broken example is a broken
release.  Each runs in-process (runpy) with stdout captured.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["362.5 MHz", "verified:        True", "MB/s"],
    "adaptive_sdr_pipeline.py": ["handover", "thermal emergency",
                                 "infeasible request correctly rejected"],
    "fault_tolerant_recovery.py": ["UPaRC_i", "availability",
                                   "optimal scrub ms"],
    "compression_tradeoffs.py": ["X-MatchPRO", "eff. capacity KB"],
    "prefetch_pipeline.py": ["saved by prefetching", "frames/s"],
    "multi_region_system.py": ["wrong-region load rejected",
                               "Module swaps"],
    "scrub_and_verify.py": ["scrub cycle 3", "post-repair readback"],
    "task_graph_application.py": ["makespan", "module reuses"],
}


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT), (
        "examples changed; update EXPECTED_OUTPUT"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    for expected in EXPECTED_OUTPUT[script]:
        assert expected in out, f"{script}: missing {expected!r}"
