"""``python -m repro sanitize`` CLI: exit codes, SARIF, justification."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

CLEAN_SCRIPT = """\
from repro.sim import Simulator

sim = Simulator()
acc = []
for value in (3, 1, 2):
    sim.call_at(100, lambda value=value: acc.append(value))
sim.run()
print(sorted(acc))
"""

def run_cli(*argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro", "sanitize", *argv],
        capture_output=True, text=True, env=env, cwd=str(cwd))


@pytest.fixture
def clean_script(tmp_path):
    path = tmp_path / "clean_scenario.py"
    path.write_text(CLEAN_SCRIPT)
    return path


@pytest.fixture
def racy_script(tmp_path):
    # Print the *order-dependent* accumulation so the determinism pass
    # sees divergent stdout under perturbation.
    path = tmp_path / "racy_scenario.py"
    path.write_text(textwrap.dedent("""\
        from repro.sim import Simulator

        sim = Simulator()
        acc = []
        for value in (3, 1, 2):
            sim.call_at(100, lambda value=value: acc.append(value))
        sim.run()
        print(acc)
    """))
    return path


def test_clean_script_exits_zero(clean_script, tmp_path):
    result = run_cli(str(clean_script), cwd=tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout
    assert "0 unjustified findings" in result.stdout


def test_divergent_script_exits_one(racy_script, tmp_path):
    result = run_cli(str(racy_script), "--seeds", "1,2,3,4,5,6,7,8",
                     cwd=tmp_path)
    assert result.returncode == 1, result.stdout + result.stderr
    assert "S903" in result.stdout


def test_justify_file_downgrades_findings(racy_script, tmp_path):
    justify = tmp_path / "justify.txt"
    justify.write_text("# known order-dependence\nracy_scenario.py\n")
    result = run_cli(str(racy_script), "--seeds", "1,2,3,4,5,6,7,8",
                     "--justify", str(justify), cwd=tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "[justified]" in result.stdout


def test_no_determinism_skips_the_perturbed_runs(racy_script, tmp_path):
    result = run_cli(str(racy_script), "--no-determinism", cwd=tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr


def test_sarif_output_is_written(racy_script, tmp_path):
    sarif = tmp_path / "out.sarif"
    result = run_cli(str(racy_script), "--seeds", "1,2,3,4,5,6,7,8",
                     "--sarif", str(sarif), cwd=tmp_path)
    assert result.returncode == 1
    payload = json.loads(sarif.read_text())
    [run] = payload["runs"]
    assert run["tool"]["driver"]["name"] == "repro.sanitize"
    assert any(res["ruleId"] == "S903" for res in run["results"])


def test_missing_script_is_a_usage_error(tmp_path):
    result = run_cli(str(tmp_path / "nope.py"), cwd=tmp_path)
    assert result.returncode == 2
    assert "no such file" in result.stderr


def test_no_scripts_anywhere_is_a_usage_error(tmp_path):
    result = run_cli(cwd=tmp_path)  # no examples/ in tmp_path
    assert result.returncode == 2


def test_crossval_section_prints_by_default(clean_script, tmp_path):
    result = run_cli(str(clean_script), cwd=tmp_path)
    assert "cross-validation" in result.stdout
    no_crossval = run_cli(str(clean_script), "--no-crossval",
                          cwd=tmp_path)
    assert "cross-validation" not in no_crossval.stdout
