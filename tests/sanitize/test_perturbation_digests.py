"""Same-instant perturbation must not move the paper's numbers.

Satellite of the sanitizer PR: the Fig. 5 bandwidth scenarios (mode i
preloaded and mode ii compressed) are digest-pinned elsewhere; here we
re-run them under seeded now-bucket/heap tie-break perturbation on
every available backend and require byte-identical event-stream and
output digests — i.e. the models' results depend only on orderings
the kernel actually guarantees.
"""

import pytest

from repro import accel
from repro.analysis.bandwidth import (
    bandwidth_surface,
    mode_ii_bandwidth_sweep,
)
from repro.sanitize import DeterminismSanitizer

BACKENDS = ["pure"] + (["numpy"] if accel.numpy_available() else [])

SEEDS = (1, 2, 3)


def fig5_corner():
    """One small + one fast cell of the Fig. 5 surface (mode i)."""
    points = bandwidth_surface(sizes_kb=(6.5,),
                               frequencies_mhz=(50.0, 362.5))
    return [(p.size.kb, p.frequency.mhz, p.effective_mbps,
             p.duration_ps) for p in points]


def mode_ii_corner():
    """The smallest mode-ii (compressed) sweep cell."""
    points = mode_ii_bandwidth_sweep(sizes_kb=(6.5,))
    return [(p.size.kb, p.frequency.mhz, p.effective_mbps,
             p.duration_ps) for p in points]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario", [fig5_corner, mode_ii_corner],
                         ids=["fig5-mode-i", "mode-ii"])
def test_scenario_digests_survive_perturbation(backend, scenario):
    with accel.using(backend):
        sanitizer = DeterminismSanitizer(seeds=SEEDS)
        findings = sanitizer.check(scenario, name=scenario.__name__)
    assert findings == [], "\n".join(f.describe() for f in findings)
    # every perturbed run reproduced both digests bit-for-bit
    stream_digests = {r.stream_digest for r in sanitizer.runs}
    output_digests = {r.output_digest for r in sanitizer.runs}
    assert len(stream_digests) == 1
    assert len(output_digests) == 1
    # and the runs did real work through the kernel
    assert all(r.tasks_run > 0 for r in sanitizer.runs)


@pytest.mark.parametrize("backend", BACKENDS)
def test_results_equal_under_direct_perturbation(backend):
    """Beyond digests: the numeric results themselves are identical."""
    import random

    from repro.sim import kernel as _kernel

    def perturbed(seed):
        def hook(sim):
            sim._perturb = random.Random(seed)
        previous = _kernel.set_construction_hook(hook)
        try:
            return mode_ii_corner()
        finally:
            _kernel.set_construction_hook(previous)

    with accel.using(backend):
        baseline = mode_ii_corner()
        for seed in SEEDS:
            assert perturbed(seed) == baseline
