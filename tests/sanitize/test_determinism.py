"""DeterminismSanitizer: digest diffing under seeded perturbation."""

# The order-dependent scenarios deliberately mutate shared lists from
# unordered callbacks; that is what the sanitizer must catch.
# repro-lint: disable=R701

from repro.sanitize import DeterminismSanitizer
from repro.sim import Simulator


def order_independent():
    """Same-instant callbacks whose combined result is order-free."""
    sim = Simulator()
    acc = []
    for value in (3, 1, 2):
        sim.call_at(100, lambda value=value: acc.append(value))
    sim.run()
    return sorted(acc)


def order_dependent():
    """The raw accumulation order leaks into the return value."""
    sim = Simulator()
    acc = []
    for value in (3, 1, 2):
        sim.call_at(100, lambda value=value: acc.append(value))
    sim.run()
    return list(acc)


def printing_order_dependent():
    sim = Simulator()
    for value in (3, 1, 2):
        sim.call_at(100, lambda value=value: print(value))
    sim.run()


def test_order_independent_scenario_is_clean():
    sanitizer = DeterminismSanitizer(seeds=(1, 2, 3, 4, 5))
    findings = sanitizer.check(order_independent, name="clean")
    assert findings == []
    # baseline + one run per seed were recorded
    assert len(sanitizer.runs) == 6
    assert len({record.stream_digest for record in sanitizer.runs}) == 1


def test_order_dependent_return_value_diverges():
    sanitizer = DeterminismSanitizer(seeds=tuple(range(1, 9)))
    findings = sanitizer.check(order_dependent, name="racy")
    assert findings, "no seed perturbed the tie-break order"
    assert all(f.rule_id == "S903" for f in findings)
    assert all(f.scenario == "racy" for f in findings)
    # only the *output* moved: the task multiset per instant is the
    # same, so the stream digest stays put and time_ps is -1.
    assert all(f.time_ps == -1 for f in findings)
    assert all("output digest" in f.detail for f in findings)


def test_order_dependent_stdout_diverges():
    sanitizer = DeterminismSanitizer(seeds=tuple(range(1, 9)))
    findings = sanitizer.check(printing_order_dependent, name="printy")
    assert findings
    assert all("output digest" in f.detail for f in findings)


def test_perturbed_runs_are_themselves_reproducible():
    first = DeterminismSanitizer(seeds=(7,))
    second = DeterminismSanitizer(seeds=(7,))
    first.check(order_dependent, name="racy")
    second.check(order_dependent, name="racy")
    assert [r.output_digest for r in first.runs] \
        == [r.output_digest for r in second.runs]
    assert [r.stream_digest for r in first.runs] \
        == [r.stream_digest for r in second.runs]


def test_extra_work_localises_to_the_first_divergent_instant():
    toggle = {"extra": False}

    def scenario():
        sim = Simulator()
        sim.call_at(100, lambda: None)
        if toggle["extra"]:
            sim.call_at(200, lambda: None)
        sim.call_at(300, lambda: None)
        sim.run()

    sanitizer = DeterminismSanitizer(seeds=())
    baseline = sanitizer.run_once(scenario)
    toggle["extra"] = True
    changed = sanitizer.run_once(scenario)
    finding = sanitizer._diff("scenario", baseline, changed)
    assert finding is not None
    assert finding.time_ps == 200


def test_justified_divergences_are_marked():
    sanitizer = DeterminismSanitizer(seeds=tuple(range(1, 9)),
                                     justified=("racy",))
    findings = sanitizer.check(order_dependent, name="racy")
    assert findings and all(f.justified for f in findings)

    qualified = DeterminismSanitizer(seeds=tuple(range(1, 9)),
                                     justified=("S903:racy",))
    findings = qualified.check(order_dependent, name="racy")
    assert findings and all(f.justified for f in findings)


def test_perturbation_seeds_change_tie_break_order():
    # Sanity on the kernel feature itself: some seed in a small pool
    # must produce a non-FIFO permutation of five same-time events.
    import random

    baseline = None
    permutations = set()
    for seed in range(8):
        sim = Simulator()
        sim._perturb = random.Random(seed)
        order = []
        for label in "abcde":
            sim.at(50, lambda label=label: order.append(label))
        sim.run()
        permutations.add(tuple(order))
        if baseline is None:
            baseline = tuple(order)
    assert len(permutations) > 1


def test_perturbation_never_reorders_across_instants():
    import random

    for seed in range(8):
        sim = Simulator()
        sim._perturb = random.Random(seed)
        order = []
        for time_ps in (100, 200, 300):
            sim.at(time_ps, lambda t=time_ps: order.append(t))
        sim.run()
        assert order == [100, 200, 300]


def test_perturbation_respects_scheduler_before_scheduled():
    import random

    for seed in range(16):
        sim = Simulator()
        sim._perturb = random.Random(seed)
        order = []

        def parent():
            order.append("parent")
            sim.call_at(sim.now, lambda: order.append("child"))

        sim.call_at(100, parent)
        sim.call_at(100, lambda: order.append("sibling"))
        sim.run()
        assert order.index("parent") < order.index("child")
