"""Static <-> dynamic cross-validation over the race_pkg fixture.

The acceptance test for the whole sanitize stack: running the lint
suite's seeded R702 fixture under the dynamic sanitizer must produce a
finding whose schedule sites land on the statically reported line, so
``cross_validate`` classifies the pair as *confirmed*.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.sanitize import (
    CrossValidationReport,
    cross_validate,
    findings_to_violations,
    format_crossval_text,
    format_sanitize_sarif,
    sanitized,
    static_race_findings,
)
from repro.sim import Simulator

FIXTURES = Path(__file__).resolve().parents[1] / "lint" / "fixtures"
RACER = FIXTURES / "race_pkg" / "racer.py"


@pytest.fixture
def race_controller():
    """Import the lint fixture's Controller as a real class."""
    sys.path.insert(0, str(FIXTURES))
    try:
        from race_pkg.racer import Controller
        yield Controller
    finally:
        sys.path.remove(str(FIXTURES))
        for name in [m for m in sys.modules if m.startswith("race_pkg")]:
            del sys.modules[name]


def _dynamic_findings(race_controller):
    with sanitized(auto_instrument=False) as sanitizer:
        sim = Simulator()
        controller = sanitizer.watch(race_controller(sim))
        controller.sample()
        sim.run()
    return sanitizer.findings


def test_sanitizer_reproduces_the_seeded_r702_fixture(race_controller):
    findings = _dynamic_findings(race_controller)
    assert any(f.attr == "backlog" and f.rule_id in ("S901", "S902")
               for f in findings)


def test_cross_validation_confirms_the_static_r702(race_controller):
    dynamic = _dynamic_findings(race_controller)
    static = static_race_findings([RACER])
    assert any(v.rule_id == "R702" for v in static)

    report = cross_validate(dynamic, static)
    confirmed_rules = {violation.rule_id
                       for _finding, violation in report.confirmed}
    assert "R702" in confirmed_rules
    # sample() exercised nothing else: every other static finding
    # stays on the static-only side, nothing is dynamic-only.
    assert report.dynamic_only == []
    assert len(report.static_only) == len(static) - len(report.confirmed)
    assert report.counts["confirmed"] == len(report.confirmed) >= 1


def test_unexercised_static_findings_stay_static_only():
    static = static_race_findings([RACER])
    report = cross_validate([], static)
    assert report.confirmed == []
    assert report.static_only == static


def test_findings_convert_to_violations_with_relative_paths(
        race_controller):
    dynamic = _dynamic_findings(race_controller)
    violations = findings_to_violations(dynamic, root=str(FIXTURES))
    assert violations
    for violation in violations:
        assert violation.rule_id.startswith("S9")
        assert not violation.path.startswith("/")
        assert violation.line >= 1


def test_sanitize_sarif_is_valid_and_carries_rule_metadata(
        race_controller):
    dynamic = _dynamic_findings(race_controller)
    payload = json.loads(format_sanitize_sarif(dynamic, 1))
    [run] = payload["runs"]
    assert run["tool"]["driver"]["name"] == "repro.sanitize"
    rule_ids = {rule["id"]
                for rule in run["tool"]["driver"]["rules"]}
    assert rule_ids <= {"S901", "S902", "S903"}
    assert run["results"]
    for result in run["results"]:
        assert result["ruleId"] in rule_ids


def test_crossval_text_matrix_mentions_every_bucket(race_controller):
    dynamic = _dynamic_findings(race_controller)
    static = static_race_findings([RACER])
    text = format_crossval_text(cross_validate(dynamic, static))
    assert "confirmed" in text
    assert "dynamic-only" in text
    assert "static-only" in text
    assert "[confirmed] R702" in text


def test_empty_report_counts():
    report = CrossValidationReport()
    assert report.counts == {"confirmed": 0, "dynamic_only": 0,
                             "static_only": 0}
