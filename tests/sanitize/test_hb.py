"""Happens-before core: clocks, edges, instant boundaries."""

from repro.sanitize.hb import (
    HBTracker,
    Task,
    TrackerListener,
    VectorClock,
    happens_before,
)
from repro.sim import Delay, Event, Process, Signal


class Recorder(TrackerListener):
    """Collects the task stream and instant boundaries for asserts."""

    def __init__(self):
        self.tasks = []
        self.instants = []

    def on_task_begin(self, task):
        self.tasks.append(task)

    def on_instant_end(self, time_ps: int):
        self.instants.append(time_ps)

    def by_label(self, fragment):
        # Match against the local name only — qualnames embed the
        # enclosing test's name, which would match everything.
        [task] = [t for t in self.tasks
                  if fragment in t.label.split("<locals>.")[-1]]
        return task


def tracked(sim):
    tracker = HBTracker(sim)
    recorder = Recorder()
    tracker.listeners.append(recorder)
    sim.sanitizer = tracker
    return tracker, recorder


# -- vector clocks ----------------------------------------------------

def test_vector_clock_join_and_leq():
    a = VectorClock({1: 1})
    b = VectorClock({2: 1})
    joined = a.join(b)
    assert joined.get(1) == 1 and joined.get(2) == 1
    assert a.leq(joined) and b.leq(joined)
    assert not joined.leq(a)
    # join does not mutate its inputs
    assert a.get(2) == 0


def test_time_barrier_orders_different_instants():
    early = Task("early", ("f.py", 1), "at")
    late = Task("late", ("f.py", 2), "at")
    early.time_ps, early.tid = 100, 0
    late.time_ps, late.tid = 200, 1
    assert happens_before(early, late)
    assert not happens_before(late, early)


def test_same_instant_without_edges_is_unordered():
    a = Task("a", ("f.py", 1), "at")
    b = Task("b", ("f.py", 2), "at")
    a.time_ps = b.time_ps = 100
    a.tid, b.tid = 0, 1
    assert not happens_before(a, b)
    assert not happens_before(b, a)
    assert happens_before(a, a)  # reflexive


# -- scheduling edges on a live kernel --------------------------------

def test_scheduler_happens_before_scheduled_same_instant(sim):
    tracker, recorder = tracked(sim)

    def parent():
        sim.call_at(sim.now, child)

    def child():
        pass

    sim.call_at(100, parent)
    sim.run()
    tracker.finish()
    parent_task = recorder.by_label("parent")
    child_task = recorder.by_label("child")
    assert parent_task.time_ps == child_task.time_ps == 100
    assert happens_before(parent_task, child_task)
    assert not happens_before(child_task, parent_task)


def test_sibling_schedules_stay_unordered(sim):
    tracker, recorder = tracked(sim)
    sim.call_at(100, lambda: None)
    sim.at(100, lambda: None)
    sim.run()
    tracker.finish()
    first, second = recorder.tasks
    assert first.time_ps == second.time_ps == 100
    assert not happens_before(first, second)
    assert not happens_before(second, first)


def test_batch_entries_inherit_the_scheduler_edge(sim):
    tracker, recorder = tracked(sim)

    def child_a():
        pass

    def child_b():
        pass

    def parent():
        sim.schedule_batch([(sim.now, child_a), (sim.now, child_b)])

    sim.call_at(50, parent)
    sim.run()
    tracker.finish()
    parent_task = recorder.by_label("parent")
    children = [t for t in recorder.tasks if t is not parent_task]
    assert len(children) == 2
    assert all(happens_before(parent_task, child) for child in children)
    # the two batch entries have no edge between each other
    assert not happens_before(children[0], children[1])


def test_transitive_chain_through_nested_schedules(sim):
    tracker, recorder = tracked(sim)

    def a():
        sim.call_at(sim.now, b)

    def b():
        sim.call_at(sim.now, c)

    def c():
        pass

    sim.call_at(10, a)
    sim.run()
    tracker.finish()
    task_a = recorder.by_label("a")
    task_c = recorder.by_label("c")
    assert happens_before(task_a, task_c)


# -- synchronization edges --------------------------------------------

def test_event_registration_orders_registrant_before_delivery(sim):
    tracker, recorder = tracked(sim)
    event = Event(sim, "go")

    def registrant():
        event.add_waiter(lambda ev: None)

    def trigger():
        event.trigger()

    sim.call_at(100, registrant)
    sim.at(100, trigger)
    sim.run()
    tracker.finish()
    reg_task = recorder.by_label("registrant")
    delivery = recorder.by_label("<- go")
    assert delivery.kind == "deliver"
    assert happens_before(reg_task, delivery)
    # the delivery also sits under its triggering task
    assert happens_before(recorder.by_label("trigger"), delivery)


def test_signal_observer_delivery_joins_registration(sim):
    tracker, recorder = tracked(sim)
    signal = Signal(sim, "level")

    def registrant():
        signal.observe(lambda value, time: None)

    sim.call_at(100, registrant)
    sim.call_at(100, lambda: signal.set(1))
    sim.run()
    tracker.finish()
    delivery = recorder.by_label("<- level")
    assert happens_before(recorder.by_label("registrant"), delivery)


def test_process_resume_is_labelled_and_points_at_spawn(sim):
    tracker, recorder = tracked(sim)

    def body():
        yield Delay(10)
        yield Delay(10)

    def spawner():
        Process(sim, body(), name="worker")

    sim.call_at(100, spawner)
    sim.run()
    tracker.finish()
    # the inline first segment keeps the spawner's identity; only the
    # two scheduled resumes carry the process label.
    spawn_task = recorder.by_label("spawner")
    resumes = [t for t in recorder.tasks
               if t.label == "process:worker"]
    assert len(resumes) == 2
    # every resume's origin points back at the Process(...) call site
    assert {t.origin_site for t in resumes} == {resumes[0].origin_site}
    assert resumes[0].origin_site[0] == spawn_task.site[0] == __file__


# -- instant boundaries -----------------------------------------------

def test_instant_end_fires_between_instants_and_at_finish(sim):
    tracker, recorder = tracked(sim)
    sim.at(100, lambda: None)
    sim.at(100, lambda: None)
    sim.at(200, lambda: None)
    sim.run()
    assert recorder.instants == [100]  # 200 still open
    tracker.finish()
    assert recorder.instants == [100, 200]
    tracker.finish()  # idempotent
    assert recorder.instants == [100, 200]


def test_tasks_run_counts_every_dispatch(sim):
    tracker, recorder = tracked(sim)
    for _ in range(3):
        sim.call_at(10, lambda: None)
    sim.run()
    tracker.finish()
    assert tracker.tasks_run == 3
    assert len(recorder.tasks) == 3
