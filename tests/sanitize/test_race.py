"""RaceSanitizer: S901/S902 detection, instrumentation hygiene."""

# Unordered same-instant schedules are the subject under test here —
# the static analyzer flagging them is the cross-validation working.
# repro-lint: disable=R701,R702

import pytest

from repro.sanitize import (
    READ_WRITE_RACE,
    RaceSanitizer,
    WRITE_WRITE_RACE,
    sanitized,
)
from repro.sim import Simulator


class Device:
    """Plain model object; opted in via ``watch()`` in the tests."""

    def __init__(self):
        self.value = 0
        self.log = []

    def bump(self):
        self.value += 1

    def stash(self):
        self.value = 99

    def observe(self):
        self.log.append(self.value)


def run_watched(drive, **kwargs):
    """Build a sim + watched Device inside a sanitizer; return findings."""
    with sanitized(auto_instrument=False, **kwargs) as sanitizer:
        sim = Simulator()
        device = sanitizer.watch(Device())
        drive(sim, device)
        sim.run()
    return sanitizer


def test_unordered_same_instant_writes_are_a_write_write_race():
    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(100, device.stash)

    sanitizer = run_watched(drive)
    [finding] = [f for f in sanitizer.findings
                 if f.rule_id == WRITE_WRITE_RACE]
    assert finding.object_type == "Device"
    assert finding.attr == "value"
    assert finding.time_ps == 100
    assert "S901" in finding.describe()


def test_unordered_read_and_write_are_a_read_write_race():
    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(100, device.observe)

    sanitizer = run_watched(drive)
    assert any(f.rule_id == READ_WRITE_RACE and f.attr == "value"
               for f in sanitizer.findings)


def test_scheduler_edge_suppresses_the_pair():
    def drive(sim, device):
        def first():
            device.bump()
            sim.call_at(sim.now, device.stash)
        sim.call_at(100, first)

    sanitizer = run_watched(drive)
    assert sanitizer.findings == []


def test_distinct_instants_never_race():
    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(200, device.stash)
        sim.call_at(300, device.observe)

    sanitizer = run_watched(drive)
    assert sanitizer.findings == []


def test_unwatched_objects_are_ignored():
    with sanitized(auto_instrument=False) as sanitizer:
        sim = Simulator()
        device = Device()  # never watched
        sim.call_at(100, device.bump)
        sim.call_at(100, device.stash)
        sim.run()
    assert sanitizer.findings == []


def test_no_reads_mode_skips_read_write_pairs():
    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(100, device.observe)

    sanitizer = run_watched(drive, track_reads=False)
    assert not any(f.rule_id == READ_WRITE_RACE
                   for f in sanitizer.findings)


def test_justified_findings_are_marked_but_kept():
    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(100, device.stash)

    sanitizer = run_watched(drive, justified=("Device.value",))
    [finding] = [f for f in sanitizer.findings
                 if f.rule_id == WRITE_WRITE_RACE]
    assert finding.justified


def test_repeated_racy_instants_deduplicate_into_a_count():
    def drive(sim, device):
        for time_ps in (100, 200, 300):
            sim.call_at(time_ps, device.bump)
            sim.call_at(time_ps, device.stash)

    sanitizer = run_watched(drive)
    [finding] = [f for f in sanitizer.findings
                 if f.rule_id == WRITE_WRITE_RACE]
    assert finding.count == 3


def test_crossval_sites_point_at_the_schedule_calls():
    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(100, device.stash)

    sanitizer = run_watched(drive)
    [finding] = [f for f in sanitizer.findings
                 if f.rule_id == WRITE_WRITE_RACE]
    assert all(path == __file__
               for path, _line in finding.crossval_sites)


def test_instrumentation_is_restored_on_close():
    sanitizer = RaceSanitizer(auto_instrument=False)
    sanitizer.open()
    try:
        sanitizer.watch(Device())
        assert getattr(Device.__setattr__,
                       "_repro_sanitize_wrapper", False)
    finally:
        sanitizer.close()
    assert "__setattr__" not in vars(Device)
    assert "__getattribute__" not in vars(Device)


def test_open_twice_raises():
    sanitizer = RaceSanitizer(auto_instrument=False)
    sanitizer.open()
    try:
        with pytest.raises(RuntimeError):
            sanitizer.open()
    finally:
        sanitizer.close()
    sanitizer.close()  # idempotent


def test_auto_instrumentation_covers_controller_state():
    # ICAPController lives in repro.fpga; its attribute writes during
    # a real reconfiguration must be recorded without any watch().
    from repro.bitstream.generator import generate_bitstream
    from repro.core.system import UPaRCSystem
    from repro.units import DataSize, Frequency

    with sanitized() as sanitizer:
        system = UPaRCSystem(decompressor=None)
        system.preload(generate_bitstream(size=DataSize.from_kb(2)))
        system.set_frequency(Frequency.from_mhz(100))
        system.reconfigure()
    assert sanitizer.accesses_recorded > 0
    assert sanitizer.findings == []  # the models are race-free


def test_counters_emitted_on_close():
    from repro.obs import observed

    def drive(sim, device):
        sim.call_at(100, device.bump)
        sim.call_at(100, device.stash)

    with observed(metrics=True) as observation:
        run_watched(drive)
    snapshot = observation.registry.snapshot()
    counters = snapshot["counters"]
    assert counters["sanitize.tasks"] >= 2
    assert counters["sanitize.accesses"] >= 2
    assert counters["sanitize.races"] >= 1
