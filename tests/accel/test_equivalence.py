"""Cross-backend equivalence: every impl backend is byte-identical to pure.

The pure backend is the semantic reference; these property tests pin
every other *available* backend (numpy, and native when the compiled
extension is built) to it bit-for-bit on randomised inputs.  Impl
kernels delegate to pure below their size crossovers, so the fixture
zeroes every threshold — each case exercises the accelerated code even
on hypothesis-sized payloads.  Backends that are not installed are
skipped per-parameter, so the suite degrades cleanly on a base
install.
"""

# The equivalence suite is the one place that must reach the backend
# modules directly instead of going through the dispatch facade.
# repro-lint: disable=B804

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import accel
from repro.accel import pure
from repro.accel.plan import SynthesisPlan
from repro.bitstream.generator import generate_bitstream
from repro.errors import CorruptStreamError
from repro.units import DataSize


def _impl_backends():
    names = []
    if accel.numpy_available():
        names.append("numpy")
    if accel.native_available():
        names.append("native")
    return names


@pytest.fixture(autouse=True, params=["numpy", "native"])
def vectorised(request, monkeypatch):
    """One impl backend per param, every delegation threshold removed."""
    name = request.param
    if name not in _impl_backends():
        pytest.skip(f"{name} backend not installed")
    if name == "numpy":
        from repro.accel import numpy_backend as backend
    else:
        from repro.accel import native_backend as backend
    for attribute in dir(backend):
        if attribute.startswith("_") and "_MIN_" in attribute \
                and isinstance(getattr(backend, attribute), int):
            monkeypatch.setattr(backend, attribute, 0)
    return backend


# function_scoped_fixture is deliberate: the thresholds stay patched
# for every example and the patch carries no per-example state.
quick = settings(max_examples=60, deadline=None,
                 suppress_health_check=[
                     HealthCheck.too_slow,
                     HealthCheck.function_scoped_fixture,
                 ])

# Word-run-structured payloads — the shape every kernel actually sees.
words = st.one_of(
    st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
             max_size=300),
    st.builds(
        lambda runs: [word for word, length in runs
                      for _ in range(length)],
        st.lists(st.tuples(
            st.sampled_from([0, 0xDEADBEEF, 0x01020304, 0xFFFFFFFF]),
            st.integers(min_value=1, max_value=40)), max_size=40),
    ),
)


@quick
@given(st.binary(max_size=4096), st.integers(min_value=0,
                                             max_value=0xFFFFFFFF))
def test_crc32c_matches(vectorised, data, crc):
    assert vectorised.crc32c(data, crc) == pure.crc32c(data, crc)


@quick
@given(st.lists(st.binary(max_size=512), max_size=8))
def test_crc32c_chaining_matches(vectorised, chunks):
    crc_np = crc_py = 0
    for chunk in chunks:
        crc_np = vectorised.crc32c(chunk, crc_np)
        crc_py = pure.crc32c(chunk, crc_py)
    assert crc_np == crc_py


@quick
@given(words)
def test_word_packing_matches(vectorised, values):
    packed = pure.words_to_bytes(values)
    assert vectorised.words_to_bytes(values) == packed
    assert vectorised.bytes_to_words(packed) == values


@quick
@given(words)
def test_equal_word_runs_match(vectorised, values):
    data = pure.words_to_bytes(values)
    runs = vectorised.equal_word_runs(data, len(values))
    assert runs == pure.equal_word_runs(data, len(values))
    assert sum(runs) == len(values)


@quick
@given(words, st.binary(max_size=3))
def test_zero_word_runs_match(vectorised, values, tail):
    # A ragged tail must not perturb the word-aligned scan.
    data = pure.words_to_bytes(values) + tail
    assert vectorised.zero_word_runs(data, len(values)) == \
        pure.zero_word_runs(data, len(values))


@quick
@given(st.binary(min_size=8, max_size=2048), st.data())
def test_match_lengths_match(vectorised, data, draw):
    position = draw.draw(st.integers(min_value=1, max_value=len(data) - 1))
    # Callers clamp limit so the match window stays inside the data
    # (``min(max_match, len(data) - position)`` in the LZ codecs).
    limit = draw.draw(st.integers(min_value=1,
                                  max_value=len(data) - position))
    candidates = draw.draw(st.lists(
        st.integers(min_value=0, max_value=position - 1),
        min_size=1, max_size=16))
    assert vectorised.match_lengths(data, candidates, position, limit) \
        == pure.match_lengths(data, candidates, position, limit)


@quick
@given(words, st.integers(min_value=0, max_value=8),
       st.integers(min_value=1, max_value=41))
def test_chunk_words_match(vectorised, block, offset, frame_words):
    offset = min(offset, len(block))
    assert vectorised.chunk_words(block, offset, frame_words) == \
        pure.chunk_words(block, offset, frame_words)


@quick
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=0xFFFFFFFF),
                          st.integers(min_value=0, max_value=30)),
                max_size=60),
       st.integers(min_value=1, max_value=41))
def test_synthesize_payload_matches(vectorised, ops, frame_words):
    plan = SynthesisPlan(frame_words)
    for is_copy, value, length in ops:
        # Copies are only meaningful once a previous frame exists.
        if is_copy and plan.total_words >= frame_words:
            plan.copy_previous(min(length, frame_words))
        else:
            plan.fill(value, length)
    assert vectorised.synthesize_payload(plan) == \
        pure.synthesize_payload(plan)


def test_generator_digest_identical_across_backends(vectorised):
    digests = set()
    for name in ["pure"] + _impl_backends():
        with accel.using(name):
            blob = generate_bitstream(size=DataSize.from_kb(16),
                                      seed=2012).file_bytes
        digests.add(hashlib.sha256(blob).hexdigest())
    assert len(digests) == 1


# -- compressor-stack kernels ------------------------------------------

# (value, width) token streams as the codecs emit them: widths up to
# the 58-bit ceiling of the X-MatchPRO zero-run chunks, values always
# fitting their width.
tokens = st.lists(
    st.tuples(st.integers(min_value=0, max_value=58),
              st.integers(min_value=0, max_value=(1 << 58) - 1)),
    max_size=200,
).map(lambda pairs: (
    [value & ((1 << width) - 1) for width, value in pairs],
    [width for width, _ in pairs],
))


@quick
@given(tokens)
def test_bitpack_matches(vectorised, stream):
    values, widths = stream
    assert vectorised.bitpack(values, widths) == \
        pure.bitpack(values, widths)


def test_bitpack_boundaries(vectorised):
    assert vectorised.bitpack([], []) == pure.bitpack([], []) == b""
    assert vectorised.bitpack([1], [1]) == pure.bitpack([1], [1])
    assert vectorised.bitpack([0], [0]) == pure.bitpack([0], [0]) == b""
    # Width-skewed stream: one huge token between many tiny ones.
    values = [1, (1 << 58) - 1, 0, 3]
    widths = [1, 58, 7, 2]
    assert vectorised.bitpack(values, widths) == pure.bitpack(values,
                                                              widths)


@quick
@given(words, st.binary(max_size=3),
       st.integers(min_value=2, max_value=64))
def test_xmatch_tokens_match(vectorised, values, tail, capacity):
    data = pure.words_to_bytes(values) + tail
    got = vectorised.xmatch_tokens(data, len(values), capacity)
    want = pure.xmatch_tokens(data, len(values), capacity)
    assert got == want


def test_xmatch_tokens_boundaries(vectorised):
    for data in (b"", b"\x00" * 64, b"\xAB\xCD\xEF\x01" * 16):
        got = vectorised.xmatch_tokens(data, len(data) // 4, 8)
        want = pure.xmatch_tokens(data, len(data) // 4, 8)
        assert got == want


@quick
@given(st.binary(max_size=2048),
       st.integers(min_value=4, max_value=12),
       st.integers(min_value=2, max_value=6),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=16))
def test_lz77_tokens_match(vectorised, data, window_bits, length_bits,
                           min_match, max_chain):
    got = vectorised.lz77_tokens(data, window_bits, length_bits,
                                 min_match, max_chain)
    want = pure.lz77_tokens(data, window_bits, length_bits,
                            min_match, max_chain)
    assert got == want


def test_lz77_tokens_boundaries(vectorised):
    for data in (b"", b"\x42", b"\x00" * 512, bytes(range(256)) * 4):
        assert vectorised.lz77_tokens(data, 8, 4, 3, 8) == \
            pure.lz77_tokens(data, 8, 4, 3, 8)


@quick
@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=256, max_size=256))
def test_huffman_code_table_matches(vectorised, histogram):
    if not any(histogram):
        histogram[0] = 1  # at least one symbol present
    assert vectorised.huffman_code_table(histogram) == \
        pure.huffman_code_table(histogram)


@quick
@given(st.binary(min_size=1, max_size=2048))
def test_huffman_pack_matches(vectorised, data):
    histogram = [0] * 256
    for byte in data:
        histogram[byte] += 1
    codes, lengths = pure.huffman_code_table(histogram)
    assert vectorised.huffman_pack(data, codes, lengths) == \
        pure.huffman_pack(data, codes, lengths)


def test_huffman_pack_boundaries(vectorised):
    for data in (b"\x00", b"\x00" * 300, bytes(range(256))):
        histogram = [0] * 256
        for byte in data:
            histogram[byte] += 1
        codes, lengths = pure.huffman_code_table(histogram)
        assert vectorised.huffman_pack(data, codes, lengths) == \
            pure.huffman_pack(data, codes, lengths)


@quick
@given(words, st.binary(max_size=3))
def test_rle_records_match(vectorised, values, tail):
    data = pure.words_to_bytes(values) + tail
    assert vectorised.rle_records(data, len(values)) == \
        pure.rle_records(data, len(values))


def test_rle_records_boundaries(vectorised):
    cases = (
        b"",                          # empty
        b"\x01\x02\x03\x04",          # single word
        b"\xAA\xBB\xCC\xDD" * 200,    # one long all-equal run
        b"\x00\x00\x00\x00" * 129,    # exactly the base-run ceiling
    )
    for data in cases:
        assert vectorised.rle_records(data, len(data) // 4) == \
            pure.rle_records(data, len(data) // 4)


# -- bit-serial decoders ------------------------------------------------
#
# Two properties per decoder: on well-formed streams (kernel-encoded
# round trips) the backend output is byte-identical to pure, and on
# *arbitrary* bodies the backend either returns pure's bytes or raises
# CorruptStreamError with pure's exact message — the decoders' error
# points are part of the stream contract (the codec corruption tests
# pin the messages), so a backend may not fail sooner, later, or with
# different words.


def _agree_with_pure(vectorised, kernel, *args):
    try:
        want, want_error = getattr(pure, kernel)(*args), None
    except CorruptStreamError as error:
        want, want_error = None, str(error)
    try:
        got, got_error = getattr(vectorised, kernel)(*args), None
    except CorruptStreamError as error:
        got, got_error = None, str(error)
    assert got_error == want_error
    assert got == want


@quick
@given(words, st.integers(min_value=2, max_value=64))
def test_xmatch_decode_roundtrip_matches(vectorised, values, capacity):
    data = pure.words_to_bytes(values)
    body = pure.bitpack(*pure.xmatch_tokens(data, len(values), capacity))
    got = vectorised.xmatch_decode(body, len(data), capacity)
    assert got == pure.xmatch_decode(body, len(data), capacity)
    assert got == data


@quick
@given(st.binary(max_size=512), st.integers(min_value=0, max_value=512),
       st.integers(min_value=2, max_value=64))
def test_xmatch_decode_corrupt_parity(vectorised, body, output_length,
                                      capacity):
    _agree_with_pure(vectorised, "xmatch_decode",
                     body, output_length * 4, capacity)


@quick
@given(st.binary(max_size=2048),
       st.integers(min_value=4, max_value=12),
       st.integers(min_value=2, max_value=6),
       st.integers(min_value=2, max_value=5))
def test_lz77_decode_roundtrip_matches(vectorised, data, window_bits,
                                       length_bits, min_match):
    body = pure.bitpack(*pure.lz77_tokens(data, window_bits,
                                          length_bits, min_match, 8))
    got = vectorised.lz77_decode(body, len(data), window_bits,
                                 length_bits, min_match)
    assert got == pure.lz77_decode(body, len(data), window_bits,
                                   length_bits, min_match)
    assert got == data


@quick
@given(st.binary(max_size=512), st.integers(min_value=0, max_value=4096),
       st.integers(min_value=4, max_value=12),
       st.integers(min_value=2, max_value=6),
       st.integers(min_value=2, max_value=5))
def test_lz77_decode_corrupt_parity(vectorised, body, output_length,
                                    window_bits, length_bits, min_match):
    _agree_with_pure(vectorised, "lz77_decode", body, output_length,
                     window_bits, length_bits, min_match)


@quick
@given(st.binary(min_size=1, max_size=2048))
def test_huffman_decode_roundtrip_matches(vectorised, data):
    histogram = [0] * 256
    for byte in data:
        histogram[byte] += 1
    codes, lengths = pure.huffman_code_table(histogram)
    body = pure.huffman_pack(data, codes, lengths)
    table = bytes(lengths)
    got = vectorised.huffman_decode(body, len(data), table)
    assert got == pure.huffman_decode(body, len(data), table)
    assert got == data


@quick
@given(st.binary(max_size=512), st.integers(min_value=0, max_value=2048),
       st.binary(min_size=256, max_size=256))
def test_huffman_decode_corrupt_parity(vectorised, body, output_length,
                                       table):
    _agree_with_pure(vectorised, "huffman_decode", body, output_length,
                     table)


@quick
@given(words, st.integers(min_value=0, max_value=4))
def test_rle_decode_roundtrip_matches(vectorised, values, slack):
    data = pure.words_to_bytes(values)
    records = pure.rle_records(data, len(values))
    # Decoding must ignore container padding past the declared length.
    padded = records + b"\x00" * slack
    got = vectorised.rle_decode(padded, len(data))
    assert got == pure.rle_decode(padded, len(data))
    assert got == data


@quick
@given(st.binary(max_size=1024),
       st.integers(min_value=0, max_value=4096))
def test_rle_decode_corrupt_parity(vectorised, records, output_length):
    _agree_with_pure(vectorised, "rle_decode", records, output_length)
