"""Crossover sentinels: impl backends delegate exactly as measured.

Every numpy/native kernel either carries a size threshold below which
the pure implementation wins, or delegates permanently because its
fixed per-call overhead (list/bytes -> ndarray conversion for numpy,
FFI argument shaping for native) never pays for itself.  These tests
wrap the pure kernels in call recorders and pin the dispatch decision:

* below its crossover a kernel hands the call to pure,
* at/above the crossover it takes the accelerated path (pure
  untouched),
* the permanent delegates (``chunk_words``, ``words_to_bytes``,
  ``huffman_code_table``, ``match_lengths``) hand over at *every*
  size — the regression this file exists to prevent is a backend
  being selected at a size where it loses.

Each backend's section skips cleanly when that backend is not
installed.
"""

# The sentinel wrappers must patch the pure module directly, and the
# dispatch decisions under test live in the backend modules.
# repro-lint: disable=B804

import pytest

from repro import accel
from repro.accel import pure
from repro.accel.plan import SynthesisPlan

requires_numpy = pytest.mark.skipif(not accel.numpy_available(),
                                    reason="numpy backend not installed")
requires_native = pytest.mark.skipif(
    not accel.native_available(),
    reason="native extension not built")


@pytest.fixture
def numpy_backend():
    if not accel.numpy_available():
        pytest.skip("numpy backend not installed")
    from repro.accel import numpy_backend
    return numpy_backend


@pytest.fixture
def native_backend():
    if not accel.native_available():
        pytest.skip("native extension not built")
    from repro.accel import native_backend
    return native_backend


def _sentinel(monkeypatch, name):
    """Wrap ``pure.<name>`` so calls are recorded but still answered."""
    original = getattr(pure, name)
    calls = []

    def wrapper(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(pure, name, wrapper)
    return calls


def _plan(words):
    plan = SynthesisPlan(41)
    remaining = words
    index = 0
    while remaining:
        take = min(41, remaining)
        plan.fill(0xDEAD0000 | index, take)
        remaining -= take
        index += 1
    return plan


_BIG_DATA = bytes(range(256)) * 72      # 18432 bytes / 4608 words
_HUFF_CODES, _HUFF_LENGTHS = pure.huffman_code_table(
    [1 if symbol < 8 else 0 for symbol in range(256)])

# Well-formed streams for the decoder cases (built once from the pure
# encoders; the above-crossover output is checked against pure).
_XM_WORDS = b"\xAB\xCD\xEF\x01\x00\x00\x00\x00" * 64   # 128 words
_XM_BODY = pure.bitpack(*pure.xmatch_tokens(_XM_WORDS, 128, 8))
_LZ_DATA = bytes(range(64)) * 16                       # 1024 bytes
_LZ_BODY = pure.bitpack(*pure.lz77_tokens(_LZ_DATA, 10, 4, 3, 8))
_HUF_DATA = bytes(value & 7 for value in range(2048))
_HUF_BODY = pure.huffman_pack(_HUF_DATA, _HUFF_CODES, _HUFF_LENGTHS)
_HUF_TABLE = bytes(_HUFF_LENGTHS)
# Literal-heavy on purpose: distinct words keep the record stream
# longer than the native decode threshold (run records collapse to a
# few bytes and would sit below every cutover).
_RLE_DATA = bytes(range(256)) * 2
_RLE_RECORDS = pure.rle_records(_RLE_DATA, 128)

# (pure kernel name, below-crossover args, at/above-crossover args):
# args are passed identically to the impl kernel and to the pure
# reference, so the above-crossover result can be checked against
# pure without trusting the recorder.
_NUMPY_CASES = [
    ("crc32c",
     (b"\x5a" * 100, 0),
     (_BIG_DATA, 0)),
    ("bytes_to_words",
     (b"\x5a" * 100,),
     (_BIG_DATA,)),
    ("synthesize_payload",
     (_plan(41),),
     (_plan(4920),)),
    ("equal_word_runs",
     (b"\x11" * 64, 16),
     (_BIG_DATA, 4608)),
    ("zero_word_runs",
     (b"\x00" * 64, 16),
     (_BIG_DATA, 4608)),
    ("bitpack",
     ([1] * 8, [8] * 8),
     (list(range(64)), [8] * 64)),
    ("xmatch_tokens",
     (b"\xab\xcd\xef\x01" * 16, 16, 8),
     (_BIG_DATA, 4608, 8)),
    ("lz77_tokens",
     (b"\x42" * 100, 8, 4, 3, 8),
     (_BIG_DATA, 8, 4, 3, 8)),
    ("huffman_pack",
     (bytes(value & 7 for value in range(100)),
      _HUFF_CODES, _HUFF_LENGTHS),
     (bytes(value & 7 for value in range(2048)),
      _HUFF_CODES, _HUFF_LENGTHS)),
    ("rle_records",
     (b"\x11\x22\x33\x44" * 16, 16),
     (_BIG_DATA, 4608)),
]

# The native FFI call costs well under a microsecond, so its cutovers
# sit far below numpy's — the below-crossover inputs here are tiny.
_NATIVE_CASES = [
    ("crc32c",
     (b"\x5a" * 2, 0),
     (b"\x5a" * 100, 0)),
    ("bitpack",
     ([1] * 4, [8] * 4),
     (list(range(64)), [8] * 64)),
    ("xmatch_tokens",
     (b"\xab\xcd\xef\x01", 1, 8),
     (b"\xab\xcd\xef\x01" * 16, 16, 8)),
    ("huffman_pack",
     (bytes(value & 7 for value in range(100)),
      _HUFF_CODES, _HUFF_LENGTHS),
     (bytes(value & 7 for value in range(2048)),
      _HUFF_CODES, _HUFF_LENGTHS)),
    ("xmatch_decode",
     (_XM_BODY[:4], 0, 8),
     (_XM_BODY, 512, 8)),
    ("lz77_decode",
     (_LZ_BODY[:4], 0, 10, 4, 3),
     (_LZ_BODY, 1024, 10, 4, 3)),
    ("huffman_decode",
     (_HUF_BODY[:4], 0, _HUF_TABLE),
     (_HUF_BODY, 2048, _HUF_TABLE)),
    ("rle_decode",
     (_RLE_RECORDS[:8], 0),
     (_RLE_RECORDS, 512)),
]


def _check_crossover(backend, monkeypatch, name, below_args, above_args):
    reference = getattr(pure, name)
    want_above = reference(*above_args)
    kernel = getattr(backend, name)
    calls = _sentinel(monkeypatch, name)

    kernel(*below_args)
    assert calls, f"{name} must delegate to pure below its crossover"

    calls.clear()
    got_above = kernel(*above_args)
    assert not calls, \
        f"{name} must take the accelerated path at/above its crossover"
    # The accelerated path still has to agree with the reference.
    assert got_above == want_above


@pytest.mark.parametrize("name,below_args,above_args", _NUMPY_CASES,
                         ids=[case[0] for case in _NUMPY_CASES])
def test_numpy_kernel_crossover(numpy_backend, monkeypatch,
                                name, below_args, above_args):
    _check_crossover(numpy_backend, monkeypatch, name, below_args,
                     above_args)


@pytest.mark.parametrize("name,below_args,above_args", _NATIVE_CASES,
                         ids=[case[0] for case in _NATIVE_CASES])
def test_native_kernel_crossover(native_backend, monkeypatch,
                                 name, below_args, above_args):
    _check_crossover(native_backend, monkeypatch, name, below_args,
                     above_args)


# lz77_tokens needs a sentinel variant of its own for native: the
# below-threshold input must be non-trivial enough that the pure path
# is observable, and the kernel also hands back wide-layout requests.


@requires_native
def test_native_lz77_crossover(native_backend, monkeypatch):
    _check_crossover(native_backend, monkeypatch, "lz77_tokens",
                     (b"\x42" * 8, 8, 4, 3, 8),
                     (_BIG_DATA, 8, 4, 3, 8))


def test_numpy_lz77_wide_match_window_delegates(numpy_backend,
                                                monkeypatch):
    # min_match > 8 exceeds the vectorised prefix-hash width, so the
    # kernel must hand even large payloads back to pure.
    calls = _sentinel(monkeypatch, "lz77_tokens")
    numpy_backend.lz77_tokens(_BIG_DATA, 8, 6, 9, 8)
    assert calls


@requires_native
def test_native_guard_delegations(native_backend, monkeypatch):
    # Layouts outside the C kernels' fixed-width assumptions must fall
    # back to the arbitrary-precision pure forms, whatever the size.
    calls = _sentinel(monkeypatch, "lz77_tokens")
    native_backend.lz77_tokens(_BIG_DATA, 8, 6, 9, 8)  # min_match > 8
    assert calls

    calls = _sentinel(monkeypatch, "lz77_decode")
    native_backend.lz77_decode(_LZ_BODY, 0, 40, 10, 3)  # > 48-bit token
    assert calls

    calls = _sentinel(monkeypatch, "bitpack")
    # A width above 64 bits only fits the bigint accumulator.
    assert native_backend.bitpack([1 << 70, 1], [71, 1]) == \
        pure.bitpack([1 << 70, 1], [71, 1])
    assert calls


@pytest.mark.parametrize("size", [0, 3, 16, 256, 4096])
def test_chunk_words_delegates_at_every_size(numpy_backend,
                                             monkeypatch, size):
    # Regression sentinel: vectorised chunking lost to the pure
    # implementation at every measured size (the list -> ndarray
    # conversion dominates), so the numpy backend must never select
    # its own path for this kernel.
    calls = _sentinel(monkeypatch, "chunk_words")
    numpy_backend.chunk_words(list(range(size)), 0, 41)
    assert calls, f"chunk_words must delegate to pure at size {size}"


@pytest.mark.parametrize("size", [0, 8, 512, 8192])
def test_words_to_bytes_delegates_at_every_size(numpy_backend,
                                                monkeypatch, size):
    calls = _sentinel(monkeypatch, "words_to_bytes")
    numpy_backend.words_to_bytes([0x01020304] * size)
    assert calls, f"words_to_bytes must delegate to pure at size {size}"


def test_huffman_code_table_always_delegates(numpy_backend, monkeypatch):
    # The input is a fixed 256-bin histogram; the heap build is too
    # small for vectorisation to ever pay.
    calls = _sentinel(monkeypatch, "huffman_code_table")
    histogram = [0] * 256
    histogram[0] = 90
    histogram[7] = 10
    numpy_backend.huffman_code_table(histogram)
    assert calls


@pytest.mark.parametrize("work", [(3, 8), (64, 512)],
                         ids=["small", "large"])
def test_match_lengths_always_delegates(numpy_backend, monkeypatch,
                                        work):
    # Permanent delegate since the native backend landed: the pure
    # form's early-limit break beats the full candidate matrix on
    # chain-shaped inputs at every measured size (0.07-0.16x for the
    # vector form), so the one-time 1.08x best case no longer earns a
    # threshold.
    count, limit = work
    calls = _sentinel(monkeypatch, "match_lengths")
    numpy_backend.match_lengths(_BIG_DATA, list(range(count)), 8192,
                                limit)
    assert calls, "match_lengths must delegate to pure at every size"
