"""Crossover sentinels: the numpy backend delegates exactly as measured.

Every numpy kernel either carries a size threshold below which the
pure implementation wins, or delegates permanently because the
list/bytes -> ndarray conversion never pays for itself.  These tests
wrap the pure kernels in call recorders and pin the dispatch decision:

* below its crossover a kernel hands the call to pure,
* at/above the crossover it takes the vectorised path (pure untouched),
* the permanent delegates (``chunk_words``, ``words_to_bytes``,
  ``huffman_code_table``) hand over at *every* size — the regression
  this file exists to prevent is a backend being selected at a size
  where it loses.
"""

# The sentinel wrappers must patch the pure module directly, and the
# dispatch decisions under test live in the numpy module.
# repro-lint: disable=B804

import pytest

from repro import accel
from repro.accel import pure
from repro.accel.plan import SynthesisPlan

pytestmark = pytest.mark.skipif(not accel.numpy_available(),
                                reason="numpy backend not installed")


@pytest.fixture
def numpy_backend():
    from repro.accel import numpy_backend
    return numpy_backend


def _sentinel(monkeypatch, name):
    """Wrap ``pure.<name>`` so calls are recorded but still answered."""
    original = getattr(pure, name)
    calls = []

    def wrapper(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(pure, name, wrapper)
    return calls


def _plan(words):
    plan = SynthesisPlan(41)
    remaining = words
    index = 0
    while remaining:
        take = min(41, remaining)
        plan.fill(0xDEAD0000 | index, take)
        remaining -= take
        index += 1
    return plan


_BIG_DATA = bytes(range(256)) * 72      # 18432 bytes / 4608 words
_HUFF_CODES, _HUFF_LENGTHS = pure.huffman_code_table(
    [1 if symbol < 8 else 0 for symbol in range(256)])

# (pure kernel name, below-crossover args, at/above-crossover args):
# args are passed identically to the numpy kernel and to the pure
# reference, so the above-crossover result can be checked against
# pure without trusting the recorder.
_CASES = [
    ("crc32c",
     (b"\x5a" * 100, 0),
     (_BIG_DATA, 0)),
    ("bytes_to_words",
     (b"\x5a" * 100,),
     (_BIG_DATA,)),
    ("synthesize_payload",
     (_plan(41),),
     (_plan(4920),)),
    ("equal_word_runs",
     (b"\x11" * 64, 16),
     (_BIG_DATA, 4608)),
    ("zero_word_runs",
     (b"\x00" * 64, 16),
     (_BIG_DATA, 4608)),
    ("match_lengths",
     (_BIG_DATA, [0, 1, 2], 512, 8),
     (_BIG_DATA, list(range(64)), 4096, 32)),
    ("bitpack",
     ([1] * 8, [8] * 8),
     (list(range(64)), [8] * 64)),
    ("xmatch_tokens",
     (b"\xab\xcd\xef\x01" * 16, 16, 8),
     (_BIG_DATA, 4608, 8)),
    ("lz77_tokens",
     (b"\x42" * 100, 8, 4, 3, 8),
     (_BIG_DATA, 8, 4, 3, 8)),
    ("huffman_pack",
     (bytes(value & 7 for value in range(100)),
      _HUFF_CODES, _HUFF_LENGTHS),
     (bytes(value & 7 for value in range(2048)),
      _HUFF_CODES, _HUFF_LENGTHS)),
    ("rle_records",
     (b"\x11\x22\x33\x44" * 16, 16),
     (_BIG_DATA, 4608)),
]


@pytest.mark.parametrize("name,below_args,above_args", _CASES,
                         ids=[case[0] for case in _CASES])
def test_thresholded_kernel_crossover(numpy_backend, monkeypatch,
                                      name, below_args, above_args):
    reference = getattr(pure, name)
    want_above = reference(*above_args)
    kernel = getattr(numpy_backend, name)
    calls = _sentinel(monkeypatch, name)

    kernel(*below_args)
    assert calls, f"{name} must delegate to pure below its crossover"

    calls.clear()
    got_above = kernel(*above_args)
    assert not calls, \
        f"{name} must take the vectorised path at/above its crossover"
    # The vectorised path still has to agree with the reference.
    assert got_above == want_above


def test_lz77_wide_match_window_delegates(numpy_backend, monkeypatch):
    # min_match > 8 exceeds the vectorised prefix-hash width, so the
    # kernel must hand even large payloads back to pure.
    calls = _sentinel(monkeypatch, "lz77_tokens")
    numpy_backend.lz77_tokens(_BIG_DATA, 8, 6, 9, 8)
    assert calls


@pytest.mark.parametrize("size", [0, 3, 16, 256, 4096])
def test_chunk_words_delegates_at_every_size(numpy_backend,
                                             monkeypatch, size):
    # Regression sentinel: vectorised chunking lost to the pure
    # implementation at every measured size (the list -> ndarray
    # conversion dominates), so the numpy backend must never select
    # its own path for this kernel.
    calls = _sentinel(monkeypatch, "chunk_words")
    numpy_backend.chunk_words(list(range(size)), 0, 41)
    assert calls, f"chunk_words must delegate to pure at size {size}"


@pytest.mark.parametrize("size", [0, 8, 512, 8192])
def test_words_to_bytes_delegates_at_every_size(numpy_backend,
                                                monkeypatch, size):
    calls = _sentinel(monkeypatch, "words_to_bytes")
    numpy_backend.words_to_bytes([0x01020304] * size)
    assert calls, f"words_to_bytes must delegate to pure at size {size}"


def test_huffman_code_table_always_delegates(numpy_backend, monkeypatch):
    # The input is a fixed 256-bin histogram; the heap build is too
    # small for vectorisation to ever pay.
    calls = _sentinel(monkeypatch, "huffman_code_table")
    histogram = [0] * 256
    histogram[0] = 90
    histogram[7] = 10
    numpy_backend.huffman_code_table(histogram)
    assert calls
