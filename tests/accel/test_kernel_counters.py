"""Mode-ii runs tick the accel counters for every compressor kernel.

One system run per decompressor-library entry, under each installed
backend, with the metrics registry live: the compress-offline path
must report nonzero ``accel.<backend>.<kernel>.calls`` for the
kernels that codec dispatches — the encode kernels on the compress
side and the matching bit-serial decode kernel on the decompress
side.  Together the four codecs cover all ten compressor-stack
kernels, so a kernel silently bypassing the dispatch facade (and its
``record`` call) fails here.
"""

import pytest

from repro import accel, obs
from repro.bitstream.generator import generate_bitstream
from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.units import DataSize

#: Kernels each codec's compress+decompress paths dispatch during
#: mode ii.  Huffman's encoder fuses encode+pack, so it ticks its own
#: ``huffman_pack`` kernel rather than the generic ``bitpack``.
EXPECTED_KERNELS = {
    "x-matchpro": ("xmatch_tokens", "bitpack", "xmatch_decode"),
    "lz77": ("lz77_tokens", "bitpack", "lz77_decode"),
    "huffman": ("huffman_code_table", "huffman_pack", "huffman_decode"),
    "farm-rle": ("rle_records", "rle_decode"),
}

BACKENDS = (["pure"]
            + (["numpy"] if accel.numpy_available() else [])
            + (["native"] if accel.native_available() else []))


def _bitstream():
    return generate_bitstream(size=DataSize.from_kb(6.5), seed=2012)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(EXPECTED_KERNELS))
def test_mode_ii_run_ticks_compressor_kernels(backend, name):
    with accel.using(backend):
        with obs.observed(metrics=True) as observation:
            system = UPaRCSystem(decompressor=name)
            result = system.run(_bitstream(),
                                mode=OperationMode.COMPRESSED)
    assert result.mode == "compressed"
    counters = observation.registry.snapshot()["counters"]
    for kernel in EXPECTED_KERNELS[name]:
        calls = counters.get(f"accel.{backend}.{kernel}.calls", 0)
        assert calls > 0, \
            f"{name} run did not dispatch {kernel} ({backend})"
        assert counters.get(f"accel.{backend}.{kernel}.bytes", 0) > 0


def test_expected_kernel_map_covers_every_new_kernel():
    covered = {kernel for kernels in EXPECTED_KERNELS.values()
               for kernel in kernels}
    assert covered == {"xmatch_tokens", "bitpack", "lz77_tokens",
                       "huffman_code_table", "huffman_pack",
                       "rle_records", "xmatch_decode", "lz77_decode",
                       "huffman_decode", "rle_decode"}
