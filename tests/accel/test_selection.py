"""Backend registry: selection precedence, validation, metrics."""

import pytest

from repro import accel
from repro.errors import AccelError
from repro.obs import install as obs_install
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_backend(monkeypatch):
    """Each test resolves from a clean slate (no force, no env)."""
    monkeypatch.delenv(accel.BACKEND_ENV, raising=False)
    with accel.using("auto"):
        yield


def test_pure_backend_always_available():
    assert accel.available_backends()[0] == "pure"


def _auto_expected():
    if accel.native_available():
        return "native"
    if accel.numpy_available():
        return "numpy"
    return "pure"


def test_auto_prefers_fastest_available_backend():
    expected = _auto_expected()
    assert accel.select("auto") == expected
    assert accel.backend_name() == expected


def test_select_pure_forces_pure():
    assert accel.select("pure") == "pure"
    assert accel.active().name == "pure"


def test_select_beats_environment(monkeypatch):
    monkeypatch.setenv(accel.BACKEND_ENV, "pure")
    if accel.numpy_available():
        assert accel.select("numpy") == "numpy"
    else:
        assert accel.select("pure") == "pure"


def test_environment_beats_auto(monkeypatch):
    monkeypatch.setenv(accel.BACKEND_ENV, "pure")
    assert accel.select("auto") == "pure"


def test_environment_auto_means_auto(monkeypatch):
    monkeypatch.setenv(accel.BACKEND_ENV, "auto")
    assert accel.select(None) == _auto_expected()


def test_invalid_name_rejected_without_clobbering_state():
    before = accel.backend_name()
    with pytest.raises(AccelError):
        accel.select("cuda")
    assert accel.backend_name() == before


def test_invalid_environment_value_rejected(monkeypatch):
    monkeypatch.setenv(accel.BACKEND_ENV, "fortran")
    with pytest.raises(AccelError):
        accel.select(None)  # re-resolves, reading the bad env value


def test_using_restores_previous_selection():
    accel.select("pure")
    with accel.using("auto") as name:
        assert name in ("pure", "numpy", "native")
    assert accel.backend_name() == "pure"


def test_numpy_request_without_numpy_raises(monkeypatch):
    if accel.numpy_available():
        pytest.skip("numpy installed; covered by test_select_beats_environment")
    with pytest.raises(AccelError):
        accel.select("numpy")


def test_native_request_without_extension_raises():
    if accel.native_available():
        pytest.skip("native extension built; covered by the suites "
                    "running under REPRO_BACKEND=native")
    with pytest.raises(AccelError, match="not built"):
        accel.select("native")


def test_native_listed_only_when_built():
    listed = "native" in accel.available_backends()
    assert listed == accel.native_available()


def test_dispatch_records_backend_tagged_counters():
    accel.select("pure")
    registry = MetricsRegistry()
    obs_install(registry=registry)
    try:
        accel.crc32c(b"\x00" * 64)
        accel.words_to_bytes([1, 2, 3])
    finally:
        obs_install()
    rows = dict(registry.snapshot()["counters"])
    assert rows["accel.pure.crc32c.calls"] == 1
    assert rows["accel.pure.crc32c.bytes"] == 64
    assert rows["accel.pure.words_to_bytes.bytes"] == 12


def test_no_registry_means_no_recording():
    # Must not raise against the NullRegistry singletons.
    accel.record("crc32c", 128)
