"""Package-level API contracts.

The import surface promised by docs/api_overview.md: every ``__all__``
name resolves, every library exception is catchable as ReproError,
and the version is sane.
"""

import importlib

import pytest

import repro
import repro.errors as errors


PACKAGES = ["repro", "repro.sim", "repro.bitstream", "repro.compress",
            "repro.fpga", "repro.power", "repro.controllers",
            "repro.core", "repro.analysis"]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_present():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_every_library_error_is_repro_error():
    exception_types = [
        obj for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]
    assert len(exception_types) >= 15
    for exception_type in exception_types:
        assert issubclass(exception_type, errors.ReproError), \
            exception_type


def test_error_hierarchy_specifics():
    assert issubclass(errors.FrequencyError, errors.HardwareModelError)
    assert issubclass(errors.CorruptStreamError, errors.CompressionError)
    assert issubclass(errors.BitstreamFormatError, errors.BitstreamError)
    assert issubclass(errors.ReconfigurationFailed, errors.ControllerError)
    assert issubclass(errors.ClockError, errors.SimulationError)


def test_one_base_class_catches_everything(small_bitstream):
    """The docstring promise: catch ReproError to handle any failure."""
    from repro.core.system import UPaRCSystem
    from repro.units import Frequency
    system = UPaRCSystem(decompressor=None)
    with pytest.raises(errors.ReproError):
        system.set_frequency(Frequency.from_mhz(1000))
    with pytest.raises(errors.ReproError):
        system.reconfigure()  # nothing preloaded


def test_docs_exist_and_reference_real_symbols():
    from pathlib import Path
    docs = Path(__file__).resolve().parent.parent / "docs"
    api_text = (docs / "api_overview.md").read_text()
    for symbol in ("UPaRCSystem", "generate_bitstream", "DagScheduler",
                   "PowerModel", "validate", "VcdWriter"):
        assert symbol in api_text
    assert (docs / "calibration.md").exists()
    assert (docs / "architecture.md").exists()
