"""DAG scheduler over multiple reconfigurable regions."""

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.core.dag_scheduler import DagScheduler, DagTask
from repro.errors import PolicyError
from repro.units import DataSize, Frequency, ms


@pytest.fixture(scope="module")
def bitstreams():
    return {
        "fft": generate_bitstream(size=DataSize.from_kb(30), seed=1),
        "fir": generate_bitstream(size=DataSize.from_kb(49), seed=2),
        "crc": generate_bitstream(size=DataSize.from_kb(12), seed=3),
    }


@pytest.fixture
def scheduler():
    return DagScheduler(
        reconfiguration_frequency=Frequency.from_mhz(362.5))


def make_task(name, bitstreams, module="fft", region="r0",
              compute=ms(2), deps=()):
    return DagTask(name=name, module=module,
                   bitstream=bitstreams[module], region=region,
                   compute_ps=compute, deps=deps)


class TestGraphValidation:
    def test_cycle_rejected(self, scheduler, bitstreams):
        tasks = [
            make_task("a", bitstreams, deps=("b",)),
            make_task("b", bitstreams, deps=("a",)),
        ]
        with pytest.raises(PolicyError, match="cycle"):
            scheduler.schedule(tasks)

    def test_unknown_dependency_rejected(self, scheduler, bitstreams):
        tasks = [make_task("a", bitstreams, deps=("ghost",))]
        with pytest.raises(PolicyError, match="unknown"):
            scheduler.schedule(tasks)

    def test_duplicate_names_rejected(self, scheduler, bitstreams):
        tasks = [make_task("a", bitstreams), make_task("a", bitstreams)]
        with pytest.raises(PolicyError, match="duplicate"):
            scheduler.schedule(tasks)

    def test_negative_compute_rejected(self, bitstreams):
        with pytest.raises(PolicyError):
            DagTask("a", "fft", bitstreams["fft"], "r0", compute_ps=-1)


class TestDependencies:
    def test_dependency_orders_computation(self, scheduler, bitstreams):
        tasks = [
            make_task("producer", bitstreams, module="fft", region="r0"),
            make_task("consumer", bitstreams, module="fir", region="r1",
                      deps=("producer",)),
        ]
        report = scheduler.schedule(tasks)
        assert report.entries_for("consumer")["compute"].start_ps \
            >= report.compute_end("producer")

    def test_diamond_graph_joins(self, scheduler, bitstreams):
        tasks = [
            make_task("src", bitstreams, module="fft", region="r0"),
            make_task("left", bitstreams, module="fir", region="r1",
                      deps=("src",)),
            make_task("right", bitstreams, module="crc", region="r2",
                      deps=("src",)),
            make_task("sink", bitstreams, module="fft", region="r0",
                      deps=("left", "right")),
        ]
        report = scheduler.schedule(tasks)
        sink_start = report.entries_for("sink")["compute"].start_ps
        assert sink_start >= report.compute_end("left")
        assert sink_start >= report.compute_end("right")


class TestParallelism:
    def test_independent_regions_compute_in_parallel(self, scheduler,
                                                     bitstreams):
        tasks = [
            make_task("a", bitstreams, module="fft", region="r0",
                      compute=ms(10)),
            make_task("b", bitstreams, module="fir", region="r1",
                      compute=ms(10)),
        ]
        report = scheduler.schedule(tasks)
        a = report.entries_for("a")["compute"]
        b = report.entries_for("b")["compute"]
        overlap = min(a.end_ps, b.end_ps) - max(a.start_ps, b.start_ps)
        assert overlap > ms(8)  # nearly full overlap

    def test_icap_serializes_reconfigurations(self, scheduler,
                                              bitstreams):
        tasks = [
            make_task("a", bitstreams, module="fft", region="r0"),
            make_task("b", bitstreams, module="fir", region="r1"),
            make_task("c", bitstreams, module="crc", region="r2"),
        ]
        report = scheduler.schedule(tasks)
        reconfigs = sorted(
            (entry for entry in report.timeline
             if entry.phase == "reconfigure"),
            key=lambda entry: entry.start_ps)
        for first, second in zip(reconfigs, reconfigs[1:]):
            assert second.start_ps >= first.end_ps

    def test_same_region_serializes_compute(self, scheduler, bitstreams):
        tasks = [
            make_task("a", bitstreams, module="fft", region="r0",
                      compute=ms(5)),
            make_task("b", bitstreams, module="fir", region="r0",
                      compute=ms(5)),
        ]
        report = scheduler.schedule(tasks)
        a = report.entries_for("a")["compute"]
        b = report.entries_for("b")["compute"]
        assert a.end_ps <= b.start_ps or b.end_ps <= a.start_ps


class TestModuleReuse:
    def test_repeat_module_skips_reconfiguration(self, scheduler,
                                                 bitstreams):
        tasks = [
            make_task("first", bitstreams, module="fft", region="r0"),
            make_task("second", bitstreams, module="fft", region="r0",
                      deps=("first",)),
        ]
        report = scheduler.schedule(tasks)
        assert report.reconfigurations == 1
        assert report.reuses == 1
        assert "reconfigure" not in report.entries_for("second")

    def test_module_change_forces_reconfiguration(self, scheduler,
                                                  bitstreams):
        tasks = [
            make_task("first", bitstreams, module="fft", region="r0"),
            make_task("other", bitstreams, module="fir", region="r0",
                      deps=("first",)),
            make_task("again", bitstreams, module="fft", region="r0",
                      deps=("other",)),
        ]
        report = scheduler.schedule(tasks)
        assert report.reconfigurations == 3
        assert report.reuses == 0


class TestMakespan:
    def test_never_worse_than_serial(self, scheduler, bitstreams):
        tasks = [
            make_task("a", bitstreams, module="fft", region="r0",
                      compute=ms(3)),
            make_task("b", bitstreams, module="fir", region="r1",
                      compute=ms(4)),
            make_task("c", bitstreams, module="crc", region="r2",
                      compute=ms(2), deps=("a",)),
            make_task("d", bitstreams, module="fft", region="r0",
                      compute=ms(1), deps=("b", "c")),
        ]
        report = scheduler.schedule(tasks)
        assert report.makespan_ps <= scheduler.serial_baseline(tasks)

    def test_deterministic(self, scheduler, bitstreams):
        tasks = [
            make_task("a", bitstreams, module="fft", region="r0"),
            make_task("b", bitstreams, module="fir", region="r1"),
            make_task("c", bitstreams, module="crc", region="r2",
                      deps=("a", "b")),
        ]
        first = scheduler.schedule(tasks)
        second = scheduler.schedule(tasks)
        assert first.timeline == second.timeline

    def test_empty_graph(self, scheduler):
        report = scheduler.schedule([])
        assert report.makespan_ps == 0
        assert report.timeline == []
