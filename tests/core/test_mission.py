"""Mission-level policy comparison (the §VI future-work study)."""

import pytest

from repro.core.mission import (
    POLICIES,
    SwapRequest,
    compare_policies,
    generate_mission,
    run_mission,
)
from repro.errors import PolicyError
from repro.power.calibration import Calibration
from repro.power.model import PowerModel
from repro.units import DataSize, ms


@pytest.fixture(scope="module")
def mission():
    return generate_mission(swap_count=120, seed=3)


class TestGeneration:
    def test_count_and_monotone_arrivals(self, mission):
        assert len(mission) == 120
        arrivals = [request.at_ps for request in mission]
        assert arrivals == sorted(arrivals)

    def test_deterministic(self):
        assert generate_mission(seed=5) == generate_mission(seed=5)

    def test_deadlines_positive(self, mission):
        assert all(request.deadline_ps > 0 for request in mission)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(PolicyError):
            SwapRequest(at_ps=0, module="m", size=DataSize.from_kb(10),
                        deadline_ps=0)


class TestPolicies:
    def test_unknown_policy_rejected(self, mission):
        with pytest.raises(PolicyError):
            run_mission(mission, "overclock-everything")

    def test_all_policies_run_every_swap(self, mission):
        for name, result in compare_policies(mission).items():
            assert result.swaps == len(mission), name

    def test_power_aware_meets_every_feasible_deadline(self, mission):
        result = run_mission(mission, "power-aware")
        assert result.deadline_misses == result.infeasible == 0

    def test_max_frequency_meets_deadlines_too(self, mission):
        result = run_mission(mission, "max-frequency")
        assert result.deadline_misses == 0

    def test_power_aware_runs_cooler_than_max(self, mission):
        results = compare_policies(mission)
        assert results["power-aware"].mean_frequency_mhz \
            < results["max-frequency"].mean_frequency_mhz

    def test_energy_optimal_minimizes_energy_with_active_wait(self,
                                                              mission):
        results = compare_policies(mission)
        optimal = results["energy-optimal"].total_energy_uj
        for name, result in results.items():
            assert optimal <= result.total_energy_uj + 1e-9, name

    def test_with_active_wait_energy_optimal_is_fast(self, mission):
        # The paper's §V observation at mission scale.
        results = compare_policies(mission)
        assert results["energy-optimal"].mean_frequency_mhz \
            > results["power-aware"].mean_frequency_mhz

    def test_policies_registered(self):
        assert set(POLICIES) == {"max-frequency", "power-aware",
                                 "energy-optimal"}


class TestGatedManagerMission:
    def test_gated_manager_softens_the_energy_gap(self, mission):
        """With a hardware (clock-gated) manager, running slower no
        longer wastes wait energy, so the power-aware policy's energy
        penalty versus energy-optimal shrinks."""
        active = compare_policies(mission)
        gated = compare_policies(
            mission, power_model=PowerModel(hardware_manager=True))

        def penalty(results):
            aware = results["power-aware"].total_energy_uj
            optimal = results["energy-optimal"].total_energy_uj
            return aware / optimal

        assert penalty(gated) < penalty(active)
