"""UReC FSM: header decode, raw and compressed transfers."""

import pytest

from repro.core.urec import (
    OperationMode,
    UReC,
    pack_header,
    unpack_header,
)
from repro.errors import ReconfigurationFailed
from repro.fpga.bram import Bram
from repro.fpga.decompressor import DECOMPRESSOR_LIBRARY, HardwareDecompressor
from repro.fpga.icap import Icap
from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.format import bytes_to_words, words_to_bytes
from repro.results import stream_crc
from repro.sim import Clock, Event, Process
from repro.units import Frequency


def build(sim, clk2_mhz=100.0, decompressor=None):
    clock = Clock(sim, "clk2", Frequency.from_mhz(clk2_mhz))
    bram = Bram(sim)
    icap = Icap(sim, VIRTEX5_SX50T, clock)
    urec = UReC(sim, bram, icap, clock, decompressor=decompressor)
    return urec, bram, icap, clock


def run_urec(sim, urec):
    start = Event(sim, "start")
    finish = Event(sim, "finish")
    Process(sim, urec.process(start, finish), name="urec")
    start.trigger()
    sim.run()
    assert finish.triggered
    return finish.payload


class TestHeader:
    def test_pack_unpack_raw(self):
        word = pack_header(OperationMode.RAW, 55424)
        assert unpack_header(word) == (OperationMode.RAW, 55424)

    def test_pack_unpack_compressed(self):
        word = pack_header(OperationMode.COMPRESSED, 123)
        assert word >> 31 == 1
        assert unpack_header(word) == (OperationMode.COMPRESSED, 123)

    def test_oversized_payload_rejected(self):
        with pytest.raises(ReconfigurationFailed):
            pack_header(OperationMode.RAW, 1 << 31)


class TestRawTransfer:
    def test_words_delivered_and_crc(self, sim):
        urec, bram, icap, _ = build(sim)
        payload = [0xAA995566, 0x12345678, 0xDEADBEEF, 0]
        bram.preload([pack_header(OperationMode.RAW, len(payload))]
                     + payload)
        stats = run_urec(sim, urec)
        assert stats.output_words == len(payload)
        assert icap.words_accepted == len(payload)
        assert icap.payload_crc == stream_crc(words_to_bytes(payload))

    def test_burst_timing_one_word_per_cycle(self, sim):
        urec, bram, icap, clock = build(sim, clk2_mhz=100.0)
        payload = [7] * 1000
        bram.preload([pack_header(OperationMode.RAW, len(payload))]
                     + payload)
        stats = run_urec(sim, urec)
        # 1000 words + 2 setup cycles at 10 ns.
        assert stats.burst_ps == (1000 + 2) * 10_000

    def test_en_gating_closes_activity(self, sim):
        urec, bram, icap, _ = build(sim)
        payload = [1, 2, 3]
        bram.preload([pack_header(OperationMode.RAW, 3)] + payload)
        run_urec(sim, urec)
        assert not icap.activity.active
        assert len(icap.activity.intervals) == 1
        assert not bram.port_b_activity.active

    def test_multiple_runs_reuse_controller(self, sim):
        urec, bram, icap, _ = build(sim)
        payload = [9] * 10
        bram.preload([pack_header(OperationMode.RAW, 10)] + payload)
        run_urec(sim, urec)
        run_urec(sim, urec)
        assert urec.runs == 2


class TestCompressedTransfer:
    def _decompressor(self, sim, mhz=125.0):
        spec = DECOMPRESSOR_LIBRARY["x-matchpro"]
        clock = Clock(sim, "clk3", Frequency.from_mhz(mhz))
        return HardwareDecompressor(sim, spec, clock)

    def test_functional_expansion(self, sim, small_bitstream):
        decompressor = self._decompressor(sim)
        urec, bram, icap, _ = build(sim, clk2_mhz=255.0,
                                    decompressor=decompressor)
        compressed = decompressor.compress_offline(small_bitstream.raw_bytes)
        if len(compressed) % 4:
            compressed += b"\x00" * (4 - len(compressed) % 4)
        stored = bytes_to_words(compressed)
        bram.preload([pack_header(OperationMode.COMPRESSED, len(stored))]
                     + stored)
        stats = run_urec(sim, urec)
        assert stats.mode is OperationMode.COMPRESSED
        assert icap.payload_crc == stream_crc(small_bitstream.raw_bytes)

    def test_compressed_without_decompressor_fails(self, sim):
        urec, bram, icap, _ = build(sim, decompressor=None)
        bram.preload([pack_header(OperationMode.COMPRESSED, 1), 0])
        start = Event(sim, "start")
        finish = Event(sim, "finish")
        Process(sim, urec.process(start, finish), name="urec")
        start.trigger()
        with pytest.raises(ReconfigurationFailed):
            sim.run()

    def test_pipeline_paced_by_slower_side(self, sim, small_bitstream):
        # At CLK_2 = 255 MHz and CLK_3 = 125 MHz x 2 words, the
        # decompressor (250 Mwords/s) is slower than ICAP (255).
        decompressor = self._decompressor(sim, mhz=125.0)
        urec, bram, icap, _ = build(sim, clk2_mhz=255.0,
                                    decompressor=decompressor)
        compressed = decompressor.compress_offline(small_bitstream.raw_bytes)
        if len(compressed) % 4:
            compressed += b"\x00" * (4 - len(compressed) % 4)
        stored = bytes_to_words(compressed)
        bram.preload([pack_header(OperationMode.COMPRESSED, len(stored))]
                     + stored)
        stats = run_urec(sim, urec)
        out_words = len(small_bitstream.raw_words)
        decomp_ps = decompressor.clock.cycles_duration(
            decompressor.stream_cycles(out_words))
        assert stats.burst_ps == pytest.approx(decomp_ps, rel=0.01)
