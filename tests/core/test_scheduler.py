"""Prefetch scheduler (Section III-A-1)."""

import pytest

from repro.core.scheduler import PrefetchScheduler, Task
from repro.errors import PolicyError
from repro.units import DataSize, Frequency, ms, us


@pytest.fixture(scope="module")
def tasks():
    from repro.bitstream.generator import generate_bitstream
    bitstreams = [generate_bitstream(size=DataSize.from_kb(kb), seed=kb)
                  for kb in (30, 49, 81)]
    return [
        Task("fft", bitstreams[0], compute_ps=ms(5)),
        Task("fir", bitstreams[1], compute_ps=ms(8)),
        Task("viterbi", bitstreams[2], compute_ps=ms(6)),
    ]


@pytest.fixture
def scheduler():
    return PrefetchScheduler(
        reconfiguration_frequency=Frequency.from_mhz(362.5))


def test_sequential_sums_all_phases(scheduler, tasks):
    report = scheduler.sequential(tasks)
    assert report.makespan_ps == sum(entry.duration_ps
                                     for entry in report.timeline)


def test_prefetch_hides_later_preloads(scheduler, tasks):
    reports = scheduler.compare(tasks)
    assert reports["prefetch"].makespan_ps \
        < reports["sequential"].makespan_ps


def test_first_preload_cannot_be_hidden(scheduler, tasks):
    report = scheduler.prefetch(tasks)
    first = report.entries_for("fft")
    preload = next(e for e in first if e.phase == "preload")
    reconfigure = next(e for e in first if e.phase == "reconfigure")
    assert preload.start_ps == 0
    assert reconfigure.start_ps >= preload.end_ps


def test_later_preloads_overlap_previous_compute(scheduler, tasks):
    report = scheduler.prefetch(tasks)
    fft_compute = next(e for e in report.entries_for("fft")
                       if e.phase == "compute")
    fir_preload = next(e for e in report.entries_for("fir")
                       if e.phase == "preload")
    assert fir_preload.start_ps == fft_compute.start_ps
    assert fir_preload.start_ps < fft_compute.end_ps


def test_reconfigure_waits_for_both_region_and_preload(scheduler, tasks):
    report = scheduler.prefetch(tasks)
    for task in tasks:
        entries = {e.phase: e for e in report.entries_for(task.name)}
        assert entries["reconfigure"].start_ps >= entries["preload"].end_ps
        assert entries["compute"].start_ps == entries["reconfigure"].end_ps


def test_savings_equal_hidden_preload_time(scheduler, tasks):
    # With long computations, everything but the first preload hides.
    reports = scheduler.compare(tasks)
    hidden = sum(scheduler.preload_ps(task.bitstream.size)
                 for task in tasks[1:])
    saved = (reports["sequential"].makespan_ps
             - reports["prefetch"].makespan_ps)
    assert saved == pytest.approx(hidden, rel=0.001)


def test_short_compute_spills_preload(scheduler, tasks):
    short = [
        Task("a", tasks[0].bitstream, compute_ps=us(10)),
        Task("b", tasks[1].bitstream, compute_ps=us(10)),
    ]
    savings = scheduler.savings_percent(short)
    # Preloads barely hide behind 10 us of compute.
    assert savings < 5.0


def test_savings_percent_positive_for_long_compute(scheduler, tasks):
    assert scheduler.savings_percent(tasks) > 10.0


def test_empty_pipeline(scheduler):
    assert scheduler.sequential([]).makespan_ps == 0
    assert scheduler.prefetch([]).makespan_ps == 0
    assert scheduler.savings_percent([]) == 0.0


def test_negative_compute_rejected(tasks):
    with pytest.raises(PolicyError):
        Task("bad", tasks[0].bitstream, compute_ps=-1)


def test_invalid_preload_bandwidth_rejected():
    with pytest.raises(PolicyError):
        PrefetchScheduler(Frequency.from_mhz(100),
                          preload_bandwidth_mbps=0)


def test_phase_totals(scheduler, tasks):
    report = scheduler.sequential(tasks)
    assert report.phase_total_ps("compute") \
        == sum(task.compute_ps for task in tasks)
