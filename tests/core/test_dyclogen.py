"""DyCloGen clock generator."""

import pytest

from repro.core.dyclogen import CLK_1, CLK_2, CLK_3, DyCloGen
from repro.errors import FrequencyError
from repro.units import Frequency


def mhz(value):
    return Frequency.from_mhz(value)


@pytest.fixture
def dyclogen(sim):
    return DyCloGen(sim, f_in=mhz(100),
                    clk1=mhz(100), clk2=mhz(100), clk3=mhz(125))


def test_three_outputs(dyclogen):
    assert dyclogen.clk1.frequency == mhz(100)
    assert dyclogen.clk2.frequency == mhz(100)
    assert dyclogen.clk3.frequency == mhz(125)


def test_retune_clk2_to_paper_maximum(sim, dyclogen):
    lock_ps = dyclogen.retune(CLK_2, mhz(362.5))
    assert dyclogen.clk2.frequency == mhz(362.5)
    assert lock_ps > 0
    # The DCM settings are the paper's M=29, D=8.
    settings = dyclogen.settings_of(CLK_2)
    assert (settings.multiplier, settings.divisor) == (29, 8)


def test_retune_unknown_output_rejected(dyclogen):
    with pytest.raises(FrequencyError):
        dyclogen.retune("clk9", mhz(100))


def test_unsynthesizable_target_rejected(dyclogen):
    # 100 * M / D cannot land within 1% of 11 MHz inside the window.
    with pytest.raises(FrequencyError):
        dyclogen.retune(CLK_2, mhz(11))


def test_retunes_are_independent(sim, dyclogen):
    dyclogen.retune(CLK_2, mhz(200))
    assert dyclogen.clk1.frequency == mhz(100)
    assert dyclogen.clk3.frequency == mhz(125)


def test_frequencies_snapshot(dyclogen):
    snapshot = dyclogen.frequencies()
    assert set(snapshot) == {CLK_1, CLK_2, CLK_3}
    assert snapshot[CLK_2] == mhz(100)


def test_fig7_sweep_targets_all_synthesizable(sim, dyclogen):
    for target in (50, 100, 150, 200, 250, 300, 362.5):
        lock_ps = dyclogen.retune(CLK_2, mhz(target))
        sim.run(until_ps=sim.now + lock_ps)  # wait out the relock
        achieved = dyclogen.clk2.frequency
        assert abs(achieved.mhz - target) <= target * 0.01


def test_retune_before_lock_completes_rejected(sim, dyclogen):
    dyclogen.retune(CLK_2, mhz(200))
    with pytest.raises(Exception) as excinfo:
        dyclogen.retune(CLK_2, mhz(300))
    assert "relock" in str(excinfo.value)
