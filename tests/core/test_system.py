"""UPaRCSystem end-to-end behaviour."""

import pytest

from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.errors import ControllerError, ReconfigurationFailed
from repro.units import DataSize, Frequency


def mhz(value):
    return Frequency.from_mhz(value)


def test_reconfigure_without_preload_rejected():
    with pytest.raises(ReconfigurationFailed):
        UPaRCSystem().reconfigure()


def test_run_raw_mode_verifies_payload(small_bitstream):
    result = UPaRCSystem(decompressor=None).run(small_bitstream)
    assert result.verified
    assert result.mode == "raw"
    assert result.words_delivered == len(small_bitstream.raw_words)


def test_set_frequency_retunes_clk2(small_bitstream):
    system = UPaRCSystem()
    achieved = system.set_frequency(mhz(362.5))
    assert achieved == mhz(362.5)
    assert system.frequency == mhz(362.5)


def test_bandwidth_scales_with_frequency(small_bitstream):
    system = UPaRCSystem(decompressor=None)
    slow = system.run(small_bitstream, frequency=mhz(50))
    fast = system.run(small_bitstream, frequency=mhz(300))
    assert fast.bandwidth_decimal_mbps > 5 * slow.bandwidth_decimal_mbps


def test_repeated_reconfigurations_accumulate_time(small_bitstream):
    system = UPaRCSystem(decompressor=None)
    first = system.run(small_bitstream)
    second = system.reconfigure()
    assert second.start_ps > first.finish_ps
    assert second.verified


def test_forced_compressed_mode(small_bitstream):
    system = UPaRCSystem()
    result = system.run(small_bitstream, frequency=mhz(255),
                        mode=OperationMode.COMPRESSED)
    assert result.mode == "compressed"
    assert result.controller == "UPaRC_ii"
    assert result.stored_size.bytes < small_bitstream.size.bytes
    assert result.verified


def test_auto_mode_compresses_oversized(small_bitstream):
    system = UPaRCSystem(bram_capacity=DataSize.from_kb(4))
    result = system.run(small_bitstream)
    assert result.mode == "compressed"
    assert result.verified


def test_power_trace_attached_by_default(small_bitstream):
    result = UPaRCSystem(decompressor=None).run(small_bitstream)
    assert result.power_trace is not None
    assert result.energy is not None
    assert result.energy.energy_uj > 0


def test_collect_power_false_skips_trace(small_bitstream):
    result = UPaRCSystem(decompressor=None).run(small_bitstream,
                                                collect_power=False)
    assert result.power_trace is None
    assert result.energy is None


def test_power_plateau_matches_calibration(small_bitstream):
    system = UPaRCSystem(decompressor=None)
    result = system.run(small_bitstream, frequency=mhz(200))
    assert result.energy.mean_power_mw == pytest.approx(394.0, rel=0.001)


def test_preload_does_not_count_in_reconfig_duration(paper_bitstream):
    system = UPaRCSystem(decompressor=None)
    result = system.run(paper_bitstream, frequency=mhz(100))
    assert result.preload_ps is not None
    # The preload is much longer than the control overhead and must not
    # appear in the reconfiguration window.
    assert result.duration_ps < result.preload_ps


def test_control_overhead_is_constant_across_sizes():
    from repro.bitstream.generator import generate_bitstream
    small = generate_bitstream(size=DataSize.from_kb(6.5))
    system = UPaRCSystem(decompressor=None)
    result = system.run(small, frequency=mhz(362.5))
    assert result.control_overhead_ps == 1_200_000


def test_fig5_anchor_efficiencies():
    from repro.bitstream.generator import generate_bitstream
    system = UPaRCSystem(decompressor=None)
    small = generate_bitstream(size=DataSize.from_kb(6.5))
    result = system.run(small, frequency=mhz(362.5))
    theoretical = 362.5e6 * 4 / 1e6
    efficiency = result.bandwidth_decimal_mbps / theoretical * 100
    assert efficiency == pytest.approx(78.8, abs=1.5)


def test_mode_ii_throughput_paced_by_decompressor(paper_bitstream):
    system = UPaRCSystem()
    result = system.run(paper_bitstream, frequency=mhz(255),
                        mode=OperationMode.COMPRESSED)
    # ~1 GB/s: 2 words/cycle at ~125 MHz.
    assert result.bandwidth_decimal_mbps == pytest.approx(1000, rel=0.02)


class TestRunWithConstraints:
    def test_deadline_met_at_lowest_power(self, small_bitstream):
        from repro.units import us
        system = UPaRCSystem(decompressor=None)
        result = system.run_with_constraints(small_bitstream,
                                             deadline_ps=us(200))
        assert result.duration_ps <= us(200)
        # A relaxed deadline must yield a lower (or equal) frequency.
        relaxed = UPaRCSystem(decompressor=None).run_with_constraints(
            small_bitstream, deadline_ps=us(2000))
        assert relaxed.frequency <= result.frequency

    def test_power_budget_respected(self, small_bitstream):
        system = UPaRCSystem(decompressor=None)
        result = system.run_with_constraints(small_bitstream,
                                             power_budget_mw=260.0)
        assert result.energy.mean_power_mw <= 260.0

    def test_infeasible_rejected_before_retune(self, small_bitstream):
        from repro.errors import PolicyError
        from repro.units import us
        system = UPaRCSystem(decompressor=None)
        before = system.frequency
        with pytest.raises(PolicyError):
            system.run_with_constraints(small_bitstream,
                                        deadline_ps=us(1),
                                        power_budget_mw=100.0)
        assert system.frequency == before


class TestLogging:
    def test_run_emits_info_logs(self, small_bitstream, caplog):
        import logging
        with caplog.at_level(logging.INFO, logger="repro.core.system"):
            system = UPaRCSystem(decompressor=None)
            system.run(small_bitstream, frequency=mhz(200))
        messages = " | ".join(record.message for record in caplog.records)
        assert "CLK_2 retuned to 200 MHz" in messages
        assert "UPaRC_i" in messages

    def test_preload_emits_debug_log(self, small_bitstream, caplog):
        import logging
        with caplog.at_level(logging.DEBUG, logger="repro.core.system"):
            UPaRCSystem(decompressor=None).preload(small_bitstream)
        assert any("preloaded" in record.message
                   for record in caplog.records)


def test_set_decompressor_frequency_via_system():
    system = UPaRCSystem()  # x-matchpro, clk3 at 125 MHz
    achieved = system.set_decompressor_frequency(mhz(100))
    assert achieved == mhz(100)
    assert system.dyclogen.clk3.frequency == mhz(100)
