"""Manager: preloading, control handshake, frequency adaptation."""

import pytest

from repro.core.dyclogen import DyCloGen
from repro.core.manager import Manager
from repro.core.urec import OperationMode, unpack_header
from repro.errors import CapacityError
from repro.fpga.bram import Bram
from repro.fpga.decompressor import DECOMPRESSOR_LIBRARY, HardwareDecompressor
from repro.fpga.microblaze import MicroBlaze
from repro.sim import Event, Process
from repro.units import DataSize, Frequency


def mhz(value):
    return Frequency.from_mhz(value)


def build(sim, bram_capacity=DataSize(256 * 1024), with_decompressor=True):
    dyclogen = DyCloGen(sim, f_in=mhz(100), clk1=mhz(100),
                        clk2=mhz(100), clk3=mhz(125))
    bram = Bram(sim, capacity=bram_capacity)
    cpu = MicroBlaze(sim, dyclogen.clk1)
    decompressor = None
    if with_decompressor:
        decompressor = HardwareDecompressor(
            sim, DECOMPRESSOR_LIBRARY["x-matchpro"], dyclogen.clk3)
    manager = Manager(sim, cpu, bram, dyclogen, decompressor=decompressor)
    return manager, bram, dyclogen


class TestChooseMode:
    def test_small_bitstream_raw(self, sim, small_bitstream):
        manager, _, _ = build(sim)
        assert manager.choose_mode(small_bitstream) is OperationMode.RAW

    def test_oversized_bitstream_compressed(self, sim, small_bitstream):
        manager, _, _ = build(sim, bram_capacity=DataSize.from_kb(4))
        assert manager.choose_mode(small_bitstream) \
            is OperationMode.COMPRESSED

    def test_oversized_without_decompressor_rejected(self, sim,
                                                     small_bitstream):
        manager, _, _ = build(sim, bram_capacity=DataSize.from_kb(4),
                              with_decompressor=False)
        with pytest.raises(CapacityError):
            manager.choose_mode(small_bitstream)


class TestPreload:
    def test_raw_preload_writes_header_and_payload(self, sim,
                                                   small_bitstream):
        manager, bram, _ = build(sim)
        process = Process(sim, manager.preload_process(small_bitstream))
        sim.run()
        report = process.result
        assert report.mode is OperationMode.RAW
        assert report.stored_size == small_bitstream.size
        bram.enable_read_port(_read_clock(sim))
        mode, words = unpack_header(bram.read_word(0))
        assert mode is OperationMode.RAW
        assert words == len(small_bitstream.raw_words)
        assert bram.read_word(1) == small_bitstream.raw_words[0]

    def test_compressed_preload_stores_less(self, sim, small_bitstream):
        manager, bram, _ = build(sim)
        process = Process(sim, manager.preload_process(
            small_bitstream, OperationMode.COMPRESSED))
        sim.run()
        report = process.result
        assert report.mode is OperationMode.COMPRESSED
        assert report.stored_size.bytes < small_bitstream.size.bytes
        assert report.compression_ratio_percent > 50.0

    def test_preload_takes_time(self, sim, small_bitstream):
        manager, _, _ = build(sim)
        process = Process(sim, manager.preload_process(small_bitstream))
        sim.run()
        assert process.result.duration_ps > 0
        assert sim.now == process.result.duration_ps

    def test_compressed_overflow_rejected(self, sim, medium_bitstream):
        # 64 KB compresses to ~12 KB; an 8 KB BRAM still cannot hold it.
        manager, _, _ = build(sim, bram_capacity=DataSize.from_kb(8))
        process_generator = manager.preload_process(
            medium_bitstream, OperationMode.COMPRESSED)
        with pytest.raises(CapacityError):
            Process(sim, process_generator)
            sim.run()


class TestControl:
    def test_handshake_sequence(self, sim, small_bitstream):
        manager, _, _ = build(sim)
        start = Event(sim, "start")
        finish = Event(sim, "finish")

        def responder():
            from repro.sim import Delay, WaitEvent
            yield WaitEvent(start)
            yield Delay(5_000_000)  # 5 us of "reconfiguration"
            finish.trigger()

        Process(sim, responder(), name="responder")
        control = Process(sim, manager.control_process(start, finish))
        sim.run()
        start_ps, finish_ps, overhead_ps = control.result
        assert finish_ps - start_ps == 5_000_000
        assert overhead_ps == 1_200_000  # 120 cycles at 100 MHz


class TestFrequencyAdaptation:
    def test_adapt_retunes_and_waits_for_lock(self, sim, small_bitstream):
        manager, _, dyclogen = build(sim)
        process = Process(
            sim, manager.adapt_frequency_process(mhz(362.5)))
        sim.run()
        assert process.result == mhz(362.5)
        assert dyclogen.clk2.frequency == mhz(362.5)
        assert sim.now >= 50_000_000  # at least the DCM lock time

    def test_adapt_clk3(self, sim):
        manager, _, dyclogen = build(sim)
        process = Process(
            sim, manager.adapt_decompressor_clock_process(mhz(100)))
        sim.run()
        assert dyclogen.clk3.frequency == mhz(100)


def _read_clock(sim):
    from repro.sim import Clock
    return Clock(sim, "probe", mhz(100))
