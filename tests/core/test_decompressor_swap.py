"""Run-time decompressor swap via partial reconfiguration (§VI)."""

import pytest

from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.errors import ReconfigurationFailed
from repro.units import Frequency


def test_swap_installs_new_engine(small_bitstream):
    system = UPaRCSystem()  # boots with x-matchpro
    assert system.decompressor.spec.name == "x-matchpro"
    result = system.swap_decompressor("farm-rle")
    assert result.verified
    assert system.decompressor.spec.name == "farm-rle"


def test_swap_is_a_real_reconfiguration(small_bitstream):
    system = UPaRCSystem()
    frames_before = system.config_logic.frames_written
    result = system.swap_decompressor("huffman")
    assert result.frames_written > 0
    assert system.config_logic.frames_written > frames_before


def test_clk3_retuned_to_new_ceiling():
    system = UPaRCSystem()
    clk3_before = system.dyclogen.clk3.frequency
    system.swap_decompressor("farm-rle")  # 200 MHz ceiling vs 126
    assert system.dyclogen.clk3.frequency > clk3_before
    assert system.dyclogen.clk3.frequency \
        <= Frequency.from_mhz(200)


def test_compressed_runs_use_new_codec(small_bitstream):
    system = UPaRCSystem()
    system.swap_decompressor("farm-rle")
    result = system.run(small_bitstream, frequency=Frequency.from_mhz(200),
                        mode=OperationMode.COMPRESSED)
    assert result.verified
    # RLE compresses these bitstreams less than X-MatchPRO.
    baseline = UPaRCSystem().run(small_bitstream,
                                 frequency=Frequency.from_mhz(200),
                                 mode=OperationMode.COMPRESSED)
    assert result.stored_size.bytes > baseline.stored_size.bytes


def test_swap_cost_scales_with_engine_area():
    big = UPaRCSystem().swap_decompressor("x-matchpro")   # 1035 slices
    small = UPaRCSystem().swap_decompressor("farm-rle")   # 132 slices
    assert big.bitstream_size.bytes > 3 * small.bitstream_size.bytes


def test_unknown_engine_rejected():
    with pytest.raises(ReconfigurationFailed, match="unknown"):
        UPaRCSystem().swap_decompressor("zstd")


def test_swap_then_swap_back(small_bitstream):
    system = UPaRCSystem()
    system.swap_decompressor("lz77")
    system.swap_decompressor("x-matchpro")
    result = system.run(small_bitstream,
                        mode=OperationMode.COMPRESSED)
    assert result.verified
