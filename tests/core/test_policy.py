"""Power-aware frequency policy."""

import pytest

from repro.core.policy import FrequencyPolicy
from repro.errors import PolicyError
from repro.power.model import PowerModel
from repro.units import DataSize, Frequency, us


@pytest.fixture
def policy():
    return FrequencyPolicy(PowerModel())


SIZE = DataSize.from_kb(216.5)


def test_candidate_grid_is_sorted_and_bounded(policy):
    grid = policy.candidate_frequencies()
    assert grid == sorted(grid)
    assert grid[0] >= Frequency.from_mhz(32)
    assert grid[-1] <= Frequency.from_mhz(362.5)
    assert Frequency.from_mhz(362.5) in grid


def test_predicted_duration_matches_paper_100mhz(policy):
    # 216.5 KB at 100 MHz: ~554 us transfer + 1.2 us control.
    duration = policy.predict_duration_ps(SIZE, Frequency.from_mhz(100))
    assert duration == pytest.approx(555_480_000, rel=0.001)


def test_deadline_selects_lowest_sufficient_frequency(policy):
    # A 1 ms deadline: well within reach of mid frequencies; the
    # policy must not pick the maximum.
    point = policy.lowest_frequency_for_deadline(SIZE, us(1000))
    assert point.duration_ps <= us(1000)
    assert point.frequency < Frequency.from_mhz(362.5)
    # The next lower candidate must miss the deadline.
    grid = policy.candidate_frequencies()
    lower = [f for f in grid if f < point.frequency]
    if lower:
        worse = policy.operating_point(SIZE, lower[-1])
        assert worse.duration_ps > us(1000)


def test_impossible_deadline_raises(policy):
    with pytest.raises(PolicyError):
        policy.lowest_frequency_for_deadline(SIZE, us(10))


def test_power_budget_selection(policy):
    point = policy.fastest_under_power(SIZE, power_budget_mw=300.0)
    assert point.power_mw <= 300.0
    # Anything faster would blow the budget.
    grid = policy.candidate_frequencies()
    higher = [f for f in grid if f > point.frequency]
    if higher:
        over = policy.operating_point(SIZE, higher[0])
        assert over.power_mw > 300.0


def test_unmeetable_power_budget_raises(policy):
    with pytest.raises(PolicyError):
        policy.fastest_under_power(SIZE, power_budget_mw=10.0)


def test_minimum_energy_is_fastest_with_active_wait(policy):
    # Paper Section V: with an active-wait manager, energy decreases
    # with frequency, so the energy-optimal point is the fastest clock.
    point = policy.minimum_energy(SIZE)
    assert point.frequency == policy.candidate_frequencies()[-1]


def test_joint_selection_meets_both_constraints(policy):
    point = policy.select(SIZE, deadline_ps=us(2000),
                          power_budget_mw=300.0)
    assert point.duration_ps <= us(2000)
    assert point.power_mw <= 300.0


def test_joint_selection_prefers_lowest_power(policy):
    relaxed = policy.select(SIZE, deadline_ps=us(100_000))
    tight = policy.select(SIZE, deadline_ps=us(700))
    assert relaxed.power_mw < tight.power_mw


def test_conflicting_constraints_raise(policy):
    with pytest.raises(PolicyError):
        policy.select(SIZE, deadline_ps=us(700), power_budget_mw=200.0)


def test_power_grows_monotonically_on_grid(policy):
    grid = policy.candidate_frequencies()
    powers = [policy.operating_point(SIZE, f).power_mw for f in grid]
    assert powers == sorted(powers)


class TestParetoFrontier:
    def test_frontier_is_nondominated(self, policy):
        frontier = policy.pareto_frontier(SIZE)
        for first, second in zip(frontier, frontier[1:]):
            # Later points are faster but hotter.
            assert second.duration_ps < first.duration_ps
            assert second.power_mw > first.power_mw

    def test_frontier_spans_grid_extremes(self, policy):
        frontier = policy.pareto_frontier(SIZE)
        grid = policy.candidate_frequencies()
        assert frontier[0].frequency == grid[0]
        assert frontier[-1].frequency == grid[-1]

    def test_every_grid_point_dominated_or_on_frontier(self, policy):
        frontier = policy.pareto_frontier(SIZE)
        keys = {(p.duration_ps, round(p.power_mw, 9)) for p in frontier}
        for frequency in policy.candidate_frequencies():
            point = policy.operating_point(SIZE, frequency)
            if (point.duration_ps, round(point.power_mw, 9)) in keys:
                continue
            dominated = any(
                other.duration_ps <= point.duration_ps
                and other.power_mw <= point.power_mw
                for other in frontier)
            assert dominated, point
