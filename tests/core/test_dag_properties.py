"""Hypothesis properties of the DAG scheduler.

For arbitrary task graphs, the schedule must respect every resource
constraint: no region/ICAP/manager double-booking, dependencies
ordered, every task placed exactly once.
"""

from hypothesis import given, settings, strategies as st

from repro.bitstream.generator import generate_bitstream
from repro.core.dag_scheduler import DagScheduler, DagTask
from repro.units import DataSize, Frequency, us

MODULES = ["m0", "m1", "m2", "m3"]
REGIONS = ["r0", "r1", "r2"]

_BITSTREAMS = {
    name: generate_bitstream(size=DataSize.from_kb(8 + 4 * index),
                             seed=index)
    for index, name in enumerate(MODULES)
}


@st.composite
def task_graphs(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    tasks = []
    for index in range(count):
        deps = ()
        if index:
            dep_indices = draw(st.lists(
                st.integers(0, index - 1), max_size=3, unique=True))
            deps = tuple(f"t{d}" for d in dep_indices)
        module = draw(st.sampled_from(MODULES))
        tasks.append(DagTask(
            name=f"t{index}",
            module=module,
            bitstream=_BITSTREAMS[module],
            region=draw(st.sampled_from(REGIONS)),
            compute_ps=draw(st.integers(0, us(500))),
            deps=deps,
        ))
    return tasks


def intervals_disjoint(intervals):
    ordered = sorted(intervals)
    return all(first_end <= second_start
               for (_, first_end), (second_start, _)
               in zip(ordered, ordered[1:]))


@settings(max_examples=60, deadline=None)
@given(task_graphs())
def test_schedule_invariants(tasks):
    scheduler = DagScheduler(
        reconfiguration_frequency=Frequency.from_mhz(362.5))
    report = scheduler.schedule(tasks)
    by_task = {task.name: task for task in tasks}

    # Every task computes exactly once.
    computes = [entry for entry in report.timeline
                if entry.phase == "compute"]
    assert {entry.task for entry in computes} == set(by_task)
    assert len(computes) == len(tasks)

    # Dependencies ordered.
    compute_start = {entry.task: entry.start_ps for entry in computes}
    compute_end = {entry.task: entry.end_ps for entry in computes}
    for task in tasks:
        for dep in task.deps:
            assert compute_start[task.name] >= compute_end[dep]

    # Regions never double-booked (compute + reconfigure occupy the
    # region).
    for region in REGIONS:
        intervals = []
        for entry in report.timeline:
            if entry.phase in ("compute", "reconfigure") \
                    and by_task[entry.task].region == region \
                    and entry.duration_ps > 0:
                intervals.append((entry.start_ps, entry.end_ps))
        assert intervals_disjoint(intervals)

    # ICAP serialized.
    reconfigs = [(entry.start_ps, entry.end_ps)
                 for entry in report.timeline
                 if entry.phase == "reconfigure"]
    assert intervals_disjoint(reconfigs)

    # Manager (preload path) serialized.
    preloads = [(entry.start_ps, entry.end_ps)
                for entry in report.timeline
                if entry.phase == "preload" and entry.duration_ps > 0]
    assert intervals_disjoint(preloads)

    # Each task either reconfigured or reused a resident module.
    assert report.reconfigurations + report.reuses == len(tasks)

    # Makespan never exceeds the fully-serial baseline.
    assert report.makespan_ps <= scheduler.serial_baseline(tasks)
