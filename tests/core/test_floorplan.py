"""Floorplan / reconfigurable-region bookkeeping."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.frames import BlockType, FrameAddress
from repro.bitstream.generator import generate_bitstream
from repro.core.floorplan import Floorplan, Region
from repro.errors import BitstreamError, CapacityError
from repro.units import DataSize


def far(column, minor=0):
    return FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0,
                        column=column, minor=minor)


@pytest.fixture
def floorplan():
    plan = Floorplan(VIRTEX5_SX50T)
    plan.add_region(Region("lane0", far(4), frame_count=72))
    plan.add_region(Region("lane1", far(10), frame_count=72))
    return plan


class TestRegion:
    def test_capacity(self):
        region = Region("r", far(4), frame_count=10)
        assert region.capacity(VIRTEX5_SX50T) == DataSize(10 * 164)

    def test_positive_frame_count(self):
        with pytest.raises(BitstreamError):
            Region("r", far(4), frame_count=0)

    def test_frames_enumerated(self):
        region = Region("r", far(4), frame_count=40)
        frames = region.frames(VIRTEX5_SX50T)
        assert len(frames) == 40
        assert frames[0] == far(4)
        assert frames[36] == far(5)  # spilled into the next column


class TestFloorplan:
    def test_regions_listed(self, floorplan):
        assert {region.name for region in floorplan.regions} \
            == {"lane0", "lane1"}

    def test_duplicate_name_rejected(self, floorplan):
        with pytest.raises(BitstreamError):
            floorplan.add_region(Region("lane0", far(40), 10))

    def test_overlap_rejected(self, floorplan):
        # lane0 covers columns 4..5 (72 frames = 2 columns); column 5
        # collides.
        with pytest.raises(BitstreamError, match="overlaps"):
            floorplan.add_region(Region("clash", far(5), 10))

    def test_adjacent_regions_allowed(self, floorplan):
        floorplan.add_region(Region("lane2", far(6), frame_count=36))

    def test_unknown_region_lookup(self, floorplan):
        with pytest.raises(KeyError):
            floorplan.region("lane9")


class TestBitstreamMatching:
    def test_origin_extracted(self, floorplan, small_bitstream):
        origin = Floorplan.bitstream_origin(small_bitstream)
        assert origin == far(4)  # the generator default

    def test_match_finds_region(self, floorplan, small_bitstream):
        region = floorplan.match(small_bitstream)
        assert region.name == "lane0"

    def test_match_respects_capacity(self, floorplan):
        oversized = generate_bitstream(size=DataSize.from_kb(64))
        # 64 KB is ~398 frames, far beyond lane0's 72.
        with pytest.raises(CapacityError, match="overruns"):
            floorplan.match(oversized)

    def test_bitstream_for_other_region(self, floorplan):
        other = generate_bitstream(size=DataSize.from_kb(8),
                                   origin=far(10))
        assert floorplan.match(other).name == "lane1"

    def test_unplaced_origin_rejected(self, floorplan):
        stray = generate_bitstream(size=DataSize.from_kb(8),
                                   origin=far(60))
        with pytest.raises(CapacityError, match="no region"):
            floorplan.match(stray)

    def test_validate_names_must_agree(self, floorplan, small_bitstream):
        floorplan.validate(small_bitstream, "lane0")
        with pytest.raises(CapacityError, match="targets region"):
            floorplan.validate(small_bitstream, "lane1")

    def test_region_specific_bitstreams_configure_their_frames(self,
                                                               floorplan):
        from repro.core.system import UPaRCSystem
        bitstream = generate_bitstream(size=DataSize.from_kb(8),
                                       origin=far(10))
        system = UPaRCSystem(decompressor=None)
        system.run(bitstream)
        assert system.config_memory.read_frame(far(10)) is not None
        assert system.config_memory.read_frame(far(4)) is None
