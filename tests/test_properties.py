"""Cross-cutting hypothesis property tests.

Invariants of the substrates that the example-based tests cannot
cover exhaustively: FAR pack/unpack bijection, frame-enumeration
injectivity, packet encode/decode inversion, unit arithmetic, DCM
grid correctness, and configuration-CRC sensitivity.
"""

from hypothesis import given, settings, strategies as st

from repro.bitstream.crc import ConfigCrc
from repro.bitstream.device import VIRTEX5_SX50T, VIRTEX6_LX240T
from repro.bitstream.format import (
    ConfigPacket,
    ConfigRegister,
    Opcode,
    PacketDecoder,
    bytes_to_words,
    words_to_bytes,
)
from repro.bitstream.frames import BlockType, FrameAddress
from repro.fpga.dcm import DcmSettings, best_settings
from repro.units import DataSize, Frequency

# -- FAR ---------------------------------------------------------------

far_fields = st.tuples(
    st.sampled_from(list(BlockType)),
    st.integers(0, 1),
    st.integers(0, 31),
    st.integers(0, 255),
    st.integers(0, 127),
)


@given(far_fields)
def test_far_pack_unpack_bijection(fields):
    block, top, row, column, minor = fields
    address = FrameAddress(block, top, row, column, minor)
    assert FrameAddress.unpack(address.pack()) == address


@given(far_fields, far_fields)
def test_far_pack_injective(first_fields, second_fields):
    first = FrameAddress(*first_fields)
    second = FrameAddress(*second_fields)
    if first != second:
        assert first.pack() != second.pack()


@given(far_fields, st.integers(1, 300),
       st.sampled_from([VIRTEX5_SX50T, VIRTEX6_LX240T]))
def test_frame_enumeration_is_injective(fields, count, device):
    start = FrameAddress(*fields)
    from repro.bitstream.frames import region_frames
    frames = list(region_frames(device, start, count))
    assert len({frame.pack() for frame in frames}) == count


# -- packets ------------------------------------------------------------

registers = st.sampled_from(list(ConfigRegister))
small_payload = st.lists(st.integers(0, 2**32 - 1), max_size=30)


@given(registers, small_payload)
def test_type1_packet_roundtrip(register, payload):
    packet = ConfigPacket(Opcode.WRITE, register, payload)
    decoded = PacketDecoder(packet.encode()).decode_all()
    assert len(decoded) == 1
    assert decoded[0].register is register
    assert decoded[0].payload == payload


@given(registers, st.lists(st.integers(0, 2**32 - 1), min_size=1,
                           max_size=5000))
def test_type2_packet_roundtrip(register, payload):
    packet = ConfigPacket(Opcode.WRITE, register, payload, type2=True)
    decoded = PacketDecoder(packet.encode()).decode_all()
    assert decoded[0].payload == payload


@given(st.lists(st.integers(0, 2**32 - 1), max_size=200))
def test_word_byte_serialization_roundtrip(words):
    assert bytes_to_words(words_to_bytes(words)) == words


# -- units ----------------------------------------------------------------

frequencies = st.integers(1_000_000, 1_000_000_000).map(Frequency)


@given(frequencies, st.integers(0, 100_000))
def test_cycles_duration_monotone(frequency, cycles):
    assert frequency.duration_of(cycles + 1) > frequency.duration_of(cycles)


@given(frequencies)
def test_period_within_rounding(frequency):
    exact = 1e12 / frequency.hertz
    assert abs(frequency.period_ps - exact) <= 0.5


@given(st.integers(0, 10**9), st.integers(0, 10**9))
def test_datasize_addition_commutes(first, second):
    a, b = DataSize(first), DataSize(second)
    assert (a + b) == (b + a)
    assert (a + b).bytes == first + second


@given(st.integers(0, 10**8))
def test_words_round_up(size_bytes: int):
    size = DataSize(size_bytes)
    assert size.words * 4 >= size_bytes
    assert (size.words - 1) * 4 < size_bytes or size.words == 0


# -- DCM grid ------------------------------------------------------------

@given(st.integers(2, 33), st.integers(1, 32))
def test_dcm_settings_output_exact(multiplier, divisor):
    f_in = Frequency.from_mhz(100)
    settings = DcmSettings(multiplier, divisor)
    assert settings.output(f_in).hertz == round(
        f_in.hertz * multiplier / divisor)


@settings(max_examples=50)
@given(st.floats(min_value=35.0, max_value=380.0,
                 allow_nan=False, allow_infinity=False))
def test_best_settings_is_optimal_on_grid(target_mhz):
    f_in = Frequency.from_mhz(100)
    target = Frequency.from_mhz(target_mhz)
    chosen = best_settings(f_in, target)
    chosen_error = abs(chosen.output(f_in).hertz - target.hertz)
    # No legal pair does strictly better.
    for multiplier in range(2, 34):
        for divisor in range(1, 33):
            output = f_in.scaled(multiplier, divisor)
            if output < Frequency.from_mhz(32) \
                    or output > Frequency.from_mhz(400):
                continue
            assert abs(output.hertz - target.hertz) >= chosen_error


# -- configuration CRC -------------------------------------------------------

write_sequences = st.lists(
    st.tuples(st.integers(0, 17), st.integers(0, 2**32 - 1)),
    min_size=1, max_size=100)


@given(write_sequences)
def test_config_crc_deterministic(writes):
    first = ConfigCrc()
    second = ConfigCrc()
    for register, word in writes:
        first.update(register, word)
        second.update(register, word)
    assert first.value == second.value
    assert first.check(second.value)


@given(write_sequences, st.integers(0, 31))
def test_config_crc_detects_single_word_corruption(writes, flip_bit):
    clean = ConfigCrc()
    corrupt = ConfigCrc()
    for register, word in writes[:-1]:
        clean.update(register, word)
        corrupt.update(register, word)
    register, word = writes[-1]
    clean.update(register, word)
    corrupt.update(register, word ^ (1 << flip_bit))
    assert clean.value != corrupt.value
