"""Frame-address packing and enumeration."""

import dataclasses

import pytest

from repro.bitstream.device import VIRTEX4_FX60, VIRTEX5_SX50T
from repro.bitstream.frames import (
    BlockType,
    FrameAddress,
    frame_layout,
    region_frames,
)
from repro.errors import BitstreamFormatError


def test_pack_unpack_roundtrip():
    address = FrameAddress(BlockType.CLB_IO_CLK, top=1, row=3,
                           column=17, minor=5)
    assert FrameAddress.unpack(address.pack()) == address


def test_pack_zero():
    assert FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0).pack() == 0


def test_pack_field_positions():
    address = FrameAddress(BlockType.BRAM_CONTENT, top=0, row=0,
                           column=0, minor=1)
    raw = address.pack()
    assert raw & 0x7F == 1                 # minor in low bits
    assert (raw >> 21) & 0b111 == 1        # block type field


def test_field_range_enforced():
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=2, row=0, column=0, minor=0)
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=0, row=32, column=0, minor=0)
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0, column=256, minor=0)
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0, column=0, minor=128)


def test_unpack_invalid_block_type():
    with pytest.raises(BitstreamFormatError):
        FrameAddress.unpack(0b111 << 21)


def test_unpack_oversized_raises():
    with pytest.raises(BitstreamFormatError):
        FrameAddress.unpack(1 << 32)


def test_next_in_advances_minor():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0)
    successor = start.next_in(VIRTEX5_SX50T)
    assert successor.minor == 1
    assert successor.column == 4


def test_next_in_wraps_minor_into_column():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4,
                         VIRTEX5_SX50T.minor_frames_clb - 1)
    successor = start.next_in(VIRTEX5_SX50T)
    assert successor.minor == 0
    assert successor.column == 5


def test_next_in_wraps_column_into_row():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0,
                         VIRTEX5_SX50T.columns - 1,
                         VIRTEX5_SX50T.minor_frames_clb - 1)
    successor = start.next_in(VIRTEX5_SX50T)
    assert successor.column == 0
    assert successor.row == 1


def test_region_frames_counts_and_is_strictly_advancing():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0)
    frames = list(region_frames(VIRTEX5_SX50T, start, 100))
    assert len(frames) == 100
    assert len({frame.pack() for frame in frames}) == 100


def test_region_frames_negative_count():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        list(region_frames(VIRTEX5_SX50T, start, -1))


def test_frame_layout_memoised_per_device():
    assert frame_layout(VIRTEX5_SX50T) is frame_layout(VIRTEX5_SX50T)
    assert frame_layout(VIRTEX5_SX50T) is not frame_layout(VIRTEX4_FX60)


def test_frame_layout_keyed_by_device_value_not_object():
    # DeviceInfo is frozen, so the memo key is the device's *value*:
    # an equal copy shares the table, a geometry change gets its own.
    clone = dataclasses.replace(VIRTEX5_SX50T)
    assert clone is not VIRTEX5_SX50T
    assert frame_layout(clone) is frame_layout(VIRTEX5_SX50T)
    narrower = dataclasses.replace(VIRTEX5_SX50T, columns=40)
    layout = frame_layout(narrower)
    assert layout is not frame_layout(VIRTEX5_SX50T)
    assert len(layout) < len(frame_layout(VIRTEX5_SX50T))


def test_frame_layout_successor_matches_arithmetic():
    address = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0)
    layout = frame_layout(VIRTEX5_SX50T)
    for _ in range(3 * VIRTEX5_SX50T.minor_frames_clb + 5):
        expected = address._next_arithmetic(VIRTEX5_SX50T)
        assert layout.successor(address) == expected
        assert address.next_in(VIRTEX5_SX50T) == expected
        address = expected


def test_next_in_outside_geometry_falls_back_to_arithmetic():
    # An address past the device's column range is not in the layout
    # table; next_in must still advance it (arithmetic fallback).
    address = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 200, 0)
    layout = frame_layout(VIRTEX5_SX50T)
    assert layout.successor(address) is None
    assert address.next_in(VIRTEX5_SX50T) == \
        address._next_arithmetic(VIRTEX5_SX50T)
