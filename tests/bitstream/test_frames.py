"""Frame-address packing and enumeration."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.frames import BlockType, FrameAddress, region_frames
from repro.errors import BitstreamFormatError


def test_pack_unpack_roundtrip():
    address = FrameAddress(BlockType.CLB_IO_CLK, top=1, row=3,
                           column=17, minor=5)
    assert FrameAddress.unpack(address.pack()) == address


def test_pack_zero():
    assert FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0).pack() == 0


def test_pack_field_positions():
    address = FrameAddress(BlockType.BRAM_CONTENT, top=0, row=0,
                           column=0, minor=1)
    raw = address.pack()
    assert raw & 0x7F == 1                 # minor in low bits
    assert (raw >> 21) & 0b111 == 1        # block type field


def test_field_range_enforced():
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=2, row=0, column=0, minor=0)
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=0, row=32, column=0, minor=0)
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0, column=256, minor=0)
    with pytest.raises(BitstreamFormatError):
        FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0, column=0, minor=128)


def test_unpack_invalid_block_type():
    with pytest.raises(BitstreamFormatError):
        FrameAddress.unpack(0b111 << 21)


def test_unpack_oversized_raises():
    with pytest.raises(BitstreamFormatError):
        FrameAddress.unpack(1 << 32)


def test_next_in_advances_minor():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4, 0)
    successor = start.next_in(VIRTEX5_SX50T)
    assert successor.minor == 1
    assert successor.column == 4


def test_next_in_wraps_minor_into_column():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 4,
                         VIRTEX5_SX50T.minor_frames_clb - 1)
    successor = start.next_in(VIRTEX5_SX50T)
    assert successor.minor == 0
    assert successor.column == 5


def test_next_in_wraps_column_into_row():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0,
                         VIRTEX5_SX50T.columns - 1,
                         VIRTEX5_SX50T.minor_frames_clb - 1)
    successor = start.next_in(VIRTEX5_SX50T)
    assert successor.column == 0
    assert successor.row == 1


def test_region_frames_counts_and_is_strictly_advancing():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0)
    frames = list(region_frames(VIRTEX5_SX50T, start, 100))
    assert len(frames) == 100
    assert len({frame.pack() for frame in frames}) == 100


def test_region_frames_negative_count():
    start = FrameAddress(BlockType.CLB_IO_CLK, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        list(region_frames(VIRTEX5_SX50T, start, -1))
