"""BIT-file preamble encode/decode."""

import pytest

from repro.bitstream.header import BitstreamHeader
from repro.errors import BitstreamFormatError


def make_header(**overrides):
    fields = dict(
        design_name="module.ncd",
        part_name="xc5vsx50t",
        date="2012/03/12",
        time="14:00:00",
        payload_length=1024,
    )
    fields.update(overrides)
    return BitstreamHeader(**fields)


def test_roundtrip():
    header = make_header()
    decoded, offset = BitstreamHeader.decode(header.encode())
    assert decoded == header
    assert offset == len(header.encode())


def test_decode_reports_payload_offset():
    header = make_header(payload_length=8)
    blob = header.encode() + b"\xAA" * 8
    decoded, offset = BitstreamHeader.decode(blob)
    assert blob[offset:] == b"\xAA" * 8


def test_missing_magic_rejected():
    with pytest.raises(BitstreamFormatError):
        BitstreamHeader.decode(b"\x00\x01not-a-bit-file")


def test_truncated_field_rejected():
    blob = make_header().encode()[:20]
    with pytest.raises(BitstreamFormatError):
        BitstreamHeader.decode(blob)


def test_corrupt_field_tag_rejected():
    blob = bytearray(make_header().encode())
    blob[13] = ord("z")  # first field tag should be 'a'
    with pytest.raises(BitstreamFormatError):
        BitstreamHeader.decode(bytes(blob))


def test_missing_length_field_rejected():
    blob = make_header().encode()
    # Chop the 'e' field (1 tag + 4 length bytes).
    with pytest.raises(BitstreamFormatError):
        BitstreamHeader.decode(blob[:-5] + b"x" * 0)


def test_long_names_supported():
    header = make_header(design_name="a" * 200)
    decoded, _ = BitstreamHeader.decode(header.encode())
    assert decoded.design_name == "a" * 200
