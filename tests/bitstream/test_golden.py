"""Golden-file format stability.

The on-disk bitstream format and the generator's output are part of
the library's contract: EXPERIMENTS.md promises its numbers reproduce
exactly, and saved ``.bit`` assets must stay loadable across versions.
A byte-exact golden file guards both.  If this test fails after an
*intentional* format/generator change, regenerate the golden file and
bump the note in EXPERIMENTS.md — never silently.
"""

import hashlib
from pathlib import Path

from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.fileio import load_bit
from repro.bitstream.generator import generate_bitstream
from repro.units import DataSize

GOLDEN = Path(__file__).resolve().parent.parent / "data" \
    / "golden_4kb_seed2012.bit"
GOLDEN_SHA256 = \
    "f480087037c420f7ca4c3879077c78d68621d846b85e813118ff4c7b7ba8deab"


def test_golden_file_unchanged():
    blob = GOLDEN.read_bytes()
    assert hashlib.sha256(blob).hexdigest() == GOLDEN_SHA256


def test_generator_reproduces_golden_bytes():
    bitstream = generate_bitstream(size=DataSize.from_kb(4), seed=2012)
    assert bitstream.file_bytes == GOLDEN.read_bytes()


def test_golden_file_loads_and_verifies():
    loaded = load_bit(GOLDEN, VIRTEX5_SX50T)
    from repro.core.system import UPaRCSystem
    result = UPaRCSystem(decompressor=None).run(loaded)
    assert result.verified
    assert result.frames_written == loaded.frame_count
