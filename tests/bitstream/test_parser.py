"""Bitstream parser (the Manager's view)."""

import pytest

from repro.bitstream.device import (
    VIRTEX4_FX60,
    VIRTEX5_SX50T,
    VIRTEX6_LX240T,
)
from repro.bitstream.generator import generate_bitstream
from repro.bitstream.parser import BitstreamParser
from repro.errors import BitstreamFormatError, DeviceMismatchError
from repro.units import DataSize


def test_parse_roundtrip(small_bitstream):
    parsed = BitstreamParser(VIRTEX5_SX50T).parse(small_bitstream.file_bytes)
    assert parsed.raw_words == small_bitstream.raw_words
    assert parsed.header == small_bitstream.header


@pytest.mark.parametrize(
    "device", [VIRTEX5_SX50T, VIRTEX6_LX240T, VIRTEX4_FX60],
    ids=lambda device: device.name)
def test_parse_roundtrip_every_device(device):
    bitstream = generate_bitstream(device=device,
                                   size=DataSize.from_kb(8), seed=7)
    parsed = BitstreamParser(device).parse(bitstream.file_bytes)
    assert parsed.raw_words == bitstream.raw_words
    assert parsed.header == bitstream.header
    assert parsed.idcode == device.idcode
    assert parsed.frame_data_words == bitstream.frame_payload_words
    assert parsed.frame_data_words % device.frame_words == 0


def test_size_matches_raw_stream(small_bitstream):
    parsed = BitstreamParser().parse(small_bitstream.file_bytes)
    assert parsed.size == small_bitstream.size


def test_idcode_extracted(small_bitstream):
    parsed = BitstreamParser(VIRTEX5_SX50T).parse(small_bitstream.file_bytes)
    assert parsed.idcode == VIRTEX5_SX50T.idcode


def test_frame_data_words_counted(small_bitstream):
    parsed = BitstreamParser(VIRTEX5_SX50T).parse(small_bitstream.file_bytes)
    assert parsed.frame_data_words == small_bitstream.frame_payload_words


def test_sync_index_points_at_sync(small_bitstream):
    parsed = BitstreamParser().parse(small_bitstream.file_bytes)
    assert parsed.raw_words[parsed.sync_index] == 0xAA995566


def test_wrong_device_rejected(small_bitstream):
    with pytest.raises(DeviceMismatchError):
        BitstreamParser(VIRTEX6_LX240T).parse(small_bitstream.file_bytes)


def test_declared_length_mismatch_rejected(small_bitstream):
    truncated = small_bitstream.file_bytes[:-8]
    with pytest.raises(BitstreamFormatError):
        BitstreamParser().parse(truncated)


def test_missing_sync_rejected(small_bitstream):
    header = small_bitstream.header
    # Keep the declared length honest but zero out the payload.
    blob = header.encode() + bytes(header.payload_length)
    with pytest.raises(BitstreamFormatError):
        BitstreamParser().parse(blob)


def test_decode_packets_can_be_disabled(small_bitstream):
    parsed = BitstreamParser(decode_packets=False).parse(
        small_bitstream.file_bytes)
    assert parsed.packets == []
    assert parsed.idcode is None


def test_large_bitstream_parses():
    bitstream = generate_bitstream(size=DataSize.from_kb(300))
    parsed = BitstreamParser(VIRTEX5_SX50T).parse(bitstream.file_bytes)
    assert parsed.size.kb == pytest.approx(300, rel=0.01)
