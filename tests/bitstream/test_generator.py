"""Synthetic bitstream generator: structure, size, determinism."""

import pytest

from repro.bitstream.device import VIRTEX6_LX240T
from repro.bitstream.format import (
    ConfigRegister,
    Opcode,
    PacketDecoder,
    SYNC_WORD,
)
from repro.bitstream.generator import BitstreamSpec, generate_bitstream
from repro.errors import BitstreamError
from repro.units import DataSize


def test_size_close_to_requested(small_bitstream):
    requested = DataSize.from_kb(8)
    # Frame quantization bounds the error to one frame.
    assert abs(small_bitstream.size.bytes - requested.bytes) \
        <= small_bitstream.spec.device.frame_bytes + 64


def test_deterministic_for_same_seed():
    first = generate_bitstream(size=DataSize.from_kb(8), seed=99)
    second = generate_bitstream(size=DataSize.from_kb(8), seed=99)
    assert first.raw_bytes == second.raw_bytes


def test_different_seeds_differ():
    first = generate_bitstream(size=DataSize.from_kb(8), seed=1)
    second = generate_bitstream(size=DataSize.from_kb(8), seed=2)
    assert first.raw_bytes != second.raw_bytes


def test_contains_sync_word(small_bitstream):
    assert SYNC_WORD in small_bitstream.raw_words


def test_packets_decode_and_carry_idcode(small_bitstream):
    words = small_bitstream.raw_words
    sync = words.index(SYNC_WORD)
    packets = PacketDecoder(words[sync + 1:]).decode_all()
    idcodes = [p.payload[0] for p in packets
               if p.register is ConfigRegister.IDCODE
               and p.opcode is Opcode.WRITE]
    assert idcodes == [small_bitstream.spec.device.idcode]


def test_fdri_payload_is_whole_frames(small_bitstream):
    device = small_bitstream.spec.device
    assert small_bitstream.frame_payload_words \
        == small_bitstream.frame_count * device.frame_words


def test_frame_payload_view_matches_offset(small_bitstream):
    payload = small_bitstream.frame_payload
    assert len(payload) == small_bitstream.frame_payload_words * 4


def test_file_bytes_has_preamble(small_bitstream):
    file_bytes = small_bitstream.file_bytes
    assert len(file_bytes) > len(small_bitstream.raw_bytes)
    assert file_bytes.endswith(small_bitstream.raw_bytes)


def test_utilization_zero_gives_blank_frames():
    blank = generate_bitstream(size=DataSize.from_kb(8), utilization=0.0)
    # Every frame word is zero.
    assert set(blank.frame_payload) == {0}


def test_low_utilization_more_compressible():
    from repro.compress import RleCodec
    dense = generate_bitstream(size=DataSize.from_kb(16), utilization=1.0)
    sparse = generate_bitstream(size=DataSize.from_kb(16), utilization=0.3)
    codec = RleCodec()
    dense_ratio = codec.measure(dense.raw_bytes).ratio_percent
    sparse_ratio = codec.measure(sparse.raw_bytes).ratio_percent
    assert sparse_ratio > dense_ratio


def test_other_device_supported():
    bitstream = generate_bitstream(size=DataSize.from_kb(8),
                                   device=VIRTEX6_LX240T)
    assert bitstream.spec.device is VIRTEX6_LX240T
    assert bitstream.frame_payload_words % 81 == 0


def test_invalid_utilization_rejected():
    with pytest.raises(BitstreamError):
        BitstreamSpec(utilization=1.5)


def test_weights_must_sum_to_one():
    with pytest.raises(BitstreamError):
        BitstreamSpec(zero_run_weight=0.9, motif_run_weight=0.9,
                      copy_weight=0.0, sparse_weight=0.0,
                      dense_weight=0.0)


def test_zero_size_rejected():
    with pytest.raises(BitstreamError):
        BitstreamSpec(size=DataSize(0))


def test_header_declares_payload_length(small_bitstream):
    assert small_bitstream.header.payload_length \
        == len(small_bitstream.raw_bytes)
