"""Bitstream content statistics and generator-regime assertions."""

import pytest

from repro.bitstream.generator import generate_bitstream
from repro.bitstream.stats import byte_entropy, content_stats
from repro.units import DataSize


class TestByteEntropy:
    def test_empty(self):
        assert byte_entropy(b"") == 0.0

    def test_single_symbol_zero_entropy(self):
        assert byte_entropy(b"\x00" * 1000) == 0.0

    def test_uniform_two_symbols_one_bit(self):
        assert byte_entropy(b"\x00\x01" * 500) == pytest.approx(1.0)

    def test_uniform_bytes_eight_bits(self):
        data = bytes(range(256)) * 8
        assert byte_entropy(data) == pytest.approx(8.0)


class TestContentStats:
    def test_zero_stream(self):
        stats = content_stats(b"\x00" * 400)
        assert stats.zero_byte_fraction == 1.0
        assert stats.zero_word_fraction == 1.0
        assert stats.distinct_words == 1
        assert stats.mean_zero_run_words == 100.0

    def test_repeat_fraction(self):
        data = b"\x01\x02\x03\x04" * 10
        stats = content_stats(data)
        assert stats.word_repeat_fraction == 1.0

    def test_compressibility_floor(self):
        stats = content_stats(b"\x00" * 512 + b"\xFF" * 512)
        # 1 bit/byte entropy -> 87.5 % floor.
        assert stats.compressibility_floor_percent == pytest.approx(87.5)


class TestGeneratorRegime:
    """The synthetic corpus must stay in the calibrated regime."""

    @pytest.fixture(scope="class")
    def stats(self):
        bitstream = generate_bitstream(size=DataSize.from_kb(64))
        return content_stats(bitstream.raw_bytes)

    def test_byte_entropy_band(self, stats):
        # Huffman's 74 % ratio needs ~2 bits/byte of entropy.
        assert 1.5 < stats.byte_entropy_bits < 3.0

    def test_zero_byte_majority(self, stats):
        assert 0.60 < stats.zero_byte_fraction < 0.90

    def test_zero_words_majority_but_not_total(self, stats):
        assert 0.50 < stats.zero_word_fraction < 0.90

    def test_word_repeats_feed_rle(self, stats):
        # RLE's ~61 % needs a majority of repeated-word positions.
        assert 0.30 < stats.word_repeat_fraction < 0.80

    def test_utilization_lowers_entropy(self):
        dense = generate_bitstream(size=DataSize.from_kb(32),
                                   utilization=1.0)
        sparse = generate_bitstream(size=DataSize.from_kb(32),
                                    utilization=0.2)
        assert content_stats(sparse.raw_bytes).byte_entropy_bits \
            < content_stats(dense.raw_bytes).byte_entropy_bits
