""".bit file save/load round-trips."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T, VIRTEX6_LX240T
from repro.bitstream.fileio import (
    load_bit,
    roundtrip_equal,
    save_bit,
)
from repro.errors import BitstreamError, DeviceMismatchError
from repro.units import DataSize


def test_save_returns_byte_count(tmp_path, small_bitstream):
    path = tmp_path / "module.bit"
    written = save_bit(small_bitstream, path)
    assert written == len(small_bitstream.file_bytes)
    assert path.stat().st_size == written


def test_roundtrip_bit_exact(tmp_path, small_bitstream):
    path = tmp_path / "module.bit"
    save_bit(small_bitstream, path)
    loaded = load_bit(path, VIRTEX5_SX50T)
    assert roundtrip_equal(small_bitstream, loaded)
    assert loaded.raw_words == small_bitstream.raw_words
    assert loaded.header == small_bitstream.header


def test_loaded_views_match_generated(tmp_path, small_bitstream):
    path = tmp_path / "module.bit"
    save_bit(small_bitstream, path)
    loaded = load_bit(path, VIRTEX5_SX50T)
    assert loaded.frame_count == small_bitstream.frame_count
    assert loaded.frame_payload == small_bitstream.frame_payload
    assert loaded.size == small_bitstream.size


def test_device_check_enforced(tmp_path, small_bitstream):
    path = tmp_path / "module.bit"
    save_bit(small_bitstream, path)
    with pytest.raises(DeviceMismatchError):
        load_bit(path, VIRTEX6_LX240T)


def test_load_without_device_skips_check(tmp_path, small_bitstream):
    path = tmp_path / "module.bit"
    save_bit(small_bitstream, path)
    loaded = load_bit(path)
    assert loaded.frame_count == small_bitstream.frame_count


def test_corrupt_file_rejected(tmp_path, small_bitstream):
    path = tmp_path / "module.bit"
    save_bit(small_bitstream, path)
    blob = bytearray(path.read_bytes())
    blob[5] ^= 0xFF  # inside the magic
    path.write_bytes(bytes(blob))
    from repro.errors import BitstreamFormatError
    with pytest.raises(BitstreamFormatError):
        load_bit(path)


def test_loaded_bitstream_runs_through_uparc(tmp_path, small_bitstream):
    from repro.core.system import UPaRCSystem
    path = tmp_path / "module.bit"
    save_bit(small_bitstream, path)
    loaded = load_bit(path, VIRTEX5_SX50T)
    result = UPaRCSystem(decompressor=None).run(loaded)
    assert result.verified
    assert result.frames_written == small_bitstream.frame_count


def test_save_reload_save_stable(tmp_path, small_bitstream):
    first = tmp_path / "a.bit"
    second = tmp_path / "b.bit"
    save_bit(small_bitstream, first)
    loaded = load_bit(first, VIRTEX5_SX50T)
    save_bit(loaded, second)
    assert first.read_bytes() == second.read_bytes()
