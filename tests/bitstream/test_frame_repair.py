"""Single-frame repair bitstreams (the scrubbing building block)."""

import pytest

from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.frames import BlockType, FrameAddress
from repro.bitstream.generator import (
    frame_repair_bitstream,
    generate_bitstream,
)
from repro.core.system import UPaRCSystem
from repro.errors import BitstreamError
from repro.units import DataSize


def far(column, minor=0):
    return FrameAddress(BlockType.CLB_IO_CLK, 0, 0, column, minor)


def test_needs_frames():
    with pytest.raises(BitstreamError):
        frame_repair_bitstream(VIRTEX5_SX50T, far(4), [])


def test_frame_size_enforced():
    with pytest.raises(BitstreamError):
        frame_repair_bitstream(VIRTEX5_SX50T, far(4), [[0] * 40])


def test_single_frame_repair_is_tiny():
    repair = frame_repair_bitstream(VIRTEX5_SX50T, far(4),
                                    [[7] * 41])
    # One frame + shell: well under 1 KB.
    assert repair.size.bytes < 1024
    assert repair.frame_count == 1


def test_repair_configures_exact_frame():
    repair = frame_repair_bitstream(VIRTEX5_SX50T, far(9, 3),
                                    [[0xABCD] * 41])
    system = UPaRCSystem(decompressor=None)
    result = system.run(repair)
    assert result.verified
    assert system.config_memory.read_frame(far(9, 3)) == [0xABCD] * 41
    assert system.config_memory.configured_frames == 1


def test_scrub_repairs_single_upset_end_to_end():
    """Full loop: configure, corrupt one frame, repair just it."""
    golden = generate_bitstream(size=DataSize.from_kb(16))
    system = UPaRCSystem(decompressor=None)
    system.run(golden)

    device = golden.spec.device
    victim = golden.spec.origin
    for _ in range(5):
        victim = victim.next_in(device)
    clean = system.config_memory.read_frame(victim)
    corrupted = list(clean)
    corrupted[11] ^= 1 << 3
    system.config_memory.write_frame(victim, corrupted)

    repair = frame_repair_bitstream(device, victim, [clean])
    result = system.run(repair)
    assert result.verified
    assert result.transfer_ps < 2_000_000  # sub-2 us frame repair
    assert system.config_memory.read_frame(victim) == clean


def test_multi_frame_repair_consecutive():
    frames = [[index] * 41 for index in range(1, 4)]
    repair = frame_repair_bitstream(VIRTEX5_SX50T, far(20), frames)
    system = UPaRCSystem(decompressor=None)
    system.run(repair)
    address = far(20)
    for frame in frames:
        assert system.config_memory.read_frame(address) == frame
        address = address.next_in(VIRTEX5_SX50T)
