"""CRC-32C and the configuration CRC register."""

import pytest

from repro.bitstream.crc import ConfigCrc, crc32c


class TestCrc32c:
    def test_known_vector(self):
        # The canonical CRC-32C check value for "123456789".
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty(self):
        assert crc32c(b"") == 0

    def test_incremental_equals_whole(self):
        data = b"the quick brown fox"
        split = 7
        partial = crc32c(data[:split])
        # Incremental continuation must equal the one-shot result.
        assert crc32c(data[split:], partial) == crc32c(data)

    def test_sensitivity_to_single_bit(self):
        base = crc32c(b"\x00" * 64)
        flipped = crc32c(b"\x00" * 63 + b"\x01")
        assert base != flipped


class TestConfigCrc:
    def test_initial_value_zero(self):
        assert ConfigCrc().value == 0

    def test_update_changes_value(self):
        crc = ConfigCrc()
        crc.update(2, 0xDEADBEEF)
        assert crc.value != 0

    def test_order_sensitive(self):
        first = ConfigCrc()
        first.update(2, 0x11111111)
        first.update(2, 0x22222222)
        second = ConfigCrc()
        second.update(2, 0x22222222)
        second.update(2, 0x11111111)
        assert first.value != second.value

    def test_register_address_included(self):
        fdri = ConfigCrc()
        fdri.update(2, 0x12345678)
        far = ConfigCrc()
        far.update(1, 0x12345678)
        assert fdri.value != far.value

    def test_reset_is_rcrc(self):
        crc = ConfigCrc()
        crc.update(4, 7)
        crc.reset()
        assert crc.value == 0

    def test_check(self):
        crc = ConfigCrc()
        crc.update(2, 42)
        expected = crc.value
        assert crc.check(expected)
        assert not crc.check(expected ^ 1)
