"""Device description table."""

import pytest

from repro.bitstream.device import (
    VIRTEX4_FX60,
    VIRTEX5_SX50T,
    VIRTEX6_LX240T,
    device_by_name,
)
from repro.units import DataSize, Frequency


def test_lookup_by_name():
    assert device_by_name("XC5VSX50T") is VIRTEX5_SX50T
    assert device_by_name("XC6VLX240T") is VIRTEX6_LX240T
    assert device_by_name("XC4VFX60") is VIRTEX4_FX60


def test_unknown_device():
    with pytest.raises(KeyError):
        device_by_name("XC7K325T")


def test_v5_paper_parameters():
    # Values quoted in the paper.
    assert VIRTEX5_SX50T.full_bitstream == DataSize.from_kb(2444)
    assert VIRTEX5_SX50T.icap_fmax_demonstrated == Frequency.from_mhz(362.5)
    assert VIRTEX5_SX50T.bram_fmax == Frequency.from_mhz(300)
    assert VIRTEX5_SX50T.core_voltage == 1.0


def test_v6_demonstrated_below_v5():
    # "362.5 MHz is not reliable [on V6], the maximum frequency seems
    # to be few MHz lower."
    assert VIRTEX6_LX240T.icap_fmax_demonstrated \
        < VIRTEX5_SX50T.icap_fmax_demonstrated


def test_frame_words_per_family():
    assert VIRTEX5_SX50T.frame_words == 41
    assert VIRTEX6_LX240T.frame_words == 81
    assert VIRTEX5_SX50T.frame_bytes == 164


def test_process_nodes():
    assert VIRTEX5_SX50T.process_nm == 65
    assert VIRTEX6_LX240T.process_nm == 40


def test_frames_for_rounds_up():
    assert VIRTEX5_SX50T.frames_for(DataSize(165)) == 2
    assert VIRTEX5_SX50T.frames_for(DataSize(164)) == 1


def test_total_frames_positive():
    assert VIRTEX5_SX50T.total_frames > 10_000
