"""Configuration packet encode/decode."""

import pytest

from repro.bitstream.format import (
    Command,
    ConfigPacket,
    ConfigRegister,
    Opcode,
    PacketDecoder,
    bytes_to_words,
    command_packet,
    noop_packets,
    words_to_bytes,
    write_packet,
)
from repro.errors import BitstreamFormatError


def test_type1_write_encode():
    packet = write_packet(ConfigRegister.IDCODE, [0x02E9A093])
    words = packet.encode()
    assert len(words) == 2
    header = words[0]
    assert header >> 29 == 0b001
    assert (header >> 27) & 0b11 == int(Opcode.WRITE)
    assert (header >> 13) & 0x3FFF == int(ConfigRegister.IDCODE)
    assert header & 0x7FF == 1
    assert words[1] == 0x02E9A093


def test_command_packet():
    words = command_packet(Command.WCFG).encode()
    assert words[1] == int(Command.WCFG)


def test_type1_roundtrip():
    packet = write_packet(ConfigRegister.FAR, [0x1234])
    decoded = PacketDecoder(packet.encode()).decode_all()
    assert len(decoded) == 1
    assert decoded[0].register is ConfigRegister.FAR
    assert decoded[0].payload == [0x1234]


def test_type2_roundtrip_large_payload():
    payload = list(range(5000))
    packet = ConfigPacket(Opcode.WRITE, ConfigRegister.FDRI, payload,
                          type2=True)
    decoded = PacketDecoder(packet.encode()).decode_all()
    assert len(decoded) == 1
    assert decoded[0].type2
    assert decoded[0].payload == payload


def test_type1_payload_limit():
    with pytest.raises(BitstreamFormatError):
        ConfigPacket(Opcode.WRITE, ConfigRegister.FDRI,
                     [0] * 2048).encode()


def test_payload_word_must_be_32bit():
    with pytest.raises(BitstreamFormatError):
        ConfigPacket(Opcode.WRITE, ConfigRegister.FDRI, [1 << 32]).encode()


def test_orphan_type2_rejected():
    orphan = (0b010 << 29) | 1
    with pytest.raises(BitstreamFormatError):
        PacketDecoder([orphan, 0]).decode_all()


def test_truncated_payload_rejected():
    packet = write_packet(ConfigRegister.FAR, [1, 2, 3])
    words = packet.encode()[:-1]
    with pytest.raises(BitstreamFormatError):
        PacketDecoder(words).decode_all()


def test_unknown_register_rejected():
    header = (0b001 << 29) | (31 << 13)  # register 31 undefined
    with pytest.raises(BitstreamFormatError):
        PacketDecoder([header]).decode_all()


def test_unknown_packet_type_rejected():
    with pytest.raises(BitstreamFormatError):
        PacketDecoder([0b101 << 29]).decode_all()


def test_noop_packets():
    packets = noop_packets(3)
    assert len(packets) == 3
    assert all(p.opcode is Opcode.NOP for p in packets)


def test_words_bytes_roundtrip():
    words = [0xAA995566, 0x00000000, 0xFFFFFFFF, 0x12345678]
    assert bytes_to_words(words_to_bytes(words)) == words


def test_words_to_bytes_big_endian():
    assert words_to_bytes([0xAA995566]) == b"\xaa\x99\x55\x66"


def test_bytes_to_words_alignment_enforced():
    with pytest.raises(BitstreamFormatError):
        bytes_to_words(b"\x00\x01\x02")
