"""Fixture: U104 bare-constant return feeding a unit parameter."""


def default_window():
    return 4096


def configure(timeout_ps: int):
    return timeout_ps


def run(timeout_ps: int):
    configure(default_window())  # violation: unitless constant into ps
    configure(default_window())  # repro-lint: disable=U104
    configure(timeout_ps)  # ok: the argument carries a unit
