"""Drifted numpy backend for the B-rule fixtures."""


def pack_words(words, order):
    # B801: extra parameter drifts from the pure reference.
    return bytes(words)


def scan_runs(data, count):
    return [count for _ in data]


def extra_kernel(x):
    # B801: no pure reference implementation exists.
    return x


def fold_bits(data):
    return data[0] if data else 0


def mix_rows(rows, stride):
    return [row * stride for row in rows]


# Suppressed seed for the directive tests.
def stray_kernel(a, b):  # repro-lint: disable=B801
    return a + b
