"""Fixture backend package: dispatch facade with seeded B-rule gaps."""

from accel_drift_pkg import pure as _pure


def record(kernel, data_bytes: int):
    pass


def pack_words(words):
    record("pack_words", len(words))
    return _pure.pack_words(words)


def scan_runs(data, count):
    # B803: dispatch without a record() call.
    return _pure.scan_runs(data, count)


# B802: crc_fold has no dispatch function at all.


# Suppressed seed: another record()-less dispatch.
def mix_rows(rows, stride):  # repro-lint: disable=B803
    return _pure.mix_rows(rows, stride)
