"""Pure reference kernels for the drifted-backend fixture."""


def pack_words(words):
    return bytes(words)


def crc_fold(data, crc=0):
    return crc ^ len(data)


def scan_runs(data, count):
    return [count for _ in data]


def _helper(data):
    return len(data)


# Suppressed seed: counterpart exists but the facade never dispatches.
def fold_bits(data):  # repro-lint: disable=B802
    return data[0] if data else 0


def mix_rows(rows, stride):
    return [row * stride for row in rows]
