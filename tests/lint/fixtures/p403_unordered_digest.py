"""Fixture: P403 unordered iteration feeding a digest."""

import hashlib


def key_of(params):
    digest = hashlib.sha256()
    for name in params.keys():  # violation: hash-order loop
        digest.update(name.encode())
    parts = [value for value in params.values()]  # violation
    for name in params.keys():  # repro-lint: disable=P403
        digest.update(name.encode())
    for name, value in sorted(params.items()):  # ok: sorted
        digest.update(name.encode())
    return digest.hexdigest(), parts


def no_digest_here(params):
    return [name for name in params.keys()]  # ok: no digest in scope
