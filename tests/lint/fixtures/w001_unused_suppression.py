"""Fixture: W001 unused line-level suppression directives."""

import time


def run():
    now = time.time()  # repro-lint: disable=D101
    stale = 1  # repro-lint: disable=D102
    return now, stale
