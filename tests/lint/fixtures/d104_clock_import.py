"""Fixture: D104 clock-import violations."""

import time  # ok: unaliased module import, D101 watches the call sites
import time as walltime  # aliased module import hides t.perf_counter()
from time import perf_counter  # binds a clock callable
from time import monotonic as mono  # aliased clock callable
from time import sleep  # ok: not a clock read
from time import process_time  # repro-lint: disable=D104


def measure():
    return walltime, perf_counter, mono, sleep, process_time, time
