"""Fixture: U001 unit-suffix-int violations."""


def schedule(delay_ps: float, size_bytes):  # two violations on this line
    return delay_ps, size_bytes


def suppressed(delay_ps: float):  # repro-lint: disable=U001
    return delay_ps


class Config:
    timeout_ps: float = 0.0  # annotation violation (assigned float is U001 too)
    rate_bytes_per_ps: float = 0.5  # rate: exempt from U001


def assign_leak(duration):
    window_ps = duration * 1.5  # float expression into *_ps assignment
    return window_ps
