"""Fixture package: seeded scheduling races for the R7xx rules."""
