"""Each method seeds exactly one R-rule positive (see the tests)."""

from repro.sim import Process

from race_pkg.shared import enqueue, writer


class Controller:
    def __init__(self, sim):
        self.sim = sim
        self.pending = []
        self.backlog = 0
        self.log = []

    def arm(self, delay):
        # R701: both callbacks mutate self.pending; symbolic delays
        # give the analyzer no ordering to lean on.
        self.sim.call_after(delay, self.flush)
        self.sim.call_after(delay * 2, self.reset)

    def flush(self):
        self.pending.append("flush")

    def reset(self):
        self.pending.clear()

    def sample(self):
        # R702: same literal instant, one writes what the other reads.
        self.sim.call_at(1000, self.bump)
        self.sim.call_at(1000, self.observe)

    def bump(self):
        self.backlog += 1

    def observe(self):
        self.log.append(self.backlog)

    def spawn(self, stats):
        # R703: two processes append to the same caller-owned list.
        Process(self.sim, writer(self.sim, stats))
        Process(self.sim, writer(self.sim, stats))

    def defer(self):
        # R704: a scheduled lambda mutates module-level state.
        self.sim.call_after(5, lambda: enqueue("late"))

    def storm(self, jobs):
        # R701 (loop form): every iteration schedules the same mutator.
        for _job in jobs:
            self.sim.call_after(10, self.flush)

    def staged(self, ready):
        # Negative: distinct literal delays are ordered; exclusive
        # branches never coexist.  Neither pair may be reported.
        self.sim.call_after(10, self.flush)
        self.sim.call_after(20, self.reset)
        if ready:
            self.sim.call_at(500, self.bump)
        else:
            self.sim.call_at(500, self.observe)

    def rearm(self, delay, stats):
        # One suppressed seed per R rule: stripping the directives in
        # the suppression tests must reveal exactly one more finding
        # of each.
        self.sim.call_after(delay, self.flush)
        self.sim.call_after(delay + 3, self.reset)  # repro-lint: disable=R701
        self.sim.call_at(2000, self.bump)
        self.sim.call_at(2000, self.observe)  # repro-lint: disable=R702
        Process(self.sim, writer(self.sim, stats))
        Process(self.sim, writer(self.sim, stats))  # repro-lint: disable=R703
        self.sim.call_after(9, lambda: enqueue("late"))  # repro-lint: disable=R704
