"""Shared mutable state and helpers the race fixtures schedule."""

PENDING = []


def enqueue(item):
    PENDING.append(item)


def writer(sim, stats):
    stats.append(sim.now)
    yield
