"""Fixture: U102 mixed-unit arithmetic violations."""


def total(delay_ps: int, window_ns: int):
    bad = delay_ps + window_ns  # violation: ps + ns
    if delay_ps > window_ns:  # violation: ps compared to ns
        delay_ps -= window_ns  # violation: augmented assignment
    quiet = delay_ps + window_ns  # repro-lint: disable=U102
    fine = delay_ps + 5  # ok: a bare literal carries no unit
    return bad, quiet, fine
