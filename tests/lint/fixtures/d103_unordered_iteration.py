"""Fixture: D103 unordered-iteration violations."""


def iterate(items, lanes):
    for lane in set(lanes):  # hash-order loop
        print(lane)
    names = [item.name for item in {1, 2, 3}]  # hash-order comprehension
    ordered = list(set(items))  # hash-order materialization
    for lane in set(lanes):  # repro-lint: disable=D103
        print(lane)
    for lane in sorted(set(lanes)):  # ok: sorted
        print(lane)
    return names, ordered
