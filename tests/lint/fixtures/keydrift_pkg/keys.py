"""Key module: hashes dict views in iteration order."""

import hashlib


def fingerprint(params):
    digest = hashlib.sha256()
    for name, value in params.items():  # P403: hash-order bytes
        digest.update(name.encode())
        digest.update(repr(value).encode())  # C502: repr is not canonical
    return digest.hexdigest()
