"""Fixture package: an order-unstable cache-key construction."""
