"""Fixture: E201 loop-capture-callback violations."""


def schedule_all(sim, tasks):
    for task in tasks:
        sim.after(task.delay_ps, lambda: task.start())  # captures 'task'
        sim.after(task.delay_ps, lambda task=task: task.start())  # ok: bound
    for index, item in enumerate(tasks):
        sim.at(index, lambda: item.run())  # repro-lint: disable=E201
    sim.after(10, lambda: tasks[0].start())  # ok: outside any loop
