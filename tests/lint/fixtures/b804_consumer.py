"""Module outside the backend package importing backends directly."""

from accel_drift_pkg import pure  # B804
import accel_drift_pkg.numpy_backend as nb  # B804


def use():
    return pure.pack_words(b""), nb.scan_runs(b"", 0)


from accel_drift_pkg import pure as direct  # repro-lint: disable=B804
