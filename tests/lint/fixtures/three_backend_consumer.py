"""B804 seeds: direct imports bypassing the dispatch facade."""

from three_backend_pkg import native_backend
from three_backend_pkg import numpy_backend
from three_backend_pkg.native_backend import pack_words


def use():
    return native_backend, numpy_backend, pack_words
