"""Fixture: U101 cross-unit argument violations."""


def settle(delay_ps: int) -> int:
    return delay_ps


def drive(clock_hz: int, window_ps: int):
    settle(clock_hz)  # violation: hz value into a ps parameter
    settle(delay_ps=clock_hz)  # violation via keyword
    settle(clock_hz)  # repro-lint: disable=U101
    settle(window_ps)  # ok: units agree
