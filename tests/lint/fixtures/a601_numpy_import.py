"""Fixture: A601 numpy-containment violations."""

import numpy  # direct import outside repro.accel
import numpy as np  # aliased import is just as leaky
from numpy import frombuffer  # from-import of the package
from numpy.linalg import norm  # submodule from-import
import numpy.random  # dotted module import
import struct  # ok: stdlib
from numpy import uint32  # repro-lint: disable=A601


def vectorize(data):
    words = frombuffer(data, dtype=np.uint32)
    return numpy, numpy.random, norm(words), struct, uint32
