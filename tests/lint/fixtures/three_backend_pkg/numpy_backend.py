"""Clean vectorised backend: mirrors every pure signature exactly.

Present so the fixture has the real package shape (pure + numpy +
native) and so the tests prove B801 judges each implementation
independently — all the seeded drift lives in ``native_backend``.
"""

from three_backend_pkg import pure


def pack_words(words):
    return pure.pack_words(words)


def crc_fold(data, crc=0):
    return pure.crc_fold(data, crc)


def scan_runs(data, count):
    return pure.scan_runs(data, count)


def stream_decode(body, output_length):
    return pure.stream_decode(body, output_length)
