"""Fixture: the real three-backend shape with seeded B-rule gaps."""

from three_backend_pkg import pure as _pure


def record(kernel, data_bytes: int):
    pass


def pack_words(words):
    record("pack_words", len(words))
    return _pure.pack_words(words)


def scan_runs(data, count):
    # B803: dispatch without a record() call.
    return _pure.scan_runs(data, count)


def stream_decode(body, output_length):
    record("stream_decode", len(body))
    return _pure.stream_decode(body, output_length)


# B802: crc_fold has no dispatch function at all.
