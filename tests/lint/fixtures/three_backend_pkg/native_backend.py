"""Drifted compiled-kernel backend, shaped like the cffi wrappers."""


def pack_words(words, order):
    # B801: extra parameter drifts from the pure reference.
    return bytes(words)


def crc_fold(data, crc=0):
    return crc ^ len(data)


def scan_runs(data, count):
    return [count for _ in data]


def turbo_kernel(x):
    # B801: no pure reference implementation exists.
    return x


# B801 (at the pure def): stream_decode has no native counterpart.
