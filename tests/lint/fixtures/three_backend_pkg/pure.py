"""Pure reference kernels, shaped like ``repro.accel.pure``."""


def pack_words(words):
    return bytes(words)


def crc_fold(data, crc=0):
    return crc ^ len(data)


def scan_runs(data, count):
    return [count for _ in data]


def stream_decode(body, output_length):
    return bytes(output_length)
