"""Fixture: E203 use-after-cancel violations."""


def rearm(sim, cb):
    handle = sim.after(100, cb)
    handle.cancel()
    handle.reschedule(200)  # dead handle reused
    checked = handle.cancelled  # ok: inspecting state is allowed
    handle = sim.after(200, cb)  # reassignment clears the taint
    handle.time_ps  # ok: fresh handle
    victim = sim.after(300, cb)
    victim.cancel()
    victim.payload = 1  # repro-lint: disable=E203
    return checked
