"""B804 seeds: direct imports of the native backend module."""

from native_drift_pkg import native_backend
from native_drift_pkg.native_backend import pack_words


def use():
    return native_backend, pack_words
