"""Fixture: E202 manual-event-fire violations."""


def hurry(sim, handle, cb):
    handle.fire()  # manual dispatch bypasses event order
    other = sim.after(5, cb)
    other.fire()  # repro-lint: disable=E202
    sim.after(0, cb)  # ok: let the kernel dispatch
