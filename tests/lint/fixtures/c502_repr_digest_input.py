"""Fixture: C502 repr/str/f-string output hashed into a digest."""

import hashlib


def key_of(spec, nonce):
    a = hashlib.sha256(repr(spec).encode())  # violation: repr
    b = hashlib.sha256(f"{spec}-{nonce}".encode())  # violation: f-string
    c = hashlib.sha256(str(spec).encode())  # repro-lint: disable=C502
    d = hashlib.sha256(str("literal").encode())  # ok: constant input
    return a, b, c, d
