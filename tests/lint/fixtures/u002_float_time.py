"""Fixture: U002 float-time-arg violations."""


def run(sim, controller, cb):
    sim.after(1.5, cb)  # float literal delay
    sim.after(total / 2, cb)  # true division stays float
    controller.start(timeout_ps=2.5)  # float into *_ps keyword
    sim.after(round(total / 2), cb)  # ok: explicit coercion
    sim.at(sim.now + 1_000, cb)  # ok: integer arithmetic
    sim.after(0.5, cb)  # repro-lint: disable=U002
