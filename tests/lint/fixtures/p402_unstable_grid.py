"""Fixture: P402 order-unstable / unpicklable grid fields."""


def run_spec_factory(RunSpec):
    bad = RunSpec({4, 8})  # violation: set literal has no order
    worse = RunSpec(sizes=(1, 2), hook=lambda s: s)  # violation: lambda
    quiet = RunSpec({1, 2})  # repro-lint: disable=P402
    good = RunSpec(sorted({4, 8}))  # ok: sorted(...) imposes order
    return bad, worse, quiet, good
