"""Fixture: U003 raw-frequency-math violations."""


def conversions(clk_mhz, freq_hz):
    hertz = clk_mhz * 1e6  # hand-rolled MHz -> Hz
    back_mhz = freq_hz / 1_000_000  # hand-rolled Hz -> MHz
    suppressed = clk_mhz * 1e6  # repro-lint: disable=U003
    scaled = clk_mhz * 2  # ok: not a unit-conversion constant
    return hertz, back_mhz, suppressed, scaled
