"""Dispatch module: ships the unsafe worker to a process pool."""

from concurrent.futures import ProcessPoolExecutor

from unsafe_sweep_pkg.state import tally


def run(specs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(tally, specs))  # P401 across modules
