"""Fixture package: a process-pool worker with mutable module state."""
