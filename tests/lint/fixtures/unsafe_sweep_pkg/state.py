"""Worker module: reads a mutable module-level dict."""

REGISTRY = {}


def tally(spec):
    REGISTRY[spec] = spec
    return spec
