"""Fixture: pure + *native* backend package with seeded B-rule gaps.

No ``numpy_backend`` submodule on purpose — the package must be
recognised from the pure reference plus the third registered
implementation name alone.
"""

from native_drift_pkg import pure as _pure


def record(kernel, data_bytes: int):
    pass


def pack_words(words):
    record("pack_words", len(words))
    return _pure.pack_words(words)


def scan_runs(data, count):
    # B803: dispatch without a record() call.
    return _pure.scan_runs(data, count)


# B802: crc_fold has no dispatch function at all.
