"""Pure reference kernels for the native-backend drift fixture."""


def pack_words(words):
    return bytes(words)


def crc_fold(data, crc=0):
    return crc ^ len(data)


def scan_runs(data, count):
    return [count for _ in data]
