"""Drifted native backend for the third-backend fixture."""


def pack_words(words, order):
    # B801: extra parameter drifts from the pure reference.
    return bytes(words)


def scan_runs(data, count):
    return [count for _ in data]


def turbo_kernel(x):
    # B801: no pure reference implementation exists.
    return x
