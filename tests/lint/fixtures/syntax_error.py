"""Fixture: unparseable file reported as E999."""

def broken(:
