"""Caller module: violations only visible with the project index."""

from xflow_pkg.timing import clock_rate_hz, settle_window_ps


def drive(clock_hz: int, delay_ps: int):
    bad = settle_window_ps(clock_hz)  # U101: hz into a ps parameter
    mixed = clock_rate_hz(clock_hz) + delay_ps  # U102 via return unit
    good = settle_window_ps(delay_ps)  # ok
    return bad, mixed, good
