"""Fixture package: unit flow across module boundaries."""
