"""Callee module: the unit contract lives in the signature."""


def settle_window_ps(delay_ps: int):
    return delay_ps + 2


def clock_rate_hz(base_hz: int):
    return base_hz
