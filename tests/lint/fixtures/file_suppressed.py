"""Fixture: a file-level directive silences the whole file."""

# repro-lint: disable=all

import time


def noisy(sim, cb):
    start = time.time()
    sim.after(1.5, cb)
    return start
