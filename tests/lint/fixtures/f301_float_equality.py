"""Fixture: F301 float-equality violations."""


def check(result, trace):
    if result.duration_ps == 1.5:  # int picoseconds vs float literal
        pass
    if 0.66 != result.energy_uj:  # reversed operand order
        pass
    if result.energy_uj == 0.66:  # repro-lint: disable=F301
        pass
    if result.duration_ps == 1_500:  # ok: integer comparison
        pass
    if trace.peak() == 50.0:  # ok: call result, not a unit-named value
        pass
