"""Fixture: C501 insertion-ordered JSON hashed into a key."""

import hashlib
import json


def key_of(params):
    blob = json.dumps(params)
    direct = hashlib.sha256(json.dumps(params).encode())  # violation
    tracked = hashlib.sha256(blob.encode())  # violation via the var
    quiet = hashlib.sha256(json.dumps(params).encode())  # repro-lint: disable=C501
    good = hashlib.sha256(
        json.dumps(params, sort_keys=True).encode())  # ok: canonical
    return direct, tracked, quiet, good
