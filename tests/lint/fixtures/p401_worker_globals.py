"""Fixture: P401 pool workers touching mutable module state."""

from concurrent.futures import ProcessPoolExecutor

RESULTS = []
LIMITS = (1, 2)


def worker(spec):
    RESULTS.append(spec)  # a private copy in every worker process
    return spec + LIMITS[0]


def run(specs):
    with ProcessPoolExecutor() as pool:
        bad = list(pool.map(worker, specs))  # violation: RESULTS
        dead = list(pool.map(lambda s: s, specs))  # violation: lambda
        quiet = list(pool.map(worker, specs))  # repro-lint: disable=P401
    return bad, dead, quiet
