"""Fixture: U103 return-unit mismatch violations."""


def window_ps(delay_ns: int):
    return delay_ns  # violation: ns returned from a *_ps function


def budget_ms(delay_us: int):
    return delay_us  # repro-lint: disable=U103


def settle_ps(delay_ps: int):
    return delay_ps  # ok: name and return agree
