"""Fixture: D102 unseeded-random violations."""

import os
import random


def draw():
    a = random.random()  # global RNG
    b = random.Random()  # seedless instance
    c = os.urandom(4)  # OS entropy
    d = random.randint(0, 7)  # repro-lint: disable=D102
    rng = random.Random(2012)  # ok: explicit seed
    e = rng.random()  # ok: local seeded instance
    return a, b, c, d, e
