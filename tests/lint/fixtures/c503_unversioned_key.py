"""Fixture: C503 params dict hashed without a version entry."""

from repro.sweep import artifact_key


def keys():
    bad = artifact_key({"size_kb": 16, "seed": 7})  # violation
    params = {"size_kb": 16}
    params["seed"] = 7
    tracked = artifact_key(params)  # violation via the tracked dict
    quiet = artifact_key({"seed": 7})  # repro-lint: disable=C503
    good = artifact_key({"cache_version": 2, "seed": 7})  # ok
    return bad, tracked, quiet, good
