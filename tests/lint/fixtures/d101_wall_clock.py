"""Fixture: D101 wall-clock violations."""

import time
from time import perf_counter


def measure(sim):
    start = time.time()  # wall-clock read
    tick = perf_counter()  # bare from-import clock read
    stamp = time.time()  # repro-lint: disable=D101
    now_ps = sim.now  # ok: simulated time
    return start, tick, stamp, now_ps
