"""Whole-program rules against the fixture packages.

The single-file fixtures prove each rule in isolation; these packages
prove the *project index*: violations here are only visible when the
analyzer resolves calls and globals across module boundaries.
"""

from pathlib import Path

from repro.lint import lint_file, lint_files

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _pkg_files(name):
    return sorted((FIXTURES / name).rglob("*.py"))


def _by_rule(violations):
    table = {}
    for violation in violations:
        table.setdefault(violation.rule_id, []).append(violation)
    return table


def test_cross_module_unit_flow():
    found = _by_rule(lint_files(_pkg_files("xflow_pkg")))
    [u101] = found["U101"]
    assert u101.path.endswith("driver.py")
    assert u101.line == 7
    assert "settle_window_ps" in u101.message
    [u102] = found["U102"]
    assert u102.path.endswith("driver.py")
    assert u102.line == 8
    assert "'hz'" in u102.message and "'ps'" in u102.message


def test_cross_module_finding_needs_the_index():
    # The same caller linted alone resolves nothing: the violation
    # only exists with the callee's summary in the index.
    alone = lint_file(FIXTURES / "xflow_pkg" / "driver.py")
    assert not any(v.rule_id in ("U101", "U102") for v in alone)


def test_worker_safety_across_modules():
    found = _by_rule(lint_files(_pkg_files("unsafe_sweep_pkg")))
    [p401] = found["P401"]
    assert p401.path.endswith("runner.py")
    assert "REGISTRY" in p401.message


def test_order_unstable_cache_key_package():
    found = _by_rule(lint_files(_pkg_files("keydrift_pkg")))
    assert [v.line for v in found["P403"]] == [8]
    assert [v.line for v in found["C502"]] == [10]


def test_project_index_resolution_and_signature():
    import ast

    from repro.lint.project import ProjectIndex, module_name_for
    from repro.lint.summaries import summarize_module

    summaries = []
    for path in _pkg_files("xflow_pkg"):
        tree = ast.parse(path.read_text())
        summaries.append(
            summarize_module(tree, module_name_for(str(path)), str(path)))
    index = ProjectIndex(summaries)
    driver = next(s for s in summaries if s.module == "xflow_pkg.driver")

    summary = index.resolve(driver, "settle_window_ps")
    assert summary is not None
    assert summary.qualname.endswith("timing.settle_window_ps")
    assert [p.unit for p in summary.explicit_params] == ["ps"]

    rate = index.resolve(driver, "clock_rate_hz")
    assert index.return_unit_of(rate) == "hz"

    # The signature is a pure function of module *summaries*, not of
    # file order.
    shuffled = ProjectIndex(list(reversed(summaries)))
    assert index.signature() == shuffled.signature()


# -- race rules (R7xx) -------------------------------------------------

def test_race_rules_flag_every_seeded_race():
    found = _by_rule(lint_files(_pkg_files("race_pkg")))
    assert [v.line for v in found["R701"]] == [19, 50]
    assert "self.pending" in found["R701"][0].message
    assert "loop" in found["R701"][1].message
    assert [v.line for v in found["R702"]] == [30]
    assert "self.backlog" in found["R702"][0].message
    assert [v.line for v in found["R703"]] == [41]
    assert "'stats'" in found["R703"][0].message
    assert [v.line for v in found["R704"]] == [45]
    assert "race_pkg.shared.PENDING" in found["R704"][0].message


def test_ordered_and_exclusive_schedules_stay_silent():
    # Controller.staged: distinct literal delays are ordered, and the
    # if/else arms are mutually exclusive — lines 55-60 must be clean.
    found = lint_files(_pkg_files("race_pkg"))
    assert not any(v.line >= 53 for v in found
                   if v.rule_id.startswith("R7"))


def test_process_race_needs_the_cross_module_index():
    # racer.py alone cannot resolve shared.writer/shared.enqueue, so
    # the sound default keeps R703/R704 silent; the in-class pairs
    # (R701/R702) survive because self-resolution is module-local.
    alone = _by_rule(lint_file(FIXTURES / "race_pkg" / "racer.py"))
    assert "R703" not in alone and "R704" not in alone
    assert "R701" in alone and "R702" in alone


# -- backend contract rules (B8xx) ------------------------------------

def _drift_files():
    return _pkg_files("accel_drift_pkg") + [FIXTURES / "b804_consumer.py"]


def test_backend_contract_rules_flag_every_seed():
    found = _by_rule(lint_files(_drift_files()))
    b801 = {(v.path.rsplit("/", 1)[-1], v.line) for v in found["B801"]}
    assert b801 == {("pure.py", 4), ("pure.py", 8),
                    ("numpy_backend.py", 13)}
    messages = " | ".join(v.message for v in found["B801"])
    assert "signature drift" in messages
    assert "no counterpart" in messages
    assert "no pure reference" in messages

    [b802] = found["B802"]
    assert b802.path.endswith("pure.py") and "crc_fold" in b802.message

    [b803] = found["B803"]
    assert b803.path.endswith("__init__.py")
    assert "scan_runs" in b803.message
    assert b803.fix is not None  # mechanically safe: insert record()

    assert [v.line for v in found["B804"]] == [3, 4]
    assert all(v.path.endswith("b804_consumer.py")
               for v in found["B804"])


def test_backend_package_detection_is_generic():
    import ast

    from repro.lint.project import ProjectIndex, module_name_for
    from repro.lint.rules.backend import backend_package_of
    from repro.lint.summaries import summarize_module

    index = ProjectIndex([
        summarize_module(ast.parse(path.read_text()),
                         module_name_for(str(path)), str(path))
        for path in _pkg_files("accel_drift_pkg")])
    for module in ("accel_drift_pkg", "accel_drift_pkg.pure",
                   "accel_drift_pkg.numpy_backend"):
        assert backend_package_of(index, module) == "accel_drift_pkg"
    assert backend_package_of(index, "somewhere.else") is None


def test_imports_inside_the_backend_package_are_sanctioned():
    found = _by_rule(lint_files(_pkg_files("accel_drift_pkg")))
    # __init__.py imports its own pure submodule — that is the
    # dispatch layer doing its job, not a bypass.
    assert "B804" not in found


# -- third registered backend (native, ROADMAP phase 3) ----------------
#
# three_backend_pkg mirrors the real repro.accel shape — pure
# reference, clean numpy mirror, cffi-style native backend — with
# every seeded violation living in the native implementation, so the
# B rules are proven against the package layout that actually ships.

def _three_backend_files():
    return _pkg_files("three_backend_pkg") + \
        [FIXTURES / "three_backend_consumer.py"]


def test_native_backend_package_is_recognised_without_numpy(tmp_path):
    # Recognition must not hinge on a numpy_backend submodule: a
    # package carrying only pure + native_backend is still a backend
    # package, so drift inside it fires.
    pkg = tmp_path / "solo_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "pure.py").write_text("def k(a):\n    return a\n")
    (pkg / "native_backend.py").write_text(
        "def k(a, b):\n    return a\n")
    found = _by_rule(lint_files(sorted(pkg.rglob("*.py"))))
    [b801] = found["B801"]
    assert b801.path.endswith("pure.py")
    assert "native_backend" in b801.message


def test_three_backend_drift_flags_every_seed():
    found = _by_rule(lint_files(_three_backend_files()))

    # All three B801 shapes, every one seeded in the native impl:
    # signature drift, missing counterpart, no pure reference.  The
    # clean numpy mirror must contribute nothing.
    b801 = {(v.path.rsplit("/", 1)[-1], v.line) for v in found["B801"]}
    assert b801 == {("pure.py", 4), ("pure.py", 16),
                    ("native_backend.py", 17)}
    messages = " | ".join(v.message for v in found["B801"])
    assert "three_backend_pkg.native_backend" in messages
    assert "numpy_backend" not in messages
    assert "signature drift" in messages
    assert "no counterpart" in messages
    assert "no pure reference" in messages

    [b802] = found["B802"]
    assert b802.path.endswith("pure.py") and "crc_fold" in b802.message

    [b803] = found["B803"]
    assert b803.path.endswith("__init__.py")
    assert "scan_runs" in b803.message

    # Bypass imports of either implementation module are flagged.
    assert [v.line for v in found["B804"]] == [3, 4, 5]
    assert all(v.path.endswith("three_backend_consumer.py")
               for v in found["B804"])
    bypassed = " | ".join(v.message for v in found["B804"])
    assert "native_backend" in bypassed
    assert "numpy_backend" in bypassed


def test_real_accel_package_is_backend_clean():
    # The shipped three-backend package must satisfy its own contract:
    # mirrored signatures (B801), one dispatch per kernel (B802),
    # record() on every dispatch (B803), no bypass imports (B804).
    src = Path(__file__).resolve().parents[2] / "src" / "repro" / "accel"
    found = _by_rule(lint_files(sorted(src.rglob("*.py"))))
    assert not any(rule.startswith("B8") for rule in found), found


def test_mixed_three_backend_package_checks_both_impls(tmp_path):
    # A package carrying numpy_backend AND native_backend gets B801
    # checked against each implementation independently.
    pkg = tmp_path / "mixed_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "pure.py").write_text("def k(a):\n    return a\n")
    (pkg / "numpy_backend.py").write_text("def k(a):\n    return a\n")
    (pkg / "native_backend.py").write_text(
        "def k(a, b):\n    return a\n")

    found = _by_rule(lint_files(sorted(pkg.rglob("*.py"))))
    # numpy mirrors k exactly; only the native signature drifted.
    [b801] = found["B801"]
    assert b801.path.endswith("pure.py")
    assert "native_backend" in b801.message
    assert "numpy_backend" not in b801.message
