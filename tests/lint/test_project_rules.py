"""Whole-program rules against the fixture packages.

The single-file fixtures prove each rule in isolation; these packages
prove the *project index*: violations here are only visible when the
analyzer resolves calls and globals across module boundaries.
"""

from pathlib import Path

from repro.lint import lint_file, lint_files

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _pkg_files(name):
    return sorted((FIXTURES / name).rglob("*.py"))


def _by_rule(violations):
    table = {}
    for violation in violations:
        table.setdefault(violation.rule_id, []).append(violation)
    return table


def test_cross_module_unit_flow():
    found = _by_rule(lint_files(_pkg_files("xflow_pkg")))
    [u101] = found["U101"]
    assert u101.path.endswith("driver.py")
    assert u101.line == 7
    assert "settle_window_ps" in u101.message
    [u102] = found["U102"]
    assert u102.path.endswith("driver.py")
    assert u102.line == 8
    assert "'hz'" in u102.message and "'ps'" in u102.message


def test_cross_module_finding_needs_the_index():
    # The same caller linted alone resolves nothing: the violation
    # only exists with the callee's summary in the index.
    alone = lint_file(FIXTURES / "xflow_pkg" / "driver.py")
    assert not any(v.rule_id in ("U101", "U102") for v in alone)


def test_worker_safety_across_modules():
    found = _by_rule(lint_files(_pkg_files("unsafe_sweep_pkg")))
    [p401] = found["P401"]
    assert p401.path.endswith("runner.py")
    assert "REGISTRY" in p401.message


def test_order_unstable_cache_key_package():
    found = _by_rule(lint_files(_pkg_files("keydrift_pkg")))
    assert [v.line for v in found["P403"]] == [8]
    assert [v.line for v in found["C502"]] == [10]


def test_project_index_resolution_and_signature():
    import ast

    from repro.lint.project import ProjectIndex, module_name_for
    from repro.lint.summaries import summarize_module

    summaries = []
    for path in _pkg_files("xflow_pkg"):
        tree = ast.parse(path.read_text())
        summaries.append(
            summarize_module(tree, module_name_for(str(path)), str(path)))
    index = ProjectIndex(summaries)
    driver = next(s for s in summaries if s.module == "xflow_pkg.driver")

    summary = index.resolve(driver, "settle_window_ps")
    assert summary is not None
    assert summary.qualname.endswith("timing.settle_window_ps")
    assert [p.unit for p in summary.explicit_params] == ["ps"]

    rate = index.resolve(driver, "clock_rate_hz")
    assert index.return_unit_of(rate) == "hz"

    # The signature is a pure function of module *summaries*, not of
    # file order.
    shuffled = ProjectIndex(list(reversed(summaries)))
    assert index.signature() == shuffled.signature()
