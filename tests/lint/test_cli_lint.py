"""``python -m repro lint`` CLI: dispatch, exit codes, formats."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import all_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = str(REPO_ROOT / "src")
BASELINE = str(REPO_ROOT / ".repro-lint-baseline.json")


def test_clean_tree_exits_zero(capsys):
    assert main(["lint", SRC, "--baseline", BASELINE]) == 0
    assert "clean: 0 violations" in capsys.readouterr().out


def test_each_rule_fixture_exits_one(capsys):
    # Acceptance criterion: pointing the CLI at a fixture with a
    # planted violation exits 1, for every rule.  Whole-program rules
    # list every file their cross-module evidence needs.
    fixture_by_rule = {
        "U001": "u001_unit_suffix.py",
        "U002": "u002_float_time.py",
        "U003": "u003_frequency_math.py",
        "D101": "d101_wall_clock.py",
        "D102": "d102_unseeded_random.py",
        "D103": "d103_unordered_iteration.py",
        "D104": "d104_clock_import.py",
        "E201": "e201_loop_capture.py",
        "E202": "e202_manual_fire.py",
        "E203": "e203_use_after_cancel.py",
        "F301": "f301_float_equality.py",
        "U101": "u101_cross_unit_argument.py",
        "U102": "u102_mixed_unit_arithmetic.py",
        "U103": "u103_return_unit_mismatch.py",
        "U104": "u104_unitless_return_to_sink.py",
        "P401": "p401_worker_globals.py",
        "P402": "p402_unstable_grid.py",
        "P403": "p403_unordered_digest.py",
        "C501": "c501_unsorted_json_key.py",
        "C502": "c502_repr_digest_input.py",
        "C503": "c503_unversioned_key.py",
        "A601": "a601_numpy_import.py",
        "R701": "race_pkg/racer.py",
        "R702": "race_pkg/racer.py",
        "R703": ("race_pkg/racer.py", "race_pkg/shared.py"),
        "R704": ("race_pkg/racer.py", "race_pkg/shared.py"),
        "B801": ("accel_drift_pkg/__init__.py",
                 "accel_drift_pkg/pure.py",
                 "accel_drift_pkg/numpy_backend.py"),
        "B802": ("accel_drift_pkg/__init__.py",
                 "accel_drift_pkg/pure.py",
                 "accel_drift_pkg/numpy_backend.py"),
        "B803": ("accel_drift_pkg/__init__.py",
                 "accel_drift_pkg/pure.py",
                 "accel_drift_pkg/numpy_backend.py"),
        "B804": ("b804_consumer.py",
                 "accel_drift_pkg/__init__.py",
                 "accel_drift_pkg/pure.py",
                 "accel_drift_pkg/numpy_backend.py"),
    }
    assert set(fixture_by_rule) == set(all_rules())
    for rule_id, fixture in fixture_by_rule.items():
        names = (fixture,) if isinstance(fixture, str) else fixture
        paths = [str(FIXTURES / name) for name in names]
        assert main(["lint", *paths]) == 1
        assert rule_id in capsys.readouterr().out


def test_missing_path_exits_two(capsys):
    assert main(["lint", "no/such/path.py"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_unknown_rule_exits_two(capsys):
    assert main(["lint", SRC, "--select", "Z999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_select_limits_rules(capsys):
    fixture = str(FIXTURES / "d101_wall_clock.py")
    assert main(["lint", fixture, "--select", "U001"]) == 0
    assert main(["lint", fixture, "--select", "D101,U001"]) == 1
    out = capsys.readouterr().out
    assert "D101" in out


def test_json_format(capsys):
    fixture = str(FIXTURES / "f301_float_equality.py")
    assert main(["lint", fixture, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["by_rule"]["F301"] == 2


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out


def test_directory_walk_skips_fixtures(capsys):
    # Linting the tests tree must not trip over the planted fixtures.
    tests_dir = str(Path(__file__).resolve().parent.parent)
    assert main(["lint", tests_dir]) == 0


def test_empty_directory_exits_two(tmp_path, capsys):
    # A path that yields no Python files is a usage error, not a
    # silent success.
    empty = tmp_path / "nothing_here"
    empty.mkdir()
    assert main(["lint", str(empty)]) == 2
    assert "no Python files found" in capsys.readouterr().err


def test_non_python_file_set_exits_two(tmp_path, capsys):
    data = tmp_path / "notes.txt"
    data.write_text("not python\n")
    assert main(["lint", str(tmp_path)]) == 2
    assert "no Python files found" in capsys.readouterr().err


def test_sarif_format_and_file(tmp_path, capsys):
    fixture = str(FIXTURES / "f301_float_equality.py")
    report = tmp_path / "lint.sarif"
    assert main(["lint", fixture, "--format", "sarif",
                 "--sarif", str(report)]) == 1
    stdout = capsys.readouterr().out
    payload = json.loads(stdout)
    assert payload["version"] == "2.1.0"
    results = payload["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"F301"}
    assert json.loads(report.read_text()) == payload


def test_unused_suppression_reported(capsys):
    fixture = str(FIXTURES / "w001_unused_suppression.py")
    assert main(["lint", fixture]) == 1
    out = capsys.readouterr().out
    assert "W001" in out
    assert "disable=D102" in out
    assert "D101" not in out  # the used suppression stays silent
