"""Autofix engine: planning, application, idempotence, CLI modes."""

import shutil
from pathlib import Path

from repro.cli import main
from repro.lint import Edit, Fix, Violation, lint_file, lint_files, plan_fixes, write_changes
from repro.lint.fix import apply_to_text, fixable

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _fix_file(path, select=None):
    """Lint ``path``, apply every planned fix, return remaining rules."""
    violations = lint_file(path, select=select)
    plan = plan_fixes(violations)
    write_changes(plan)
    return plan, lint_file(path, select=select)


def _copy(tmp_path, name):
    target = tmp_path / name
    shutil.copy(FIXTURES / name, target)
    return target


# -- per-fixer round trips ---------------------------------------------

def test_d103_wrap_in_sorted_round_trip(tmp_path):
    target = _copy(tmp_path, "d103_unordered_iteration.py")
    assert any(v.rule_id == "D103" for v in lint_file(target))
    plan, remaining = _fix_file(target, select=["D103"])
    assert plan.applied_count > 0
    assert not any(v.rule_id == "D103" for v in remaining)
    assert "sorted(" in target.read_text()


def test_p403_sorted_digest_round_trip(tmp_path):
    target = _copy(tmp_path, "p403_unordered_digest.py")
    plan, remaining = _fix_file(target, select=["P403"])
    assert plan.applied_count > 0
    assert not any(v.rule_id == "P403" for v in remaining)


def test_c501_sort_keys_round_trip(tmp_path):
    target = _copy(tmp_path, "c501_unsorted_json_key.py")
    plan, remaining = _fix_file(target, select=["C501"])
    assert plan.applied_count > 0
    assert not any(v.rule_id == "C501" for v in remaining)
    assert "sort_keys=True" in target.read_text()


def test_w001_delete_suppression_round_trip(tmp_path):
    target = _copy(tmp_path, "w001_unused_suppression.py")
    assert any(v.rule_id == "W001" for v in lint_file(target))
    plan, remaining = _fix_file(target)
    assert plan.applied_count > 0
    assert not any(v.rule_id == "W001" for v in remaining)


def test_b803_insert_record_round_trip(tmp_path):
    pkg = tmp_path / "accel_drift_pkg"
    shutil.copytree(FIXTURES / "accel_drift_pkg", pkg)
    files = sorted(pkg.rglob("*.py"))
    before = lint_files(files)
    assert any(v.rule_id == "B803" for v in before)
    write_changes(plan_fixes(before))
    after = lint_files(files)
    assert not any(v.rule_id == "B803" for v in after)
    # Structural findings without a mechanical repair must survive.
    assert any(v.rule_id == "B801" for v in after)
    assert 'record("scan_runs", 0)' in (pkg / "__init__.py").read_text()


def test_fix_twice_is_byte_identical(tmp_path):
    # Acceptance criterion: --fix is idempotent — a second pass finds
    # nothing left to rewrite, for every fixer the fixtures cover.
    names = ["d103_unordered_iteration.py", "p403_unordered_digest.py",
             "c501_unsorted_json_key.py", "w001_unused_suppression.py"]
    targets = [_copy(tmp_path, name) for name in names]
    write_changes(plan_fixes(lint_files(targets)))
    once = {t: t.read_text() for t in targets}
    second = plan_fixes(lint_files(targets))
    assert second.changes == []
    write_changes(second)
    assert {t: t.read_text() for t in targets} == once


# -- engine mechanics --------------------------------------------------

def _violation(line, col, end_line, end_col, text, rule="T900"):
    return Violation(path="x.py", line=line, col=col, rule_id=rule,
                     message="test", fix=Fix(description="t", edits=(
                         Edit(line=line, col=col, end_line=end_line,
                              end_col=end_col, text=text),)))


def test_overlapping_edits_skip_the_later_violation():
    text = "alpha beta\n"
    keep = _violation(1, 0, 1, 5, "ALPHA")
    clash = _violation(1, 3, 1, 8, "XXX")
    new_text, applied, skipped = apply_to_text(text, [keep, clash])
    assert new_text == "ALPHA beta\n"
    assert applied == [keep] and skipped == [clash]


def test_equal_position_insertions_conflict():
    # Two zero-width insertions at one point have no defined order;
    # the engine must keep one and skip the other, deterministically.
    first = _violation(1, 0, 1, 0, "a", rule="T900")
    second = _violation(1, 0, 1, 0, "b", rule="T901")
    new_text, applied, skipped = apply_to_text("x\n", [first, second])
    assert new_text == "ax\n"
    assert applied == [first] and skipped == [second]


def test_stale_positions_are_refused_not_applied():
    stale = _violation(99, 0, 99, 5, "nope")
    new_text, applied, skipped = apply_to_text("one line\n", [stale])
    assert new_text == "one line\n"
    assert skipped == [stale]


def test_multi_edit_fix_applies_bottom_up():
    violation = Violation(
        path="x.py", line=1, col=4, rule_id="T900", message="wrap",
        fix=Fix(description="wrap", edits=(
            Edit(line=1, col=4, end_line=1, end_col=4, text="sorted("),
            Edit(line=1, col=7, end_line=1, end_col=7, text=")"),
        )))
    new_text, applied, _ = apply_to_text("x = {1}\n", [violation])
    assert new_text == "x = sorted({1})\n"
    assert applied == [violation]


def test_fixable_filter_and_plan_skips_unchanged_files(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    without_fix = Violation(path=str(clean), line=1, col=0,
                            rule_id="T900", message="no fix")
    assert fixable([without_fix]) == []
    assert plan_fixes([without_fix]).changes == []


# -- CLI modes ---------------------------------------------------------

def test_show_fixes_previews_without_writing(tmp_path, capsys):
    target = _copy(tmp_path, "d103_unordered_iteration.py")
    before = target.read_text()
    assert main(["lint", str(target), "--show-fixes", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert f"a/{target}" in out and f"b/{target}" in out
    assert "+" in out and "auto-fixable" in out
    assert target.read_text() == before


def test_fix_cli_applies_and_relints(tmp_path, capsys):
    target = _copy(tmp_path, "c501_unsorted_json_key.py")
    code = main(["lint", str(target), "--select", "C501",
                 "--fix", "--no-cache"])
    out = capsys.readouterr().out
    assert "re-linting" in out
    assert code == 0  # every C501 in the fixture is fixable
    assert "sort_keys=True" in target.read_text()
