"""The repository must satisfy its own simulation-safety analyzer.

This is the gate the CI ``lint`` job enforces; running it under pytest
keeps the property visible in every local test run too.  If it fails,
either fix the flagged code, or — with a documented reason — add a
``# repro-lint: disable=RULE`` suppression or a justified entry in
``.repro-lint-baseline.json``.
"""

from pathlib import Path

from repro.lint import (
    apply_baseline,
    collect_files,
    lint_paths,
    load_baseline,
)
from repro.lint.baseline import normalize_path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKED_TREES = ["src", "tests", "benchmarks", "examples", "tools"]
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"


def _checked_paths():
    return [str(REPO_ROOT / tree) for tree in CHECKED_TREES
            if (REPO_ROOT / tree).is_dir()]


def test_repository_is_violation_free():
    paths = _checked_paths()
    violations = lint_paths(paths)
    entries = load_baseline(str(BASELINE))
    checked = {normalize_path(str(f)) for f in collect_files(paths)}
    remaining = apply_baseline(violations, entries, str(BASELINE),
                               checked_paths=checked)
    formatted = "\n".join(v.format() for v in remaining)
    assert not remaining, f"repro.lint violations:\n{formatted}"


def test_baseline_entries_all_still_match():
    # The baseline may only shrink: every entry must still match a
    # real finding, or apply_baseline reports it as W002 above.  This
    # guard additionally pins the current size so growth needs a
    # deliberate edit here.
    entries = load_baseline(str(BASELINE))
    assert len(entries) <= 10
    assert all(e.justification and not e.justification.startswith("FIXME")
               for e in entries)


def test_baseline_machinery_covers_the_new_rule_families():
    # The shrink-only guard must keep working if an R/B finding ever
    # needs baselining: entries for the v3 families flow through
    # apply_baseline exactly like the U1xx ones (match, shrink-only
    # W002, no silent growth).
    from repro.lint import BaselineEntry, Violation, apply_baseline

    finding = Violation(path="src/repro/core/x.py", line=9, col=0,
                        rule_id="R701", message="race on 'self.q'")
    entry = BaselineEntry(path="src/repro/core/x.py", rule="R701",
                          message="race on 'self.q'", count=2,
                          justification="deliberate")
    remaining = apply_baseline([finding, finding], [entry], "b.json",
                               checked_paths={"src/repro/core/x.py"})
    assert remaining == []
    stale = apply_baseline([], [entry], "b.json",
                           checked_paths={"src/repro/core/x.py"})
    assert [v.rule_id for v in stale] == ["W002"]


def test_gate_actually_covers_the_source_tree():
    # Guard against a silently empty walk (e.g. a bad exclusion list
    # turning the self-clean gate into a no-op).
    files = collect_files([str(REPO_ROOT / "src")])
    assert len(files) > 80
    assert not any("fixtures" in part for f in files for part in f.parts)
