"""The repository must satisfy its own simulation-safety analyzer.

This is the gate the CI ``lint`` job enforces; running it under pytest
keeps the property visible in every local test run too.  If it fails,
either fix the flagged code or — with a documented reason — add a
``# repro-lint: disable=RULE`` suppression.
"""

from pathlib import Path

from repro.lint import collect_files, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKED_TREES = ["src", "tests", "benchmarks", "examples", "tools"]


def test_repository_is_violation_free():
    paths = [str(REPO_ROOT / tree) for tree in CHECKED_TREES
             if (REPO_ROOT / tree).is_dir()]
    violations = lint_paths(paths)
    formatted = "\n".join(v.format() for v in violations)
    assert not violations, f"repro.lint violations:\n{formatted}"


def test_gate_actually_covers_the_source_tree():
    # Guard against a silently empty walk (e.g. a bad exclusion list
    # turning the self-clean gate into a no-op).
    files = collect_files([str(REPO_ROOT / "src")])
    assert len(files) > 80
    assert not any("fixtures" in part for f in files for part in f.parts)
