"""The repository must satisfy its own simulation-safety analyzer.

This is the gate the CI ``lint`` job enforces; running it under pytest
keeps the property visible in every local test run too.  If it fails,
either fix the flagged code, or — with a documented reason — add a
``# repro-lint: disable=RULE`` suppression or a justified entry in
``.repro-lint-baseline.json``.
"""

from pathlib import Path

from repro.lint import (
    apply_baseline,
    collect_files,
    lint_paths,
    load_baseline,
)
from repro.lint.baseline import normalize_path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKED_TREES = ["src", "tests", "benchmarks", "examples", "tools"]
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"


def _checked_paths():
    return [str(REPO_ROOT / tree) for tree in CHECKED_TREES
            if (REPO_ROOT / tree).is_dir()]


def test_repository_is_violation_free():
    paths = _checked_paths()
    violations = lint_paths(paths)
    entries = load_baseline(str(BASELINE))
    checked = {normalize_path(str(f)) for f in collect_files(paths)}
    remaining = apply_baseline(violations, entries, str(BASELINE),
                               checked_paths=checked)
    formatted = "\n".join(v.format() for v in remaining)
    assert not remaining, f"repro.lint violations:\n{formatted}"


def test_baseline_entries_all_still_match():
    # The baseline may only shrink: every entry must still match a
    # real finding, or apply_baseline reports it as W002 above.  This
    # guard additionally pins the current size so growth needs a
    # deliberate edit here.
    entries = load_baseline(str(BASELINE))
    assert len(entries) <= 10
    assert all(e.justification and not e.justification.startswith("FIXME")
               for e in entries)


def test_gate_actually_covers_the_source_tree():
    # Guard against a silently empty walk (e.g. a bad exclusion list
    # turning the self-clean gate into a no-op).
    files = collect_files([str(REPO_ROOT / "src")])
    assert len(files) > 80
    assert not any("fixtures" in part for f in files for part in f.parts)
