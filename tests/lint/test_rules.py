"""Per-rule fixture tests: each rule flags its planted violations and
honors line- and file-level suppressions."""

import shutil
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file, lint_files, lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures"

# (fixture file, rule id, expected violation lines after suppression)
RULE_CASES = [
    ("u001_unit_suffix.py", "U001", [4, 4, 13, 18]),
    ("u002_float_time.py", "U002", [5, 6, 7]),
    ("u003_frequency_math.py", "U003", [5, 6]),
    ("d101_wall_clock.py", "D101", [8, 9]),
    ("d102_unseeded_random.py", "D102", [8, 9, 10]),
    ("d104_clock_import.py", "D104", [4, 5, 6]),
    ("d103_unordered_iteration.py", "D103", [5, 7, 8]),
    ("e201_loop_capture.py", "E201", [6]),
    ("e202_manual_fire.py", "E202", [5]),
    ("e203_use_after_cancel.py", "E203", [7]),
    ("f301_float_equality.py", "F301", [5, 7]),
    ("u101_cross_unit_argument.py", "U101", [9, 10]),
    ("u102_mixed_unit_arithmetic.py", "U102", [5, 6, 7]),
    ("u103_return_unit_mismatch.py", "U103", [5]),
    ("u104_unitless_return_to_sink.py", "U104", [13]),
    ("p401_worker_globals.py", "P401", [16, 17]),
    ("p402_unstable_grid.py", "P402", [5, 6]),
    ("p403_unordered_digest.py", "P403", [8, 10]),
    ("c501_unsorted_json_key.py", "C501", [9, 10]),
    ("c502_repr_digest_input.py", "C502", [7, 8]),
    ("c503_unversioned_key.py", "C503", [7, 10]),
    ("a601_numpy_import.py", "A601", [3, 4, 5, 6, 7]),
]

# Whole-program rules need the cross-module index, so their fixtures
# are packages linted together (exact sites are pinned down in
# test_project_rules.py).  Each still plants one extra seed under a
# trailing ``# repro-lint: disable=RULE``: (sources, rule, count).
PROJECT_RULE_CASES = [
    (("race_pkg",), "R701", 2),
    (("race_pkg",), "R702", 1),
    (("race_pkg",), "R703", 1),
    (("race_pkg",), "R704", 1),
    (("accel_drift_pkg",), "B801", 3),
    (("accel_drift_pkg",), "B802", 1),
    (("accel_drift_pkg",), "B803", 1),
    (("accel_drift_pkg", "b804_consumer.py"), "B804", 2),
]


def _lint_tree(root, sources, rule_id, reveal=False):
    root.mkdir(parents=True, exist_ok=True)
    for name in sources:
        src = FIXTURES / name
        if src.is_dir():
            shutil.copytree(src, root / name)
        else:
            (root / name).write_text(src.read_text())
    if reveal:
        for path in root.rglob("*.py"):
            path.write_text(path.read_text().replace(
                "repro-lint: disable", "repro-lint-off"))
    return [v for v in lint_files(sorted(root.rglob("*.py")))
            if v.rule_id == rule_id]


@pytest.mark.parametrize("fixture,rule_id,lines",
                         RULE_CASES, ids=[c[1] for c in RULE_CASES])
def test_rule_flags_planted_violations(fixture, rule_id, lines):
    violations = lint_file(FIXTURES / fixture, select=[rule_id])
    assert [v.line for v in violations] == lines
    assert all(v.rule_id == rule_id for v in violations)


@pytest.mark.parametrize("fixture,rule_id,lines",
                         RULE_CASES, ids=[c[1] for c in RULE_CASES])
def test_line_suppression_respected(fixture, rule_id, lines):
    # Every fixture plants one extra violation under a trailing
    # ``# repro-lint: disable=RULE`` comment; stripping the directives
    # must reveal strictly more violations than the suppressed run.
    source = (FIXTURES / fixture).read_text()
    stripped = source.replace("repro-lint: disable", "repro-lint-off")
    unsuppressed = lint_source(stripped, path=fixture, select=[rule_id])
    assert len(unsuppressed) == len(lines) + 1


def test_file_level_suppression_silences_whole_file():
    assert lint_file(FIXTURES / "file_suppressed.py") == []
    source = (FIXTURES / "file_suppressed.py").read_text()
    stripped = source.replace("# repro-lint: disable=all", "")
    assert len(lint_source(stripped, path="file_suppressed.py")) >= 2


def test_syntax_error_reported_not_raised():
    violations = lint_file(FIXTURES / "syntax_error.py")
    assert len(violations) == 1
    assert violations[0].rule_id == "E999"
    assert "syntax error" in violations[0].message


def test_registry_has_at_least_eight_rules():
    rules = all_rules()
    assert len(rules) >= 8
    for rule_id, checker in rules.items():
        assert checker.rule_id == rule_id
        assert checker.rule_name
        assert checker.rationale


@pytest.mark.parametrize("sources,rule_id,count", PROJECT_RULE_CASES,
                         ids=[c[1] for c in PROJECT_RULE_CASES])
def test_project_rule_suppression_respected(tmp_path, sources, rule_id,
                                            count):
    suppressed = _lint_tree(tmp_path / "a", sources, rule_id)
    assert len(suppressed) == count
    revealed = _lint_tree(tmp_path / "b", sources, rule_id, reveal=True)
    assert len(revealed) == count + 1


def test_every_rule_has_a_fixture():
    covered = {rule_id for _, rule_id, _ in RULE_CASES}
    covered |= {rule_id for _, rule_id, _ in PROJECT_RULE_CASES}
    assert covered == set(all_rules())


def test_kernel_exempt_from_manual_fire():
    source = "handle.fire()\n"
    assert lint_source(source, path="src/repro/sim/kernel.py",
                       select=["E202"]) == []
    assert len(lint_source(source, path="src/repro/core/system.py",
                           select=["E202"])) == 1


def test_accel_package_exempt_from_numpy_containment():
    source = "import numpy as np\n"
    assert lint_source(source, path="src/repro/accel/numpy_backend.py",
                       select=["A601"]) == []
    assert len(lint_source(source, path="src/repro/compress/rle.py",
                           select=["A601"])) == 1


def test_units_module_exempt_from_frequency_math():
    source = "hz = clk_mhz * 1e6\n"
    assert lint_source(source, path="src/repro/units.py",
                       select=["U003"]) == []
    assert len(lint_source(source, path="src/repro/fpga/dcm.py",
                           select=["U003"])) == 1
