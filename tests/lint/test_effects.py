"""Interprocedural effect analysis: local summaries and propagation."""

import ast
import textwrap

from repro.lint.effects import (
    SYNC_CLASSES,
    EffectSummary,
    ResolvedEffects,
    effects_of,
)
from repro.lint.project import ProjectIndex
from repro.lint.summaries import summarize_module


def _effects(source, params=()):
    tree = ast.parse(textwrap.dedent(source))
    return effects_of(tree.body[0], tuple(params))


def _index(**modules):
    summaries = []
    for name, source in sorted(modules.items()):
        path = name.replace(".", "/") + ".py"
        tree = ast.parse(textwrap.dedent(source))
        summaries.append(summarize_module(tree, name, path))
    return ProjectIndex(summaries)


def _fn(index, qualname):
    return index.effects(index.functions[qualname])


# -- local summaries ---------------------------------------------------

def test_parameter_mutation_root():
    eff = _effects("""
        def add(stats, item):
            stats.append(item)
    """, params=("stats", "item"))
    assert eff.mutates == ("p:stats",)


def test_self_attribute_roots_and_reads():
    eff = _effects("""
        def tick(self):
            self.count += 1
            self.log.append(self.count)
    """, params=("self",))
    assert set(eff.mutates) == {"s:count", "s:log"}
    assert "count" in eff.self_reads


def test_plain_rebind_is_a_local_not_a_mutation():
    eff = _effects("""
        def shadow(x):
            total = 0
            total = total + x
            return total
    """, params=("x",))
    assert eff.mutates == ()


def test_global_declaration_makes_rebind_a_free_mutation():
    eff = _effects("""
        def bump():
            global COUNTER
            COUNTER = COUNTER + 1
    """)
    assert eff.mutates == ("f:COUNTER",)


def test_free_container_mutation():
    eff = _effects("""
        def push(item):
            PENDING.append(item)
    """, params=("item",))
    assert eff.mutates == ("f:PENDING",)
    assert eff.escapes == ("item",)


def test_store_into_self_escapes_the_parameter():
    eff = _effects("""
        def adopt(self, child):
            self.child = child
    """, params=("self", "child"))
    assert eff.escapes == ("child",)


def test_nested_defs_and_lambdas_are_excluded():
    eff = _effects("""
        def outer(items):
            def later():
                items.append(1)
            callback = lambda: items.append(2)
            return later, callback
    """, params=("items",))
    assert eff.mutates == ()


def test_call_edges_record_receiver_and_argument_roots():
    eff = _effects("""
        def run(self, payload):
            self.drain(payload)
            helper(payload, 7)
    """, params=("self", "payload"))
    edges = {edge.name: edge for edge in eff.calls}
    assert edges["self.drain"].receiver == "self"
    assert edges["self.drain"].args == ("p:payload",)
    assert edges["helper"].receiver is None
    assert edges["helper"].args == ("p:payload", None)


def test_summary_round_trips_through_json_dict():
    eff = _effects("""
        def work(self, out):
            self.done = True
            out.append(self.done)
            self.finish(out)
    """, params=("self", "out"))
    assert EffectSummary.from_dict(eff.to_dict()) == eff


# -- propagation through the project index -----------------------------

def test_caller_inherits_helper_parameter_mutation():
    index = _index(mod="""
        def helper(bucket):
            bucket.append(1)

        def caller(items):
            helper(items)
    """)
    assert _fn(index, "mod.caller").mutated_params == {"items"}


def test_propagation_crosses_module_boundaries_and_chains():
    index = _index(
        base="""
            def sink(target):
                target.append("x")
        """,
        mid="""
            from base import sink

            def relay(queue):
                sink(queue)
        """,
        top="""
            from mid import relay

            def entry(jobs):
                relay(jobs)
        """,
    )
    assert _fn(index, "top.entry").mutated_params == {"jobs"}


def test_global_mutation_qualifies_through_imports():
    index = _index(
        shared="""
            REGISTRY = []

            def register(item):
                REGISTRY.append(item)
        """,
        user="""
            from shared import register

            def run():
                register("a")
        """,
    )
    assert _fn(index, "user.run").mutated_globals == {"shared.REGISTRY"}
    # Reading a plain constant is not a shared-state access.
    assert index.qualify_mutable_global(index.modules["user"],
                                        "register") is None


def test_method_effects_translate_through_the_receiver():
    index = _index(mod="""
        class Box:
            def fill(self):
                self.items.append(1)

        def caller(box):
            box.fill()
    """)
    assert _fn(index, "mod.Box.fill").mutated_self == {"items"}
    assert _fn(index, "mod.caller").mutated_params == {"box"}


def test_self_call_merges_attribute_effects():
    index = _index(mod="""
        class Pump:
            def _drain(self):
                self.queue.clear()

            def cycle(self):
                self._drain()
    """)
    assert _fn(index, "mod.Pump.cycle").mutated_self == {"queue"}


def test_sync_class_self_mutations_are_exempt():
    # Triggering an Event *is* the ordering mechanism: its self
    # effects must not propagate, or every correct handshake would be
    # reported as a race.  An identically shaped non-sync class keeps
    # its effects — the exemption is by class name, not by shape.
    assert "Event" in SYNC_CLASSES
    source_for = """
        class {name}:
            def trigger(self):
                self.triggered = True
                self.waiters.clear()

        def fire(ev):
            ev.trigger()
    """
    sync = _index(mod=source_for.format(name="Event"))
    assert not _fn(sync, "mod.Event.trigger").mutates_anything()
    assert _fn(sync, "mod.fire").mutated_params == set()

    plain = _index(mod=source_for.format(name="Latch"))
    assert _fn(plain, "mod.Latch.trigger").mutated_self \
        == {"triggered", "waiters"}
    assert _fn(plain, "mod.fire").mutated_params == {"ev"}


def test_escapes_propagate_parameter_to_parameter():
    index = _index(mod="""
        class Keeper:
            def keep(self, item):
                self.held = item

        def stash(keeper, thing):
            keeper.keep(thing)
    """)
    assert "thing" in _fn(index, "mod.stash").escaped_params


def test_unknown_function_has_empty_sound_default():
    index = _index(mod="def noop():\n    pass\n")
    empty = index.effects(None)
    assert isinstance(empty, ResolvedEffects)
    assert not empty.mutates_anything()


def test_recursion_reaches_a_fixed_point():
    index = _index(mod="""
        def ping(box, n):
            box.append(n)
            if n:
                pong(box, n - 1)

        def pong(box, n):
            ping(box, n)
    """)
    assert _fn(index, "mod.ping").mutated_params == {"box"}
    assert _fn(index, "mod.pong").mutated_params == {"box"}


def test_guarded_subscript_fill_is_memo_not_mutation():
    eff = _effects("""
        def layout_for(key):
            cached = CACHE.get(key)
            if cached is None:
                cached = CACHE[key] = build(key)
            return cached
    """, params=("key",))
    assert eff.memo_fills == ("f:CACHE",)
    assert eff.mutates == ()


def test_membership_test_also_guards_a_fill():
    eff = _effects("""
        def ensure(key):
            if key not in TABLE:
                TABLE[key] = key * 2
            return TABLE[key]
    """, params=("key",))
    assert eff.memo_fills == ("f:TABLE",)
    assert eff.mutates == ()


def test_unguarded_fill_and_mixed_mutation_stay_mutations():
    unguarded = _effects("""
        def stamp(key):
            TABLE[key] = key
    """, params=("key",))
    assert unguarded.mutates == ("f:TABLE",)
    assert unguarded.memo_fills == ()

    mixed = _effects("""
        def churn(key):
            if key in TABLE:
                TABLE.clear()
            TABLE[key] = key
    """, params=("key",))
    assert mixed.mutates == ("f:TABLE",)
    assert mixed.memo_fills == ()


def test_memo_globals_propagate_separately_from_mutations():
    index = _index(
        store="""
            CACHE = {}

            def lookup(key):
                value = CACHE.get(key)
                if value is None:
                    value = CACHE[key] = key * 2
                return value
        """,
        user="""
            from store import lookup

            def consume(key):
                return lookup(key)
        """,
    )
    eff = _fn(index, "user.consume")
    assert eff.memo_globals == {"store.CACHE"}
    assert eff.mutated_globals == set()
