"""Incremental analysis cache: warm hits, precise invalidation."""

from pathlib import Path

from repro.lint import LintCache, collect_files, lint_files

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _write_pkg(root: Path):
    (root / "pkg").mkdir()
    (root / "pkg" / "__init__.py").write_text("")
    (root / "pkg" / "timing.py").write_text(
        "def settle_ps(delay_ps: int):\n"
        "    return delay_ps\n")
    (root / "pkg" / "driver.py").write_text(
        "from pkg.timing import settle_ps\n"
        "\n"
        "\n"
        "def run(clock_hz: int):\n"
        "    return settle_ps(clock_hz)\n")
    return collect_files([str(root / "pkg")])


def test_warm_run_is_all_hits_and_identical(tmp_path):
    files = _write_pkg(tmp_path)
    cache = LintCache(str(tmp_path / "cache"))
    cold = lint_files(files, cache=cache)
    assert cache.result_misses == len(files)
    warm_cache = LintCache(str(tmp_path / "cache"))
    warm = lint_files(files, cache=warm_cache)
    assert warm == cold
    assert warm_cache.summary_hits == len(files)
    assert warm_cache.summary_misses == 0
    assert warm_cache.result_hits == len(files)
    assert warm_cache.result_misses == 0
    assert any(v.rule_id == "U101" for v in warm)


def test_body_edit_invalidates_only_that_file(tmp_path):
    files = _write_pkg(tmp_path)
    cache = LintCache(str(tmp_path / "cache"))
    lint_files(files, cache=cache)

    # A comment-only edit changes the file content but not its summary,
    # so the project signature is unchanged: exactly one file re-runs.
    driver = tmp_path / "pkg" / "driver.py"
    driver.write_text(driver.read_text() + "# trailing comment\n")
    warm = LintCache(str(tmp_path / "cache"))
    after = lint_files(files, cache=warm)
    assert warm.summary_misses == 1
    assert warm.result_misses == 1
    assert warm.result_hits == len(files) - 1
    assert any(v.rule_id == "U101" for v in after)


def test_api_edit_invalidates_every_result(tmp_path):
    files = _write_pkg(tmp_path)
    cache = LintCache(str(tmp_path / "cache"))
    before = lint_files(files, cache=cache)
    assert any(v.rule_id == "U101" for v in before)

    # Renaming the parameter changes timing.py's summary, which shifts
    # the project signature: every file's findings are recomputed, and
    # the cross-module U101 disappears everywhere.
    (tmp_path / "pkg" / "timing.py").write_text(
        "def settle_ps(delay_hz: int):\n"
        "    return delay_hz\n")
    warm = LintCache(str(tmp_path / "cache"))
    after = lint_files(files, cache=warm)
    assert warm.result_hits == 0
    assert warm.result_misses == len(files)
    assert not any(v.rule_id == "U101" for v in after)


def test_select_key_partitions_results(tmp_path):
    files = _write_pkg(tmp_path)
    cache = LintCache(str(tmp_path / "cache"))
    full = lint_files(files, cache=cache)
    narrowed = lint_files(files, select=["D101"], cache=cache)
    assert narrowed == []
    again = lint_files(files, cache=cache)
    assert again == full


def test_corrupt_entries_degrade_to_misses(tmp_path):
    files = _write_pkg(tmp_path)
    root = tmp_path / "cache"
    cache = LintCache(str(root))
    cold = lint_files(files, cache=cache)
    for blob in root.rglob("*"):
        if blob.is_file():
            blob.write_text("{ truncated")
    fresh = LintCache(str(root))
    assert lint_files(files, cache=fresh) == cold
    assert fresh.summary_hits == 0
    assert fresh.result_hits == 0


def test_clear_removes_the_store(tmp_path):
    files = _write_pkg(tmp_path)
    root = tmp_path / "cache"
    cache = LintCache(str(root))
    cold = lint_files(files, cache=cache)
    cache.clear()
    assert not root.exists()
    assert lint_files(files, cache=LintCache(str(root))) == cold


def test_fixes_survive_the_result_cache(tmp_path):
    # Violation.fix must round-trip through the JSON result store: a
    # warm --fix run plans from cached findings.
    import shutil

    fixtures = Path(__file__).resolve().parent / "fixtures"
    target = tmp_path / "d103_unordered_iteration.py"
    shutil.copy(fixtures / "d103_unordered_iteration.py", target)
    cache = LintCache(str(tmp_path / "cache"))
    cold = lint_files([target], select=["D103"], cache=cache)
    warm = lint_files([target], select=["D103"], cache=cache)
    assert cold == warm
    assert warm and all(v.fix is not None for v in warm)
    assert [v.fix for v in warm] == [v.fix for v in cold]
