"""Baseline lifecycle: write, load, apply, expire."""

import json

import pytest

from repro.cli import main
from repro.lint import (
    BaselineError,
    Violation,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.baseline import STALE_BASELINE_RULE, normalize_path


def _violation(path="src/mod.py", line=3, rule="U101", message="boom"):
    return Violation(path=path, line=line, col=0, rule_id=rule,
                     message=message)


def test_write_then_load_round_trips(tmp_path):
    target = tmp_path / "baseline.json"
    count = write_baseline(str(target), [_violation(), _violation(line=9)],
                           justification="known words-to-cycles site")
    assert count == 1  # same (path, rule, message) groups into one entry
    entries = load_baseline(str(target))
    assert len(entries) == 1
    assert entries[0].count == 2
    assert entries[0].justification == "known words-to-cycles site"


def test_apply_filters_baselined_findings(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(str(target), [_violation()], justification="why")
    entries = load_baseline(str(target))
    remaining = apply_baseline([_violation(line=40)], entries, str(target))
    assert remaining == []  # matching is line-number free


def test_findings_beyond_count_survive(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(str(target), [_violation()], justification="why")
    entries = load_baseline(str(target))
    remaining = apply_baseline([_violation(line=3), _violation(line=9)],
                               entries, str(target))
    assert len(remaining) == 1
    assert remaining[0].rule_id == "U101"


def test_stale_entry_expires_as_w002(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(str(target), [_violation()], justification="why")
    entries = load_baseline(str(target))
    remaining = apply_baseline([], entries, str(target),
                               checked_paths={"src/mod.py"})
    assert [v.rule_id for v in remaining] == [STALE_BASELINE_RULE]
    assert "stale baseline entry" in remaining[0].message


def test_staleness_not_judged_outside_checked_paths(tmp_path):
    # Linting only tests/ must not expire entries about src/ files.
    target = tmp_path / "baseline.json"
    write_baseline(str(target), [_violation()], justification="why")
    entries = load_baseline(str(target))
    assert apply_baseline([], entries, str(target),
                          checked_paths={"tests/other.py"}) == []
    assert apply_baseline([], entries, str(target),
                          checked_paths={"src/mod.py"},
                          checked_rules={"D101"}) == []


def test_absolute_and_relative_paths_normalize_alike(tmp_path):
    import os
    absolute = os.path.join(os.getcwd(), "src", "mod.py")
    assert normalize_path(absolute) == normalize_path("src/mod.py")


def test_missing_justification_rejected(tmp_path):
    target = tmp_path / "baseline.json"
    payload = {"version": 1, "entries": [
        {"path": "a.py", "rule": "U101", "message": "m", "count": 1,
         "justification": "   "}]}
    target.write_text(json.dumps(payload))
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(str(target))


def test_malformed_baseline_rejected(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(str(target))
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError, match="version"):
        load_baseline(str(target))


def test_cli_write_baseline_round_trip(tmp_path, capsys):
    # --write-baseline on a dirty file, then a normal run against that
    # baseline, must exit clean; deleting the baseline re-exposes the
    # findings.
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(delay_ps: int, delay_ns: int):\n"
                     "    return delay_ps + delay_ns\n")
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(dirty), "--no-cache",
                 "--write-baseline", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(dirty), "--no-cache",
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(dirty), "--no-cache",
                 "--no-baseline"]) == 1
    assert "U102" in capsys.readouterr().out


def test_cli_malformed_baseline_exits_two(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("x = 1\n")
    bad = tmp_path / "baseline.json"
    bad.write_text("[]")
    assert main(["lint", str(dirty), "--no-cache",
                 "--baseline", str(bad)]) == 2
    assert "baseline" in capsys.readouterr().err
