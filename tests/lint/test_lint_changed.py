"""``tools/lint_changed.py``: changed-files linting with full context.

Each test builds a throwaway git repository, so the tool's diff logic
runs against real git state rather than mocks.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "lint_changed.py"

VIOLATION = (
    "def check(result):\n"
    "    if result.duration_ps == 1.5:\n"
    "        pass\n"
)
CLEAN = "def check(result):\n    return result\n"


def _git(repo, *argv):
    subprocess.run(["git", "-C", str(repo), *argv],
                   check=True, capture_output=True)


@pytest.fixture
def repo(tmp_path):
    _git(tmp_path, "init", "-q", "-b", "main")
    _git(tmp_path, "config", "user.email", "dev@example.invalid")
    _git(tmp_path, "config", "user.name", "dev")
    (tmp_path / "a.py").write_text(VIOLATION)
    (tmp_path / "b.py").write_text(VIOLATION)
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def _run(repo, *argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(TOOL), "--no-baseline", "--no-cache", *argv],
        cwd=str(repo), env=env, capture_output=True, text=True)


def test_reports_only_the_changed_file(repo):
    (repo / "b.py").write_text(VIOLATION + "\n# touched\n")
    result = _run(repo, "--ref", "HEAD")
    assert result.returncode == 1
    assert "b.py" in result.stdout
    # a.py carries the same violation but did not change.
    assert "a.py" not in result.stdout


def test_no_changes_is_clean(repo):
    result = _run(repo, "--ref", "HEAD")
    assert result.returncode == 0
    assert "no Python files changed" in result.stdout


def test_untracked_files_are_linted(repo):
    (repo / "fresh.py").write_text(VIOLATION)
    result = _run(repo, "--ref", "HEAD")
    assert result.returncode == 1
    assert "fresh.py" in result.stdout and "F301" in result.stdout


def test_fixing_the_file_exits_clean(repo):
    (repo / "b.py").write_text(CLEAN)
    result = _run(repo, "--ref", "HEAD")
    assert result.returncode == 0
    assert "1 changed file(s)" in result.stdout


def test_cross_module_context_survives_the_restriction(repo):
    # The changed caller's violation is only provable with the
    # *unchanged* callee's summary in the index: report_only must
    # restrict reporting, not analysis.
    pkg = repo / "flow_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "timing.py").write_text(
        "def settle_window_ps(delay_ps):\n    return delay_ps + 2\n")
    (pkg / "driver.py").write_text(
        "from flow_pkg.timing import settle_window_ps\n\n\n"
        "def drive(delay_ps):\n"
        "    return settle_window_ps(delay_ps)\n")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "pkg")

    (pkg / "driver.py").write_text(
        "from flow_pkg.timing import settle_window_ps\n\n\n"
        "def drive(clock_hz):\n"
        "    return settle_window_ps(clock_hz)\n")
    result = _run(repo, "--ref", "HEAD")
    assert result.returncode == 1
    assert "U101" in result.stdout and "driver.py" in result.stdout
    assert "timing.py" not in result.stdout


def test_unknown_ref_is_a_usage_error(repo):
    result = _run(repo, "--ref", "no-such-ref")
    assert result.returncode == 2
    assert "lint-changed:" in result.stderr


def test_select_and_warm_cache_agree_with_cold(repo):
    (repo / "b.py").write_text(VIOLATION + "\n# touched\n")
    cold = _run(repo, "--ref", "HEAD", "--select", "F301")
    # Re-run with the cache enabled twice; findings must be identical.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    def cached():
        return subprocess.run(
            [sys.executable, str(TOOL), "--no-baseline",
             "--ref", "HEAD", "--select", "F301",
             "--cache-dir", str(repo / ".cache")],
            cwd=str(repo), env=env, capture_output=True, text=True)

    first, second = cached(), cached()
    assert cold.returncode == first.returncode == second.returncode == 1
    assert first.stdout == second.stdout == cold.stdout
