"""Reporter output contracts (text shape, JSON schema)."""

import json
from pathlib import Path

from repro.lint import format_json, format_rule_listing, format_text, lint_file
from repro.lint.reporters import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _sample_violations():
    return lint_file(FIXTURES / "d102_unseeded_random.py", select=["D102"])


def test_text_report_lines_and_summary():
    violations = _sample_violations()
    text = format_text(violations, files_checked=1)
    lines = text.splitlines()
    assert len(lines) == len(violations) + 1
    first = lines[0]
    assert first.endswith(violations[0].message)
    path, line, col = first.split(":")[:3]
    assert path.endswith("d102_unseeded_random.py")
    assert line.isdigit() and col.isdigit()
    assert lines[-1] == "3 violations in 1 file checked"


def test_text_report_clean():
    assert format_text([], files_checked=7) \
        == "clean: 0 violations in 7 files checked"


def test_json_report_schema():
    violations = _sample_violations()
    payload = json.loads(format_json(violations, files_checked=1))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["summary"]["total"] == len(violations)
    assert payload["summary"]["by_rule"] == {"D102": len(violations)}
    for entry in payload["violations"]:
        assert set(entry) == {"path", "line", "col", "rule", "message"}
        assert isinstance(entry["line"], int)
        assert isinstance(entry["col"], int)
        assert entry["rule"] == "D102"
        assert entry["message"]


def test_json_report_is_deterministic():
    violations = _sample_violations()
    assert format_json(violations, 1) == format_json(list(violations), 1)


def test_rule_listing_mentions_every_rule():
    from repro.lint import all_rules
    listing = format_rule_listing()
    for rule_id, checker in all_rules().items():
        assert rule_id in listing
        assert checker.rule_name in listing


def test_sarif_document_is_structurally_valid_2_1_0():
    from repro.lint.reporters import SARIF_SCHEMA, format_sarif

    violations = lint_file(FIXTURES / "d103_unordered_iteration.py",
                           select=["D103"])
    assert violations and all(v.fix is not None for v in violations)
    payload = json.loads(format_sarif(violations, files_checked=1))

    assert payload["$schema"] == SARIF_SCHEMA
    assert payload["version"] == "2.1.0"
    [run] = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint" and driver["version"]
    declared = {rule["id"] for rule in driver["rules"]}
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]

    for result in run["results"]:
        assert result["ruleId"] in declared
        assert result["level"] == "error"
        assert result["message"]["text"]
        [location] = result["locations"]
        region = location["physicalLocation"]["region"]
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert "\\" not in uri  # posix-normalized
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_fix_objects_mirror_the_edits():
    from repro.lint.reporters import format_sarif

    violations = lint_file(FIXTURES / "d103_unordered_iteration.py",
                           select=["D103"])
    payload = json.loads(format_sarif(violations, files_checked=1))
    for violation, result in zip(violations,
                                 payload["runs"][0]["results"]):
        [fix] = result["fixes"]
        assert fix["description"]["text"] == violation.fix.description
        [change] = fix["artifactChanges"]
        assert change["artifactLocation"]["uri"] \
            == result["locations"][0]["physicalLocation"][
                "artifactLocation"]["uri"]
        assert len(change["replacements"]) == len(violation.fix.edits)
        for edit, replacement in zip(violation.fix.edits,
                                     change["replacements"]):
            region = replacement["deletedRegion"]
            assert region["startLine"] == edit.line
            assert region["startColumn"] == edit.col + 1  # 1-based
            assert region["endLine"] == edit.end_line
            assert region["endColumn"] == edit.end_col + 1
            assert replacement["insertedContent"]["text"] == edit.text


def test_unfixable_results_carry_no_fixes_key():
    from repro.lint.reporters import format_sarif

    violations = lint_file(FIXTURES / "f301_float_equality.py",
                           select=["F301"])
    payload = json.loads(format_sarif(violations, files_checked=1))
    assert all("fixes" not in result
               for result in payload["runs"][0]["results"])
