"""Unit value types: frequency, size, bandwidth arithmetic."""

import pytest

from repro.units import (
    DataSize,
    Frequency,
    bandwidth_mbps,
    ceil_div,
    ms,
    ns,
    ps_to_ms,
    ps_to_us,
    theoretical_bandwidth_mbps,
    us,
)


class TestFrequency:
    def test_from_mhz(self):
        assert Frequency.from_mhz(100).hertz == 100_000_000

    def test_fractional_mhz(self):
        assert Frequency.from_mhz(362.5).hertz == 362_500_000

    def test_mhz_roundtrip(self):
        assert Frequency.from_mhz(255).mhz == 255.0

    def test_period_100mhz(self):
        assert Frequency.from_mhz(100).period_ps == 10_000

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Frequency(0)

    def test_ordering(self):
        assert Frequency.from_mhz(100) < Frequency.from_mhz(200)

    def test_scaled_dcm_equation(self):
        # The paper's headline synthesis: 100 MHz x 29 / 8 = 362.5 MHz.
        assert Frequency.from_mhz(100).scaled(29, 8) == \
            Frequency.from_mhz(362.5)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            Frequency.from_mhz(100).scaled(0, 1)

    def test_duration_of_cycles(self):
        assert Frequency.from_mhz(100).duration_of(3) == 30_000

    def test_duration_of_negative_raises(self):
        with pytest.raises(ValueError):
            Frequency.from_mhz(100).duration_of(-1)

    def test_cycles_in(self):
        assert Frequency.from_mhz(100).cycles_in(95_000) == 9


class TestDataSize:
    def test_from_kb_binary(self):
        assert DataSize.from_kb(1).bytes == 1024

    def test_fractional_kb(self):
        assert DataSize.from_kb(216.5).bytes == 221_696

    def test_words_rounds_up(self):
        assert DataSize(5).words == 2

    def test_from_words(self):
        assert DataSize.from_words(10).bytes == 40

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DataSize(-1)

    def test_add_sub(self):
        assert (DataSize(100) + DataSize(28)).bytes == 128
        assert (DataSize(100) - DataSize(28)).bytes == 72

    def test_str_scales(self):
        assert str(DataSize(512)) == "512 B"
        assert "KB" in str(DataSize.from_kb(8))
        assert "MB" in str(DataSize.from_mb(2))


class TestBandwidth:
    def test_bandwidth_simple(self):
        # 1 MiB in 1 second.
        assert bandwidth_mbps(DataSize.from_mb(1), 10**12) == \
            pytest.approx(1.0)

    def test_bandwidth_zero_duration_raises(self):
        with pytest.raises(ValueError):
            bandwidth_mbps(DataSize(1), 0)

    def test_theoretical_at_362_5(self):
        # 4 B x 362.5 MHz = 1.45e9 B/s = 1382.8 binary MB/s.
        value = theoretical_bandwidth_mbps(Frequency.from_mhz(362.5))
        assert value == pytest.approx(1382.8, rel=1e-3)


class TestHelpers:
    def test_time_conversions(self):
        assert us(1.5) == 1_500_000
        assert ms(2) == 2_000_000_000
        assert ns(3) == 3_000
        assert ps_to_us(1_000_000) == 1.0
        assert ps_to_ms(5_000_000_000) == 5.0

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestSmallHelpers:
    def test_from_khz(self):
        assert Frequency.from_khz(500).hertz == 500_000

    def test_datasize_mb_property(self):
        assert DataSize.from_mb(3).mb == 3.0

    def test_isclose_rel(self):
        from repro.units import isclose_rel
        assert isclose_rel(1433.0, 1438.4, rel=0.01)
        assert not isclose_rel(1433.0, 1600.0, rel=0.01)
