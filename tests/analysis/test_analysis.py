"""Analysis harnesses: bandwidth surface, comparison, power sweep."""

import pytest

from repro.analysis.bandwidth import (
    FIG5_FREQUENCIES_MHZ,
    FIG5_SIZES_KB,
    anchor_points,
    bandwidth_surface,
)
from repro.analysis.comparison import (
    PAPER_TABLE3,
    compare_controllers,
    table3_controllers,
)
from repro.analysis.powersweep import (
    PAPER_FIG7,
    energy_comparison,
    fig7_power_sweep,
)
from repro.analysis.report import render_series, render_table


class TestBandwidthSurface:
    @pytest.fixture(scope="class")
    def mini_surface(self):
        return bandwidth_surface(sizes_kb=(6.5, 247.0),
                                 frequencies_mhz=(100.0, 362.5))

    def test_grid_complete(self, mini_surface):
        assert len(mini_surface) == 4

    def test_effective_below_theoretical(self, mini_surface):
        for point in mini_surface:
            assert point.effective_mbps < point.theoretical_mbps

    def test_larger_bitstreams_more_efficient(self, mini_surface):
        by_size = {}
        for point in mini_surface:
            if abs(point.frequency.mhz - 362.5) < 1e-6:
                by_size[point.size.kb] = point.efficiency_percent
        assert by_size[247.0] > by_size[6.5]

    def test_anchor_points_match_paper(self, mini_surface):
        anchors = anchor_points(mini_surface)
        assert anchors["small"] == pytest.approx(78.8, abs=1.5)
        assert anchors["large"] == pytest.approx(99.0, abs=1.0)

    def test_default_axes_are_the_papers(self):
        assert 6.5 in FIG5_SIZES_KB and 247.0 in FIG5_SIZES_KB
        assert 362.5 in FIG5_FREQUENCIES_MHZ


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return compare_controllers(size_kb=216.5)

    def test_seven_rows_in_paper_order(self, rows):
        assert [row.controller for row in rows] == list(PAPER_TABLE3)

    def test_all_verified(self, rows):
        assert all(row.verified for row in rows)

    def test_every_row_within_8_percent(self, rows):
        for row in rows:
            assert abs(row.relative_error_percent) < 8.0, row

    def test_ranking_matches_paper(self, rows):
        measured = [row.measured_mbps for row in rows]
        assert measured == sorted(measured)

    def test_grades_match(self, rows):
        for row in rows:
            assert row.grade == row.paper_grade

    def test_fmax_columns_match(self, rows):
        for row in rows:
            assert row.max_frequency_mhz == pytest.approx(
                row.paper_fmax_mhz)

    def test_uparc_vs_farm_factor(self, rows):
        by_name = {row.controller: row.measured_mbps for row in rows}
        assert by_name["UPaRC_i"] / by_name["FaRM"] \
            == pytest.approx(1.8, rel=0.03)

    def test_controller_list_is_fresh(self):
        assert table3_controllers()[0] is not table3_controllers()[0]


class TestPowerSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return fig7_power_sweep()

    def test_four_fig7_points(self, points):
        assert len(points) == 4

    def test_plateaus_match_paper(self, points):
        for point in points:
            paper_mw, _ = PAPER_FIG7[point.frequency.mhz]
            assert point.plateau_mw == pytest.approx(paper_mw, rel=0.005)

    def test_durations_match_paper(self, points):
        for point in points:
            _, paper_us = PAPER_FIG7[point.frequency.mhz]
            assert point.reconfiguration_us \
                == pytest.approx(paper_us, rel=0.03)

    def test_doubling_frequency_halves_time_but_not_power(self, points):
        by_mhz = {point.frequency.mhz: point for point in points}
        t_ratio = (by_mhz[50.0].reconfiguration_us
                   / by_mhz[100.0].reconfiguration_us)
        p_ratio = by_mhz[100.0].plateau_mw / by_mhz[50.0].plateau_mw
        assert t_ratio == pytest.approx(2.0, rel=0.01)
        assert p_ratio < 1.6  # "the power is not doubled"

    def test_energy_decreases_with_frequency(self, points):
        # The paper's active-wait observation.
        energies = [point.energy_uj for point in points]
        assert energies == sorted(energies, reverse=True)

    def test_trace_decays_to_idle(self, points):
        for point in points:
            assert point.trace.samples[-1].value \
                == pytest.approx(point.idle_mw)


class TestEnergyComparison:
    def test_45x_ratio(self):
        comparison = energy_comparison()
        assert comparison.efficiency_ratio == pytest.approx(45, rel=0.05)
        assert comparison.xps.uj_per_kb == pytest.approx(30, rel=0.05)
        assert comparison.uparc.uj_per_kb == pytest.approx(0.66, rel=0.05)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["name", "mbps"],
                            [["UPaRC_i", 1433.0], ["FaRM", 800.0]],
                            title="Table III")
        lines = text.splitlines()
        assert lines[0] == "Table III"
        assert "UPaRC_i" in text and "1433.0" in text
        # All data lines equal width.
        assert len(lines[2]) == len(lines[3])

    def test_render_series_scales_bars(self):
        text = render_series([(50.0, 183.0), (300.0, 453.0)],
                             title="Fig7", width=30)
        lines = text.splitlines()
        assert lines[0] == "Fig7"
        assert lines[-1].count("#") == 30
        assert lines[-2].count("#") < 30

    def test_render_series_empty(self):
        assert "(no data)" in render_series([], title="x")


class TestHeatmap:
    def test_shape_and_shading(self):
        from repro.analysis.report import render_heatmap
        text = render_heatmap(["a", "b"], ["x", "y"],
                              [[0.0, 50.0], [50.0, 100.0]],
                              title="t", corner="c")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "##" in lines[-1]   # the max cell gets full shade
        assert "  " in lines[2]    # the zero cell stays blank

    def test_dimension_mismatch_rejected(self):
        from repro.analysis.report import render_heatmap
        with pytest.raises(ValueError):
            render_heatmap(["a"], ["x", "y"], [[1.0]])


class TestFig7TraceShape:
    """The qualitative features the paper describes in prose."""

    @pytest.fixture(scope="class")
    def trace(self):
        points = fig7_power_sweep(frequencies_mhz=(100.0,),
                                  size_kb=32.0)
        return points[0].trace, points[0].idle_mw

    def test_manager_peak_before_start(self, trace):
        """'the power peak before zero timestamp is caused by the
        activity of the manager to control UPaRC'"""
        samples, idle = trace
        values = [s.value for s in samples.samples]
        plateau = max(values)
        control_level = 90.0  # static 30 + manager control 60
        before_plateau = values[:values.index(plateau)]
        assert control_level in [round(v, 6) for v in before_plateau]

    def test_rises_immediately_after_start(self, trace):
        """'This activity rises the power consumption immediately
        after the Start signal'"""
        samples, idle = trace
        values = [s.value for s in samples.samples]
        plateau = max(values)
        index = values.index(plateau)
        # The step to the plateau comes directly from a lower level.
        assert values[index - 1] < plateau

    def test_decays_to_idle_after_finish(self, trace):
        """'Once the reconfiguration is completed, the power
        consumption decreases to the idle power consumption.'"""
        samples, idle = trace
        assert samples.samples[-1].value == pytest.approx(idle)


class TestModeIiSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.analysis.bandwidth import mode_ii_bandwidth_sweep
        return mode_ii_bandwidth_sweep(sizes_kb=(6.5, 49.0, 216.5))

    def test_saturates_at_decompressor_ceiling(self, sweep):
        largest = max(sweep, key=lambda p: p.size.bytes)
        assert largest.effective_mbps \
            == pytest.approx(largest.theoretical_mbps, rel=0.02)
        assert largest.effective_mbps == pytest.approx(1000, rel=0.02)

    def test_small_sizes_pay_control_overhead(self, sweep):
        efficiencies = [p.efficiency_percent
                        for p in sorted(sweep,
                                        key=lambda p: p.size.bytes)]
        assert efficiencies == sorted(efficiencies)
        assert efficiencies[0] < efficiencies[-1]
