"""Multi-seed robustness campaigns."""

import pytest

from repro.analysis.campaign import (
    Spread,
    table1_campaign,
    table3_campaign,
)
from repro.compress import PAPER_TABLE1_RATIOS


class TestSpread:
    def test_of_constant(self):
        spread = Spread.of([5.0, 5.0, 5.0])
        assert spread.mean == 5.0
        assert spread.std == 0.0
        assert spread.samples == 3

    def test_of_values(self):
        spread = Spread.of([1.0, 3.0])
        assert spread.mean == 2.0
        assert spread.std == 1.0
        assert spread.minimum == 1.0
        assert spread.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Spread.of([])


class TestTable1Campaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return table1_campaign(seeds=range(1, 6), size_kb=32.0)

    def test_mean_ranking_matches_paper(self, campaign):
        assert campaign.mean_ranking_matches_paper

    def test_per_seed_deviations_only_adjacent_swaps(self, campaign):
        # Near-ties (<1 pp apart in the paper as well) may swap on a
        # single sample; nothing may move more than one rank.
        assert campaign.max_rank_displacement <= 1

    def test_spreads_are_tight(self, campaign):
        # The regime, not the sample, determines the ratio: the std
        # across seeds must be a small fraction of the mean.
        for name, spread in campaign.spreads.items():
            assert spread.std < 2.0, (name, spread)

    def test_means_near_paper_values(self, campaign):
        for name, spread in campaign.spreads.items():
            assert abs(spread.mean - PAPER_TABLE1_RATIOS[name]) < 5.0


class TestTable3Campaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return table3_campaign(seeds=range(1, 4), size_kb=48.0)

    def test_bandwidths_content_independent(self, campaign):
        # Transfer timing depends on size only; across same-size seeds
        # the bandwidth variation must be essentially zero.
        for name in campaign.spreads:
            assert campaign.coefficient_of_variation(name) < 1e-6, name

    def test_all_controllers_present(self, campaign):
        assert len(campaign.spreads) == 7
