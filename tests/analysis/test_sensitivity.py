"""Sensitivity-analysis extensions."""

import pytest

from repro.analysis.sensitivity import (
    bram_capacity_tradeoff,
    compression_threshold,
    control_overhead_sensitivity,
)
from repro.units import DataSize


class TestControlOverhead:
    def test_zero_overhead_approaches_theoretical(self):
        points = control_overhead_sensitivity(control_cycles=(0,))
        assert points[0].efficiency_percent > 99.5

    def test_paper_operating_point_reproduced(self):
        points = control_overhead_sensitivity(control_cycles=(120,))
        # The Fig. 5 anchor: ~78.8 % at 6.5 KB / 362.5 MHz.
        assert points[0].efficiency_percent == pytest.approx(78.8, abs=1.5)

    def test_efficiency_monotone_in_overhead(self):
        points = control_overhead_sensitivity()
        efficiencies = [p.efficiency_percent for p in points]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_hardware_manager_wins_back_most_of_the_loss(self):
        points = {p.control_cycles: p.efficiency_percent
                  for p in control_overhead_sensitivity(
                      control_cycles=(12, 120))}
        # A 10x smaller hardware manager recovers well over half the
        # efficiency gap to theoretical.
        assert points[12] > points[120] + 0.5 * (100 - points[120]) - 3


class TestBramCapacity:
    def test_stretch_factor_near_4x(self):
        points = bram_capacity_tradeoff(bram_kb=(256.0,))
        assert points[0].stretch_factor == pytest.approx(4.0, rel=0.15)

    def test_paper_992kb_datapoint(self):
        points = bram_capacity_tradeoff(bram_kb=(256.0,))
        assert points[0].compressed_limit.kb == pytest.approx(992,
                                                              rel=0.15)

    def test_limits_scale_with_bram(self):
        points = bram_capacity_tradeoff(bram_kb=(64.0, 128.0, 256.0))
        raw = [p.raw_limit.bytes for p in points]
        compressed = [p.compressed_limit.bytes for p in points]
        assert raw == sorted(raw)
        assert compressed == sorted(compressed)
        assert all(c > r for r, c in zip(raw, compressed))


class TestCompressionThreshold:
    MODULES = [20, 60, 120, 250, 400, 700, 950, 1500]  # KB

    def test_classification_partitions_population(self):
        point = compression_threshold(self.MODULES, bram_kb=256.0)
        assert point.modules_total == len(self.MODULES)
        assert (point.modules_raw + point.modules_compressed
                + point.modules_rejected) == point.modules_total

    def test_small_modules_raw(self):
        point = compression_threshold([20, 60, 120], bram_kb=256.0)
        assert point.modules_raw == 3
        assert point.modules_compressed == 0

    def test_huge_module_rejected(self):
        point = compression_threshold([5000], bram_kb=256.0)
        assert point.modules_rejected == 1

    def test_more_bram_moves_modules_to_raw(self):
        small = compression_threshold(self.MODULES, bram_kb=128.0)
        large = compression_threshold(self.MODULES, bram_kb=512.0)
        assert large.modules_raw > small.modules_raw
        assert large.modules_rejected <= small.modules_rejected
