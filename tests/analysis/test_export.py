"""CSV export writers."""

import csv

import pytest

from repro.analysis.bandwidth import bandwidth_surface
from repro.analysis.comparison import compare_controllers
from repro.analysis.export import (
    export_bandwidth_surface,
    export_comparison,
    export_power_traces,
    write_csv,
)
from repro.analysis.powersweep import fig7_power_sweep


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_write_csv_counts_rows(tmp_path):
    path = tmp_path / "out.csv"
    count = write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
    assert count == 2
    rows = read_csv(path)
    assert rows[0] == ["a", "b"]
    assert rows[1] == ["1", "2"]


def test_export_bandwidth_surface(tmp_path):
    points = bandwidth_surface(sizes_kb=(6.5,), frequencies_mhz=(100.0,))
    path = tmp_path / "fig5.csv"
    count = export_bandwidth_surface(points, path)
    assert count == 1
    rows = read_csv(path)
    assert rows[0][0] == "size_kb"
    assert float(rows[1][0]) == 6.5
    assert float(rows[1][2]) < float(rows[1][3])  # effective < theory


def test_export_power_traces(tmp_path):
    points = fig7_power_sweep(frequencies_mhz=(100.0,), size_kb=16.0)
    path = tmp_path / "fig7.csv"
    count = export_power_traces(points, path)
    rows = read_csv(path)
    assert count == len(rows) - 1
    assert count >= 4  # idle, control, plateau, decay samples
    powers = [float(row[2]) for row in rows[1:]]
    assert max(powers) == pytest.approx(259.0)


def test_export_comparison(tmp_path):
    rows = compare_controllers(size_kb=16.0)
    path = tmp_path / "table3.csv"
    count = export_comparison(rows, path)
    assert count == 7
    data = read_csv(path)
    assert data[0][0] == "controller"
    assert {row[6] for row in data[1:]} == {"True"}
