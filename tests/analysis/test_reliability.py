"""Scrub-based availability analysis."""

import pytest

from repro.analysis.reliability import (
    ControllerReliability,
    ScrubPolicy,
    controller_reliability,
    optimal_scrub_period,
)
from repro.errors import PolicyError


class TestScrubPolicy:
    def test_no_upsets_only_scrub_overhead(self):
        policy = ScrubPolicy(period_s=1.0, scrub_s=0.001,
                             repair_s=0.001, upset_rate_per_s=0.0)
        assert policy.upset_probability_per_period == 0.0
        assert policy.availability == pytest.approx(0.999)

    def test_upset_probability_saturates(self):
        policy = ScrubPolicy(period_s=100.0, scrub_s=0.001,
                             repair_s=0.001, upset_rate_per_s=1.0)
        assert policy.upset_probability_per_period > 0.999

    def test_availability_in_unit_interval(self):
        policy = ScrubPolicy(period_s=10.0, scrub_s=0.01,
                             repair_s=0.02, upset_rate_per_s=0.05)
        assert 0.0 <= policy.availability <= 1.0

    def test_validation(self):
        with pytest.raises(PolicyError):
            ScrubPolicy(period_s=0.0, scrub_s=0.1, repair_s=0.1,
                        upset_rate_per_s=1.0)
        with pytest.raises(PolicyError):
            ScrubPolicy(period_s=1.0, scrub_s=2.0, repair_s=0.1,
                        upset_rate_per_s=1.0)
        with pytest.raises(PolicyError):
            ScrubPolicy(period_s=1.0, scrub_s=0.1, repair_s=0.1,
                        upset_rate_per_s=-1.0)


class TestOptimalPeriod:
    def test_optimum_beats_neighbours(self):
        best = optimal_scrub_period(scrub_s=200e-6, repair_s=200e-6,
                                    upset_rate_per_s=1 / 30.0)
        for factor in (0.5, 0.8, 1.25, 2.0):
            alternative = ScrubPolicy(best.period_s * factor,
                                      best.scrub_s, best.repair_s,
                                      best.upset_rate_per_s)
            assert best.availability >= alternative.availability - 1e-9

    def test_faster_scrub_means_shorter_optimal_period(self):
        slow = optimal_scrub_period(scrub_s=0.05, repair_s=0.05,
                                    upset_rate_per_s=1 / 60.0)
        fast = optimal_scrub_period(scrub_s=0.0002, repair_s=0.0002,
                                    upset_rate_per_s=1 / 60.0)
        assert fast.period_s < slow.period_s
        assert fast.availability > slow.availability

    def test_zero_rate_scrubs_rarely(self):
        policy = optimal_scrub_period(scrub_s=0.001, repair_s=0.001,
                                      upset_rate_per_s=0.0)
        assert policy.period_s == 3600.0


class TestControllerReliability:
    def test_uparc_beats_xps_availability(self):
        # Repair times for a 216.5 KB region from the Table III
        # bandwidths (seconds).
        size_mb = 216.5 / 1000
        uparc = controller_reliability("UPaRC_i", size_mb / 1433,
                                       upset_rate_per_s=1 / 30.0)
        xps = controller_reliability("xps_hwicap", size_mb / 14.5,
                                     upset_rate_per_s=1 / 30.0)
        assert uparc.availability > xps.availability
        assert uparc.downtime_s_per_day < xps.downtime_s_per_day / 5

    def test_downtime_consistent_with_availability(self):
        report = controller_reliability("x", 0.001,
                                        upset_rate_per_s=1 / 10.0)
        assert report.downtime_s_per_day == pytest.approx(
            (1 - report.availability) * 86400.0)

    def test_explicit_readback_time(self):
        report = controller_reliability("x", 0.002,
                                        upset_rate_per_s=0.1,
                                        readback_s=0.001)
        assert report.scrub_s == 0.001
        assert report.repair_s == 0.002


class TestZeroRateBranch:
    """Regression tests for the repro.lint F301/U001 cleanup.

    ``upset_rate_per_s`` (ne ``upset_rate_hz``) is a continuous Poisson
    rate, and the zero-rate fast path now uses an ordered comparison
    instead of float-literal equality.
    """

    def test_zero_rate_downtime_is_exactly_scrub_overhead(self):
        policy = ScrubPolicy(period_s=2.0, scrub_s=0.25,
                             repair_s=0.5, upset_rate_per_s=0.0)
        assert policy.expected_downtime_per_period_s == pytest.approx(0.25)

    def test_downtime_continuous_near_zero_rate(self):
        # The closed form has a removable singularity at rate 0; the
        # guarded branch must agree with the limit of tiny rates.
        base = dict(period_s=2.0, scrub_s=0.25, repair_s=0.5)
        at_zero = ScrubPolicy(upset_rate_per_s=0.0, **base)
        near_zero = ScrubPolicy(upset_rate_per_s=1e-9, **base)
        assert near_zero.expected_downtime_per_period_s == pytest.approx(
            at_zero.expected_downtime_per_period_s, abs=1e-6)
