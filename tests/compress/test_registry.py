"""Codec registry and Table I reference data."""

import pytest

from repro.compress import (
    PAPER_TABLE1_RATIOS,
    all_codecs,
    codec_by_name,
)


def test_reference_ratios_match_paper():
    assert PAPER_TABLE1_RATIOS == {
        "RLE": 63.0,
        "LZ77": 71.4,
        "Huffman": 72.3,
        "X-MatchPRO": 74.2,
        "LZ78": 75.6,
        "Zip": 81.2,
        "7-zip": 81.9,
    }


def test_reference_ratios_in_paper_order():
    values = list(PAPER_TABLE1_RATIOS.values())
    assert values == sorted(values)


def test_codec_by_name_resolves_every_row():
    for name in PAPER_TABLE1_RATIOS:
        assert codec_by_name(name).name == name


def test_codec_by_name_unknown():
    with pytest.raises(KeyError):
        codec_by_name("Brotli")


def test_all_codecs_instances_are_fresh():
    first = all_codecs()
    second = all_codecs()
    assert all(a is not b for a, b in zip(first, second))


def test_measured_ratios_track_table1_shape(medium_bitstream):
    """The headline Table I claim: same ranking, each ratio within a
    few points of the paper on default synthetic bitstreams."""
    data = medium_bitstream.raw_bytes
    measured = {codec.name: codec.measure(data).ratio_percent
                for codec in all_codecs()}
    # Ranking preserved.
    paper_order = list(PAPER_TABLE1_RATIOS)
    measured_order = sorted(measured, key=measured.get)
    assert measured_order == paper_order
    # Absolute agreement within 4 percentage points per codec.
    for name, paper_value in PAPER_TABLE1_RATIOS.items():
        assert abs(measured[name] - paper_value) < 4.0, (
            f"{name}: measured {measured[name]:.1f} vs paper {paper_value}"
        )
