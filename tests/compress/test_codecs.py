"""Per-codec behaviour tests (shared cases + codec-specific checks)."""

import random

import pytest

from repro.compress import (
    DeflateCodec,
    HuffmanCodec,
    Lz77Codec,
    Lz78Codec,
    LzmaLikeCodec,
    RleCodec,
    XMatchProCodec,
    all_codecs,
    compression_ratio,
)
from repro.errors import CompressionError, CorruptStreamError

CODECS = [RleCodec(), Lz77Codec(), Lz78Codec(), HuffmanCodec(),
          XMatchProCodec(), DeflateCodec(), LzmaLikeCodec()]

CASES = {
    "empty": b"",
    "one-byte": b"\x42",
    "three-bytes": b"abc",
    "zeros": b"\x00" * 4096,
    "ones": b"\xFF" * 1000,
    "alternating": b"\xAA\x55" * 500,
    "word-runs": b"\xDE\xAD\xBE\xEF" * 300 + b"\x00\x00\x00\x00" * 300,
    "ascii": b"the quick brown fox jumps over the lazy dog " * 40,
    "random": random.Random(7).randbytes(4096),
    "unaligned": b"\x01\x02\x03\x04\x05\x06\x07",  # not a word multiple
}


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
@pytest.mark.parametrize("case", CASES, ids=list(CASES))
def test_roundtrip(codec, case):
    data = CASES[case]
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_compresses_redundant_input(codec):
    data = b"\x00" * 8192
    assert len(codec.compress(data)) < len(data) // 4


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_measure_reports_sizes(codec):
    data = b"\x11\x22\x33\x44" * 256
    result = codec.measure(data)
    assert result.original_size == len(data)
    assert result.compressed_size == len(codec.compress(data))
    assert result.codec_name == codec.name


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_truncated_stream_detected(codec):
    data = b"payload that compresses a little " * 30
    compressed = codec.compress(data)
    truncated = compressed[:len(compressed) // 2]
    with pytest.raises((CorruptStreamError, CompressionError)):
        # Either a clean error or, at minimum, NOT silently equal data.
        result = codec.decompress(truncated)
        if result == data:
            raise AssertionError("truncated stream decoded to original")
        raise CorruptStreamError("wrong output accepted for this test")


def test_ratio_convention():
    # 74.2 % ratio means compressed is ~4x smaller (paper's wording).
    assert compression_ratio(1000, 258) == pytest.approx(74.2)
    with pytest.raises(CompressionError):
        compression_ratio(0, 10)


def test_all_codecs_order_and_names():
    names = [codec.name for codec in all_codecs()]
    assert names == ["RLE", "LZ77", "Huffman", "X-MatchPRO",
                     "LZ78", "Zip", "7-zip"]


class TestRle:
    def test_long_run_uses_extension(self):
        data = b"\xAB\xCD\xEF\x01" * 10_000
        codec = RleCodec()
        compressed = codec.compress(data)
        assert len(compressed) < 300
        assert codec.decompress(compressed) == data

    def test_incompressible_overhead_bounded(self):
        data = random.Random(3).randbytes(4096)
        compressed = RleCodec().compress(data)
        # Literal records cost 1 control byte per 128 words.
        assert len(compressed) < len(data) * 1.02 + 16


class TestHuffman:
    def test_skewed_input_near_entropy(self):
        data = b"\x00" * 900 + b"\x01" * 100
        rnd = random.Random(5)
        data = bytes(rnd.sample(list(data), len(data)))
        compressed = HuffmanCodec().compress(data)
        payload = len(compressed) - 260  # minus header+table
        # Entropy is ~0.47 bits/byte -> payload well under 25 % of input.
        assert payload < len(data) // 4

    def test_single_symbol_input(self):
        data = b"z" * 500
        codec = HuffmanCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestLz77:
    def test_window_bits_bound(self):
        with pytest.raises(ValueError):
            Lz77Codec(window_bits=3)
        with pytest.raises(ValueError):
            Lz77Codec(window_bits=17)

    def test_larger_window_reaches_distant_repeats(self):
        # A 2 KB block repeated: only the 12-bit window can see the
        # first copy from inside the second.
        rng = random.Random(9)
        block = bytes(rng.randrange(256) for _ in range(2048))
        data = block * 2
        small = Lz77Codec(window_bits=6).compress(data)
        large = Lz77Codec(window_bits=12).compress(data)
        assert len(large) < len(small) * 0.75

    def test_overlapping_copy(self):
        # A run longer than its offset forces self-overlapping copies.
        data = b"ab" * 1000
        codec = Lz77Codec()
        assert codec.decompress(codec.compress(data)) == data


class TestLz78:
    def test_dictionary_reset_still_roundtrips(self):
        codec = Lz78Codec(max_entries=64)
        rng = random.Random(11)
        data = bytes(rng.randrange(64) for _ in range(5000))
        assert codec.decompress(codec.compress(data)) == data

    def test_min_entries_enforced(self):
        with pytest.raises(ValueError):
            Lz78Codec(max_entries=1)


class TestXMatchPro:
    def test_dictionary_size_bounds(self):
        with pytest.raises(ValueError):
            XMatchProCodec(dictionary_size=1)
        with pytest.raises(ValueError):
            XMatchProCodec(dictionary_size=100)

    def test_zero_runs_dominant_input(self):
        data = b"\x00" * 40_000
        compressed = XMatchProCodec().compress(data)
        assert len(compressed) < 100

    def test_partial_matches_help(self):
        # Words differing in one byte: partial matches apply.
        words = bytes()
        rnd = random.Random(2)
        base = b"\x10\x20\x30"
        words = b"".join(base + bytes([rnd.randrange(256)])
                         for _ in range(2000))
        result = XMatchProCodec().measure(words)
        assert result.ratio_percent > 40.0

    def test_mask_codes_prefix_free(self):
        from repro.compress.xmatchpro import _MASK_CODES
        codes = [format(code, f"0{length}b")
                 for code, length in _MASK_CODES.values()]
        assert len(set(codes)) == len(codes)
        for first in codes:
            for second in codes:
                if first is not second:
                    assert not second.startswith(first)


class TestPipelines:
    def test_deflate_beats_plain_huffman_on_bitstreams(self,
                                                       medium_bitstream):
        data = medium_bitstream.raw_bytes
        deflate = DeflateCodec().measure(data).ratio_percent
        huffman = HuffmanCodec().measure(data).ratio_percent
        assert deflate > huffman

    def test_lzma_like_beats_deflate_on_bitstreams(self, medium_bitstream):
        data = medium_bitstream.raw_bytes
        lzma = LzmaLikeCodec().measure(data).ratio_percent
        deflate = DeflateCodec().measure(data).ratio_percent
        assert lzma > deflate


class TestContainerPadding:
    def test_rle_ignores_trailing_padding(self):
        # The Manager word-aligns compressed payloads in BRAM; the
        # decoder must stop at the declared length (regression test).
        codec = RleCodec()
        data = b"\x11\x22\x33\x44" * 100 + b"xyz"
        compressed = codec.compress(data)
        for pad in (1, 2, 3, 7):
            assert codec.decompress(compressed + b"\x00" * pad) == data

    def test_xmatchpro_ignores_trailing_padding(self):
        codec = XMatchProCodec()
        data = b"\x00" * 64 + b"\xAB\xCD\xEF\x42" * 32
        compressed = codec.compress(data)
        for pad in (1, 3):
            assert codec.decompress(compressed + b"\x00" * pad) == data
