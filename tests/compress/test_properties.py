"""Hypothesis property tests: every codec is a lossless bijection on
its image, and the arithmetic-coder substrate is self-consistent."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compress import (
    DeflateCodec,
    HuffmanCodec,
    Lz77Codec,
    Lz78Codec,
    LzmaLikeCodec,
    RleCodec,
    XMatchProCodec,
)
from repro.compress.arith import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
)
from repro.compress.bitio import BitReader, BitWriter

# LZ-ish payloads: random bytes mixed with repetitions, the worst and
# best cases for dictionary coders.
payloads = st.one_of(
    st.binary(max_size=2048),
    st.builds(
        lambda chunk, repeats, tail: chunk * repeats + tail,
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=1, max_value=64),
        st.binary(max_size=32),
    ),
    st.builds(
        lambda chunks: b"".join(chunks),
        st.lists(st.sampled_from(
            [b"\x00\x00\x00\x00", b"\xDE\xAD\xBE\xEF",
             b"\x01\x02\x03\x04", b"\xFF"]), max_size=256),
    ),
)

slow = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@slow
@given(payloads)
def test_rle_roundtrip(data):
    codec = RleCodec()
    assert codec.decompress(codec.compress(data)) == data


@slow
@given(payloads)
def test_lz77_roundtrip(data):
    codec = Lz77Codec()
    assert codec.decompress(codec.compress(data)) == data


@slow
@given(payloads)
def test_lz78_roundtrip(data):
    codec = Lz78Codec()
    assert codec.decompress(codec.compress(data)) == data


@slow
@given(payloads)
def test_huffman_roundtrip(data):
    codec = HuffmanCodec()
    assert codec.decompress(codec.compress(data)) == data


@slow
@given(payloads)
def test_xmatchpro_roundtrip(data):
    codec = XMatchProCodec()
    assert codec.decompress(codec.compress(data)) == data


@slow
@given(payloads)
def test_deflate_roundtrip(data):
    codec = DeflateCodec()
    assert codec.decompress(codec.compress(data)) == data


@slow
@given(payloads)
def test_lzma_like_roundtrip(data):
    codec = LzmaLikeCodec()
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=65535),
                          st.integers(min_value=1, max_value=16)),
                max_size=200))
def test_bitio_roundtrip(values):
    writer = BitWriter()
    clipped = [(value % (1 << width), width) for value, width in values]
    for value, width in clipped:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in clipped:
        assert reader.read_bits(width) == value


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), max_size=800))
def test_arithmetic_coder_roundtrip(symbols):
    encoder = ArithmeticEncoder()
    model_enc = AdaptiveModel(257)
    for symbol in symbols:
        encoder.encode(model_enc, symbol)
    encoder.encode(model_enc, 256)  # EOF
    stream = encoder.finish()

    decoder = ArithmeticDecoder(stream)
    model_dec = AdaptiveModel(257)
    decoded = []
    while True:
        symbol = decoder.decode(model_dec)
        if symbol == 256:
            break
        decoded.append(symbol)
    assert decoded == symbols


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=500))
def test_adaptive_model_invariants(updates):
    model = AdaptiveModel(16)
    for symbol in updates:
        model.update(symbol)
        assert model.total == model.cumulative(16)
        assert model.frequency(symbol) >= 1
    # Cumulative is monotone non-decreasing.
    sums = [model.cumulative(index) for index in range(17)]
    assert sums == sorted(sums)
