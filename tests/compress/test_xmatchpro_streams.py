"""X-MatchPRO stream-level tests: run boundaries, corruption, format.

The zero-run token uses a chunked 8-bit counter where ``0xFF`` means
"255 and continue" — runs of exactly 255/256 (and 510/511) tuples sit
on the chunk boundary and exercise both the single-chunk maximum and
the continuation path.  The corrupt-stream tests drive every decoder
error branch with hand-crafted bit streams.  The pinned digests at the
bottom freeze the on-wire format: any change to token layout, mask
codes or run chunking shows up as a digest mismatch, not as a silent
compatibility break with previously written streams.
"""

from __future__ import annotations

import hashlib
import random
import struct

import pytest

from repro.compress.bitio import BitWriter
from repro.compress.xmatchpro import XMatchProCodec
from repro.errors import CorruptStreamError

ZERO_TUPLE = b"\x00" * 4


@pytest.fixture
def codec():
    return XMatchProCodec()


# -- zero-run chunk boundaries ----------------------------------------

@pytest.mark.parametrize("run", [1, 2, 254, 255, 256, 257,
                                 509, 510, 511, 512, 765, 766])
def test_pure_zero_run_boundaries(codec, run):
    data = ZERO_TUPLE * run
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("run", [254, 255, 256, 510, 511])
def test_zero_run_boundary_between_literals(codec, run):
    """Chunk-boundary runs embedded in non-zero traffic."""
    data = b"\xde\xad\xbe\xef" + ZERO_TUPLE * run + b"\xca\xfe\xba\xbe"
    assert codec.decompress(codec.compress(data)) == data


def test_run_of_255_uses_continuation_chunk(codec):
    """255 == chunk max, so the counter emits 0xFF + 0x00 — one more
    chunk than a run of 254.  The decode still sees one run."""
    shorter = codec.compress(ZERO_TUPLE * 254)
    boundary = codec.compress(ZERO_TUPLE * 255)
    assert len(boundary) >= len(shorter)
    assert codec.decompress(boundary) == ZERO_TUPLE * 255


def test_adjacent_runs_with_separator_roundtrip(codec):
    data = (ZERO_TUPLE * 255 + b"\x01\x02\x03\x04"
            + ZERO_TUPLE * 256 + b"\x05\x06\x07\x08"
            + ZERO_TUPLE * 3)
    assert codec.decompress(codec.compress(data)) == data


def test_zero_run_with_unaligned_tail(codec):
    data = ZERO_TUPLE * 256 + b"\x00\x00"  # tail shorter than a tuple
    assert codec.decompress(codec.compress(data)) == data


# -- corrupt streams ---------------------------------------------------

def _stream(original_length, tail=b"", bits=None):
    """Assemble a raw X-MatchPRO stream from header parts + token bits."""
    header = struct.pack(">I", original_length) + bytes([len(tail)]) + tail
    return header + (bits.getvalue() if bits is not None else b"")


def test_truncated_header_rejected(codec):
    for length in range(5):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"\x00" * length)


def test_invalid_tail_length_rejected(codec):
    blob = struct.pack(">I", 8) + bytes([7]) + b"\x00" * 7
    with pytest.raises(CorruptStreamError):
        codec.decompress(blob)


def test_truncated_tail_rejected(codec):
    blob = struct.pack(">I", 3) + bytes([3]) + b"\x00"  # claims 3, has 1
    with pytest.raises(CorruptStreamError):
        codec.decompress(blob)


def test_zero_length_zero_run_rejected(codec):
    bits = BitWriter()
    bits.write_bits(0b10, 2)   # zero-run prefix
    bits.write_bits(0, 8)      # run counter 0: invalid
    with pytest.raises(CorruptStreamError, match="zero-length"):
        codec.decompress(_stream(4, bits=bits))


def test_match_against_empty_dictionary_rejected(codec):
    bits = BitWriter()
    bits.write_bit(0)          # match prefix with nothing inserted yet
    with pytest.raises(CorruptStreamError, match="empty dictionary"):
        codec.decompress(_stream(4, bits=bits))


def test_dictionary_location_out_of_range_rejected(codec):
    bits = BitWriter()
    bits.write_bits(0b11, 2)                     # miss: insert one word
    bits.write_bits(0xDEADBEEF, 32)
    bits.write_bit(0)                            # match prefix
    bits.write_bits(1, 1)                        # location 1, size-1 dict
    bits.write_bit(0)                            # full-match mask
    with pytest.raises(CorruptStreamError, match="out of range"):
        codec.decompress(_stream(8, bits=bits))


def test_invalid_match_type_code_rejected(codec):
    bits = BitWriter()
    bits.write_bits(0b11, 2)                     # miss: insert one word
    bits.write_bits(0xDEADBEEF, 32)
    bits.write_bit(0)                            # match prefix
    bits.write_bits(0, 1)                        # location 0
    bits.write_bits(0b11, 2)                     # mask class '11'
    bits.write_bits(7, 3)                        # selector 7: only 0-5 valid
    with pytest.raises(CorruptStreamError, match="match-type"):
        codec.decompress(_stream(8, bits=bits))


def test_truncated_token_stream_rejected(codec):
    """Stream ends mid-token: the reader must fail, not fabricate."""
    good = codec.compress(b"\xde\xad\xbe\xef" * 16)
    with pytest.raises(CorruptStreamError):
        codec.decompress(good[:-2])


def test_oversized_length_header_rejected(codec):
    """Header claims more data than the token stream encodes."""
    good = codec.compress(ZERO_TUPLE * 4)
    inflated = struct.pack(">I", 4 * 4 + 400) + good[4:]
    with pytest.raises(CorruptStreamError):
        codec.decompress(inflated)


def test_corruption_never_roundtrips_silently(codec):
    """Flipping any byte either raises or changes the output."""
    data = b"\xde\xad\xbe\xef" * 8 + ZERO_TUPLE * 300
    good = codec.compress(data)
    for position in range(5, len(good), 7):
        corrupted = bytearray(good)
        corrupted[position] ^= 0xFF
        try:
            decoded = codec.decompress(bytes(corrupted))
        except CorruptStreamError:
            continue
        assert decoded != data or bytes(corrupted) == good


# -- pinned stream format ----------------------------------------------

#: SHA-256 of ``compress()`` output for fixed inputs.  These freeze
#: the on-wire format (token layout, mask codes, run chunking); a
#: digest change means old compressed artifacts no longer decode —
#: bump the sweep cache format version if you change them on purpose.
GOLDEN_DIGESTS = {
    "random4k":
        "350f951d8a038e56ca1aae9c93133b72cecb5abe6e065e91a66b5fcaf598b231",
    "zeros255":
        "101d474577a819de622d2359796496b167d6dc69dc21cfd2a519a02528a87d7f",
    "zeros256":
        "acd8fbb6417b99c4c2b4dc54dc21533035bbd3b714c3b4c3255f78d8f62321aa",
    "mixed":
        "9558533cf11056d683a3d2d14d3fcb94240176b3dcee1bbd1e0d281a6de02ed2",
    "bitstream16k":
        "6c735092d2155d2baed2697b555f6e4b630371cc9258a2023fa9634afc2d5635",
}


def _golden_samples():
    from repro.bitstream.generator import generate_bitstream
    from repro.units import DataSize
    rng = random.Random(7)
    return {
        "random4k": bytes(rng.randrange(256) for _ in range(4096)),
        "zeros255": ZERO_TUPLE * 255,
        "zeros256": ZERO_TUPLE * 256,
        "mixed": (b"\xde\xad\xbe\xef" * 10 + b"\x00" * (511 * 4)
                  + bytes(rng.randrange(256) for _ in range(401))),
        "bitstream16k":
            generate_bitstream(size=DataSize.from_kb(16)).raw_bytes,
    }


def test_compressed_stream_format_is_pinned(codec):
    samples = _golden_samples()
    for name, digest in sorted(GOLDEN_DIGESTS.items()):
        compressed = codec.compress(samples[name])
        assert codec.decompress(compressed) == samples[name]
        assert hashlib.sha256(compressed).hexdigest() == digest, name
