"""Bit-level reader/writer."""

import pytest

from repro.compress.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


def test_single_bits_roundtrip():
    writer = BitWriter()
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in range(len(bits))] == bits


def test_msb_first_order():
    writer = BitWriter()
    writer.write_bits(0b10110010, 8)
    assert writer.getvalue() == bytes([0b10110010])


def test_partial_byte_zero_padded():
    writer = BitWriter()
    writer.write_bits(0b101, 3)
    assert writer.getvalue() == bytes([0b10100000])


def test_write_bits_width_checked():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_bits(4, 2)
    with pytest.raises(ValueError):
        writer.write_bits(1, -1)


def test_multi_width_roundtrip():
    writer = BitWriter()
    values = [(5, 3), (1023, 10), (0, 1), (65535, 16), (7, 5)]
    for value, width in values:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in values:
        assert reader.read_bits(width) == value


def test_unary_roundtrip():
    writer = BitWriter()
    for value in (0, 1, 5, 12):
        writer.write_unary(value)
    reader = BitReader(writer.getvalue())
    for value in (0, 1, 5, 12):
        assert reader.read_unary() == value


def test_unary_runaway_guard():
    reader = BitReader(b"\xFF" * 10)
    with pytest.raises(CorruptStreamError):
        reader.read_unary(limit=50)


def test_bytes_roundtrip():
    writer = BitWriter()
    writer.write_bit(1)  # misalign on purpose
    writer.write_bytes(b"\x12\x34")
    reader = BitReader(writer.getvalue())
    assert reader.read_bit() == 1
    assert reader.read_bytes(2) == b"\x12\x34"


def test_exhausted_reader_raises():
    reader = BitReader(b"\xFF")
    reader.read_bits(8)
    with pytest.raises(CorruptStreamError):
        reader.read_bit()


def test_bit_length_tracks_writer():
    writer = BitWriter()
    writer.write_bits(0, 13)
    assert writer.bit_length == 13


def test_bits_remaining():
    reader = BitReader(b"\x00\x00")
    reader.read_bits(3)
    assert reader.bits_remaining == 13
