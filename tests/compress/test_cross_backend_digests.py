"""Cross-backend golden digests for the kernelised codecs.

Each codec whose inner loop moved into the accel package must produce
byte-identical streams under every available backend (pure, numpy,
and native when the compiled extension is built), and the
stream itself is frozen: these digests pin the on-wire format of a
24 KB generated bitstream for every kernelised codec.  A mismatch
means previously written compressed artifacts no longer decode — if
the format changes on purpose, update the digest and bump the sweep
cache format version.

The payload is large enough that every numpy kernel is above its
delegation crossover, so the numpy digest genuinely exercises the
vectorised paths rather than falling through to pure.
"""

import hashlib

import pytest

from repro import accel
from repro.bitstream.generator import generate_bitstream
from repro.compress import (
    HuffmanCodec,
    Lz77Codec,
    RleCodec,
    XMatchProCodec,
)
from repro.units import DataSize

#: SHA-256 of ``compress()`` output over the 24 KB seed-2012 payload.
GOLDEN = {
    "X-MatchPRO":
        "1f192f4d3b879c120e6bbb8de2f694d68db8a4887afa57fef14a62d36d6fa8e2",
    "LZ77":
        "9e8cc1fae23e1182e7d0ac26f2749aa177e26cd3ec18993f09b190050b15db7c",
    "Huffman":
        "af7481fbca694e597678a6d93cb6e338c62630b63ded9b1d0f3fc9c3e684e1d4",
    "RLE":
        "a7ad1e40d310220f7fd1b8a496181c3059845f98ab737248940826055ead0ef3",
}

#: The generator itself is backend-dispatched, so the payload digest
#: is pinned too — a drift here would invalidate every codec digest.
PAYLOAD_DIGEST = \
    "ff3982249bcff3a8487d09093cc2139bd12dc3395fe3170b4bb40465903953ba"

CODECS = [XMatchProCodec(), Lz77Codec(), HuffmanCodec(), RleCodec()]

BACKENDS = (["pure"]
            + (["numpy"] if accel.numpy_available() else [])
            + (["native"] if accel.native_available() else []))


@pytest.fixture(scope="module")
def payload():
    blob = generate_bitstream(size=DataSize.from_kb(24),
                              seed=2012).raw_bytes
    assert hashlib.sha256(blob).hexdigest() == PAYLOAD_DIGEST
    return blob


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
@pytest.mark.parametrize("backend", BACKENDS)
def test_codec_digest_pinned_per_backend(payload, codec, backend):
    with accel.using(backend):
        compressed = codec.compress(payload)
        assert codec.decompress(compressed) == payload
    digest = hashlib.sha256(compressed).hexdigest()
    assert digest == GOLDEN[codec.name], \
        f"{codec.name} stream format drifted under the {backend} backend"
