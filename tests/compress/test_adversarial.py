"""Adversarial codec vectors.

Hand-built inputs that hit the corner cases of each format: runs at
the exact extension boundaries, matches at window edges, dictionary
resets mid-phrase, arithmetic-coder renormalization storms.  These
complement the hypothesis tests with *targeted* stress.
"""

import pytest

from repro.compress import (
    DeflateCodec,
    HuffmanCodec,
    Lz77Codec,
    Lz78Codec,
    LzmaLikeCodec,
    RleCodec,
    XMatchProCodec,
    all_codecs,
)

ALL = [RleCodec(), Lz77Codec(), Lz78Codec(), HuffmanCodec(),
       XMatchProCodec(), DeflateCodec(), LzmaLikeCodec()]


def roundtrip(codec, data):
    assert codec.decompress(codec.compress(data)) == data


class TestRleBoundaries:
    # Base control byte encodes runs of 2..129; extensions chunk at 255.
    @pytest.mark.parametrize("run", [1, 2, 128, 129, 130, 129 + 255,
                                     129 + 255 + 1, 129 + 2 * 255 + 7])
    def test_exact_run_boundaries(self, run):
        roundtrip(RleCodec(), b"\xCA\xFE\xBA\xBE" * run)

    @pytest.mark.parametrize("literals", [1, 127, 128, 129, 256])
    def test_exact_literal_boundaries(self, literals):
        data = b"".join(index.to_bytes(4, "big")
                        for index in range(literals))
        roundtrip(RleCodec(), data)

    def test_run_then_literals_then_run(self):
        data = (b"\x00" * 400
                + b"".join(i.to_bytes(4, "big") for i in range(50))
                + b"\xFF" * 400)
        roundtrip(RleCodec(), data)


class TestLz77Boundaries:
    def test_match_at_exact_window_edge(self):
        codec = Lz77Codec(window_bits=8)  # 256-byte window
        block = bytes(range(64))
        # Repeat separated by exactly window-size bytes.
        data = block + bytes(256 - 64) + block
        roundtrip(codec, data)

    def test_max_length_match(self):
        codec = Lz77Codec(length_bits=4, min_match=3)  # max match 18
        data = b"abc" * 50  # forces chains of max-length copies
        roundtrip(codec, data)

    def test_minimum_match_exactly(self):
        codec = Lz77Codec(min_match=3)
        data = b"xyz" + b"." * 10 + b"xyz"
        roundtrip(codec, data)


class TestLz78Boundaries:
    @pytest.mark.parametrize("entries", [2, 3, 4, 16])
    def test_tiny_dictionaries_reset_constantly(self, entries):
        codec = Lz78Codec(max_entries=entries)
        data = bytes(range(100)) * 5
        roundtrip(codec, data)

    def test_input_ends_exactly_on_phrase(self):
        codec = Lz78Codec()
        # 'ab' is in the dictionary when the stream ends with 'ab'.
        roundtrip(codec, b"aababab")


class TestXMatchProBoundaries:
    def test_zero_run_at_chunk_boundary(self):
        # Chunk counter emits 255-word chunks.
        for run in (254, 255, 256, 510, 511):
            roundtrip(XMatchProCodec(), b"\x00\x00\x00\x00" * run)

    def test_dictionary_eviction_cycle(self):
        codec = XMatchProCodec(dictionary_size=2)
        words = b"".join(bytes([i, i, i, i]) for i in range(1, 50))
        roundtrip(codec, words * 2)

    def test_alternating_hit_miss(self):
        codec = XMatchProCodec(dictionary_size=4)
        a, b = b"\x01\x02\x03\x04", b"\x99\x88\x77\x66"
        roundtrip(codec, (a + b) * 200)

    def test_partial_match_every_mask(self):
        # Words sharing exactly 2 or 3 bytes with a resident entry.
        base = b"\x10\x20\x30\x40"
        variants = [
            b"\xFF\x20\x30\x40", b"\x10\xFF\x30\x40",
            b"\x10\x20\xFF\x40", b"\x10\x20\x30\xFF",
            b"\xFF\xFF\x30\x40", b"\x10\x20\xFF\xFF",
            b"\xFF\x20\xFF\x40", b"\x10\xFF\x30\xFF",
            b"\xFF\x20\x30\xFF", b"\x10\xFF\xFF\x40",
        ]
        roundtrip(XMatchProCodec(), base + b"".join(variants))


class TestArithmeticStress:
    def test_long_run_of_most_probable_symbol(self):
        # Drives the encoder into long carry/pending-bit chains.
        roundtrip(LzmaLikeCodec(), b"\x00" * 50_000)

    def test_alternating_bits_resist_modelling(self):
        roundtrip(LzmaLikeCodec(), bytes(i & 0xFF for i in range(9973)))

    def test_model_halving_boundary(self):
        # Enough repeated symbols to trigger count halving (total 2^16).
        roundtrip(LzmaLikeCodec(), b"A" * 3000 + b"B" * 3000)


class TestDeflateStress:
    def test_match_self_overlap_long(self):
        roundtrip(DeflateCodec(), b"ab" * 10_000)

    def test_incompressible_then_compressible(self):
        import random
        rng = random.Random(13)
        data = rng.randbytes(4096) + b"\x00" * 4096
        roundtrip(DeflateCodec(), data)


@pytest.mark.parametrize("codec", ALL, ids=lambda c: c.name)
def test_all_byte_values_in_order(codec):
    roundtrip(codec, bytes(range(256)) * 3)


@pytest.mark.parametrize("codec", ALL, ids=lambda c: c.name)
def test_sizes_straddling_word_alignment(codec):
    for size in (1023, 1024, 1025, 1026, 1027):
        roundtrip(codec, (b"\x42\x00\x17\x00" * 300)[:size])
