"""CLI smoke tests (every subcommand prints its table)."""

import pytest

from repro.cli import build_parser, main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "X-MatchPRO" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "DyCloGen" in out and "1035" in out


def test_table3_with_size(capsys):
    assert main(["table3", "--size-kb", "32"]) == 0
    out = capsys.readouterr().out
    assert "UPaRC_i" in out
    assert "FAIL" not in out


def test_fig7(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "183.0" in out and "453.0" in out


def test_energy(capsys):
    assert main(["energy"]) == 0
    out = capsys.readouterr().out
    assert "ratio: 44" in out or "ratio: 45" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["table9"])


def test_parser_lists_all_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for name in ("table1", "table2", "table3", "fig5", "fig7",
                 "energy", "lint", "all"):
        assert name in help_text


def test_lint_subcommand_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(delay_ps: int) -> int:\n    return delay_ps\n")
    assert main(["lint", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nstart = time.time()\n")
    assert main(["lint", str(dirty)]) == 1
    assert "D101" in capsys.readouterr().out

    assert main(["lint", str(tmp_path / "missing.py")]) == 2


def test_selftest(capsys):
    from repro.cli import main as cli_main
    assert cli_main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "10/10 checks passed" in out
    assert "FAIL" not in out


def test_report_to_stdout(capsys):
    from repro.cli import main as cli_main
    assert cli_main(["report"]) == 0
    out = capsys.readouterr().out
    assert "# UPaRC reproduction — live report" in out
    assert "Ranking: identical to the paper's." in out
    assert "Exact match." in out
    assert "45x" in out


def test_report_to_file(tmp_path, capsys):
    from repro.cli import main as cli_main
    target = tmp_path / "report.md"
    assert cli_main(["report", "--output", str(target)]) == 0
    text = target.read_text()
    assert "## Table III" in text
    assert "UPaRC_i" in text


def test_validate_quick(capsys):
    from repro.cli import main as cli_main
    assert cli_main(["validate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "claims hold" in out
    assert "FAIL" not in out
