"""Power trace builder and energy integration."""

import pytest

from repro.power.energy import EnergyReport, energy_from_trace, uj_per_kb
from repro.power.model import ManagerState, PowerModel
from repro.power.trace import PowerTraceBuilder
from repro.sim import ValueTrace
from repro.units import DataSize


class TestPowerTraceBuilder:
    def test_initial_sample_is_idle(self, sim):
        builder = PowerTraceBuilder(sim, PowerModel())
        assert builder.trace.samples[0].value == pytest.approx(30.0)

    def test_state_changes_sampled(self, sim):
        builder = PowerTraceBuilder(sim, PowerModel())
        sim.run(until_ps=100)
        builder.manager_state(ManagerState.CONTROL)
        sim.run(until_ps=200)
        builder.chain_on(100.0)
        sim.run(until_ps=300)
        builder.finalize()
        values = [sample.value for sample in builder.trace.samples]
        assert values[0] == pytest.approx(30.0)
        assert values[1] == pytest.approx(90.0)    # static + control
        assert values[-1] == pytest.approx(30.0)   # back to idle

    def test_repeated_state_not_resampled(self, sim):
        builder = PowerTraceBuilder(sim, PowerModel())
        before = len(builder.trace)
        builder.manager_state(ManagerState.IDLE)
        assert len(builder.trace) == before

    def test_chain_off_idempotent(self, sim):
        builder = PowerTraceBuilder(sim, PowerModel())
        builder.chain_off()  # never on; no crash, no sample
        assert len(builder.trace) == 1

    def test_power_between_weights_segments(self, sim):
        builder = PowerTraceBuilder(sim, PowerModel())
        sim.run(until_ps=100)
        builder.chain_on(100.0)   # 259 - 15 (wait not set) = 244 mW
        sim.run(until_ps=200)
        builder.chain_off()
        sim.run(until_ps=300)
        mean = builder.power_between(0, 300)
        chain_level = 30.0 + PowerModel().chain_mw(True, 100.0)
        expected = (30.0 * 100 + chain_level * 100 + 30.0 * 100) / 300
        assert mean == pytest.approx(expected)

    def test_power_between_empty_window_raises(self, sim):
        builder = PowerTraceBuilder(sim, PowerModel())
        with pytest.raises(ValueError):
            builder.power_between(10, 10)


class TestEnergy:
    def test_energy_constant_power(self):
        trace = ValueTrace("p")
        trace.record(0, 100.0)  # 100 mW forever
        # 100 mW for 1 ms = 100 uJ.
        assert energy_from_trace(trace, 0, 10**9) == pytest.approx(100.0)

    def test_energy_with_baseline_subtraction(self):
        trace = ValueTrace("p")
        trace.record(0, 100.0)
        energy = energy_from_trace(trace, 0, 10**9, baseline_mw=30.0)
        assert energy == pytest.approx(70.0)

    def test_energy_step_profile(self):
        trace = ValueTrace("p")
        trace.record(0, 50.0)
        trace.record(10**9, 150.0)
        energy = energy_from_trace(trace, 0, 2 * 10**9)
        assert energy == pytest.approx(50.0 + 150.0)

    def test_energy_empty_window_raises(self):
        trace = ValueTrace("p")
        trace.record(0, 1.0)
        with pytest.raises(ValueError):
            energy_from_trace(trace, 5, 5)

    def test_uj_per_kb(self):
        assert uj_per_kb(143.0, DataSize.from_kb(216.5)) \
            == pytest.approx(0.6605, rel=0.001)
        with pytest.raises(ValueError):
            uj_per_kb(1.0, DataSize(0))

    def test_report_from_power(self):
        report = EnergyReport.from_power(
            controller="UPaRC_i",
            bitstream=DataSize.from_kb(216.5),
            duration_ps=550 * 10**6,
            power_mw=259.0,
            idle_mw=30.0,
        )
        assert report.energy_uj == pytest.approx(142.45)
        assert report.uj_per_kb == pytest.approx(0.658, rel=0.01)
        assert report.energy_uj_idle_corrected \
            == pytest.approx((259 - 30) * 1e-3 * 550e-6 * 1e6)

    def test_report_from_power_invalid_duration(self):
        with pytest.raises(ValueError):
            EnergyReport.from_power("x", DataSize(1), 0, 1.0, 0.0)


def test_idle_corrected_uj_per_kb():
    report = EnergyReport.from_power(
        controller="x", bitstream=DataSize.from_kb(100),
        duration_ps=10**9, power_mw=130.0, idle_mw=30.0)
    assert report.uj_per_kb_idle_corrected \
        == pytest.approx(report.uj_per_kb * 100.0 / 130.0, rel=0.001)


class TestEnergyIntegration:
    """Focused check of the mW*ps area accumulator in energy_from_trace
    (renamed from a ``*_ps``-suffixed float during the repro.lint
    cleanup — the behavior must be unchanged)."""

    def test_constant_power_integrates_exactly(self):
        trace = ValueTrace("power_mw")
        trace.record(0, 100.0)
        # 100 mW over 1e9 ps = 0.1 W * 1e-3 s = 1e-4 J = 100 uJ.
        assert energy_from_trace(trace, 0, 10**9) == pytest.approx(100.0)

    def test_baseline_subtraction_clamps_at_zero(self):
        trace = ValueTrace("power_mw")
        trace.record(0, 20.0)
        # Baseline above the sample must clamp to zero, not go negative.
        assert energy_from_trace(trace, 0, 10**9, baseline_mw=30.0) == 0.0
