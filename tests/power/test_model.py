"""PowerModel state-to-power mapping."""

import pytest

from repro.errors import CalibrationError
from repro.power.model import ManagerState, PowerModel


@pytest.fixture
def model():
    return PowerModel()


def test_idle_is_static_only(model):
    assert model.total_mw() == model.idle_mw()
    assert model.idle_mw() == pytest.approx(30.0)


def test_manager_states_ordered(model):
    idle = model.manager_mw(ManagerState.IDLE)
    wait = model.manager_mw(ManagerState.WAIT)
    control = model.manager_mw(ManagerState.CONTROL)
    assert idle < wait < control


def test_unknown_manager_state_rejected(model):
    with pytest.raises(CalibrationError):
        model.manager_mw("sleeping")


def test_chain_power_zero_when_inactive(model):
    assert model.chain_mw(False, 300.0) == 0.0


def test_chain_power_grows_with_frequency(model):
    assert model.chain_mw(True, 300.0) > model.chain_mw(True, 50.0)


def test_uparc_reconfiguration_power_matches_fig7(model):
    for mhz, total in ((50.0, 183.0), (100.0, 259.0),
                       (200.0, 394.0), (300.0, 453.0)):
        assert model.uparc_reconfiguration_mw(mhz) == pytest.approx(total)


def test_xps_reconfiguration_power_is_45mw(model):
    assert model.xps_reconfiguration_mw() == pytest.approx(45.0)


def test_decompressor_adds_power(model):
    without = model.uparc_reconfiguration_mw(255.0)
    with_decomp = model.uparc_reconfiguration_mw(
        255.0, decompressor_clk3_mhz=125.0)
    assert with_decomp > without


def test_breakdown_totals_consistent(model):
    breakdown = model.breakdown(manager_state=ManagerState.WAIT,
                                chain_active=True, clk2_mhz=200.0)
    assert breakdown.total == pytest.approx(
        breakdown.static + breakdown.manager + breakdown.chain
        + breakdown.decompressor)
    assert breakdown.total == pytest.approx(394.0)


def test_breakdown_chain_components(model):
    breakdown = model.breakdown(chain_active=True, clk2_mhz=100.0)
    parts = breakdown.chain_components(
        model.calibration.chain_split)
    assert sum(parts.values()) == pytest.approx(breakdown.chain)
    assert parts["bram"] > parts["urec"]


def test_analytic_mode_monotone_in_frequency():
    model = PowerModel(analytic=True)
    powers = [model.uparc_reconfiguration_mw(mhz)
              for mhz in (50, 100, 200, 300, 362.5)]
    assert powers == sorted(powers)
