"""Power calibration against the paper's Section V numbers."""

import pytest

from repro.errors import CalibrationError
from repro.power.calibration import Calibration, ML605_CALIBRATION


class TestMl605Calibration:
    def test_fig7_points_recorded(self):
        points = ML605_CALIBRATION.fig7_points_mhz_mw
        assert points == {50.0: 183.0, 100.0: 259.0,
                          200.0: 394.0, 300.0: 453.0}

    def test_uparc_busy_power_exact_at_table_points(self):
        for mhz, total in ML605_CALIBRATION.fig7_points_mhz_mw.items():
            assert ML605_CALIBRATION.uparc_busy_mw(mhz) \
                == pytest.approx(total)

    def test_interpolation_between_points(self):
        mid = ML605_CALIBRATION.uparc_busy_mw(150.0)
        assert 259.0 < mid < 394.0

    def test_extrapolation_beyond_300(self):
        # The 362.5 MHz point extends the 200-300 segment.
        high = ML605_CALIBRATION.uparc_busy_mw(362.5)
        assert high > 453.0
        slope = (453.0 - 394.0) / 100.0
        assert high == pytest.approx(453.0 + slope * 62.5)

    def test_low_frequency_scales_toward_floor(self):
        low = ML605_CALIBRATION.uparc_busy_mw(25.0)
        floor = (ML605_CALIBRATION.static_mw
                 + ML605_CALIBRATION.manager_wait_mw)
        assert floor < low < 183.0

    def test_xps_busy_is_45mw(self):
        # Section V: 30 uJ/KB at 1.5 MB/s implies 45 mW.
        assert ML605_CALIBRATION.xps_busy_mw() == pytest.approx(45.0)

    def test_energy_anchors_are_mutually_consistent(self):
        # UPaRC at 100 MHz: 259 mW for ~554 us over 216.5 KB.
        uparc_uj_per_kb = 259e-3 * 554.3e-6 * 1e6 / 216.5
        # xps: 45 mW at 1.5 MB/s.
        xps_uj_per_kb = 45e-3 / (1.5e3 / 1e6) / 1e3 * 1e3 / 1024 * 1000
        xps_uj_per_kb = 45e-3 / (1.5 * 1e6 / 1024) * 1e6  # mW / (KB/s) -> uJ/KB
        assert uparc_uj_per_kb == pytest.approx(0.66, rel=0.02)
        assert xps_uj_per_kb == pytest.approx(30.0, rel=0.05)
        assert xps_uj_per_kb / uparc_uj_per_kb == pytest.approx(45, rel=0.05)

    def test_analytic_fit_within_10_percent_of_table(self):
        for mhz in (50.0, 100.0, 200.0, 300.0):
            table = ML605_CALIBRATION.uparc_busy_mw(mhz)
            fit = ML605_CALIBRATION.uparc_busy_mw(mhz, analytic=True)
            assert abs(fit - table) / table < 0.10

    def test_chain_split_sums_to_one(self):
        assert sum(ML605_CALIBRATION.chain_split.values()) \
            == pytest.approx(1.0)


class TestValidation:
    def test_too_few_points_rejected(self):
        with pytest.raises(CalibrationError):
            Calibration(board="x", fig7_points_mhz_mw={100.0: 259.0})

    def test_point_below_floor_rejected(self):
        with pytest.raises(CalibrationError):
            Calibration(board="x",
                        fig7_points_mhz_mw={50.0: 40.0, 100.0: 259.0})

    def test_nonpositive_power_rejected(self):
        with pytest.raises(CalibrationError):
            Calibration(board="x",
                        fig7_points_mhz_mw={50.0: -1.0, 100.0: 259.0})

    def test_bad_chain_split_rejected(self):
        with pytest.raises(CalibrationError):
            Calibration(board="x",
                        fig7_points_mhz_mw={50.0: 183.0, 100.0: 259.0},
                        chain_split={"bram": 0.5})

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(CalibrationError):
            ML605_CALIBRATION.chain_dynamic_mw(0.0)
