#!/usr/bin/env python3
"""Choosing a bitstream codec: ratio vs throughput vs area.

Section III-C stores over-sized bitstreams compressed; Section VI
proposes swapping the decompressor at run time "depending on the
requirements of compression ratios, hardware resources, different
frequency limits".  This example walks that decision for a concrete
design: a 256 KB staging BRAM that must hold modules up to 900 KB.

It measures every Table I codec on synthetic bitstreams, derives the
effective BRAM capacity each achieves, and cross-references the
hardware decompressor library for the ones with hardware streaming
implementations.

Run:  python examples/compression_tradeoffs.py
"""

from repro.analysis.report import render_table
from repro.bitstream.generator import generate_bitstream
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.fpga.area import PACKERS, ResourceInventory
from repro.fpga.decompressor import DECOMPRESSOR_LIBRARY
from repro.units import DataSize

BRAM_KB = 256.0
REQUIRED_MODULE_KB = 900.0

# Table I codec -> hardware decompressor (where one exists).
HARDWARE = {spec.codec_name: spec
            for spec in DECOMPRESSOR_LIBRARY.values()}


def main() -> None:
    corpus = [generate_bitstream(size=DataSize.from_kb(kb), seed=int(kb))
              for kb in (49, 81, 156)]

    rows = []
    for codec in all_codecs():
        ratios = [codec.measure(bs.raw_bytes) for bs in corpus]
        mean_ratio = sum(r.ratio_percent for r in ratios) / len(ratios)
        factor = sum(r.factor for r in ratios) / len(ratios)
        capacity_kb = BRAM_KB * factor
        spec = HARDWARE.get(codec.name)
        if spec is not None:
            throughput = spec.output_bandwidth_mbps(spec.max_frequency)
            slices = PACKERS["virtex5"].slices(
                ResourceInventory(luts=spec.luts, ffs=spec.ffs))
            hw = f"{throughput * 1.048576:.0f} MB/s, {slices} slices"
        else:
            hw = "software only"
        feasible = "yes" if capacity_kb >= REQUIRED_MODULE_KB else "no"
        rows.append([codec.name, mean_ratio,
                     PAPER_TABLE1_RATIOS[codec.name],
                     capacity_kb, feasible, hw])

    print(render_table(
        ["codec", "ratio %", "paper %", "eff. capacity KB",
         f">= {REQUIRED_MODULE_KB:g} KB?", "hardware decompressor"],
        rows,
        title=f"Codec selection for a {BRAM_KB:g} KB staging BRAM"))

    print(
        "\nThe paper's choice: X-MatchPRO -- the best ratio among codecs"
        "\nwith a gigabit-rate hardware implementation (Zip/7-zip ratios"
        "\nare higher but have no streaming hardware at these rates),"
        "\nstretching 256 KB to ~992 KB of raw bitstream."
    )


if __name__ == "__main__":
    main()
