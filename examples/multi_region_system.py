#!/usr/bin/env python3
"""A two-region system: floorplan validation + time-multiplexed swaps.

A production partial-reconfiguration design serves several
reconfigurable partitions from one controller.  This example floorplans
two regions on the XC5VSX50T, generates region-targeted partial
bitstreams for a crypto and a DSP partition, and lets UPaRC swap both —
with the floorplan catching the classic deployment mistake of loading a
bitstream into the wrong partition *before* it scrambles the fabric.

Run:  python examples/multi_region_system.py
"""

from repro import Floorplan, Region, UPaRCSystem, generate_bitstream
from repro.analysis.report import render_table
from repro.bitstream.device import VIRTEX5_SX50T
from repro.bitstream.frames import BlockType, FrameAddress
from repro.errors import CapacityError
from repro.units import DataSize, Frequency


def far(column):
    return FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0,
                        column=column, minor=0)


def main() -> None:
    floorplan = Floorplan(VIRTEX5_SX50T)
    crypto = floorplan.add_region(Region("crypto", far(4),
                                         frame_count=220))
    dsp = floorplan.add_region(Region("dsp", far(12),
                                      frame_count=520))
    for region in floorplan.regions:
        print(f"placed {region}  "
              f"(capacity {region.capacity(VIRTEX5_SX50T)})")

    modules = {
        "aes-128": (crypto, DataSize.from_kb(32)),
        "rsa-2048": (crypto, DataSize.from_kb(34)),
        "fir-bank": (dsp, DataSize.from_kb(80)),
        "fft-1k": (dsp, DataSize.from_kb(76)),
    }

    system = UPaRCSystem(decompressor=None)
    system.set_frequency(Frequency.from_mhz(362.5))

    rows = []
    for name, (region, size) in modules.items():
        bitstream = generate_bitstream(size=size, origin=region.origin,
                                       seed=hash(name) % 10_000,
                                       design_name=name)
        matched = floorplan.validate(bitstream, region.name)
        result = system.run(bitstream)
        rows.append([name, matched.name, str(bitstream.size),
                     result.transfer_ps / 1e6,
                     result.bandwidth_decimal_mbps,
                     result.frames_written])

    print()
    print(render_table(
        ["module", "region", "size", "swap us", "MB/s", "frames"],
        rows, title="Module swaps at 362.5 MHz"))

    # The deployment mistake: a DSP bitstream aimed at the crypto slot.
    rogue = generate_bitstream(size=DataSize.from_kb(80),
                               origin=dsp.origin, design_name="fir-bank")
    try:
        floorplan.validate(rogue, "crypto")
    except CapacityError as error:
        print(f"\nwrong-region load rejected: {error}")


if __name__ == "__main__":
    main()
