#!/usr/bin/env python3
"""Scheduling a task graph over two reconfigurable regions.

An OFDM receiver expressed as a task DAG: channel estimation and
equalization depend on the FFT; the decoder joins both branches; the
next symbol's FFT reuses the module already resident in its region.
One UPaRC instance serves both regions (reconfigurations serialize
through the single ICAP; preloads hide under computation).

Run:  python examples/task_graph_application.py
"""

from repro import DagScheduler, DagTask, generate_bitstream
from repro.analysis.report import render_table
from repro.units import DataSize, Frequency, us

MODULES = {
    "fft": 49,        # KB of partial bitstream
    "chan-est": 30,
    "equalizer": 49,
    "viterbi": 81,
}


def main() -> None:
    bitstreams = {name: generate_bitstream(size=DataSize.from_kb(kb),
                                           seed=kb, design_name=name)
                  for name, kb in MODULES.items()}

    def task(name, module, region, compute_us, deps=()):
        return DagTask(name=name, module=module,
                       bitstream=bitstreams[module], region=region,
                       compute_ps=us(compute_us), deps=deps)

    graph = [
        task("fft#0", "fft", "r0", 400),
        task("chan-est#0", "chan-est", "r1", 300, deps=("fft#0",)),
        task("equalize#0", "equalizer", "r0", 350, deps=("fft#0",
                                                         "chan-est#0")),
        task("decode#0", "viterbi", "r1", 600, deps=("equalize#0",)),
        # Next symbol: the FFT region was overwritten by the equalizer,
        # but r1's viterbi survives for symbol 1's decode (module reuse).
        task("fft#1", "fft", "r0", 400, deps=("decode#0",)),
        task("equalize#1", "equalizer", "r0", 350, deps=("fft#1",)),
        task("decode#1", "viterbi", "r1", 600, deps=("equalize#1",)),
    ]

    scheduler = DagScheduler(
        reconfiguration_frequency=Frequency.from_mhz(362.5))
    report = scheduler.schedule(graph)

    rows = [[entry.task, entry.phase, entry.start_ps / 1e6,
             entry.end_ps / 1e6]
            for entry in sorted(report.timeline,
                                key=lambda e: (e.start_ps, e.task))]
    print(render_table(["task", "phase", "start us", "end us"], rows,
                       title="OFDM receiver schedule (2 regions)"))

    serial = scheduler.serial_baseline(graph)
    print(f"\nmakespan: {report.makespan_ps / 1e6:.0f} us "
          f"(serial baseline {serial / 1e6:.0f} us, "
          f"{(1 - report.makespan_ps / serial) * 100:.0f}% saved)")
    print(f"reconfigurations: {report.reconfigurations}, "
          f"module reuses: {report.reuses}")


if __name__ == "__main__":
    main()
