#!/usr/bin/env python3
"""Hiding bitstream preloads in computation idle time.

Section III-A-1: a scheduler that knows the next tasks can preload
their bitstreams into the dual-port BRAM while the current task
computes, leaving only the (ultra-fast) reconfiguration itself on the
critical path.

The scenario: a vision pipeline that time-multiplexes one
reconfigurable region across four accelerators per frame.

Run:  python examples/prefetch_pipeline.py [--trace trace.json]

With ``--trace`` both computed schedules are exported as Chrome
trace_event timelines — one trace "process" per strategy, one lane
per task — so the preload/compute overlap is visible side by side in
Perfetto (https://ui.perfetto.dev).  Summarise from the terminal with
``python -m repro obs``.
"""

import argparse

from repro import PrefetchScheduler, Task, generate_bitstream, obs
from repro.analysis.report import render_table
from repro.units import DataSize, Frequency, ms

PIPELINE = [
    # (accelerator, bitstream KB, compute per frame)
    ("debayer", 49, ms(2.0)),
    ("denoise", 81, ms(3.5)),
    ("optical-flow", 156, ms(6.0)),
    ("h264-me", 81, ms(4.0)),
]


def schedules_to_trace(reports) -> obs.Tracer:
    """Export schedule timelines as trace spans, one pid per strategy."""
    tracer = obs.Tracer()
    for strategy in sorted(reports):
        report = reports[strategy]
        pid = tracer.register(f"schedule:{strategy}")
        for entry in sorted(report.timeline,
                            key=lambda e: (e.start_ps, e.task)):
            tracer.add_span(obs.SpanRecord(
                name=f"{entry.task}.{entry.phase}", cat="schedule",
                pid=pid, track=entry.task,
                start_ps=entry.start_ps, end_ps=entry.end_ps))
    return tracer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace_event JSON of the "
                             "computed schedules")
    # parse_known_args: the example-smoke tests execute this file
    # in-process under the test runner's argv.
    args, _ = parser.parse_known_args()
    reports = run()
    if args.trace:
        count = obs.write_chrome_trace(schedules_to_trace(reports),
                                       args.trace)
        print(f"\ntrace: {count} events -> {args.trace}")


def run():
    tasks = [
        Task(name, generate_bitstream(size=DataSize.from_kb(kb), seed=kb),
             compute_ps=compute)
        for name, kb, compute in PIPELINE
    ]
    scheduler = PrefetchScheduler(
        reconfiguration_frequency=Frequency.from_mhz(362.5))

    reports = scheduler.compare(tasks)
    for strategy, report in reports.items():
        rows = [[entry.task, entry.phase,
                 entry.start_ps / 1e9, entry.end_ps / 1e9]
                for entry in sorted(report.timeline,
                                    key=lambda e: (e.start_ps, e.task))]
        print(render_table(
            ["task", "phase", "start ms", "end ms"], rows,
            title=f"{strategy} schedule "
                  f"(makespan {report.makespan_ps / 1e9:.3f} ms)"))
        print()

    saved = scheduler.savings_percent(tasks)
    sequential = reports["sequential"].makespan_ps / 1e9
    prefetch = reports["prefetch"].makespan_ps / 1e9
    print(f"frame time: {sequential:.3f} ms -> {prefetch:.3f} ms "
          f"({saved:.1f}% saved by prefetching)")
    fps_before = 1000.0 / sequential
    fps_after = 1000.0 / prefetch
    print(f"throughput: {fps_before:.1f} -> {fps_after:.1f} frames/s")
    return reports


if __name__ == "__main__":
    main()
