#!/usr/bin/env python3
"""Readback-verify scrubbing: detect and repair configuration upsets.

Combines the forward path (UPaRC burst reconfiguration) with the ICAP
readback path (RCFG/FDRO): a scrubber periodically reads the region's
frames back, compares them against the golden bitstream, and rewrites
the region when an upset is found — the standard SEU-mitigation loop
in radiation environments, made fast by UPaRC's bandwidth.

Run:  python examples/scrub_and_verify.py
"""

import random

from repro import UPaRCSystem, generate_bitstream
from repro.bitstream.generator import REGION_ORIGIN
from repro.units import DataSize, Frequency


def golden_frames(bitstream):
    start = bitstream.frame_payload_offset
    return bitstream.raw_words[start:start
                               + bitstream.frame_payload_words]


def main() -> None:
    bitstream = generate_bitstream(size=DataSize.from_kb(49))
    system = UPaRCSystem(decompressor=None, manager="hardware")
    system.set_frequency(Frequency.from_mhz(362.5))
    result = system.run(bitstream)
    print(f"initial configuration: {result.frames_written} frames in "
          f"{result.transfer_ps / 1e6:.1f} us")

    golden = golden_frames(bitstream)
    rng = random.Random(42)

    for cycle in range(1, 4):
        # A cosmic ray flips one configuration bit mid-mission.
        victim_frame = rng.randrange(bitstream.frame_count)
        device = bitstream.spec.device
        address = REGION_ORIGIN
        for _ in range(victim_frame):
            address = address.next_in(device)
        frame = system.config_memory.read_frame(address)
        frame[rng.randrange(device.frame_words)] ^= 1 << rng.randrange(32)
        system.config_memory.write_frame(address, frame)

        # Scrub pass: read back and compare.
        system.icap.enable()
        data, read_ps = system.icap.readback(REGION_ORIGIN,
                                             bitstream.frame_count)
        system.icap.disable()
        upsets = sum(1 for got, want in zip(data, golden) if got != want)
        print(f"\nscrub cycle {cycle}: readback {len(data)} words in "
              f"{read_ps / 1e6:.1f} us -> {upsets} corrupted word(s) "
              f"in frame {victim_frame}")

        # Frame-level repair: rewrite only the corrupted frame with a
        # minimal repair bitstream (~170 words instead of the full
        # region).
        from repro.bitstream.generator import frame_repair_bitstream
        golden_frame = golden[victim_frame * device.frame_words:
                              (victim_frame + 1) * device.frame_words]
        repair_bits = frame_repair_bitstream(device, address,
                                             [list(golden_frame)])
        repair = system.run(repair_bits)
        print(f"frame repair: {repair.transfer_ps / 1e6:.2f} us "
              f"({repair_bits.size}), verified={repair.verified}")

        # Re-stage the golden region bitstream for the next cycle.
        system.preload(bitstream)

        system.icap.enable()
        data, _ = system.icap.readback(REGION_ORIGIN,
                                       bitstream.frame_count)
        system.icap.disable()
        assert data == golden
        print("post-repair readback: clean")


if __name__ == "__main__":
    main()
