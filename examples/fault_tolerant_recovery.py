#!/usr/bin/env python3
"""Fault recovery latency: why reconfiguration speed buys availability.

The paper's introduction: "A long inactive period of a part inside a
system may be prohibited in certain applications especially in
high-performance or fault-tolerant systems."

Scenario: a triple-modular-redundant processing card detects an upset
in one lane and must scrub it by rewriting the lane's partial
bitstream.  While the lane is down, the system runs degraded (2-of-3
voting).  This example computes the degraded-mode time per scrub and
the resulting availability over a mission, for every controller in
Table III.

Run:  python examples/fault_tolerant_recovery.py
"""

from repro.analysis.comparison import table3_controllers
from repro.analysis.reliability import controller_reliability
from repro.analysis.report import render_table
from repro.bitstream.generator import generate_bitstream
from repro.units import DataSize

LANE_BITSTREAM_KB = 216.5
UPSETS_PER_HOUR = 120.0  # aggressive orbital environment
MISSION_HOURS = 24.0


def main() -> None:
    bitstream = generate_bitstream(
        size=DataSize.from_kb(LANE_BITSTREAM_KB))

    rows = []
    for controller in table3_controllers():
        result = controller.best_result(bitstream)
        scrub_us = result.duration_ps / 1e6
        degraded_s = (UPSETS_PER_HOUR * MISSION_HOURS
                      * result.duration_ps / 1e12)
        availability = 1.0 - degraded_s / (MISSION_HOURS * 3600.0)
        rows.append([
            result.controller,
            result.bandwidth_decimal_mbps,
            scrub_us,
            degraded_s,
            f"{availability * 100:.6f}%",
        ])

    print(render_table(
        ["controller", "MB/s", "scrub us", "degraded s / mission",
         "lane availability"],
        rows,
        title=f"TMR lane scrubbing ({LANE_BITSTREAM_KB:g} KB lane, "
              f"{UPSETS_PER_HOUR:g} upsets/h, {MISSION_HOURS:g} h)"))

    fastest = min(rows, key=lambda row: row[2])
    slowest = max(rows, key=lambda row: row[2])
    print(f"\n{fastest[0]} keeps the lane down "
          f"{slowest[3] / fastest[3]:.0f}x less than {slowest[0]} "
          f"over the mission.")

    # With periodic readback-scrubbing instead of instant detection,
    # the optimal scrub period itself depends on repair speed.
    print()
    scrub_rows = []
    for controller in table3_controllers():
        result = controller.best_result(bitstream)
        repair_s = result.duration_ps / 1e12
        report = controller_reliability(
            result.controller, repair_s,
            upset_rate_per_s=UPSETS_PER_HOUR / 3600.0)
        scrub_rows.append([
            report.controller,
            report.policy.period_s * 1000.0,
            f"{report.availability * 100:.5f}%",
            report.downtime_s_per_day,
        ])
    print(render_table(
        ["controller", "optimal scrub ms", "availability",
         "downtime s/day"],
        scrub_rows,
        title="Blind periodic scrubbing at the optimal period"))


if __name__ == "__main__":
    main()
