#!/usr/bin/env python3
"""Quickstart: one reconfiguration through the full UPaRC system.

Builds the Fig. 2 system (Manager + UReC + DyCloGen + BRAM + ICAP) on
the simulated Virtex-5, retunes the reconfiguration clock to the
paper's headline 362.5 MHz, preloads a synthetic 216.5 KB partial
bitstream and fires one reconfiguration.

Run:  python examples/quickstart.py [--trace trace.json]

With ``--trace`` the run executes under ``repro.obs`` tracing and
writes a Chrome trace_event JSON you can open in Perfetto
(https://ui.perfetto.dev) or summarise with ``python -m repro obs``.
"""

import argparse

from repro import UPaRCSystem, generate_bitstream, obs
from repro.units import DataSize, Frequency


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace_event JSON of the run")
    # parse_known_args: the example-smoke tests execute this file
    # in-process under the test runner's argv.
    args, _ = parser.parse_known_args()
    with obs.observed(trace=bool(args.trace)) as observation:
        run()
    if args.trace:
        count = obs.write_chrome_trace(observation.tracer, args.trace)
        print(f"\ntrace: {count} events -> {args.trace}")


def run() -> None:
    # A synthetic partial bitstream with realistic configuration-data
    # statistics (the substitution for a real Virtex-5 .bit file).
    bitstream = generate_bitstream(size=DataSize.from_kb(216.5))
    print(f"bitstream: {bitstream.size} "
          f"({bitstream.frame_count} frames of "
          f"{bitstream.spec.device.frame_words} words, "
          f"device {bitstream.spec.device.name})")

    system = UPaRCSystem()

    # DyCloGen retunes CLK_2 through the DCM's DRP: M=29, D=8.
    achieved = system.set_frequency(Frequency.from_mhz(362.5))
    settings = system.dyclogen.settings_of("clk2")
    print(f"CLK_2 = {achieved} (DCM M={settings.multiplier}, "
          f"D={settings.divisor})")

    # Preload (off the critical path -- port A of the dual-port BRAM),
    # then reconfigure (Start -> burst -> Finish).
    result = system.run(bitstream)

    print(f"\nmode:            {result.mode}")
    print(f"reconfiguration: {result.transfer_ps / 1e6:.1f} us "
          f"(+{result.control_overhead_ps / 1e6:.1f} us control)")
    print(f"bandwidth:       {result.bandwidth_decimal_mbps:.0f} MB/s "
          f"(paper: 1433 MB/s)")
    print(f"verified:        {result.verified} "
          f"(ICAP CRC {result.payload_crc:#010x})")
    if result.energy is not None:
        print(f"energy:          {result.energy.energy_uj:.1f} uJ "
              f"({result.energy.uj_per_kb:.3f} uJ/KB)")


if __name__ == "__main__":
    main()
