#!/usr/bin/env python3
"""Power-aware frequency adaptation for a software-defined radio.

The scenario the paper's introduction motivates: a reconfigurable
system that must "auto-adapt to various performance and consumption
conditions ... during run-time".  An SDR terminal swaps demodulator
modules as the radio environment changes; each operating condition
imposes a different reconfiguration deadline and power budget:

* handover   — the link is down while the demodulator swaps: tightest
  deadline, power is secondary;
* background — scanning alternative bands: relaxed deadline, strict
  power budget (battery);
* emergency  — thermal alarm: hard power cap, best effort timing.

The Manager's frequency-adaptation policy picks the CLK_2 operating
point per condition (the paper's rule: lowest frequency that meets
the constraints) and the full system executes at that point.

Run:  python examples/adaptive_sdr_pipeline.py
"""

from repro import FrequencyPolicy, PowerModel, UPaRCSystem, \
    generate_bitstream
from repro.analysis.report import render_table
from repro.errors import PolicyError
from repro.units import DataSize, us

DEMODULATOR_KB = 156.0  # one demodulator partial bitstream

CONDITIONS = [
    # (name, deadline_us, power_budget_mw)
    ("handover", 500.0, None),
    ("background scan", 5000.0, 260.0),
    ("thermal emergency", None, 200.0),
]


def main() -> None:
    bitstream = generate_bitstream(size=DataSize.from_kb(DEMODULATOR_KB))
    policy = FrequencyPolicy(PowerModel())
    system = UPaRCSystem(decompressor=None)

    rows = []
    for name, deadline_us, budget_mw in CONDITIONS:
        deadline_ps = us(deadline_us) if deadline_us is not None else None
        point = policy.select(bitstream.size, deadline_ps=deadline_ps,
                              power_budget_mw=budget_mw)

        # Execute at the selected point to confirm the prediction.
        result = system.run(bitstream, frequency=point.frequency)
        rows.append([
            name,
            f"{deadline_us:g} us" if deadline_us is not None else "-",
            f"{budget_mw:g} mW" if budget_mw is not None else "-",
            str(point.frequency),
            result.transfer_ps / 1e6,
            result.energy.mean_power_mw,
            result.energy.energy_uj,
        ])

    print(render_table(
        ["condition", "deadline", "budget", "CLK_2", "time us",
         "power mW", "energy uJ"],
        rows, title="SDR demodulator swap under run-time constraints"))

    # What happens when constraints cannot be met together?
    try:
        policy.select(bitstream.size, deadline_ps=us(450),
                      power_budget_mw=200.0)
    except PolicyError as error:
        print(f"\ninfeasible request correctly rejected: {error}")


if __name__ == "__main__":
    main()
