#!/usr/bin/env python3
"""Maintainer tool: regenerate the golden bitstream fixture.

Run ONLY after an intentional change to the bitstream format or the
generator; update the SHA-256 constant in
``tests/bitstream/test_golden.py`` with the printed value and note the
format change in EXPERIMENTS.md.

Usage::

    python tools/regenerate_golden.py
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.bitstream.generator import generate_bitstream
from repro.units import DataSize

TARGET = Path(__file__).resolve().parent.parent / "tests" / "data" \
    / "golden_4kb_seed2012.bit"


def main() -> None:
    bitstream = generate_bitstream(size=DataSize.from_kb(4), seed=2012)
    TARGET.parent.mkdir(parents=True, exist_ok=True)
    TARGET.write_bytes(bitstream.file_bytes)
    digest = hashlib.sha256(bitstream.file_bytes).hexdigest()
    print(f"wrote {TARGET} ({len(bitstream.file_bytes)} bytes)")
    print(f"GOLDEN_SHA256 = \"{digest}\"")


if __name__ == "__main__":
    main()
