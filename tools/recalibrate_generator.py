#!/usr/bin/env python3
"""Maintainer tool: re-fit the bitstream generator to Table I.

The content-mixture defaults in ``BitstreamSpec`` were produced by
this search (see DESIGN.md §1).  Re-run it after changing a codec or
adding Table I rows; paste the winning parameters into
``repro/bitstream/generator.py`` and update EXPERIMENTS.md.

Usage::

    python tools/recalibrate_generator.py [trials] [size_kb]

Prints the best parameter set found and its per-codec deltas.
"""

from __future__ import annotations

import random
import sys

from repro.bitstream.generator import generate_bitstream
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.units import DataSize


def evaluate(params: dict, size_kb: float, seeds=(2012, 77)) -> tuple:
    """(squared error vs Table I, per-codec mean ratios)."""
    ratios = {name: 0.0 for name in PAPER_TABLE1_RATIOS}
    for seed in seeds:
        bitstream = generate_bitstream(
            size=DataSize.from_kb(size_kb), seed=seed, **params)
        for codec in all_codecs():
            ratios[codec.name] += (
                codec.measure(bitstream.raw_bytes).ratio_percent
                / len(seeds))
    error = sum((ratios[name] - paper) ** 2
                for name, paper in PAPER_TABLE1_RATIOS.items())
    return error, ratios


def random_candidate(rng: random.Random) -> dict:
    zero = rng.uniform(0.15, 0.40)
    motif = rng.uniform(0.05, 0.30)
    copy = rng.uniform(0.02, 0.20)
    sparse = rng.uniform(0.20, 0.50)
    dense = rng.uniform(0.02, 0.15)
    total = zero + motif + copy + sparse + dense
    return dict(
        zero_run_weight=zero / total,
        motif_run_weight=motif / total,
        copy_weight=copy / total,
        sparse_weight=sparse / total,
        dense_weight=dense / total,
        zero_run_mean=rng.uniform(3.0, 10.0),
        motif_run_mean=rng.uniform(1.1, 5.0),
        copy_run_mean=rng.uniform(2.0, 8.0),
        motif_pool=rng.choice([8, 16, 24, 48]),
    )


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    size_kb = float(sys.argv[2]) if len(sys.argv) > 2 else 48.0
    rng = random.Random(7)

    # Start from the shipped defaults.
    best_params: dict = {}
    best_error, best_ratios = evaluate(best_params, size_kb)
    print(f"shipped defaults: error {best_error:.1f}")

    for trial in range(trials):
        params = random_candidate(rng)
        error, ratios = evaluate(params, size_kb)
        if error < best_error:
            best_error, best_params, best_ratios = error, params, ratios
            print(f"trial {trial}: error {error:.1f}")

    print(f"\nbest error: {best_error:.1f}")
    if best_params:
        print("parameters:")
        for key, value in best_params.items():
            print(f"  {key} = {value}")
    else:
        print("the shipped defaults remain the best found")
    print("\nper-codec deltas vs Table I:")
    for name, paper in PAPER_TABLE1_RATIOS.items():
        delta = best_ratios[name] - paper
        print(f"  {name:12s} {best_ratios[name]:5.1f}  ({delta:+.1f})")


if __name__ == "__main__":
    main()
