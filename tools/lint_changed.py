#!/usr/bin/env python3
"""Lint only the Python files changed relative to a git ref.

The analyzer is a whole-program tool: pass 1 still summarizes every
file so cross-module rules (unit flow, races, backend contract) keep
their context, but pass 2 — the expensive rule run — is restricted to
the changed files via ``lint_files(..., report_only=...)``.  With the
shared incremental cache (``.repro-lint-cache/`` by default) the
unchanged summaries are all warm, so this is the fast pre-push check:

    python tools/lint_changed.py              # vs origin/main
    python tools/lint_changed.py --ref HEAD~3

Changed means: tracked files that differ from ``--ref`` plus untracked
files, intersected with the analyzer's normal file collection (so
fixture trees stay excluded exactly as in a full run).  The repo
baseline applies, scoped to the changed files — entries for unchanged
files are never reported stale.  Exit codes match ``repro lint``:
0 clean, 1 violations, 2 usage/git error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import (  # noqa: E402  (sys.path bootstrap above)
    LintCache,
    all_rules,
    apply_baseline,
    collect_files,
    format_text,
    lint_files,
    load_baseline,
)
from repro.lint.baseline import (  # noqa: E402
    DEFAULT_BASELINE_NAME,
    BaselineError,
    normalize_path,
)
from repro.lint.cli import (  # noqa: E402
    DEFAULT_CACHE_DIR,
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
)


def _git(root: Optional[Path], *argv: str) -> str:
    command = ["git"] + (["-C", str(root)] if root is not None else []) \
        + list(argv)
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(result.stderr.strip()
                           or f"git {' '.join(argv)} failed")
    return result.stdout


def changed_files(root: Path, ref: str) -> List[Path]:
    """Tracked-and-modified plus untracked ``*.py`` files, resolved."""
    diff = _git(root, "diff", "--name-only", "-z", ref, "--", "*.py")
    untracked = _git(root, "ls-files", "--others", "--exclude-standard",
                     "-z", "--", "*.py")
    names = {name for name in (diff + untracked).split("\0") if name}
    # Deleted files still appear in the diff; there is nothing to lint.
    return sorted(path for name in names
                  if (path := (root / name)).is_file())


def run(args: argparse.Namespace) -> int:
    try:
        root = Path(_git(None, "rev-parse", "--show-toplevel").strip())
        changed = changed_files(root, args.ref)
    except RuntimeError as exc:
        print(f"lint-changed: {exc}", file=sys.stderr)
        return EXIT_USAGE

    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",")
                  if rule.strip()]
        unknown = [rule for rule in select if rule not in all_rules()]
        if unknown:
            print(f"lint-changed: unknown rule id(s): "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return EXIT_USAGE

    if not changed:
        print(f"lint-changed: no Python files changed vs {args.ref}")
        return EXIT_CLEAN

    # The index spans the whole repo; collect_files applies the usual
    # exclusions, so changed fixture files are skipped, not linted.
    files = collect_files([str(root)])
    linted = [f for f in files if f.resolve()
              in {c.resolve() for c in changed}]
    skipped = len(changed) - len(linted)
    print(f"lint-changed: {len(linted)} changed file(s) vs {args.ref}"
          + (f" ({skipped} excluded from analysis)" if skipped else ""))
    if not linted:
        return EXIT_CLEAN

    cache = None if args.no_cache else LintCache(args.cache_dir)
    violations = lint_files(files, select=select, cache=cache,
                            report_only=[str(f) for f in linted])

    baseline_path = args.baseline
    default_baseline = root / DEFAULT_BASELINE_NAME
    if baseline_path is None and not args.no_baseline \
            and default_baseline.is_file():
        baseline_path = str(default_baseline)
    if baseline_path is not None and not args.no_baseline:
        try:
            violations = apply_baseline(
                violations, load_baseline(baseline_path), baseline_path,
                checked_paths={normalize_path(str(f)) for f in linted},
                checked_rules=set(select) if select is not None else None)
        except BaselineError as exc:
            print(f"lint-changed: {exc}", file=sys.stderr)
            return EXIT_USAGE

    print(format_text(violations, files_checked=len(linted)))
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_changed.py",
        description="Lint only the files changed relative to a git ref, "
                    "with full whole-program context.")
    parser.add_argument("--ref", default="origin/main",
                        help="git ref to diff against "
                             "(default: origin/main)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: repo baseline "
                             "if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="incremental cache directory, shared with "
                             "`repro lint` (default: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental analysis cache")
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
