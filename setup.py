from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "UPaRC (DATE 2012) reproduction: ultra-fast power-aware FPGA "
        "reconfiguration controller, simulated end to end in Python"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["networkx"],
    python_requires=">=3.9",
)
