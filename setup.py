from setuptools import setup, find_packages

# The compiled accel kernels are strictly optional: only wire the
# cffi build hook in when cffi is importable, so a base install never
# needs a C toolchain and degrades to the numpy/pure backends.
try:
    import cffi  # noqa: F401
    cffi_kwargs = {
        "cffi_modules": [
            "src/repro/accel/_native/build_native.py:ffibuilder",
        ],
        "setup_requires": ["cffi>=1.12"],
    }
except ImportError:
    cffi_kwargs = {}

setup(
    name="repro",
    version="1.0.0",
    description=(
        "UPaRC (DATE 2012) reproduction: ultra-fast power-aware FPGA "
        "reconfiguration controller, simulated end to end in Python"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["networkx"],
    python_requires=">=3.9",
    **cffi_kwargs,
)
