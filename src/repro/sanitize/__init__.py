"""``repro.sanitize`` — dynamic race & determinism sanitizers.

TSan-style runtime checkers for the event kernel, complementing the
static R701–R704 race rules with ground truth from real executions:

* :class:`RaceSanitizer` (S901/S902) — happens-before race detection
  over attribute accesses of controller/FPGA/core state
  (:mod:`repro.sanitize.race`).
* :class:`DeterminismSanitizer` (S903) — seeded perturbation of
  same-instant event order with event-stream/output digest diffing
  (:mod:`repro.sanitize.determinism`).
* :func:`cross_validate` — classify dynamic vs static findings as
  confirmed / dynamic-only / static-only
  (:mod:`repro.sanitize.crossval`).

Quick start::

    from repro.sanitize import sanitized

    with sanitized() as sanitizer:
        system = UPaRCSystem()          # auto-instrumented
        system.run(bitstream, frequency)
    for finding in sanitizer.findings:
        print(finding.describe())

CLI: ``python -m repro sanitize [paths...]`` runs scripts under both
sanitizers and cross-validates against the static analyzer; ``--sanitize``
on the table/figure and sweep commands wraps those runs the same way.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

from repro.sanitize.crossval import (
    CrossValidationReport,
    RACE_RULE_IDS,
    SANITIZE_RULE_METADATA,
    cross_validate,
    findings_to_violations,
    format_crossval_text,
    format_sanitize_sarif,
    static_race_findings,
)
from repro.sanitize.determinism import (
    DeterminismSanitizer,
    DivergenceFinding,
    RunRecord,
    StreamRecorder,
)
from repro.sanitize.hb import (
    HBTracker,
    Task,
    TrackerListener,
    VectorClock,
    happens_before,
)
from repro.sanitize.race import (
    ORDER_DIVERGENCE,
    READ_WRITE_RACE,
    RaceSanitizer,
    SanitizerFinding,
    WRITE_WRITE_RACE,
)

__all__ = [
    # happens-before core
    "HBTracker", "Task", "TrackerListener", "VectorClock",
    "happens_before",
    # race sanitizer
    "RaceSanitizer", "SanitizerFinding", "WRITE_WRITE_RACE",
    "READ_WRITE_RACE", "ORDER_DIVERGENCE", "sanitized",
    # determinism sanitizer
    "DeterminismSanitizer", "DivergenceFinding", "RunRecord",
    "StreamRecorder",
    # cross-validation + reporting
    "CrossValidationReport", "RACE_RULE_IDS",
    "SANITIZE_RULE_METADATA", "cross_validate",
    "findings_to_violations", "format_crossval_text",
    "format_sanitize_sarif", "static_race_findings",
]


@contextmanager
def sanitized(auto_instrument: bool = True,
              track_reads: bool = True,
              justified: Tuple[str, ...] = (),
              ) -> Iterator[RaceSanitizer]:
    """Race-sanitize everything simulated inside the block.

    Simulators constructed inside the block are tracked via the
    kernel construction hook; model classes are auto-instrumented
    unless ``auto_instrument=False`` (then only
    :meth:`RaceSanitizer.watch`-ed objects are checked).  Findings
    are on the yielded sanitizer after the block exits.
    """
    sanitizer = RaceSanitizer(auto_instrument=auto_instrument,
                              track_reads=track_reads,
                              justified=justified)
    sanitizer.open()
    try:
        yield sanitizer
    finally:
        sanitizer.close()
