"""Static ↔ dynamic cross-validation of race findings.

The static R701–R704 rules and the dynamic S901–S903 sanitizers look
at the same defect class from opposite sides: one approximates
happens-before from source text, the other measures it on a real
execution.  This module runs the static race rules over the files a
scenario exercised, matches each dynamic finding's schedule/spawn
sites against the static violations, and classifies the union:

* **confirmed** — a static violation whose site a dynamic finding
  hit: the approximation was right, the race is real.
* **dynamic-only** — the sanitizer caught a race the static rules
  missed: a static false negative, and a candidate lint fixture.
* **static-only** — a static violation no dynamic finding touched:
  either a false positive or simply a path the scenario never
  exercised (the report cannot distinguish; a human must).

Dynamic findings convert to :class:`~repro.lint.violations.Violation`
records so the text/JSON/SARIF reporters — and CI's SARIF upload —
serve both analyses through one surface.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.analyzer import collect_files, lint_files
from repro.lint.reporters import format_sarif
from repro.lint.violations import Violation

#: The static rules the sanitizers dynamically test.
RACE_RULE_IDS = ("R701", "R702", "R703", "R704")

#: SARIF metadata for the dynamic rules (they live outside the lint
#: registry; see ``format_sarif``'s ``extra_rules``).
SANITIZE_RULE_METADATA: Dict[str, tuple] = {
    "S901": ("dynamic-write-write-race",
             "two happens-before-unordered same-instant callbacks "
             "both wrote the attribute"),
    "S902": ("dynamic-read-write-race",
             "a read and a write of the attribute in the same "
             "instant are not ordered by happens-before"),
    "S903": ("dynamic-order-divergence",
             "run output diverged under a legal seeded perturbation "
             "of same-instant event order"),
}

#: A dynamic site within this many lines of a static violation counts
#: as the same finding (static rules report on the *second* schedule
#: call of a pair; dynamic sites are each task's own schedule call).
_LINE_TOLERANCE = 3


@dataclass
class CrossValidationReport:
    """Classified union of one scenario's static + dynamic findings."""

    confirmed: List[Tuple[Any, Violation]] = field(default_factory=list)
    dynamic_only: List[Any] = field(default_factory=list)
    static_only: List[Violation] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        return {
            "confirmed": len(self.confirmed),
            "dynamic_only": len(self.dynamic_only),
            "static_only": len(self.static_only),
        }


def static_race_findings(paths: Sequence[str]) -> List[Violation]:
    """Run only the R701–R704 rules over the given files/directories."""
    files = collect_files([str(path) for path in paths])
    return lint_files(files, select=RACE_RULE_IDS)


def cross_validate(dynamic_findings: Sequence[Any],
                   static_violations: Sequence[Violation],
                   ) -> CrossValidationReport:
    """Match dynamic findings against static race violations by site."""
    report = CrossValidationReport()
    matched_static: set = set()
    for finding in dynamic_findings:
        sites = [(os.path.abspath(path), line)
                 for path, line in getattr(finding, "crossval_sites", ())
                 if path and not path.startswith("<")]
        match: Optional[Violation] = None
        for violation in static_violations:
            static_path = os.path.abspath(violation.path)
            for path, line in sites:
                if path == static_path \
                        and abs(line - violation.line) <= _LINE_TOLERANCE:
                    match = violation
                    break
            if match is not None:
                break
        if match is not None:
            matched_static.add(id(match))
            report.confirmed.append((finding, match))
        else:
            report.dynamic_only.append(finding)
    for violation in static_violations:
        if id(violation) not in matched_static:
            report.static_only.append(violation)
    return report


def findings_to_violations(findings: Sequence[Any],
                           root: Optional[str] = None) -> List[Violation]:
    """Convert dynamic findings to lint ``Violation`` records.

    Each finding anchors at its first concrete source site (relative
    to ``root`` when given) so SARIF consumers can annotate the line
    that scheduled one side of the race.
    """
    violations: List[Violation] = []
    for finding in findings:
        path, line = "<dynamic>", 1
        for candidate_path, candidate_line \
                in getattr(finding, "crossval_sites", ()):
            if candidate_path and not candidate_path.startswith("<"):
                path, line = candidate_path, candidate_line
                break
        else:
            scenario = getattr(finding, "scenario", None)
            if scenario:
                path = scenario
        if root is not None and os.path.isabs(path):
            try:
                path = os.path.relpath(path, root)
            except ValueError:
                pass
        violations.append(Violation(path=path, line=line, col=0,
                                    rule_id=finding.rule_id,
                                    message=finding.describe()))
    return violations


def format_sanitize_sarif(findings: Sequence[Any],
                          files_checked: int,
                          root: Optional[str] = None) -> str:
    """SARIF 2.1.0 for dynamic findings (shared lint reporter)."""
    return format_sarif(findings_to_violations(findings, root=root),
                        files_checked,
                        extra_rules=SANITIZE_RULE_METADATA,
                        tool_name="repro.sanitize")


def format_crossval_text(report: CrossValidationReport) -> str:
    """Human-readable cross-validation matrix."""
    lines = ["static <-> dynamic cross-validation:"]
    counts = report.counts
    lines.append(f"  confirmed    : {counts['confirmed']:3d}  "
                 "(static finding reproduced dynamically)")
    lines.append(f"  dynamic-only : {counts['dynamic_only']:3d}  "
                 "(static false negative -> candidate fixture)")
    lines.append(f"  static-only  : {counts['static_only']:3d}  "
                 "(candidate false positive or unexercised path)")
    for finding, violation in report.confirmed:
        lines.append(f"    [confirmed] {violation.rule_id} "
                     f"{violation.path}:{violation.line} <- "
                     f"{finding.rule_id}")
    for finding in report.dynamic_only:
        lines.append(f"    [dynamic-only] {finding.describe()}")
    for violation in report.static_only:
        lines.append(f"    [static-only] {violation.rule_id} "
                     f"{violation.path}:{violation.line} "
                     f"{violation.message}")
    return "\n".join(lines)
