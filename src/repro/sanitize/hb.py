"""Vector-clock happens-before tracking over the simulation kernel.

The static race rules (R701–R704) approximate ordering from source
text; this module observes a *real* execution and derives the exact
happens-before relation the kernel guarantees:

* **Time barrier.**  Every event that completed at an earlier
  simulation instant happens-before every event at a later one — the
  kernel's ``(time, sequence)`` total order makes this unconditional.
* **Scheduling edges.**  The task that calls ``at`` / ``after`` /
  ``call_at`` / ``call_after`` / ``schedule_batch`` happens-before the
  scheduled callback (including now-bucket FIFO entries, which the
  kernel dispatches after their scheduler by construction).
* **Synchronization edges.**  The task that registered an
  :class:`~repro.sim.signal.Event` waiter or
  :class:`~repro.sim.signal.Signal` observer happens-before the
  delivery of that callback (registration → delivery), and the
  triggering task encloses the delivery as a nested sub-task.

Everything else — two same-instant callbacks whose only ordering is
the kernel's insertion-order tie-break — is *unordered*: reordering
them is legal, so state they share is a race.

**Clock representation.**  Orderings across instants are total, so
vector clocks only need to discriminate *within* one instant.  Each
task ticks its own component exactly once when it starts and inherits
the components of its same-instant parent and join contributions;
components of earlier instants collapse into the time barrier and are
never stored.  Clocks materialise lazily (:attr:`Task.clock`), so a
ten-thousand-event storm that nobody queries costs nothing beyond the
task objects themselves.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

#: (filename, lineno) of the frame that scheduled / registered a task.
Site = Tuple[str, int]

#: Frames from these files are kernel/sanitizer plumbing, not the code
#: a report should point at.
_PLUMBING_FILES = ("repro/sim/kernel.py", "repro/sim/signal.py",
                   "repro/sim/process.py", "repro/sanitize/hb.py",
                   "repro/sanitize/race.py",
                   "repro/sanitize/determinism.py")


def caller_site(skip_plumbing: bool = True) -> Site:
    """(filename, lineno) of the nearest non-plumbing caller frame."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not skip_plumbing or not filename.replace("\\", "/").endswith(
                _PLUMBING_FILES):
            return filename, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


def describe_callback(callback: Any) -> str:
    """A stable human label for a scheduled callable."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return qualname
    func = getattr(callback, "func", None)  # functools.partial
    if func is not None:
        return describe_callback(func)
    return type(callback).__name__


class VectorClock:
    """Sparse per-instant vector clock.

    Components are task ids; every task ticks its own component once,
    so domination reduces to component presence: ``a`` happens-before
    ``b`` within an instant iff ``b.clock[a.tid] >= 1``.
    """

    __slots__ = ("components",)

    def __init__(self, components: Optional[Dict[int, int]] = None) -> None:
        self.components: Dict[int, int] = dict(components or {})

    def get(self, tid: int) -> int:
        return self.components.get(tid, 0)

    def join(self, other: "VectorClock") -> "VectorClock":
        merged = dict(self.components)
        for tid, count in other.components.items():
            if count > merged.get(tid, 0):
                merged[tid] = count
        return VectorClock(merged)

    def leq(self, other: "VectorClock") -> bool:
        return all(other.components.get(tid, 0) >= count
                   for tid, count in self.components.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"t{tid}:{count}" for tid, count
                          in sorted(self.components.items()))
        return f"VectorClock({{{inner}}})"


class Task:
    """One callback execution (or nested delivery) under tracking."""

    __slots__ = ("tid", "label", "site", "origin_site", "kind",
                 "time_ps", "parent", "joins", "_clock")

    def __init__(self, label: str, site: Site, kind: str,
                 parent: Optional["Task"] = None,
                 joins: Tuple[Optional["Task"], ...] = ()) -> None:
        self.tid = -1  # assigned when the task begins executing
        self.label = label
        self.site = site
        #: Where the work originated for cross-validation purposes —
        #: a process resume keeps pointing at its ``Process(...)``
        #: spawn site even though the kernel saw an anonymous lambda.
        self.origin_site = site
        self.kind = kind  # "at" | "call_at" | "batch" | "deliver"
        self.time_ps = -1  # assigned when the task begins executing
        self.parent = parent
        self.joins = joins
        self._clock: Optional[Dict[int, int]] = None

    def _clock_dict(self) -> Dict[int, int]:
        if self._clock is None:
            merged: Dict[int, int] = {}
            for contribution in (self.parent, *self.joins):
                # Contributions from earlier instants are covered by
                # the time barrier; only same-instant edges carry
                # clock components.
                if contribution is None \
                        or contribution.time_ps != self.time_ps:
                    continue
                for tid, count in contribution._clock_dict().items():
                    if count > merged.get(tid, 0):
                        merged[tid] = count
            merged[self.tid] = merged.get(self.tid, 0) + 1
            self._clock = merged
        return self._clock

    @property
    def clock(self) -> VectorClock:
        return VectorClock(self._clock_dict())

    def __repr__(self) -> str:
        return (f"Task(t{self.tid}, {self.label!r}, "
                f"@{self.time_ps} ps)")


def happens_before(first: Task, second: Task) -> bool:
    """Whether ``first`` is ordered before ``second`` by the kernel.

    Different instants are ordered by the time barrier; same-instant
    tasks only by scheduling/synchronization edges.
    """
    if first is second:
        return True
    if first.time_ps != second.time_ps:
        return first.time_ps < second.time_ps
    return second._clock_dict().get(first.tid, 0) >= 1


class TrackerListener:
    """Base class for task-stream consumers (all hooks no-ops)."""

    def on_task_begin(self, task: Task) -> None:
        pass

    def on_task_end(self, task: Task) -> None:
        pass

    def on_instant_end(self, time_ps: int) -> None:
        """The instant at ``time_ps`` is over; flush per-instant state."""


class HBTracker:
    """Per-simulator happens-before tracker.

    Installed as ``sim.sanitizer``; the kernel hands every scheduled
    callback to :meth:`on_schedule` for wrapping, and
    :class:`~repro.sim.signal.Event` / :class:`~repro.sim.signal.
    Signal` route registrations and deliveries through
    :meth:`on_subscribe` / :meth:`deliver`.  Listeners (the race
    store, the determinism stream recorder) see task begin/end and
    instant boundaries.
    """

    def __init__(self, sim: Any, label: str = "sim") -> None:
        self.sim = sim
        self.label = label
        self.current: Optional[Task] = None
        self._enclosing: List[Optional[Task]] = []
        self.listeners: List[TrackerListener] = []
        self.tasks_run = 0
        self._next_tid = 0
        self._instant_time = -1
        #: Registration edges: (id(source), id(callback)) -> (task,
        #: site).  ``get`` not ``pop`` at delivery — Signal observers
        #: deliver many times from one registration.
        self._registrations: Dict[Tuple[int, int],
                                  Tuple[Optional[Task], Site]] = {}

    # -- kernel protocol ----------------------------------------------

    def on_schedule(self, sim: Any, time_ps: int, callback: Callable,
                    kind: str) -> Callable:
        task = Task(label=describe_callback(callback),
                    site=caller_site(), kind=kind, parent=self.current)

        def fire(_task: Task = task,
                 _callback: Callable = callback) -> None:
            self._begin(_task)
            try:
                _callback()
            finally:
                self._end(_task)

        return fire

    def on_subscribe(self, source: Any, callback: Callable) -> None:
        self._registrations[(id(source), id(callback))] = (
            self.current, caller_site())

    def deliver(self, source: Any, callback: Callable,
                *args: Any) -> None:
        """Run a waiter/observer as a sub-task with its sync edge."""
        registration = self._registrations.get(
            (id(source), id(callback)))
        if registration is None:
            reg_task: Optional[Task] = None
            site = caller_site()
        else:
            reg_task, site = registration
        name = getattr(source, "name", type(source).__name__)
        task = Task(label=f"{describe_callback(callback)} <- {name}",
                    site=site, kind="deliver", parent=self.current,
                    joins=(reg_task,))
        self._begin(task)
        try:
            callback(*args)
        finally:
            self._end(task)

    def on_process_spawn(self, process: Any) -> None:
        # Remember the spawn site so every resume of this process can
        # point back at the ``Process(...)`` call the static R703
        # rule reports on.
        self._registrations[(id(process), id(process))] = (
            self.current, caller_site())

    def on_process_resume(self, process: Any) -> None:
        task = self.current
        if task is None:
            return
        registration = self._registrations.get(
            (id(process), id(process)))
        if registration is not None and registration[0] is task:
            # First segment: ``Process.__init__`` resumes inline, so
            # the current task is still the *spawner* — keep its
            # identity; only scheduled resumes get the process label.
            return
        task.label = f"process:{process.name}"
        if registration is not None:
            task.origin_site = registration[1]

    # -- task lifecycle -----------------------------------------------

    def _begin(self, task: Task) -> None:
        now = self.sim.now
        if now != self._instant_time:
            previous = self._instant_time
            self._instant_time = now
            if previous >= 0:
                for listener in self.listeners:
                    listener.on_instant_end(previous)
        task.time_ps = now
        task.tid = self._next_tid
        self._next_tid += 1
        self.tasks_run += 1
        # task.parent stays as captured at schedule/registration time
        # (the *scheduler*); the stack tracks the *enclosing* task,
        # which differs for top-level dispatch (enclosing is None).
        self._enclosing.append(self.current)
        self.current = task
        for listener in self.listeners:
            listener.on_task_begin(task)

    def _end(self, task: Task) -> None:
        self.current = self._enclosing.pop()
        for listener in self.listeners:
            listener.on_task_end(task)

    def finish(self) -> None:
        """Flush the final instant (call once the run is over)."""
        if self._instant_time >= 0:
            for listener in self.listeners:
                listener.on_instant_end(self._instant_time)
            self._instant_time = -1
