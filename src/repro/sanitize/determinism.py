"""Dynamic determinism sanitizer: seeded same-instant perturbation.

The kernel's FIFO tie-break makes every run reproducible, but
reproducible is not the same as *order-independent*: a model whose
output depends on which of two same-instant, happens-before-unordered
callbacks fires first works today and breaks the moment an unrelated
change shifts a sequence number.  The static R702 rule approximates
this from source text; this module tests it on a real execution:

1. run the scenario unperturbed, recording an incremental digest of
   the event stream (per-instant sorted task-label multisets, chained
   with SHA-256 — invariant under *legal* same-instant reordering)
   plus a digest of captured stdout and the scenario's return value;
2. re-run with :attr:`Simulator._perturb` seeded so the kernel
   shuffles the order of unordered same-instant events (heap
   tie-breaks and now-bucket insertion positions) — every ordering it
   picks is one the happens-before relation allows;
3. diff the digests.  Any difference is an **S903** order-divergence
   finding, localised to the first simulation instant whose digest
   differs.

Because the perturbation only permutes orders the kernel never
promised, a clean model produces byte-identical digests for every
seed; that property is pinned for the paper's reproduction scenarios
in ``tests/sanitize/``.
"""

from __future__ import annotations

import hashlib
import io
import random
import re
from contextlib import redirect_stdout
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.sanitize.hb import HBTracker, Site, Task, TrackerListener
from repro.sanitize.race import ORDER_DIVERGENCE
from repro.sim import kernel as _kernel

#: Memory addresses in reprs vary per process; normalise them away
#: before digesting a scenario's return value.
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]+")


class StreamRecorder(TrackerListener):
    """Chained per-instant digest of the task stream of one tracker.

    Within an instant the label list is sorted before hashing, so two
    runs that differ only by a legal same-instant permutation produce
    identical digests, while a run that executes *different work*
    (an extra event, a changed callback) diverges at exactly the
    first instant that differs.
    """

    def __init__(self) -> None:
        self._labels: List[str] = []
        self._chain = hashlib.sha256()
        self.instants: List[Tuple[int, str]] = []

    def on_task_begin(self, task: Task) -> None:
        self._labels.append(task.label)

    def on_instant_end(self, time_ps: int) -> None:
        payload = "\n".join(sorted(self._labels))
        self._labels.clear()
        self._chain.update(str(time_ps).encode("ascii"))
        self._chain.update(payload.encode("utf-8", "replace"))
        self.instants.append((time_ps, self._chain.hexdigest()))

    @property
    def digest(self) -> str:
        return self._chain.hexdigest()


@dataclass
class RunRecord:
    """Digests of one (possibly perturbed) scenario execution."""

    seed: Optional[int]
    stream_digest: str
    instants: Tuple[Tuple[int, str], ...]
    output_digest: str
    tasks_run: int

    @classmethod
    def empty(cls, seed: Optional[int]) -> "RunRecord":
        return cls(seed=seed, stream_digest="", instants=(),
                   output_digest="", tasks_run=0)


@dataclass
class DivergenceFinding:
    """One S903 order-divergence, ready for shared reporting."""

    scenario: str
    seed: int
    time_ps: int  # first divergent instant; -1 when only output moved
    detail: str
    rule_id: str = ORDER_DIVERGENCE
    count: int = 1
    justified: bool = False
    crossval_sites: Tuple[Site, ...] = ()

    def describe(self) -> str:
        where = (f"first divergent instant t={self.time_ps} ps"
                 if self.time_ps >= 0 else "output only")
        return (f"{self.rule_id} dynamic-order-divergence: scenario "
                f"{self.scenario!r} diverges under perturbation seed "
                f"{self.seed} ({where}) — {self.detail}")


class DeterminismSanitizer:
    """Re-runs a scenario under seeded tie-break perturbation.

    ``scenario`` is a zero-argument callable that builds and runs a
    simulation (and may return a value); every :class:`Simulator`
    constructed while it runs is recorded, and on perturbed runs each
    gets its own ``random.Random`` derived from the seed and the
    construction index, so perturbed runs are themselves reproducible.
    """

    def __init__(self, seeds: Tuple[int, ...] = (1, 2, 3),
                 justified: Tuple[str, ...] = ()) -> None:
        self.seeds = tuple(seeds)
        self.justified = tuple(justified)
        self.findings: List[DivergenceFinding] = []
        self.runs: List[RunRecord] = []

    def check(self, scenario: Callable[[], Any],
              name: str = "scenario") -> List[DivergenceFinding]:
        """Run baseline + one perturbed run per seed; diff digests."""
        baseline = self.run_once(scenario)
        self.runs.append(baseline)
        new_findings: List[DivergenceFinding] = []
        for seed in self.seeds:
            record = self.run_once(scenario, seed=seed)
            self.runs.append(record)
            finding = self._diff(name, baseline, record)
            if finding is not None:
                finding.justified = (
                    name in self.justified
                    or f"{ORDER_DIVERGENCE}:{name}" in self.justified)
                new_findings.append(finding)
        self.findings.extend(new_findings)
        return new_findings

    def run_once(self, scenario: Callable[[], Any],
                 seed: Optional[int] = None) -> RunRecord:
        """Execute ``scenario`` once under recording (and perturbation)."""
        recorders: List[Tuple[HBTracker, StreamRecorder]] = []

        def hook(sim: Any, _previous: Any = None) -> None:
            tracker = HBTracker(sim, label=f"sim{len(recorders)}")
            recorder = StreamRecorder()
            tracker.listeners.append(recorder)
            sim.sanitizer = tracker
            if seed is not None:
                sim._perturb = random.Random(
                    (seed << 8) ^ len(recorders))
            recorders.append((tracker, recorder))

        previous = _kernel.set_construction_hook(hook)
        captured = io.StringIO()
        try:
            with redirect_stdout(captured):
                result = scenario()
        finally:
            _kernel.set_construction_hook(previous)
            for tracker, _recorder in recorders:
                tracker.finish()
        merged = hashlib.sha256()
        instants: List[Tuple[int, str]] = []
        for _tracker, recorder in recorders:
            merged.update(recorder.digest.encode("ascii"))
            instants.extend(recorder.instants)
        output = hashlib.sha256()
        output.update(captured.getvalue().encode("utf-8", "replace"))
        output.update(
            _ADDRESS_RE.sub("0x", repr(result)).encode("utf-8",
                                                       "replace"))
        return RunRecord(
            seed=seed,
            stream_digest=merged.hexdigest(),
            instants=tuple(instants),
            output_digest=output.hexdigest(),
            tasks_run=sum(tracker.tasks_run
                          for tracker, _recorder in recorders),
        )

    def _diff(self, name: str, baseline: RunRecord,
              record: RunRecord) -> Optional[DivergenceFinding]:
        stream_moved = record.stream_digest != baseline.stream_digest
        output_moved = record.output_digest != baseline.output_digest
        if not stream_moved and not output_moved:
            return None
        time_ps = -1
        detail_parts: List[str] = []
        if stream_moved:
            time_ps = _first_divergence(baseline.instants,
                                        record.instants)
            detail_parts.append(
                f"event-stream digest {baseline.stream_digest[:12]} -> "
                f"{record.stream_digest[:12]}")
        if output_moved:
            detail_parts.append(
                f"output digest {baseline.output_digest[:12]} -> "
                f"{record.output_digest[:12]}")
        seed = record.seed if record.seed is not None else -1
        return DivergenceFinding(scenario=name, seed=seed,
                                 time_ps=time_ps,
                                 detail="; ".join(detail_parts))


def _first_divergence(baseline: Tuple[Tuple[int, str], ...],
                      perturbed: Tuple[Tuple[int, str], ...]) -> int:
    """Sim time of the first instant whose chained digest differs."""
    for (base_time, base_digest), (time_ps, digest) \
            in zip(baseline, perturbed):
        if base_time != time_ps or base_digest != digest:
            return min(base_time, time_ps)
    if len(baseline) != len(perturbed):
        longer = baseline if len(baseline) > len(perturbed) \
            else perturbed
        return longer[min(len(baseline), len(perturbed))][0]
    return -1
