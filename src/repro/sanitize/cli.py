"""``python -m repro sanitize`` — run scripts under the sanitizers.

Each target script (default: the whole ``examples/`` corpus) is
executed three ways:

1. once under the :class:`~repro.sanitize.race.RaceSanitizer`
   (S901/S902 happens-before race detection);
2. once unperturbed and once per ``--seeds`` entry under the
   :class:`~repro.sanitize.determinism.DeterminismSanitizer`
   (S903 order-divergence via digest diffing);
3. the static R701–R704 rules run over the same files and the
   findings are cross-validated (confirmed / dynamic-only /
   static-only).

Exit codes follow the lint CLI: 0 clean, 1 unjustified findings,
2 usage error.  ``--justify FILE`` suppresses known-benign findings
(one ``Type.attr``, ``S901:Type.attr`` or scenario-name entry per
line, ``#`` comments); justified findings are reported but do not
fail the run.
"""

from __future__ import annotations

import argparse
import io
import os
import runpy
import sys
from contextlib import redirect_stdout
from typing import Any, List, Optional, Sequence, Tuple

from repro.sanitize.crossval import (
    cross_validate,
    format_crossval_text,
    format_sanitize_sarif,
    static_race_findings,
)
from repro.sanitize.determinism import DeterminismSanitizer

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_sanitize_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*",
        help="scripts to run under the sanitizers (default: every "
             "script in examples/)")
    parser.add_argument(
        "--seeds", default="1,2,3", metavar="N[,N...]",
        help="perturbation seeds for the determinism pass "
             "(default: 1,2,3)")
    parser.add_argument(
        "--no-reads", action="store_true",
        help="skip read tracking (S902); writes-only is faster")
    parser.add_argument(
        "--no-determinism", action="store_true",
        help="skip the perturbed re-runs (race pass only)")
    parser.add_argument(
        "--no-crossval", action="store_true",
        help="skip the static R701-R704 cross-validation")
    parser.add_argument(
        "--justify", default=None, metavar="FILE",
        help="file of justified findings (Type.attr, S901:Type.attr "
             "or scenario-name entries; '#' comments)")
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="write dynamic findings as SARIF 2.1.0 to FILE")


def _default_scripts() -> List[str]:
    examples = os.path.join(os.getcwd(), "examples")
    if not os.path.isdir(examples):
        return []
    return [os.path.join(examples, name)
            for name in sorted(os.listdir(examples))
            if name.endswith(".py")]


def _load_justified(path: Optional[str]) -> Tuple[str, ...]:
    if path is None:
        return ()
    entries: List[str] = []
    with open(path) as handle:
        for line in handle:
            entry = line.split("#", 1)[0].strip()
            if entry:
                entries.append(entry)
    return tuple(entries)


def _parse_seeds(raw: str) -> Tuple[int, ...]:
    try:
        return tuple(int(part) for part in raw.split(",") if part)
    except ValueError:
        raise SystemExit(EXIT_USAGE)


def _run_script(path: str) -> None:
    """Execute a script as ``__main__`` with a neutral argv."""
    saved_argv = sys.argv
    sys.argv = [path]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = saved_argv


def run_sanitize(args: argparse.Namespace) -> int:
    scripts = [os.path.abspath(path) for path in args.paths] \
        or _default_scripts()
    if not scripts:
        print("repro sanitize: no scripts to run (no paths given and "
              "no examples/ directory)", file=sys.stderr)
        return EXIT_USAGE
    for script in scripts:
        if not os.path.isfile(script):
            print(f"repro sanitize: no such file: {script}",
                  file=sys.stderr)
            return EXIT_USAGE
    try:
        justified = _load_justified(args.justify)
    except OSError as exc:
        print(f"repro sanitize: cannot read justify file: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    seeds = _parse_seeds(args.seeds)

    all_findings: List[Any] = []
    root = os.getcwd()
    for script in scripts:
        name = os.path.relpath(script, root)
        findings = sanitize_script(
            script, seeds=() if args.no_determinism else seeds,
            track_reads=not args.no_reads, justified=justified)
        all_findings.extend(findings)
        unjustified = [finding for finding in findings
                       if not finding.justified]
        status = "clean" if not unjustified \
            else f"{len(unjustified)} finding(s)"
        print(f"sanitize {name}: {status}")
        for finding in findings:
            marker = " [justified]" if finding.justified else ""
            print(f"  {finding.describe()}{marker}")

    if not args.no_crossval:
        static = static_race_findings(scripts)
        report = cross_validate(all_findings, static)
        print()
        print(format_crossval_text(report))

    if args.sarif:
        payload = format_sanitize_sarif(all_findings, len(scripts),
                                        root=root)
        with open(args.sarif, "w") as handle:
            handle.write(payload + "\n")
        print(f"\nsarif: {len(all_findings)} finding(s) -> {args.sarif}")

    unjustified_total = sum(1 for finding in all_findings
                            if not finding.justified)
    total_label = "finding" if unjustified_total == 1 else "findings"
    print(f"\nsanitize: {unjustified_total} unjustified {total_label} "
          f"across {len(scripts)} scenario(s)")
    return EXIT_FINDINGS if unjustified_total else EXIT_CLEAN


def sanitize_script(script: str, seeds: Sequence[int],
                    track_reads: bool = True,
                    justified: Tuple[str, ...] = ()) -> List[Any]:
    """Run one script under both sanitizers; return its findings."""
    from repro.sanitize import sanitized

    findings: List[Any] = []
    with sanitized(track_reads=track_reads,
                   justified=justified) as sanitizer:
        with redirect_stdout(io.StringIO()):
            _run_script(script)
    findings.extend(sanitizer.findings)
    if seeds:
        determinism = DeterminismSanitizer(seeds=tuple(seeds),
                                           justified=justified)
        determinism.check(lambda: _run_script(script),
                          name=os.path.basename(script))
        findings.extend(determinism.findings)
    return findings


def run_sanitized_command(command: Any, args: argparse.Namespace,
                          label: str) -> int:
    """Back the ``--sanitize`` flag on table/figure commands.

    Runs ``command(args)`` under the race sanitizer plus a seeded
    determinism check, prints any findings, and turns them into a
    non-zero exit code.
    """
    from repro import accel
    from repro.sanitize import sanitized

    with sanitized() as sanitizer:
        result = command(args)
    findings: List[Any] = list(sanitizer.findings)
    determinism = DeterminismSanitizer(seeds=(1,))
    determinism.check(lambda: command(args), name=label)
    findings.extend(determinism.findings)
    for finding in findings:
        print(f"sanitize: {finding.describe()}")
    unjustified = sum(1 for finding in findings
                      if not finding.justified)
    if unjustified:
        print(f"sanitize: {unjustified} unjustified finding(s) in "
              f"{label} (accel.backend={accel.backend_name()})")
        return EXIT_FINDINGS
    print(f"sanitize: {label} clean "
          f"({len(determinism.seeds)} perturbation seed(s), "
          f"accel.backend={accel.backend_name()})")
    return int(result) if result is not None else EXIT_CLEAN
