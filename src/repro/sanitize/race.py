"""Dynamic race sanitizer: unordered same-instant accesses.

TSan for the event kernel.  While active, attribute writes (and
optionally reads) on tracked objects are recorded against the
happens-before task that performed them (:mod:`repro.sanitize.hb`);
at the end of every simulation instant, each attribute's access list
is checked pairwise and every conflicting pair whose tasks the kernel
does *not* order becomes a finding:

* **S901** — unordered write/write: two same-instant callbacks both
  store to the attribute and could legally run in either order, so
  the surviving value depends on the scheduler tie-break.
* **S902** — unordered read/write: one callback's read may see the
  value before or after another's write depending on tie-break order.

Objects are tracked two ways:

* :meth:`RaceSanitizer.watch` — opt-in, any object.
* auto-instrumentation (default) — every class defined in a
  ``repro.controllers`` / ``repro.fpga`` / ``repro.core`` module is
  interposed, so the paper's controller/FPGA state is covered without
  touching model code.

Interposition patches ``__setattr__`` (and ``__getattribute__`` for
reads) *on the class*; accesses made while no sanitizer task is
current (construction, test setup) are skipped in two attribute loads,
and everything is restored when the sanitizer closes.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import current_registry
from repro.sanitize.hb import (
    HBTracker,
    Site,
    Task,
    TrackerListener,
    caller_site,
    happens_before,
)
from repro.sim import kernel as _kernel

#: Classes defined in modules with these prefixes are auto-instrumented.
AUTO_INSTRUMENT_PREFIXES = ("repro.controllers", "repro.fpga",
                            "repro.core")

WRITE_WRITE_RACE = "S901"
READ_WRITE_RACE = "S902"
ORDER_DIVERGENCE = "S903"  # reported by determinism.py, shares the table

RULE_TITLES = {
    WRITE_WRITE_RACE: "dynamic-write-write-race",
    READ_WRITE_RACE: "dynamic-read-write-race",
    ORDER_DIVERGENCE: "dynamic-order-divergence",
}

#: Per (object, attr) instant cap — beyond this the list stops growing
#: (pair analysis is quadratic; a same-instant storm hammering one
#: attribute from this many distinct points is already reported).
_MAX_ACCESSES_PER_KEY = 128


class Access:
    """One attribute access by one sanitizer task."""

    __slots__ = ("task", "kind", "site")

    def __init__(self, task: Task, kind: str, site: Site) -> None:
        self.task = task
        self.kind = kind  # "read" | "write"
        self.site = site


@dataclass
class AccessContext:
    """Reportable context of one side of a racy pair."""

    kind: str
    task_label: str
    access_site: Site
    sched_site: Site

    def describe(self) -> str:
        access = f"{self.access_site[0]}:{self.access_site[1]}"
        sched = f"{self.sched_site[0]}:{self.sched_site[1]}"
        return (f"{self.kind} at {access} in task {self.task_label!r} "
                f"(scheduled at {sched})")


@dataclass
class SanitizerFinding:
    """One dynamic finding (race or order divergence), deduplicated."""

    rule_id: str
    object_type: str
    attr: str
    time_ps: int
    first: AccessContext
    second: AccessContext
    count: int = 1
    justified: bool = False
    #: Sites a static R701–R704 violation could have reported on —
    #: the schedule/spawn sites of both tasks (crossval matches here).
    crossval_sites: Tuple[Site, ...] = field(default=())

    @property
    def key(self) -> Tuple[Any, ...]:
        return (self.rule_id, self.object_type, self.attr,
                self.first.kind, self.first.access_site,
                self.second.kind, self.second.access_site)

    def describe(self) -> str:
        return (f"{self.rule_id} {RULE_TITLES[self.rule_id]}: "
                f"{self.object_type}.{self.attr} at t={self.time_ps} ps "
                f"(x{self.count}) — {self.first.describe()} vs "
                f"{self.second.describe()}")


class _Bridge(TrackerListener):
    """Routes one tracker's task stream into the shared sanitizer."""

    def __init__(self, sanitizer: "RaceSanitizer",
                 tracker: HBTracker) -> None:
        self.sanitizer = sanitizer
        self.tracker = tracker
        #: (id(obj), attr) -> [object type name, [Access, ...]]
        self.accesses: Dict[Tuple[int, str], List[Any]] = {}

    def on_task_begin(self, task: Task) -> None:
        self.sanitizer._task_stack.append(task)
        self.sanitizer._bridge_stack.append(self)

    def on_task_end(self, task: Task) -> None:
        self.sanitizer._task_stack.pop()
        self.sanitizer._bridge_stack.pop()

    def on_instant_end(self, time_ps: int) -> None:
        self.sanitizer._flush(self, time_ps)


class RaceSanitizer:
    """Detects unordered same-instant accesses on tracked objects.

    Usage (usually via :func:`repro.sanitize.sanitized`)::

        sanitizer = RaceSanitizer()
        sanitizer.open()
        try:
            ...  # build systems, run simulations
        finally:
            sanitizer.close()
        for finding in sanitizer.findings:
            print(finding.describe())
    """

    def __init__(self, auto_instrument: bool = True,
                 track_reads: bool = True,
                 justified: Tuple[str, ...] = ()) -> None:
        self.auto_instrument = auto_instrument
        self.track_reads = track_reads
        self.justified = tuple(justified)
        self.findings: List[SanitizerFinding] = []
        self.trackers: List[HBTracker] = []
        self.accesses_recorded = 0
        self._task_stack: List[Task] = []
        self._bridge_stack: List[_Bridge] = []
        self._findings_by_key: Dict[Tuple[Any, ...],
                                    SanitizerFinding] = {}
        self._auto_classes: set = set()
        self._watched_ids: set = set()
        self._watch_refs: List[Any] = []  # keep ids stable
        #: cls -> (had own __setattr__, original, had own
        #: __getattribute__, original)
        self._patched: Dict[type, Tuple[bool, Any, bool, Any]] = {}
        self._previous_hook: Any = None
        self._registry = current_registry()
        self._open = False

    # -- lifecycle ----------------------------------------------------

    def open(self) -> None:
        """Install the construction hook and auto-instrumentation."""
        if self._open:
            raise RuntimeError("RaceSanitizer already open")
        self._open = True
        self._registry = current_registry()
        self._previous_hook = _kernel.set_construction_hook(self._on_sim)
        if self.auto_instrument:
            self._instrument_auto_modules()

    def close(self) -> None:
        """Flush pending instants, restore hook and patched classes."""
        if not self._open:
            return
        self._open = False
        for tracker in self.trackers:
            tracker.finish()
        _kernel.set_construction_hook(self._previous_hook)
        self._previous_hook = None
        for cls in list(self._patched):
            self._uninstrument(cls)
        registry = self._registry
        registry.counter("sanitize.tasks").inc(
            sum(tracker.tasks_run for tracker in self.trackers))
        registry.counter("sanitize.accesses").inc(self.accesses_recorded)
        registry.counter("sanitize.races").inc(
            sum(1 for finding in self.findings if not finding.justified))

    def _on_sim(self, sim: Any) -> None:
        if self._previous_hook is not None:
            self._previous_hook(sim)
        self.attach(sim)

    def attach(self, sim: Any) -> None:
        """Track a simulator (hooked automatically for new ones)."""
        tracker = HBTracker(sim, label=f"sim{len(self.trackers)}")
        tracker.listeners.append(_Bridge(self, tracker))
        sim.sanitizer = tracker
        self.trackers.append(tracker)
        if self.auto_instrument:
            # Model classes import lazily; re-scan whenever a new
            # simulator appears so late imports still get covered.
            self._instrument_auto_modules()

    # -- instrumentation ----------------------------------------------

    def watch(self, obj: Any) -> Any:
        """Opt a single object into race tracking; returns ``obj``."""
        self._watched_ids.add(id(obj))
        self._watch_refs.append(obj)
        self._instrument(type(obj))
        return obj

    def _instrument_auto_modules(self) -> None:
        for module_name, module in list(sys.modules.items()):
            if module is None \
                    or not module_name.startswith(AUTO_INSTRUMENT_PREFIXES):
                continue
            for value in list(vars(module).values()):
                if (isinstance(value, type)
                        and value.__module__ == module_name
                        and not issubclass(value, BaseException)):
                    self._auto_classes.add(value)
                    self._instrument(value)

    def _instrument(self, cls: type) -> None:
        if cls in self._patched:
            return
        if getattr(cls.__setattr__, "_repro_sanitize_wrapper", False):
            return  # already patched by a nested sanitizer
        had_setattr = "__setattr__" in vars(cls)
        original_setattr = cls.__setattr__
        had_getattribute = "__getattribute__" in vars(cls)
        original_getattribute = cls.__getattribute__
        sanitizer = self

        def sanitized_setattr(obj: Any, name: str, value: Any,
                              _original: Any = original_setattr) -> None:
            if sanitizer._task_stack:
                sanitizer._note(obj, name, "write")
            _original(obj, name, value)

        sanitized_setattr._repro_sanitize_wrapper = True
        try:
            cls.__setattr__ = sanitized_setattr  # type: ignore[assignment]
        except TypeError:
            return  # extension/builtin class; cannot interpose
        if self.track_reads:

            def sanitized_getattribute(
                    obj: Any, name: str,
                    _original: Any = original_getattribute) -> Any:
                value = _original(obj, name)
                if (sanitizer._task_stack and name[:2] != "__"
                        and not callable(value)):
                    sanitizer._note(obj, name, "read")
                return value

            sanitized_getattribute._repro_sanitize_wrapper = True
            cls.__getattribute__ = (  # type: ignore[assignment]
                sanitized_getattribute)
        self._patched[cls] = (had_setattr, original_setattr,
                              had_getattribute, original_getattribute)

    def _uninstrument(self, cls: type) -> None:
        entry = self._patched.pop(cls, None)
        if entry is None:
            return
        had_setattr, original_setattr, had_getattribute, \
            original_getattribute = entry
        if had_setattr:
            cls.__setattr__ = original_setattr  # type: ignore[assignment]
        else:
            delattr(cls, "__setattr__")
        if self.track_reads:
            if had_getattribute:
                cls.__getattribute__ = (  # type: ignore[assignment]
                    original_getattribute)
            else:
                delattr(cls, "__getattribute__")

    # -- access recording ---------------------------------------------

    def _note(self, obj: Any, attr: str, kind: str) -> None:
        cls = type(obj)
        if cls not in self._auto_classes \
                and id(obj) not in self._watched_ids:
            return
        task = self._task_stack[-1]
        bridge = self._bridge_stack[-1]
        key = (id(obj), attr)
        entry = bridge.accesses.get(key)
        if entry is None:
            entry = [cls.__name__, []]
            bridge.accesses[key] = entry
        accesses = entry[1]
        if accesses:
            last = accesses[-1]
            # Collapse a task's repeated same-kind accesses (loops):
            # only the first one can pair differently.
            if last.task is task and last.kind == kind:
                return
        if len(accesses) >= _MAX_ACCESSES_PER_KEY:
            return
        accesses.append(Access(task, kind, caller_site()))
        self.accesses_recorded += 1

    # -- analysis -----------------------------------------------------

    def _flush(self, bridge: _Bridge, time_ps: int) -> None:
        for (_obj_id, attr), entry in bridge.accesses.items():
            type_name, accesses = entry
            if len(accesses) < 2:
                continue
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    if first.task is second.task:
                        continue
                    if first.kind == "read" and second.kind == "read":
                        continue
                    if happens_before(first.task, second.task) \
                            or happens_before(second.task, first.task):
                        continue
                    self._record(type_name, attr, time_ps,
                                 first, second)
        bridge.accesses.clear()

    def _record(self, type_name: str, attr: str, time_ps: int,
                first: Access, second: Access) -> None:
        if first.kind == "write" and second.kind == "write":
            rule_id = WRITE_WRITE_RACE
        else:
            rule_id = READ_WRITE_RACE
        finding = SanitizerFinding(
            rule_id=rule_id,
            object_type=type_name,
            attr=attr,
            time_ps=time_ps,
            first=_context(first),
            second=_context(second),
            crossval_sites=(first.task.origin_site, first.task.site,
                            second.task.origin_site, second.task.site),
        )
        existing = self._findings_by_key.get(finding.key)
        if existing is not None:
            existing.count += 1
            return
        finding.justified = self._is_justified(finding)
        self._findings_by_key[finding.key] = finding
        self.findings.append(finding)

    def _is_justified(self, finding: SanitizerFinding) -> bool:
        target = f"{finding.object_type}.{finding.attr}"
        qualified = f"{finding.rule_id}:{target}"
        return target in self.justified or qualified in self.justified


def _context(access: Access) -> AccessContext:
    return AccessContext(kind=access.kind,
                         task_label=access.task.label,
                         access_site=access.site,
                         sched_site=access.task.origin_site)
