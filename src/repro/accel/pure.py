"""Pure-Python reference backend for the datapath kernels.

Every kernel here is the *definition* of its operation: the numpy
backend must reproduce these outputs byte-for-byte, and the
cross-backend equivalence tests enforce that.  The implementations are
the tuned stdlib forms that previously lived inline in the bitstream
and compress modules (slicing-by-8 CRC, bulk ``struct`` packing,
slice-compare scan loops), so selecting this backend is never a
regression over the pre-accel code.

This module must stay importable with no third-party dependencies and
must not import from ``repro.bitstream`` (those modules dispatch into
``repro.accel``, so importing them back would be a cycle).  Only
``repro.errors`` is allowed.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.errors import BitstreamFormatError

from repro.accel.plan import COPY, SynthesisPlan

name = "pure"

_POLY_REFLECTED = 0x82F63B78  # CRC-32C (Castagnoli), reflected form


def _build_tables() -> List[List[int]]:
    """Slicing-by-8 tables; ``tables[0]`` is the classic byte table."""
    table0 = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table0.append(crc)
    tables = [table0]
    for _ in range(7):
        previous = tables[-1]
        tables.append([(previous[byte] >> 8)
                       ^ table0[previous[byte] & 0xFF]
                       for byte in range(256)])
    return tables


CRC_TABLES = _build_tables()
CRC_TABLE = CRC_TABLES[0]  # the one-table form, used by the tail loop


def crc32c(data: bytes, crc: int = 0) -> int:
    """Plain CRC-32C over a byte string (incremental via ``crc``).

    The byte loop uses slicing-by-8: eight parallel tables fold eight
    input bytes per iteration, the standard software trick for
    multi-GB/s CRC rates.  It computes exactly the same polynomial
    division as the one-table form (the tail loop below *is* the
    one-table form), just with 8x fewer Python-level iterations.
    """
    crc ^= 0xFFFFFFFF
    t0, t1, t2, t3, t4, t5, t6, t7 = CRC_TABLES
    length = len(data)
    index = 0
    end8 = length - (length & 7)
    while index < end8:
        low = crc ^ (data[index]
                     | (data[index + 1] << 8)
                     | (data[index + 2] << 16)
                     | (data[index + 3] << 24))
        high = (data[index + 4]
                | (data[index + 5] << 8)
                | (data[index + 6] << 16)
                | (data[index + 7] << 24))
        crc = (t7[low & 0xFF] ^ t6[(low >> 8) & 0xFF]
               ^ t5[(low >> 16) & 0xFF] ^ t4[low >> 24]
               ^ t3[high & 0xFF] ^ t2[(high >> 8) & 0xFF]
               ^ t1[(high >> 16) & 0xFF] ^ t0[high >> 24])
        index += 8
    while index < length:
        crc = (crc >> 8) ^ t0[(crc ^ data[index]) & 0xFF]
        index += 1
    return crc ^ 0xFFFFFFFF


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Big-endian word serialization (configuration byte order)."""
    try:
        return struct.pack(">%dI" % len(words), *words)
    except struct.error:
        for word in words:
            if not 0 <= word < (1 << 32):
                raise OverflowError(
                    f"word {word:#x} does not fit in 32 bits"
                ) from None
        raise


def bytes_to_words(data: bytes) -> List[int]:
    """Big-endian word deserialization."""
    if len(data) % 4:
        raise BitstreamFormatError(
            f"byte stream length {len(data)} is not word aligned"
        )
    return list(struct.unpack(">%dI" % (len(data) // 4), data))


def synthesize_payload(plan: SynthesisPlan) -> bytes:
    """Materialise a frame-synthesis plan into packed payload bytes.

    COPY ops read from exactly ``frame_words`` words behind the write
    position — the previous frame at the same intra-frame offset — so
    an op walk over the growing output list resolves them directly.
    """
    out: List[int] = []
    append = out.append
    extend = out.extend
    frame_words = plan.frame_words
    for kind, value, length in zip(plan.kinds, plan.values, plan.lengths):
        if kind == COPY:
            start = len(out) - frame_words
            extend(out[start:start + length])
        elif length == 1:
            append(value)
        else:
            extend([value] * length)
    return struct.pack(">%dI" % len(out), *out)


def equal_word_runs(data: bytes, word_count: int) -> List[int]:
    """Lengths of maximal equal-32-bit-word runs covering the stream.

    ``sum(result) == word_count``; a lone word is a run of 1.
    """
    runs: List[int] = []
    append = runs.append
    index = 0
    while index < word_count:
        base = data[index * 4:index * 4 + 4]
        run = 1
        while (index + run < word_count
               and data[(index + run) * 4:(index + run) * 4 + 4] == base):
            run += 1
        append(run)
        index += run
    return runs


def zero_word_runs(data: bytes,
                   word_count: int) -> Tuple[List[int], List[int]]:
    """Starts and lengths of maximal all-zero 32-bit-word runs."""
    starts: List[int] = []
    lengths: List[int] = []
    zero = b"\x00\x00\x00\x00"
    index = 0
    while index < word_count:
        if data[index * 4:index * 4 + 4] == zero:
            run = 1
            while (index + run < word_count
                   and data[(index + run) * 4:(index + run) * 4 + 4] == zero):
                run += 1
            starts.append(index)
            lengths.append(run)
            index += run
        else:
            index += 1
    return starts, lengths


def match_lengths(data: bytes, candidates: Sequence[int],
                  position: int, limit: int) -> List[int]:
    """Match length at ``position`` for each candidate start offset.

    Candidates are measured in order; measurement stops after (and
    including) the first candidate that reaches ``limit``, mirroring
    the LZ match loops' early break — the returned list may therefore
    be shorter than ``candidates``.
    """
    lengths: List[int] = []
    append = lengths.append
    for candidate in candidates:
        run = 0
        while (run < limit
               and data[candidate + run] == data[position + run]):
            run += 1
        append(run)
        if run == limit:
            break
    return lengths


def chunk_words(block: Sequence[int], offset: int,
                frame_words: int) -> Tuple[List[List[int]], List[int]]:
    """Split ``block[offset:]`` into full frames plus the leftover tail."""
    frames: List[List[int]] = []
    append = frames.append
    count = len(block)
    position = offset
    while count - position >= frame_words:
        append(list(block[position:position + frame_words]))
        position += frame_words
    return frames, list(block[position:])
