"""Pure-Python reference backend for the datapath kernels.

Every kernel here is the *definition* of its operation: the numpy
backend must reproduce these outputs byte-for-byte, and the
cross-backend equivalence tests enforce that.  The implementations are
the tuned stdlib forms that previously lived inline in the bitstream
and compress modules (slicing-by-8 CRC, bulk ``struct`` packing,
slice-compare scan loops), so selecting this backend is never a
regression over the pre-accel code.

This module must stay importable with no third-party dependencies and
must not import from ``repro.bitstream`` (those modules dispatch into
``repro.accel``, so importing them back would be a cycle).  Only
``repro.errors`` is allowed.
"""

from __future__ import annotations

import heapq
import struct
from array import array
from collections import defaultdict, deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BitstreamFormatError, CorruptStreamError

from repro.accel.plan import COPY, SynthesisPlan

name = "pure"

#: Token stream: parallel typed arrays of (value, bit-width) pairs.
#: ``array("Q")`` values / ``array("B")`` widths — the numpy backend
#: views both zero-copy, the same trick :class:`SynthesisPlan` uses.
TokenStream = Tuple["array", "array"]

_POLY_REFLECTED = 0x82F63B78  # CRC-32C (Castagnoli), reflected form


def _build_tables() -> List[List[int]]:
    """Slicing-by-8 tables; ``tables[0]`` is the classic byte table."""
    table0 = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table0.append(crc)
    tables = [table0]
    for _ in range(7):
        previous = tables[-1]
        tables.append([(previous[byte] >> 8)
                       ^ table0[previous[byte] & 0xFF]
                       for byte in range(256)])
    return tables


CRC_TABLES = _build_tables()
CRC_TABLE = CRC_TABLES[0]  # the one-table form, used by the tail loop


def crc32c(data: bytes, crc: int = 0) -> int:
    """Plain CRC-32C over a byte string (incremental via ``crc``).

    The byte loop uses slicing-by-8: eight parallel tables fold eight
    input bytes per iteration, the standard software trick for
    multi-GB/s CRC rates.  It computes exactly the same polynomial
    division as the one-table form (the tail loop below *is* the
    one-table form), just with 8x fewer Python-level iterations.
    """
    crc ^= 0xFFFFFFFF
    t0, t1, t2, t3, t4, t5, t6, t7 = CRC_TABLES
    length = len(data)
    index = 0
    end8 = length - (length & 7)
    while index < end8:
        low = crc ^ (data[index]
                     | (data[index + 1] << 8)
                     | (data[index + 2] << 16)
                     | (data[index + 3] << 24))
        high = (data[index + 4]
                | (data[index + 5] << 8)
                | (data[index + 6] << 16)
                | (data[index + 7] << 24))
        crc = (t7[low & 0xFF] ^ t6[(low >> 8) & 0xFF]
               ^ t5[(low >> 16) & 0xFF] ^ t4[low >> 24]
               ^ t3[high & 0xFF] ^ t2[(high >> 8) & 0xFF]
               ^ t1[(high >> 16) & 0xFF] ^ t0[high >> 24])
        index += 8
    while index < length:
        crc = (crc >> 8) ^ t0[(crc ^ data[index]) & 0xFF]
        index += 1
    return crc ^ 0xFFFFFFFF


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Big-endian word serialization (configuration byte order)."""
    try:
        return struct.pack(">%dI" % len(words), *words)
    except struct.error:
        for word in words:
            if not 0 <= word < (1 << 32):
                raise OverflowError(
                    f"word {word:#x} does not fit in 32 bits"
                ) from None
        raise


def bytes_to_words(data: bytes) -> List[int]:
    """Big-endian word deserialization."""
    if len(data) % 4:
        raise BitstreamFormatError(
            f"byte stream length {len(data)} is not word aligned"
        )
    return list(struct.unpack(">%dI" % (len(data) // 4), data))


def synthesize_payload(plan: SynthesisPlan) -> bytes:
    """Materialise a frame-synthesis plan into packed payload bytes.

    COPY ops read from exactly ``frame_words`` words behind the write
    position — the previous frame at the same intra-frame offset — so
    an op walk over the growing output list resolves them directly.
    """
    out: List[int] = []
    append = out.append
    extend = out.extend
    frame_words = plan.frame_words
    for kind, value, length in zip(plan.kinds, plan.values, plan.lengths):
        if kind == COPY:
            start = len(out) - frame_words
            extend(out[start:start + length])
        elif length == 1:
            append(value)
        else:
            extend([value] * length)
    return struct.pack(">%dI" % len(out), *out)


def equal_word_runs(data: bytes, word_count: int) -> List[int]:
    """Lengths of maximal equal-32-bit-word runs covering the stream.

    ``sum(result) == word_count``; a lone word is a run of 1.
    """
    runs: List[int] = []
    append = runs.append
    index = 0
    while index < word_count:
        base = data[index * 4:index * 4 + 4]
        run = 1
        while (index + run < word_count
               and data[(index + run) * 4:(index + run) * 4 + 4] == base):
            run += 1
        append(run)
        index += run
    return runs


def zero_word_runs(data: bytes,
                   word_count: int) -> Tuple[List[int], List[int]]:
    """Starts and lengths of maximal all-zero 32-bit-word runs."""
    starts: List[int] = []
    lengths: List[int] = []
    zero = b"\x00\x00\x00\x00"
    index = 0
    while index < word_count:
        if data[index * 4:index * 4 + 4] == zero:
            run = 1
            while (index + run < word_count
                   and data[(index + run) * 4:(index + run) * 4 + 4] == zero):
                run += 1
            starts.append(index)
            lengths.append(run)
            index += run
        else:
            index += 1
    return starts, lengths


def match_lengths(data: bytes, candidates: Sequence[int],
                  position: int, limit: int) -> List[int]:
    """Match length at ``position`` for each candidate start offset.

    Candidates are measured in order; measurement stops after (and
    including) the first candidate that reaches ``limit``, mirroring
    the LZ match loops' early break — the returned list may therefore
    be shorter than ``candidates``.
    """
    lengths: List[int] = []
    append = lengths.append
    for candidate in candidates:
        run = 0
        while (run < limit
               and data[candidate + run] == data[position + run]):
            run += 1
        append(run)
        if run == limit:
            break
    return lengths


def chunk_words(block: Sequence[int], offset: int,
                frame_words: int) -> Tuple[List[List[int]], List[int]]:
    """Split ``block[offset:]`` into full frames plus the leftover tail."""
    frames: List[List[int]] = []
    append = frames.append
    count = len(block)
    position = offset
    while count - position >= frame_words:
        append(list(block[position:position + frame_words]))
        position += frame_words
    return frames, list(block[position:])


# -- bit packing ------------------------------------------------------


def bitpack(values: Sequence[int], widths: Sequence[int]) -> bytes:
    """MSB-first concatenation of ``(value, width)`` tokens.

    The final byte is zero-padded, exactly like
    ``BitWriter.getvalue()`` — a token stream packed here is
    byte-identical to the same tokens written through a
    :class:`~repro.compress.bitio.BitWriter`.  Widths must be in
    [0, 64] and values must fit their width.
    """
    buf = bytearray()
    append = buf.append
    acc = 0
    bits = 0
    for value, width in zip(values, widths):
        acc = (acc << width) | value
        bits += width
        while bits >= 8:
            bits -= 8
            append((acc >> bits) & 0xFF)
        acc &= (1 << bits) - 1
    if bits:
        append((acc << (8 - bits)) & 0xFF)
    return bytes(buf)


# -- X-MatchPRO token scan --------------------------------------------

#: Match-type static prefix code: mask bit i set => byte i matched,
#: byte 0 being the most-significant byte of the big-endian word.
#: This table *defines* the X-MatchPRO stream format; the codec in
#: ``repro.compress.xmatchpro`` re-exports it for its decoder.
XMATCH_MASK_CODES: Dict[int, Tuple[int, int]] = {
    0b1111: (0b0, 1),
    0b1110: (0b1000, 4),
    0b1101: (0b1001, 4),
    0b1011: (0b1010, 4),
    0b0111: (0b1011, 4),
    0b1100: (0b11000, 5),
    0b1010: (0b11001, 5),
    0b1001: (0b11010, 5),
    0b0110: (0b11011, 5),
    0b0101: (0b11100, 5),
    0b0011: (0b11101, 5),
}
_XM_MIN_MATCH_BYTES = 2
_XM_RUN_MAX = 255  # zero-run counter chunk: 0xFF means "255 and continue"


def _build_xmatch_tables() -> Tuple[List[int], List[int], List[int]]:
    """``score/code/length`` per 4-bit match mask (-1 score = no code)."""
    score = [-1] * 16
    code = [0] * 16
    length = [0] * 16
    for mask, (value, bits) in XMATCH_MASK_CODES.items():
        matched = bin(mask).count("1")
        if matched >= _XM_MIN_MATCH_BYTES:
            score[mask] = matched * 8 - bits
            code[mask] = value
            length[mask] = bits
    return score, code, length


_XM_SCORE, _XM_CODE, _XM_CLEN = _build_xmatch_tables()

# Zero-byte SWAR masks per dictionary size n: the dictionary is packed
# into one big int (entry l occupies bits [32l, 32l+32)), and
# ``~((X & M7F) + M7F | X) & HI`` marks every zero byte of
# ``X = packed ^ word * REP`` — i.e. every matching byte of every
# entry — in 5 big-int ops, independent of the dictionary size.
_XM_REP = [((1 << (32 * n)) - 1) // 0xFFFFFFFF for n in range(65)]
_XM_M7F = [rep * 0x7F7F7F7F for rep in _XM_REP]
_XM_HI = [rep * 0x80808080 for rep in _XM_REP]

#: 0x80808080-masked SWAR lane -> 4-bit match mask (bit i = byte i,
#: byte 0 = MSB, which sits in the lane's *high* marker bit).
_XM_LANE = {
    ((mask & 1) and 0x80000000) | ((mask & 2) and 0x00800000)
    | ((mask & 4) and 0x00008000) | ((mask & 8) and 0x00000080): mask
    for mask in range(16)
}


def _xmatch_index_bits(dictionary_size: int) -> int:
    """Phased-binary width for indices ``0..dictionary_size - 1``."""
    width = 1
    while (1 << width) < dictionary_size:
        width += 1
    return width


def xmatch_tokens(data: bytes, word_count: int,
                  capacity: int) -> TokenStream:
    """X-MatchPRO token stream over ``data[:word_count * 4]``.

    Implements the full coding loop of
    :class:`repro.compress.xmatchpro.XMatchProCodec` — zero-run
    tokens, full/partial dictionary matches with move-to-front update,
    and misses — returning the ``(values, widths)`` token arrays whose
    :func:`bitpack` is byte-identical to the historical per-token
    ``BitWriter`` stream.  Long zero-run tokens are split across array
    entries (the bit stream is a plain concatenation, so the split is
    invisible); every width is <= 58 bits.
    """
    words = list(struct.unpack(">%dI" % word_count,
                               data[:word_count * 4]))
    starts, lengths = zero_word_runs(data, word_count)
    return _xmatch_scan(words, dict(zip(starts, lengths)), capacity)


def _xmatch_scan(words: List[int], zero_runs: Dict[int, int],
                 capacity: int) -> TokenStream:
    """The X-MatchPRO coding loop over pre-scanned zero runs.

    Shared with the numpy backend, which passes vectorised zero-run
    positions; everything here is the semantic reference.  Two
    scan-level collapses keep the hot loop short:

    * a repeated non-zero word is a full match at location 0 with a
      move-to-front no-op, so a run of equal words is a run of
      all-zero token bits emitted in bulk (zero runs in between do
      not touch the dictionary, so the collapse crosses them);
    * the dictionary lives packed in one big int and a SWAR zero-byte
      scan finds every matching byte of every entry at once — a miss
      (the most common token) is detected without a per-entry loop.
    """
    values = array("Q")
    widths = array("B")
    av = values.append
    aw = widths.append
    score_of = _XM_SCORE
    code_of = _XM_CODE
    clen_of = _XM_CLEN
    lane_mask = _XM_LANE
    rep = _XM_REP
    m7f = _XM_M7F
    hi = _XM_HI
    word_count = len(words)
    packed = 0          # dictionary entry l at bits [32l, 32l + 32)
    members = set()     # entries are always distinct (see _insert)
    size = 0
    ibits = 1
    full0_width = 3     # width of a full match at location 0
    previous = -1
    index = 0
    while index < word_count:
        word = words[index]
        if word == 0:
            run = zero_runs[index]
            index += run
            token = 0b10
            width = 2
            while run >= _XM_RUN_MAX:
                token = (token << 8) | _XM_RUN_MAX
                width += 8
                if width >= 56:
                    av(token)
                    aw(width)
                    token = 0
                    width = 0
                run -= _XM_RUN_MAX
            av((token << 8) | run)
            aw(width + 8)
            continue
        if word == previous:
            # Equal run: each repeat is the all-zero-bit full-match-
            # at-location-0 token; emit the zero bits in bulk.
            run = 1
            while index + run < word_count and words[index + run] == word:
                run += 1
            index += run
            total = run * full0_width
            while total >= 48:
                av(0)
                aw(48)
                total -= 48
            if total:
                av(0)
                aw(total)
            continue
        previous = word
        index += 1
        if word in members:
            # Full match: locate the all-zero lane (entries are
            # distinct, so exactly one lane cancels).
            lanes = packed ^ (word * rep[size])
            location = 0
            while lanes & 0xFFFFFFFF:
                lanes >>= 32
                location += 1
            av(location << 1)
            aw(2 + ibits)
            if location:
                keep = (1 << (32 * location)) - 1
                packed = ((((packed >> (32 * (location + 1)))
                            << (32 * location))
                           | (packed & keep)) << 32) | word
            continue
        if size:
            lanes = packed ^ (word * rep[size])
            marks = ~((lanes & m7f[size]) + m7f[size] | lanes) & hi[size]
        else:
            marks = 0
        if marks:
            best_location = -1
            best_score = -1
            best_mask = 0
            location = 0
            scan = marks
            while scan:
                lane = scan & 0x80808080
                if lane:
                    mask = lane_mask[lane]
                    points = score_of[mask]
                    if points > best_score:
                        best_score = points
                        best_location = location
                        best_mask = mask
                scan >>= 32
                location += 1
            if best_score >= 0:
                mask = best_mask
                token = ((best_location << clen_of[mask])
                         | code_of[mask])
                width = 1 + ibits + clen_of[mask]
                if not mask & 1:
                    token = (token << 8) | (word >> 24)
                    width += 8
                if not mask & 2:
                    token = (token << 8) | ((word >> 16) & 0xFF)
                    width += 8
                if not mask & 4:
                    token = (token << 8) | ((word >> 8) & 0xFF)
                    width += 8
                if not mask & 8:
                    token = (token << 8) | (word & 0xFF)
                    width += 8
                av(token)
                aw(width)
                old = (packed >> (32 * best_location)) & 0xFFFFFFFF
                members.discard(old)
                members.add(word)
                keep = (1 << (32 * best_location)) - 1
                packed = ((((packed >> (32 * (best_location + 1)))
                            << (32 * best_location))
                           | (packed & keep)) << 32) | word
                continue
        # Miss: raw 32-bit word, inserted at the dictionary front.
        av((0b11 << 32) | word)
        aw(34)
        members.add(word)
        packed = (packed << 32) | word
        if size < capacity:
            size += 1
            if size > 1:
                ibits = _xmatch_index_bits(size)
                full0_width = 2 + ibits
        else:
            old = (packed >> (32 * capacity)) & 0xFFFFFFFF
            members.discard(old)
            packed &= (1 << (32 * capacity)) - 1
    return values, widths


# -- LZ77 token scan --------------------------------------------------


def lz77_tokens(data: bytes, window_bits: int, length_bits: int,
                min_match: int, max_chain: int) -> TokenStream:
    """LZSS token stream: hash-chain search plus greedy tokenisation.

    Implements the coding loop of
    :class:`repro.compress.lz77.Lz77Codec`: every position is indexed
    into a ``min_match``-byte-prefix hash chain (``max_chain`` most
    recent occurrences), candidates are probed most-recent-first with
    the :func:`match_lengths` early-limit break, and the first
    candidate reaching the best length wins.  Tokens are
    ``1 | offset-1 | length-min_match`` (``1 + window_bits +
    length_bits`` wide) for matches and ``0 | byte`` (9 bits) for
    literals.
    """
    window = 1 << window_bits
    max_match = min_match + (1 << length_bits) - 1
    match_flag = 1 << (window_bits + length_bits)
    match_width = 1 + window_bits + length_bits
    values = array("Q")
    widths = array("B")
    av = values.append
    aw = widths.append
    chains: Dict[bytes, deque] = defaultdict(
        lambda: deque(maxlen=max_chain))
    length = len(data)
    position = 0
    while position < length:
        best_length = 0
        best_offset = 0
        if position + min_match <= length:
            chain = chains.get(data[position:position + min_match])
            if chain:
                window_start = position - window
                candidates = [candidate
                              for candidate in reversed(chain)
                              if candidate >= window_start]
                if candidates:
                    limit = min(max_match, length - position)
                    for candidate, run in zip(
                            candidates,
                            match_lengths(data, candidates,
                                          position, limit)):
                        if run > best_length:
                            best_length = run
                            best_offset = position - candidate
        if best_length >= min_match:
            av(match_flag
               | ((best_offset - 1) << length_bits)
               | (best_length - min_match))
            aw(match_width)
            end = position + best_length
            while position < end:
                if position + min_match <= length:
                    chains[data[position:position + min_match]] \
                        .append(position)
                position += 1
        else:
            av(data[position])
            aw(9)
            if position + min_match <= length:
                chains[data[position:position + min_match]] \
                    .append(position)
            position += 1
    return values, widths


# -- Huffman tables and packing ---------------------------------------


def huffman_code_table(frequencies: Sequence[int]
                       ) -> Tuple[List[int], List[int]]:
    """Canonical Huffman ``(codes, lengths)`` from a 256-bin histogram.

    Code lengths come from the classic two-least-weights merge with
    the deterministic tie-break :mod:`repro.compress.huffman` has
    always used (insertion order over symbol-sorted leaves); canonical
    codewords are assigned in ``(length, symbol)`` order.  Absent
    symbols have length 0.
    """
    codes = [0] * 256
    lengths = [0] * 256
    symbols = [symbol for symbol in range(256) if frequencies[symbol]]
    if not symbols:
        return codes, lengths
    if len(symbols) == 1:
        lengths[symbols[0]] = 1
        return codes, lengths
    heap: List[Tuple[int, int, List[int]]] = [
        (frequencies[symbol], order, [symbol])
        for order, symbol in enumerate(symbols)
    ]
    heapq.heapify(heap)
    tiebreak = len(symbols)
    while len(heap) > 1:
        weight_1, _, symbols_1 = heapq.heappop(heap)
        weight_2, _, symbols_2 = heapq.heappop(heap)
        merged = symbols_1 + symbols_2
        for symbol in merged:
            lengths[symbol] += 1
        heapq.heappush(heap, (weight_1 + weight_2, tiebreak, merged))
        tiebreak += 1
    code = 0
    previous_length = 0
    for length, symbol in sorted(
            (lengths[symbol], symbol) for symbol in symbols):
        code <<= length - previous_length
        codes[symbol] = code
        code += 1
        previous_length = length
    return codes, lengths


def huffman_pack(data: bytes, codes: Sequence[int],
                 lengths: Sequence[int]) -> bytes:
    """Encode ``data`` through a 256-entry code table and bit-pack it.

    Equivalent to one ``write_bits(codes[b], lengths[b])`` per input
    byte followed by ``BitWriter.getvalue()`` (zero-padded final
    byte), fused into a single accumulator loop.
    """
    buf = bytearray()
    append = buf.append
    acc = 0
    bits = 0
    for byte in data:
        width = lengths[byte]
        acc = (acc << width) | codes[byte]
        bits += width
        while bits >= 8:
            bits -= 8
            append((acc >> bits) & 0xFF)
        acc &= (1 << bits) - 1
    if bits:
        append((acc << (8 - bits)) & 0xFF)
    return bytes(buf)


# -- RLE record emission ----------------------------------------------

# Record format constants (the codec in ``repro.compress.rle`` keeps
# its own copies for the decoder; the golden-stream digests pin both).
_RLE_MAX_LITERALS = 0x80
_RLE_MIN_RUN = 2
_RLE_MAX_BASE_RUN = 0x7F + _RLE_MIN_RUN


def rle_records(data: bytes, word_count: int) -> bytes:
    """Word-RLE record stream (no header) over ``data[:word_count*4]``.

    Control byte < 0x80 announces ``n + 1`` literal words; >= 0x80 a
    run of ``control - 0x80 + 2`` repeats with 0xFF-extension bytes
    for longer runs — the exact record emission of
    :class:`repro.compress.rle.RleCodec`.
    """
    return _rle_emit(data, equal_word_runs(data, word_count))


def _rle_emit(data: bytes, runs: List[int]) -> bytes:
    """Emit RLE records for pre-scanned equal-word runs."""
    out = bytearray()
    literals: List[bytes] = []
    index = 0
    for run in runs:
        word = data[index * 4:index * 4 + 4]
        index += run
        if run >= _RLE_MIN_RUN:
            if literals:
                _rle_flush_literals(out, literals)
            while run >= _RLE_MIN_RUN:
                base = min(run, _RLE_MAX_BASE_RUN)
                out.append(0x80 + (base - _RLE_MIN_RUN))
                remaining = run - base
                if base == _RLE_MAX_BASE_RUN:
                    while remaining >= 0xFF:
                        out.append(0xFF)
                        remaining -= 0xFF
                    out.append(remaining)
                    remaining = 0
                out += word
                run = remaining
            if run == 1:
                out.append(0)  # single literal record
                out += word
        else:
            literals.append(word)
            if len(literals) == _RLE_MAX_LITERALS:
                _rle_flush_literals(out, literals)
    if literals:
        _rle_flush_literals(out, literals)
    return bytes(out)


def _rle_flush_literals(out: bytearray, literals: List[bytes]) -> None:
    while literals:
        chunk = literals[:_RLE_MAX_LITERALS]
        del literals[:_RLE_MAX_LITERALS]
        out.append(len(chunk) - 1)
        for word in chunk:
            out += word


# -- bit-serial decoders ----------------------------------------------
#
# The decompress loops of the four decompressor-library codecs.  They
# are sequential by construction (every token's position depends on
# every previous token), so the numpy backend delegates all four here
# and the native backend is where they go fast.  Each kernel decodes
# the *body* of a stream — header parsing and final length policy stay
# in the codec — and raises :class:`~repro.errors.CorruptStreamError`
# with the codec's historical messages at the historical points of
# failure, whichever backend runs.

_XM_ZERO_TUPLE = b"\x00\x00\x00\x00"

#: Decoder peek table for the match-type code: at most 5 bits, so one
#: 5-bit window lookup replaces the bit-by-bit prefix walk.  ``None``
#: marks the two unassigned 5-bit patterns (selectors 6 and 7 under
#: the ``11`` prefix).
_XM_MASK_PEEK: List[Optional[Tuple[int, int]]] = [None] * 32
for _mask, (_code, _length) in XMATCH_MASK_CODES.items():
    for _pad in range(1 << (5 - _length)):
        _XM_MASK_PEEK[(_code << (5 - _length)) | _pad] = (_mask, _length)
del _mask, _code, _length, _pad

#: Unmatched-byte positions per match mask, in stream order.
_XM_LITERAL_LANES: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(index for index in range(4) if not (mask >> index) & 1)
    for mask in range(16)
)


def xmatch_decode(body: bytes, output_length: int,
                  capacity: int) -> bytes:
    """Decode an X-MatchPRO token stream body.

    Inverse of :func:`xmatch_tokens` + :func:`bitpack`:
    ``output_length`` is the word-aligned body length (original length
    minus the raw tail the codec stores in its header).  The returned
    bytes may overshoot ``output_length`` when the final zero-run
    token is oversized — the codec's length-mismatch policy decides
    what that means, so the overshoot is returned as-is.

    The inline bit cursor holds at least ``bits`` valid low bits of
    ``acc`` (higher bits are stale and masked off on refill).  One
    refill per loop covers any fixed-layout token — a miss is 34 bits,
    a match at most 1 + 6 + 5 + 16 = 28 — so the token parse runs
    without per-field reader calls; zero runs refill per 8-bit chunk.
    Exhaustion checks mirror the historical per-field reads exactly
    (same error, same point of failure).
    """
    mask_peek = _XM_MASK_PEEK
    literal_bytes = _XM_LITERAL_LANES
    index_width = [_xmatch_index_bits(size) if size else 1
                   for size in range(capacity + 1)]
    index_mask = [(1 << width) - 1 for width in index_width]
    from_bytes = int.from_bytes
    out = bytearray()
    dictionary: List[bytes] = []
    acc = 0
    bits = 0
    position = 0
    body_len = len(body)
    while len(out) < output_length:
        if bits < 42:
            take = body_len - position
            if take > 6:
                take = 6
            if take:
                acc = ((acc & ((1 << bits) - 1)) << (take * 8)) \
                    | from_bytes(body[position:position + take], "big")
                position += take
                bits += take * 8
        if not bits:
            raise CorruptStreamError("bit stream exhausted")
        bits -= 1
        if not (acc >> bits) & 1:  # '0': dictionary match
            size = len(dictionary)
            if not size:
                raise CorruptStreamError("match against empty dictionary")
            width = index_width[size]
            if width > bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= width
            location = (acc >> bits) & index_mask[size]
            if location >= size:
                raise CorruptStreamError(
                    f"dictionary location {location} out of range"
                )
            if bits >= 5:
                peek = (acc >> (bits - 5)) & 0b11111
            else:
                peek = (acc & ((1 << bits) - 1)) << (5 - bits)
            entry = mask_peek[peek]
            if entry is None:
                # Both unassigned patterns start '11'; the decoder
                # only reaches the 3-bit selector with 5 bits left.
                if bits < 5:
                    raise CorruptStreamError("bit stream exhausted")
                raise CorruptStreamError(
                    f"invalid match-type code {peek & 0b111}"
                )
            mask, width = entry
            if width > bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= width
            matched = dictionary[location]
            if mask == 0b1111:
                word_bytes = matched
            else:
                word = bytearray(matched)
                for byte_index in literal_bytes[mask]:
                    if bits < 8:
                        raise CorruptStreamError("bit stream exhausted")
                    bits -= 8
                    word[byte_index] = (acc >> bits) & 0xFF
                word_bytes = bytes(word)
            out += word_bytes
            del dictionary[location]
            dictionary.insert(0, word_bytes)
        else:
            if not bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= 1
            if not (acc >> bits) & 1:  # '10': zero run
                run = 0
                while True:
                    if bits < 8:
                        take = body_len - position
                        if take > 6:
                            take = 6
                        if take:
                            acc = ((acc & ((1 << bits) - 1))
                                   << (take * 8)) \
                                | from_bytes(
                                    body[position:position + take],
                                    "big")
                            position += take
                            bits += take * 8
                        if bits < 8:
                            raise CorruptStreamError(
                                "bit stream exhausted")
                    bits -= 8
                    chunk = (acc >> bits) & 0xFF
                    run += chunk
                    if chunk != _XM_RUN_MAX:
                        break
                if run == 0:
                    raise CorruptStreamError("zero-length zero run")
                out += _XM_ZERO_TUPLE * run
            else:  # '11': miss
                if bits < 32:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= 32
                word_bytes = ((acc >> bits)
                              & 0xFFFFFFFF).to_bytes(4, "big")
                out += word_bytes
                dictionary.insert(0, word_bytes)
                if len(dictionary) > capacity:
                    dictionary.pop()
    return bytes(out)


def lz77_decode(body: bytes, output_length: int, window_bits: int,
                length_bits: int, min_match: int) -> bytes:
    """Decode an LZSS token stream body (inverse of
    :func:`lz77_tokens` + :func:`bitpack`).

    Copies are resolved against the growing output, byte-serially for
    self-overlapping matches.  A corrupt final match may overshoot
    ``output_length``; the overshoot is returned as-is (the codec has
    no trailing length policy for LZ77).
    """
    window_mask = (1 << window_bits) - 1
    length_mask = (1 << length_bits) - 1
    # Worst-case token: a match (1 + window + length bits) or a
    # literal (9 bits), whichever is wider.
    token_bits = max(1 + window_bits + length_bits, 9)
    out = bytearray()
    append = out.append
    acc = 0
    bits = 0
    position = 0
    body_len = len(body)
    while len(out) < output_length:
        if bits < token_bits:
            take = body_len - position
            if take > 6:
                take = 6
            if take:
                acc = ((acc & ((1 << bits) - 1)) << (take * 8)) \
                    | int.from_bytes(body[position:position + take],
                                     "big")
                position += take
                bits += take * 8
        if not bits:
            raise CorruptStreamError("bit stream exhausted")
        bits -= 1
        if (acc >> bits) & 1:  # match token
            if window_bits > bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= window_bits
            offset = ((acc >> bits) & window_mask) + 1
            if length_bits > bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= length_bits
            run = ((acc >> bits) & length_mask) + min_match
            start = len(out) - offset
            if start < 0:
                raise CorruptStreamError(
                    f"LZ77 back-reference beyond start (offset {offset})"
                )
            if offset >= run:
                out += out[start:start + run]
            else:
                for step in range(run):
                    append(out[start + step])  # self-overlapping
        else:
            if bits < 8:
                raise CorruptStreamError("bit stream exhausted")
            bits -= 8
            append((acc >> bits) & 0xFF)
    return bytes(out)


_HUF_MAX_CODE_LENGTH = 32
_HUF_PEEK_BITS = 12  # primary decode-table window


def huffman_decode(body: bytes, output_length: int,
                   lengths: bytes) -> bytes:
    """Decode a canonical-Huffman body against a 256-byte length table.

    ``lengths[symbol]`` is the code length declared in the stream
    header (0 = absent symbol); codewords are reassigned canonically
    in ``(length, symbol)`` order, exactly as the encoder assigned
    them.  A declared table whose short codes overflow their own bit
    width (an over-subscribed Kraft sum — only possible in a corrupt
    stream) is rejected as corrupt.
    """
    ordered = sorted((lengths[symbol], symbol)
                     for symbol in range(256) if lengths[symbol])
    if not ordered:
        raise CorruptStreamError("empty Huffman table for non-empty data")
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    # Primary table: the next ``peek`` bits (zero-padded near the
    # stream end — canonical codes are prefix-free, so a lookup that
    # lands on a code no longer than the real bits left is
    # unambiguous) index straight to ``(length << 8) | symbol``.
    # Codes longer than the window (rare: implies > 2^12 spread in
    # symbol frequencies) fall back to the historical bit-by-bit walk
    # over the (length, code) map.
    max_length = ordered[-1][0]
    peek = min(_HUF_PEEK_BITS, max_length)
    table = [0] * (1 << peek)
    for symbol, (code, length) in codes.items():
        if length <= peek:
            if code >> length:
                raise CorruptStreamError("invalid Huffman code table")
            base = code << (peek - length)
            entry = (length << 8) | symbol
            for pad in range(1 << (peek - length)):
                table[base + pad] = entry
    decode_map = {(length, code): symbol
                  for symbol, (code, length) in codes.items()}
    out = bytearray()
    append = out.append
    acc = 0
    bits = 0
    position = 0
    body_len = len(body)
    while len(out) < output_length:
        if bits < peek:
            take = body_len - position
            if take > 6:
                take = 6
            if take:
                acc = ((acc & ((1 << bits) - 1)) << (take * 8)) \
                    | int.from_bytes(body[position:position + take],
                                     "big")
                position += take
                bits += take * 8
        if bits >= peek:
            entry = table[(acc >> (bits - peek)) & ((1 << peek) - 1)]
        else:
            entry = table[((acc & ((1 << bits) - 1))
                           << (peek - bits)) & ((1 << peek) - 1)]
        length = entry >> 8
        if entry and length <= bits:
            bits -= length
            append(entry & 0xFF)
            continue
        # Long code, or the stream ran dry mid-codeword: replay the
        # historical bit-by-bit walk for exact error parity.
        code = 0
        length = 0
        while True:
            if not bits:
                if position < body_len:
                    acc = body[position]
                    position += 1
                    bits = 8
                else:
                    raise CorruptStreamError("bit stream exhausted")
            bits -= 1
            code = (code << 1) | ((acc >> bits) & 1)
            length += 1
            if length > _HUF_MAX_CODE_LENGTH:
                raise CorruptStreamError("invalid Huffman codeword")
            symbol = decode_map.get((length, code))
            if symbol is not None:
                append(symbol)
                break
    return bytes(out)


def rle_decode(records: bytes, output_length: int) -> bytes:
    """Decode a word-RLE record stream (inverse of :func:`rle_records`).

    Decodes until ``output_length`` bytes are produced or the records
    run out; anything after that is container padding (e.g. the
    Manager word-aligns compressed payloads in BRAM) and must be
    ignored.  An oversized final run may overshoot ``output_length``;
    the codec's trailing length check decides what that means.
    """
    out = bytearray()
    position = 0
    record_len = len(records)
    while position < record_len and len(out) < output_length:
        control = records[position]
        position += 1
        if control < _RLE_MAX_LITERALS:
            count = control + 1
            need = count * 4
            chunk = records[position:position + need]
            if len(chunk) != need:
                raise CorruptStreamError("truncated literal record")
            out += chunk
            position += need
        else:
            run = (control - 0x80) + _RLE_MIN_RUN
            if run == _RLE_MAX_BASE_RUN:
                while True:
                    if position >= record_len:
                        raise CorruptStreamError("truncated run extension")
                    extension = records[position]
                    position += 1
                    run += extension
                    if extension != 0xFF:
                        break
            word = records[position:position + 4]
            if len(word) != 4:
                raise CorruptStreamError("truncated run word")
            position += 4
            out += word * run
    return bytes(out)
