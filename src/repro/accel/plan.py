"""Frame-synthesis plan: the op stream the generator hands a backend.

The synthetic-bitstream generator draws a *run mixture* from its seeded
RNG (zero filler, routing motifs, copies from the previous frame,
texture/LUT words).  Those draws decide *what* every payload word is,
but the decisions never depend on the materialised words themselves —
which is what makes the materialisation a swappable backend kernel:
the planner records one op per run into this container, and
``accel.synthesize_payload`` turns the ops into the packed payload
bytes.

Ops live in ``array`` typed arrays rather than Python lists so the
numpy backend can view them zero-copy (``np.frombuffer``); the pure
backend just iterates them.  Two op kinds cover the whole mixture:

* ``FILL``  — ``length`` repetitions of ``value`` (zero runs, motif
  runs, and single texture/LUT words are all fills);
* ``COPY``  — ``length`` words copied from the previous frame at the
  same intra-frame offsets, i.e. from exactly ``frame_words`` words
  behind the write position.

The planner clips every op at the frame boundary, so op lengths sum
to ``frames * frame_words`` and a COPY never reaches past its own
frame's start.
"""

from __future__ import annotations

from array import array

FILL = 0
COPY = 1


class SynthesisPlan:
    """Typed-array op stream for one bitstream's frame payload."""

    __slots__ = ("frame_words", "kinds", "values", "lengths",
                 "total_words")

    def __init__(self, frame_words: int) -> None:
        if frame_words <= 0:
            raise ValueError("frame_words must be positive")
        self.frame_words = frame_words
        self.kinds = array("B")
        self.values = array("I")
        self.lengths = array("I")
        self.total_words = 0

    def fill(self, value: int, length: int) -> int:
        """Append a FILL op; returns the length for position updates."""
        if length > 0:
            self.kinds.append(FILL)
            self.values.append(value)
            self.lengths.append(length)
            self.total_words += length
        return length

    def copy_previous(self, length: int) -> int:
        """Append a COPY-from-previous-frame op."""
        if length > 0:
            self.kinds.append(COPY)
            self.values.append(0)
            self.lengths.append(length)
            self.total_words += length
        return length

    def __len__(self) -> int:
        return len(self.kinds)
