"""Compiled-C backend for the sequential datapath kernels.

Byte-identical to :mod:`repro.accel.pure` by construction — the C
kernels in ``repro/accel/_native/uparc_kernels.c`` port the reference
loops statement for statement (same token layouts, same move-to-front
order, same error detection points), and the cross-backend digest and
hypothesis suites pin the two together.  This module is the thin ctypes
-free wrapper: it shapes arguments into C buffers, maps decoder status
codes back to the reference :class:`~repro.errors.CorruptStreamError`
messages, and keeps a small-input crossover per kernel below which the
tuned pure form wins (the FFI call plus buffer setup costs ~1 µs).

Importing this module requires the compiled extension
(``python -m repro.accel._native.build`` or the ``native`` install
extra); :func:`repro.accel.native_available` probes for it and the
selection logic falls back to numpy/pure when it is missing.

Kernels with no sequential carried state (``synthesize_payload``, the
run scans, ``match_lengths``…) delegate to the numpy backend when
numpy is importable and to pure otherwise: the native backend never
*loses* to auto-detection's next-best choice.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

from repro.accel import pure
from repro.accel._native import _uparc_native
from repro.accel.plan import SynthesisPlan
from repro.errors import CorruptStreamError

try:
    from repro.accel import numpy_backend as _vector
except ImportError:  # pragma: no cover - exercised on no-numpy installs
    _vector = pure  # type: ignore[assignment]

name = "native"

ffi = _uparc_native.ffi
_lib = _uparc_native.lib
_lib.uparc_init()

# Below these sizes the pure kernels win (the crossover sentinels in
# tests/accel/test_crossover.py pin the ordering on both sides);
# outputs are identical either way, so the cutovers only affect speed.
# The FFI call itself costs well under 1 µs, so most cutovers sit far
# lower than the numpy backend's: the measured crossovers are 2-8
# elements for everything except the kernels that pay a fixed Python-
# side conversion per call (huffman_pack converts two 256-entry code
# tables; lz77_tokens allocates its 128 KB hash-head array) and
# rle_decode, whose pure form does one bulk ``word * run`` per record
# and only loses once the stream holds a few dozen records.
_CRC_MIN_BYTES = 4
_BITPACK_MIN_TOKENS = 8
_HUFF_PACK_MIN_BYTES = 128
_XMATCH_MIN_WORDS = 2
_LZ77_MIN_BYTES = 16
_XMATCH_DEC_MIN_BYTES = 8
_LZ77_DEC_MIN_BYTES = 8
_HUFF_DEC_MIN_BYTES = 8
_RLE_DEC_MIN_BYTES = 64

# Decoder status codes, mirroring uparc_kernels.c.
_OK = 0
_ERR_EXHAUSTED = 1
_ERR_EMPTY_DICT = 2
_ERR_DICT_RANGE = 3
_ERR_MATCH_TYPE = 4
_ERR_ZERO_RUN = 5
_ERR_BACKREF = 6
_ERR_CODEWORD = 7
_ERR_CODE_TABLE = 8
_ERR_EMPTY_TABLE = 9
_ERR_LITERAL = 10
_ERR_EXTENSION = 11
_ERR_RUN_WORD = 12
_ERR_NOMEM = 13

_STATIC_MESSAGES = {
    _ERR_EXHAUSTED: "bit stream exhausted",
    _ERR_EMPTY_DICT: "match against empty dictionary",
    _ERR_ZERO_RUN: "zero-length zero run",
    _ERR_CODEWORD: "invalid Huffman codeword",
    _ERR_CODE_TABLE: "invalid Huffman code table",
    _ERR_EMPTY_TABLE: "empty Huffman table for non-empty data",
    _ERR_LITERAL: "truncated literal record",
    _ERR_EXTENSION: "truncated run extension",
    _ERR_RUN_WORD: "truncated run word",
}


def _raise_status(status: int, detail: int) -> None:
    """Map a decoder status code to the reference exception."""
    if status == _ERR_NOMEM:
        raise MemoryError("native decoder allocation failed")
    if status == _ERR_DICT_RANGE:
        raise CorruptStreamError(
            f"dictionary location {detail} out of range")
    if status == _ERR_MATCH_TYPE:
        raise CorruptStreamError(f"invalid match-type code {detail}")
    if status == _ERR_BACKREF:
        raise CorruptStreamError(
            f"LZ77 back-reference beyond start (offset {detail})")
    raise CorruptStreamError(_STATIC_MESSAGES[status])


def _take_buffer(out_ptr, out_len) -> bytes:
    """Copy and free a decoder's malloc'd output buffer."""
    pointer = out_ptr[0]
    length = out_len[0]
    if pointer == ffi.NULL or length <= 0:
        if pointer != ffi.NULL:
            _lib.uparc_buffer_free(pointer)
        return b""
    result = bytes(ffi.buffer(pointer, length))
    _lib.uparc_buffer_free(pointer)
    return result


def _token_arrays(values, widths, count: int) -> "pure.TokenStream":
    """C token buffers -> the ``(array('Q'), array('B'))`` contract."""
    value_array = array("Q")
    width_array = array("B")
    if count:
        value_array.frombytes(bytes(ffi.buffer(values, 8 * count)))
        width_array.frombytes(bytes(ffi.buffer(widths, count)))
    return value_array, width_array


# -- CRC ----------------------------------------------------------------


def crc32c(data: bytes, crc: int = 0) -> int:
    if len(data) < _CRC_MIN_BYTES:
        return pure.crc32c(data, crc)
    return _lib.uparc_crc32c(ffi.from_buffer("uint8_t[]", data),
                             len(data), crc & 0xFFFFFFFF)


# -- kernels without sequential carried state ---------------------------
# The vector (or pure) forms already are the fastest known shapes;
# porting them to C would duplicate work for no measured gain.


def words_to_bytes(words: Sequence[int]) -> bytes:
    return _vector.words_to_bytes(words)


def bytes_to_words(data: bytes) -> List[int]:
    return _vector.bytes_to_words(data)


def synthesize_payload(plan: SynthesisPlan) -> bytes:
    return _vector.synthesize_payload(plan)


def equal_word_runs(data: bytes, word_count: int) -> List[int]:
    return _vector.equal_word_runs(data, word_count)


def zero_word_runs(data: bytes,
                   word_count: int) -> Tuple[List[int], List[int]]:
    return _vector.zero_word_runs(data, word_count)


def match_lengths(data: bytes, candidates: Sequence[int],
                  position: int, limit: int) -> List[int]:
    return _vector.match_lengths(data, candidates, position, limit)


def chunk_words(block: Sequence[int], offset: int,
                frame_words: int) -> Tuple[List[List[int]], List[int]]:
    return _vector.chunk_words(block, offset, frame_words)


def huffman_code_table(frequencies: Sequence[int]
                       ) -> Tuple[List[int], List[int]]:
    return _vector.huffman_code_table(frequencies)


def rle_records(data: bytes, word_count: int) -> bytes:
    return _vector.rle_records(data, word_count)


# -- bit packing --------------------------------------------------------


def bitpack(values: Sequence[int], widths: Sequence[int]) -> bytes:
    count = len(values)
    if count < _BITPACK_MIN_TOKENS:
        return pure.bitpack(values, widths)
    if isinstance(values, array) and values.typecode == "Q":
        value_buffer = ffi.from_buffer("uint64_t[]", values)
    else:
        try:
            value_buffer = ffi.from_buffer(
                "uint64_t[]", array("Q", values))
        except OverflowError:
            # Values beyond 64 bits: only the bigint pure form packs
            # them (no kernel emits such tokens; property tests do).
            return pure.bitpack(values, widths)
    if isinstance(widths, array) and widths.typecode == "B":
        width_buffer = ffi.from_buffer("uint8_t[]", widths)
    else:
        try:
            width_buffer = ffi.from_buffer(
                "uint8_t[]", array("B", widths))
        except OverflowError:
            return pure.bitpack(values, widths)
    out = ffi.new("uint8_t[]", 8 * count + 1)
    written = _lib.uparc_bitpack(value_buffer, width_buffer, count, out)
    if written < 0:  # a width above 64: pure handles arbitrary widths
        return pure.bitpack(values, widths)
    return bytes(ffi.buffer(out, written))


def huffman_pack(data: bytes, codes: Sequence[int],
                 lengths: Sequence[int]) -> bytes:
    if len(data) < _HUFF_PACK_MIN_BYTES or max(lengths) > 64:
        return _vector.huffman_pack(data, codes, lengths)
    out = ffi.new("uint8_t[]", 8 * len(data) + 1)
    written = _lib.uparc_huffman_pack(
        ffi.from_buffer("uint8_t[]", data), len(data),
        ffi.from_buffer("uint64_t[]", array("Q", codes)),
        ffi.from_buffer("uint8_t[]", array("B", lengths)), out)
    return bytes(ffi.buffer(out, written))


# -- token scans --------------------------------------------------------


def xmatch_tokens(data: bytes, word_count: int,
                  capacity: int) -> "pure.TokenStream":
    if word_count < _XMATCH_MIN_WORDS or not 2 <= capacity <= 64:
        return _vector.xmatch_tokens(data, word_count, capacity)
    values = ffi.new("uint64_t[]", word_count + 8)
    widths = ffi.new("uint8_t[]", word_count + 8)
    count = _lib.uparc_xmatch_tokens(
        ffi.from_buffer("uint8_t[]", data), word_count, capacity,
        values, widths)
    return _token_arrays(values, widths, count)


def lz77_tokens(data: bytes, window_bits: int, length_bits: int,
                min_match: int, max_chain: int) -> "pure.TokenStream":
    length = len(data)
    # min_match > 8: the prefix key must fit a uint64; wide layouts
    # (match token past 64 bits) only exist in property tests.
    if (length < _LZ77_MIN_BYTES or min_match > 8 or min_match < 1
            or window_bits + length_bits + 1 > 64):
        return _vector.lz77_tokens(data, window_bits, length_bits,
                                   min_match, max_chain)
    values = ffi.new("uint64_t[]", length + 1)
    widths = ffi.new("uint8_t[]", length + 1)
    head = ffi.new("int32_t[]", 1 << 15)
    prev = ffi.new("int32_t[]", length)
    count = _lib.uparc_lz77_tokens(
        ffi.from_buffer("uint8_t[]", data), length, window_bits,
        length_bits, min_match, max_chain, values, widths, head, prev)
    return _token_arrays(values, widths, count)


# -- bit-serial decoders ------------------------------------------------


def xmatch_decode(body: bytes, output_length: int,
                  capacity: int) -> bytes:
    if len(body) < _XMATCH_DEC_MIN_BYTES or not 2 <= capacity <= 64:
        return pure.xmatch_decode(body, output_length, capacity)
    out_ptr = ffi.new("uint8_t **")
    out_len = ffi.new("int64_t *")
    detail = ffi.new("int64_t *")
    status = _lib.uparc_xmatch_decode(
        ffi.from_buffer("uint8_t[]", body), len(body), output_length,
        capacity, out_ptr, out_len, detail)
    if status != _OK:
        _raise_status(status, detail[0])
    return _take_buffer(out_ptr, out_len)


def lz77_decode(body: bytes, output_length: int, window_bits: int,
                length_bits: int, min_match: int) -> bytes:
    # The 48-bit cap keeps the C bit reader's refill horizon aligned
    # with the reference's 6-byte refill (same exhaustion points).
    if (len(body) < _LZ77_DEC_MIN_BYTES
            or window_bits + length_bits + 1 > 48):
        return pure.lz77_decode(body, output_length, window_bits,
                                length_bits, min_match)
    out_ptr = ffi.new("uint8_t **")
    out_len = ffi.new("int64_t *")
    detail = ffi.new("int64_t *")
    status = _lib.uparc_lz77_decode(
        ffi.from_buffer("uint8_t[]", body), len(body), output_length,
        window_bits, length_bits, min_match, out_ptr, out_len, detail)
    if status != _OK:
        _raise_status(status, detail[0])
    return _take_buffer(out_ptr, out_len)


def huffman_decode(body: bytes, output_length: int,
                   lengths: bytes) -> bytes:
    if len(body) < _HUFF_DEC_MIN_BYTES or len(lengths) < 256:
        return pure.huffman_decode(body, output_length, lengths)
    out_ptr = ffi.new("uint8_t **")
    out_len = ffi.new("int64_t *")
    status = _lib.uparc_huffman_decode(
        ffi.from_buffer("uint8_t[]", body), len(body), output_length,
        ffi.from_buffer("uint8_t[]", bytes(lengths)), out_ptr, out_len)
    if status != _OK:
        _raise_status(status, 0)
    return _take_buffer(out_ptr, out_len)


def rle_decode(records: bytes, output_length: int) -> bytes:
    if len(records) < _RLE_DEC_MIN_BYTES:
        return pure.rle_decode(records, output_length)
    out_ptr = ffi.new("uint8_t **")
    out_len = ffi.new("int64_t *")
    status = _lib.uparc_rle_decode(
        ffi.from_buffer("uint8_t[]", records), len(records),
        output_length, out_ptr, out_len)
    if status != _OK:
        _raise_status(status, 0)
    return _take_buffer(out_ptr, out_len)
