"""cffi builder for the ``_uparc_native`` extension.

Out-of-line API mode: the C kernels live in ``uparc_kernels.c`` next
to this file and are compiled into a real extension module, so calls
cross the FFI boundary without per-call parsing overhead (and release
the GIL while the kernel runs).

This module is imported in two ways:

* ``python -m repro.accel._native.build`` — in-tree developer build,
  drops the extension next to the sources;
* setuptools' ``cffi_modules`` hook (the ``native`` install extra) —
  builds the extension as part of the wheel.

Importing it requires cffi; everything else in the package stays
importable without.
"""

from __future__ import annotations

import os

from cffi import FFI

_HERE = os.path.dirname(os.path.abspath(__file__))

with open(os.path.join(_HERE, "uparc_kernels.c"), "r",
          encoding="utf-8") as _handle:
    _SOURCE = _handle.read()

ffibuilder = FFI()

ffibuilder.cdef("""
void uparc_init(void);
uint32_t uparc_crc32c(const uint8_t *data, size_t len, uint32_t crc);
int64_t uparc_bitpack(const uint64_t *values, const uint8_t *widths,
                      size_t count, uint8_t *out);
int64_t uparc_huffman_pack(const uint8_t *data, size_t len,
                           const uint64_t *codes, const uint8_t *lengths,
                           uint8_t *out);
int64_t uparc_xmatch_tokens(const uint8_t *data, size_t word_count,
                            int capacity, uint64_t *values,
                            uint8_t *widths);
int64_t uparc_lz77_tokens(const uint8_t *data, size_t len,
                          int window_bits, int length_bits,
                          int min_match, int max_chain,
                          uint64_t *values, uint8_t *widths,
                          int32_t *head, int32_t *prev);
int uparc_xmatch_decode(const uint8_t *body, size_t body_len,
                        int64_t output_length, int capacity,
                        uint8_t **out_ptr, int64_t *out_len,
                        int64_t *detail);
int uparc_lz77_decode(const uint8_t *body, size_t body_len,
                      int64_t output_length, int window_bits,
                      int length_bits, int min_match,
                      uint8_t **out_ptr, int64_t *out_len,
                      int64_t *detail);
int uparc_huffman_decode(const uint8_t *body, size_t body_len,
                         int64_t output_length, const uint8_t *lengths,
                         uint8_t **out_ptr, int64_t *out_len);
int uparc_rle_decode(const uint8_t *records, size_t record_len,
                     int64_t output_length, uint8_t **out_ptr,
                     int64_t *out_len);
void uparc_buffer_free(uint8_t *ptr);
""")

ffibuilder.set_source(
    "repro.accel._native._uparc_native",
    _SOURCE,
    extra_compile_args=["-O2"],
)

if __name__ == "__main__":
    ffibuilder.compile(verbose=True)
