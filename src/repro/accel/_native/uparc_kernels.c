/* Native (C) implementations of the sequential datapath kernels.
 *
 * Compiled behind the cffi out-of-line API module
 * ``repro.accel._native._uparc_native`` and wrapped by
 * ``repro.accel.native_backend``.  Every function here mirrors the
 * pure-Python reference in ``repro/accel/pure.py`` bit for bit:
 * same token layouts, same move-to-front update order, same error
 * detection points (decoders return a status code; the Python
 * wrapper raises the reference error message).  The kernels ported
 * here are exactly the ones whose carried state (MTF dictionary,
 * hash chains, bit cursor, growing output window) defeats numpy.
 *
 * Call ``uparc_init()`` once before any other function (the wrapper
 * does this at import): it builds the CRC slicing tables and the
 * X-MatchPRO mask-code lookup tables.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Shared status codes (decoder errors; the wrapper maps them to the  */
/* reference CorruptStreamError messages).                            */

#define UPARC_OK             0
#define UPARC_ERR_EXHAUSTED  1   /* "bit stream exhausted"             */
#define UPARC_ERR_EMPTY_DICT 2   /* "match against empty dictionary"   */
#define UPARC_ERR_DICT_RANGE 3   /* "dictionary location N out of range" */
#define UPARC_ERR_MATCH_TYPE 4   /* "invalid match-type code N"        */
#define UPARC_ERR_ZERO_RUN   5   /* "zero-length zero run"             */
#define UPARC_ERR_BACKREF    6   /* "LZ77 back-reference beyond start" */
#define UPARC_ERR_CODEWORD   7   /* "invalid Huffman codeword"         */
#define UPARC_ERR_CODE_TABLE 8   /* "invalid Huffman code table"       */
#define UPARC_ERR_EMPTY_TABLE 9  /* "empty Huffman table ..."          */
#define UPARC_ERR_LITERAL    10  /* "truncated literal record"         */
#define UPARC_ERR_EXTENSION  11  /* "truncated run extension"          */
#define UPARC_ERR_RUN_WORD   12  /* "truncated run word"               */
#define UPARC_ERR_NOMEM      13  /* malloc failure                     */

/* ------------------------------------------------------------------ */
/* CRC-32C (Castagnoli), slicing-by-8 — same tables as the pure form. */

static uint32_t crc_tables[8][256];

static void build_crc_tables(void)
{
    for (int byte = 0; byte < 256; byte++) {
        uint32_t crc = (uint32_t)byte;
        for (int k = 0; k < 8; k++)
            crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
        crc_tables[0][byte] = crc;
    }
    for (int d = 1; d < 8; d++)
        for (int byte = 0; byte < 256; byte++)
            crc_tables[d][byte] = (crc_tables[d - 1][byte] >> 8)
                ^ crc_tables[0][crc_tables[d - 1][byte] & 0xFF];
}

uint32_t uparc_crc32c(const uint8_t *data, size_t len, uint32_t crc)
{
    crc ^= 0xFFFFFFFFu;
    size_t i = 0;
    size_t end8 = len - (len & 7);
    while (i < end8) {
        uint32_t low = crc ^ ((uint32_t)data[i]
                              | ((uint32_t)data[i + 1] << 8)
                              | ((uint32_t)data[i + 2] << 16)
                              | ((uint32_t)data[i + 3] << 24));
        uint32_t high = (uint32_t)data[i + 4]
            | ((uint32_t)data[i + 5] << 8)
            | ((uint32_t)data[i + 6] << 16)
            | ((uint32_t)data[i + 7] << 24);
        crc = crc_tables[7][low & 0xFF] ^ crc_tables[6][(low >> 8) & 0xFF]
            ^ crc_tables[5][(low >> 16) & 0xFF] ^ crc_tables[4][low >> 24]
            ^ crc_tables[3][high & 0xFF] ^ crc_tables[2][(high >> 8) & 0xFF]
            ^ crc_tables[1][(high >> 16) & 0xFF] ^ crc_tables[0][high >> 24];
        i += 8;
    }
    while (i < len) {
        crc = (crc >> 8) ^ crc_tables[0][(crc ^ data[i]) & 0xFF];
        i++;
    }
    return crc ^ 0xFFFFFFFFu;
}

/* ------------------------------------------------------------------ */
/* MSB-first bit packing.  Widths are at most 64 (the TokenStream     */
/* contract), so a 128-bit accumulator never overflows (7 carried     */
/* bits + 64 new ones).  Zero-padded final byte, exactly like the     */
/* reference BitWriter.                                               */

int64_t uparc_bitpack(const uint64_t *values, const uint8_t *widths,
                      size_t count, uint8_t *out)
{
    unsigned __int128 acc = 0;
    int bits = 0;
    uint8_t *p = out;
    for (size_t i = 0; i < count; i++) {
        int width = widths[i];
        if (width > 64)
            return -1;  /* caller falls back to the arbitrary-width pure form */
        acc = (acc << width) | values[i];
        bits += width;
        while (bits >= 8) {
            bits -= 8;
            *p++ = (uint8_t)(acc >> bits);
        }
        acc &= ((unsigned __int128)1 << bits) - 1;
    }
    if (bits)
        *p++ = (uint8_t)(acc << (8 - bits));
    return (int64_t)(p - out);
}

/* Per-byte table encode + pack fused, as in the pure huffman_pack.   */
int64_t uparc_huffman_pack(const uint8_t *data, size_t len,
                           const uint64_t *codes, const uint8_t *lengths,
                           uint8_t *out)
{
    unsigned __int128 acc = 0;
    int bits = 0;
    uint8_t *p = out;
    for (size_t i = 0; i < len; i++) {
        int byte = data[i];
        int width = lengths[byte];
        acc = (acc << width) | codes[byte];
        bits += width;
        while (bits >= 8) {
            bits -= 8;
            *p++ = (uint8_t)(acc >> bits);
        }
        acc &= ((unsigned __int128)1 << bits) - 1;
    }
    if (bits)
        *p++ = (uint8_t)(acc << (8 - bits));
    return (int64_t)(p - out);
}

/* ------------------------------------------------------------------ */
/* X-MatchPRO: shared mask-code tables.                               */
/* Mask bit i set => byte i matched, byte 0 = most-significant byte.  */
/* This is the same static prefix code as pure.XMATCH_MASK_CODES; the */
/* cross-backend equivalence tests pin the two copies together.       */

static const struct { uint8_t mask, code, len; } XM_MASK_CODES[11] = {
    {0xF, 0x00, 1},
    {0xE, 0x08, 4}, {0xD, 0x09, 4}, {0xB, 0x0A, 4}, {0x7, 0x0B, 4},
    {0xC, 0x18, 5}, {0xA, 0x19, 5}, {0x9, 0x1A, 5},
    {0x6, 0x1B, 5}, {0x5, 0x1C, 5}, {0x3, 0x1D, 5},
};

static int8_t xm_score[16];       /* matched*8 - code_len, -1 = no code */
static uint8_t xm_code[16];
static uint8_t xm_clen[16];
static int8_t xm_peek_mask[32];   /* 5-bit window -> mask, -1 unassigned */
static uint8_t xm_peek_len[32];

static void build_xmatch_tables(void)
{
    for (int m = 0; m < 16; m++)
        xm_score[m] = -1;
    for (int m = 0; m < 32; m++)
        xm_peek_mask[m] = -1;
    for (int k = 0; k < 11; k++) {
        int mask = XM_MASK_CODES[k].mask;
        int code = XM_MASK_CODES[k].code;
        int len = XM_MASK_CODES[k].len;
        int matched = __builtin_popcount(mask);
        if (matched >= 2) {
            xm_score[mask] = (int8_t)(matched * 8 - len);
            xm_code[mask] = (uint8_t)code;
            xm_clen[mask] = (uint8_t)len;
        }
        for (int pad = 0; pad < (1 << (5 - len)); pad++) {
            xm_peek_mask[(code << (5 - len)) | pad] = (int8_t)mask;
            xm_peek_len[(code << (5 - len)) | pad] = (uint8_t)len;
        }
    }
}

static inline int xm_index_bits(int size)
{
    int width = 1;
    while ((1 << width) < size)
        width++;
    return width;
}

static inline uint32_t load_be32(const uint8_t *p)
{
    return ((uint32_t)p[0] << 24) | ((uint32_t)p[1] << 16)
        | ((uint32_t)p[2] << 8) | (uint32_t)p[3];
}

/* The X-MatchPRO coding loop: zero-run tokens, equal-run collapse,
 * full/partial CAM matches with move-to-front update, misses.  Token
 * buffers must hold word_count + 8 entries.  Returns the token count.
 */
int64_t uparc_xmatch_tokens(const uint8_t *data, size_t word_count,
                            int capacity, uint64_t *values,
                            uint8_t *widths)
{
    uint32_t dict[64];
    int size = 0;
    int ibits = 1;
    int full0 = 3;              /* width of a full match at location 0 */
    int64_t previous = -1;      /* last non-zero word processed        */
    int64_t n = 0;
    size_t index = 0;
    while (index < word_count) {
        uint32_t word = load_be32(data + 4 * index);
        if (word == 0) {
            size_t run = 1;
            while (index + run < word_count
                   && load_be32(data + 4 * (index + run)) == 0)
                run++;
            index += run;
            uint64_t token = 2;
            int width = 2;
            while (run >= 255) {
                token = (token << 8) | 255;
                width += 8;
                if (width >= 56) {
                    values[n] = token;
                    widths[n] = (uint8_t)width;
                    n++;
                    token = 0;
                    width = 0;
                }
                run -= 255;
            }
            values[n] = (token << 8) | run;
            widths[n] = (uint8_t)(width + 8);
            n++;
            continue;
        }
        if ((int64_t)word == previous) {
            /* Equal run: each repeat is the all-zero-bit full-match-
             * at-location-0 token; emit the zero bits in bulk.       */
            size_t run = 1;
            while (index + run < word_count
                   && load_be32(data + 4 * (index + run)) == word)
                run++;
            index += run;
            int64_t total = (int64_t)run * full0;
            while (total >= 48) {
                values[n] = 0;
                widths[n] = 48;
                n++;
                total -= 48;
            }
            if (total) {
                values[n] = 0;
                widths[n] = (uint8_t)total;
                n++;
            }
            continue;
        }
        previous = (int64_t)word;
        index++;
        /* Full match: entries are distinct, first hit is the hit.    */
        int location = -1;
        for (int l = 0; l < size; l++) {
            if (dict[l] == word) {
                location = l;
                break;
            }
        }
        if (location >= 0) {
            values[n] = (uint64_t)location << 1;
            widths[n] = (uint8_t)(2 + ibits);
            n++;
            if (location) {
                memmove(&dict[1], &dict[0],
                        (size_t)location * sizeof(uint32_t));
                dict[0] = word;
            }
            continue;
        }
        /* Partial match: best score, lowest location on ties (the
         * scan ascends and the update is strictly greater).          */
        int best_location = -1;
        int best_score = -1;
        int best_mask = 0;
        for (int l = 0; l < size; l++) {
            uint32_t x = dict[l] ^ word;
            int mask = (!(x & 0xFF000000u))
                | ((!(x & 0x00FF0000u)) << 1)
                | ((!(x & 0x0000FF00u)) << 2)
                | ((!(x & 0x000000FFu)) << 3);
            int points = xm_score[mask];
            if (points > best_score) {
                best_score = points;
                best_location = l;
                best_mask = mask;
            }
        }
        if (best_score >= 0) {
            int mask = best_mask;
            int clen = xm_clen[mask];
            uint64_t token = ((uint64_t)best_location << clen)
                | xm_code[mask];
            int width = 1 + ibits + clen;
            if (!(mask & 1)) {
                token = (token << 8) | (word >> 24);
                width += 8;
            }
            if (!(mask & 2)) {
                token = (token << 8) | ((word >> 16) & 0xFF);
                width += 8;
            }
            if (!(mask & 4)) {
                token = (token << 8) | ((word >> 8) & 0xFF);
                width += 8;
            }
            if (!(mask & 8)) {
                token = (token << 8) | (word & 0xFF);
                width += 8;
            }
            values[n] = token;
            widths[n] = (uint8_t)width;
            n++;
            memmove(&dict[1], &dict[0],
                    (size_t)best_location * sizeof(uint32_t));
            dict[0] = word;
            continue;
        }
        /* Miss: raw 34-bit token, insert at the dictionary front.    */
        values[n] = (3ULL << 32) | word;
        widths[n] = 34;
        n++;
        if (size < capacity) {
            memmove(&dict[1], &dict[0], (size_t)size * sizeof(uint32_t));
            dict[0] = word;
            size++;
            if (size > 1) {
                ibits = xm_index_bits(size);
                full0 = 2 + ibits;
            }
        } else {
            memmove(&dict[1], &dict[0],
                    (size_t)(size - 1) * sizeof(uint32_t));
            dict[0] = word;
        }
    }
    return n;
}

/* ------------------------------------------------------------------ */
/* LZ77 (LZSS) hash-chain token scan.                                 */
/*                                                                    */
/* head/prev replace the reference's per-prefix deque: walking        */
/* prev[] most-recent-first over *verified* prefix matches and        */
/* counting only those toward max_chain visits exactly the deque's    */
/* candidate set in the deque's order (all in-window occurrences are  */
/* more recent than any out-of-window one, so the window cut-off      */
/* never reorders).  head must hold 1 << 15 entries and prev must     */
/* hold len entries; both are initialised here.                       */

#define LZ_HASH_BITS 15

static inline uint64_t lz_key(const uint8_t *p, int min_match)
{
    uint64_t key = 0;
    for (int j = 0; j < min_match; j++)
        key = (key << 8) | p[j];
    return key;
}

static inline uint32_t lz_hash(uint64_t key)
{
    return (uint32_t)((key * 0x9E3779B97F4A7C15ULL)
                      >> (64 - LZ_HASH_BITS));
}

int64_t uparc_lz77_tokens(const uint8_t *data, size_t len,
                          int window_bits, int length_bits,
                          int min_match, int max_chain,
                          uint64_t *values, uint8_t *widths,
                          int32_t *head, int32_t *prev)
{
    memset(head, 0xFF, sizeof(int32_t) << LZ_HASH_BITS);  /* all -1 */
    int64_t window = (int64_t)1 << window_bits;
    size_t max_match = (size_t)min_match
        + ((size_t)1 << length_bits) - 1;
    uint64_t match_flag = 1ULL << (window_bits + length_bits);
    int match_width = 1 + window_bits + length_bits;
    int64_t n = 0;
    size_t position = 0;
    while (position < len) {
        size_t best_length = 0;
        size_t best_offset = 0;
        if (position + (size_t)min_match <= len) {
            uint64_t key = lz_key(data + position, min_match);
            int32_t candidate = head[lz_hash(key)];
            int64_t window_start = (int64_t)position - window;
            int seen = 0;
            size_t limit = len - position;
            if (limit > max_match)
                limit = max_match;
            while (candidate >= 0 && seen < max_chain) {
                if ((int64_t)candidate < window_start)
                    break;      /* chains only age: all older too */
                if (lz_key(data + candidate, min_match) == key) {
                    seen++;
                    const uint8_t *a = data + candidate;
                    const uint8_t *b = data + position;
                    size_t run = 0;
                    while (run < limit && a[run] == b[run])
                        run++;
                    if (run > best_length) {
                        best_length = run;
                        best_offset = position - (size_t)candidate;
                    }
                    if (run == limit)
                        break;  /* the reference's early-limit break */
                }
                candidate = prev[candidate];
            }
        }
        if (best_length >= (size_t)min_match) {
            values[n] = match_flag
                | ((uint64_t)(best_offset - 1) << length_bits)
                | (uint64_t)(best_length - (size_t)min_match);
            widths[n] = (uint8_t)match_width;
            n++;
            size_t end = position + best_length;
            while (position < end) {
                if (position + (size_t)min_match <= len) {
                    uint32_t h = lz_hash(lz_key(data + position,
                                                min_match));
                    prev[position] = head[h];
                    head[h] = (int32_t)position;
                }
                position++;
            }
        } else {
            values[n] = data[position];
            widths[n] = 9;
            n++;
            if (position + (size_t)min_match <= len) {
                uint32_t h = lz_hash(lz_key(data + position, min_match));
                prev[position] = head[h];
                head[h] = (int32_t)position;
            }
            position++;
        }
    }
    return n;
}

/* ------------------------------------------------------------------ */
/* Growable output buffer for the decoders (a corrupt final run may   */
/* overshoot the declared length; the reference returns the overshoot */
/* for the codec's length policy to judge, so the buffer must grow).  */

typedef struct {
    uint8_t *p;
    int64_t len;
    int64_t cap;
} upbuf;

static int upbuf_reserve(upbuf *b, int64_t extra)
{
    if (b->len + extra <= b->cap)
        return 0;
    int64_t cap = b->cap ? b->cap : 64;
    while (cap < b->len + extra)
        cap <<= 1;
    uint8_t *p = (uint8_t *)realloc(b->p, (size_t)cap);
    if (!p)
        return -1;
    b->p = p;
    b->cap = cap;
    return 0;
}

void uparc_buffer_free(uint8_t *ptr)
{
    free(ptr);
}

/* Bit reader: low `bits` bits of `acc` are valid.  Exhaustion is     */
/* "field wider than every bit left in acc plus body", which is       */
/* exactly when the reference's cursor raises (its refill always      */
/* tops the accumulator past any fixed field when body remains).      */

typedef struct {
    const uint8_t *body;
    size_t len;
    size_t pos;
    uint64_t acc;
    int bits;
} bitreader;

static inline void br_fill(bitreader *br, int need)
{
    while (br->bits < need && br->pos < br->len) {
        br->acc = (br->acc << 8) | br->body[br->pos++];
        br->bits += 8;
    }
}

/* Returns nonzero when the stream is exhausted for this field.       */
static inline int br_read(bitreader *br, int width, uint64_t *out)
{
    br_fill(br, width);
    if (br->bits < width)
        return 1;
    br->bits -= width;
    *out = (br->acc >> br->bits)
        & (width == 64 ? ~0ULL : (1ULL << width) - 1);
    return 0;
}

/* ------------------------------------------------------------------ */
/* X-MatchPRO decode: inverse of the token scan above.                */

int uparc_xmatch_decode(const uint8_t *body, size_t body_len,
                        int64_t output_length, int capacity,
                        uint8_t **out_ptr, int64_t *out_len,
                        int64_t *detail)
{
    upbuf out = {0, 0, 0};
    uint32_t dict[65];
    int size = 0;
    bitreader br = {body, body_len, 0, 0, 0};
    int status = UPARC_OK;
    if (upbuf_reserve(&out, output_length + 8) != 0) {
        *out_ptr = 0;
        return UPARC_ERR_NOMEM;
    }
    while (out.len < output_length) {
        uint64_t bit;
        if (br_read(&br, 1, &bit)) {
            status = UPARC_ERR_EXHAUSTED;
            break;
        }
        if (!bit) {             /* '0': dictionary match */
            if (!size) {
                status = UPARC_ERR_EMPTY_DICT;
                break;
            }
            uint64_t location;
            if (br_read(&br, xm_index_bits(size), &location)) {
                status = UPARC_ERR_EXHAUSTED;
                break;
            }
            if ((int)location >= size) {
                *detail = (int64_t)location;
                status = UPARC_ERR_DICT_RANGE;
                break;
            }
            br_fill(&br, 5);
            int avail = br.bits;
            uint64_t peek;
            if (avail >= 5)
                peek = (br.acc >> (avail - 5)) & 31;
            else
                peek = (br.acc & ((1ULL << avail) - 1)) << (5 - avail);
            int mask = xm_peek_mask[peek];
            if (mask < 0) {
                /* Both unassigned patterns start '11'; the decoder
                 * only reaches the 3-bit selector with 5 bits left. */
                if (avail < 5) {
                    status = UPARC_ERR_EXHAUSTED;
                    break;
                }
                *detail = (int64_t)(peek & 7);
                status = UPARC_ERR_MATCH_TYPE;
                break;
            }
            int width = xm_peek_len[peek];
            if (width > br.bits) {
                status = UPARC_ERR_EXHAUSTED;
                break;
            }
            br.bits -= width;
            uint32_t word = dict[location];
            if (mask != 0xF) {
                int failed = 0;
                for (int lane = 0; lane < 4; lane++) {
                    if (mask & (1 << lane))
                        continue;
                    uint64_t lit;
                    if (br_read(&br, 8, &lit)) {
                        failed = 1;
                        break;
                    }
                    int shift = 24 - 8 * lane;
                    word = (word & ~(0xFFu << shift))
                        | ((uint32_t)lit << shift);
                }
                if (failed) {
                    status = UPARC_ERR_EXHAUSTED;
                    break;
                }
            }
            if (upbuf_reserve(&out, 4) != 0) {
                status = UPARC_ERR_NOMEM;
                break;
            }
            out.p[out.len++] = (uint8_t)(word >> 24);
            out.p[out.len++] = (uint8_t)(word >> 16);
            out.p[out.len++] = (uint8_t)(word >> 8);
            out.p[out.len++] = (uint8_t)word;
            memmove(&dict[1], &dict[0],
                    (size_t)location * sizeof(uint32_t));
            dict[0] = word;
        } else {
            if (br_read(&br, 1, &bit)) {
                status = UPARC_ERR_EXHAUSTED;
                break;
            }
            if (!bit) {         /* '10': zero run */
                int64_t run = 0;
                int failed = 0;
                for (;;) {
                    uint64_t chunk;
                    if (br_read(&br, 8, &chunk)) {
                        failed = 1;
                        break;
                    }
                    run += (int64_t)chunk;
                    if (chunk != 255)
                        break;
                }
                if (failed) {
                    status = UPARC_ERR_EXHAUSTED;
                    break;
                }
                if (!run) {
                    status = UPARC_ERR_ZERO_RUN;
                    break;
                }
                if (upbuf_reserve(&out, 4 * run) != 0) {
                    status = UPARC_ERR_NOMEM;
                    break;
                }
                memset(out.p + out.len, 0, (size_t)(4 * run));
                out.len += 4 * run;
            } else {            /* '11': miss */
                uint64_t word;
                if (br_read(&br, 32, &word)) {
                    status = UPARC_ERR_EXHAUSTED;
                    break;
                }
                if (upbuf_reserve(&out, 4) != 0) {
                    status = UPARC_ERR_NOMEM;
                    break;
                }
                out.p[out.len++] = (uint8_t)(word >> 24);
                out.p[out.len++] = (uint8_t)(word >> 16);
                out.p[out.len++] = (uint8_t)(word >> 8);
                out.p[out.len++] = (uint8_t)word;
                if (size < capacity) {
                    memmove(&dict[1], &dict[0],
                            (size_t)size * sizeof(uint32_t));
                    size++;
                } else {
                    memmove(&dict[1], &dict[0],
                            (size_t)(capacity - 1) * sizeof(uint32_t));
                }
                dict[0] = (uint32_t)word;
            }
        }
    }
    if (status != UPARC_OK) {
        free(out.p);
        *out_ptr = 0;
        return status;
    }
    *out_ptr = out.p;
    *out_len = out.len;
    return UPARC_OK;
}

/* ------------------------------------------------------------------ */
/* LZ77 decode.                                                       */

int uparc_lz77_decode(const uint8_t *body, size_t body_len,
                      int64_t output_length, int window_bits,
                      int length_bits, int min_match,
                      uint8_t **out_ptr, int64_t *out_len,
                      int64_t *detail)
{
    upbuf out = {0, 0, 0};
    bitreader br = {body, body_len, 0, 0, 0};
    int status = UPARC_OK;
    if (upbuf_reserve(&out, output_length + 8) != 0) {
        *out_ptr = 0;
        return UPARC_ERR_NOMEM;
    }
    while (out.len < output_length) {
        uint64_t bit;
        if (br_read(&br, 1, &bit)) {
            status = UPARC_ERR_EXHAUSTED;
            break;
        }
        if (bit) {              /* match token */
            uint64_t offset_raw, length_raw;
            if (br_read(&br, window_bits, &offset_raw)
                || br_read(&br, length_bits, &length_raw)) {
                status = UPARC_ERR_EXHAUSTED;
                break;
            }
            int64_t offset = (int64_t)offset_raw + 1;
            int64_t run = (int64_t)length_raw + min_match;
            int64_t start = out.len - offset;
            if (start < 0) {
                *detail = offset;
                status = UPARC_ERR_BACKREF;
                break;
            }
            if (upbuf_reserve(&out, run) != 0) {
                status = UPARC_ERR_NOMEM;
                break;
            }
            if (offset >= run) {
                memcpy(out.p + out.len, out.p + start, (size_t)run);
                out.len += run;
            } else {
                for (int64_t step = 0; step < run; step++) {
                    out.p[out.len] = out.p[start + step];
                    out.len++;  /* self-overlapping copy */
                }
            }
        } else {
            uint64_t literal;
            if (br_read(&br, 8, &literal)) {
                status = UPARC_ERR_EXHAUSTED;
                break;
            }
            if (upbuf_reserve(&out, 1) != 0) {
                status = UPARC_ERR_NOMEM;
                break;
            }
            out.p[out.len++] = (uint8_t)literal;
        }
    }
    if (status != UPARC_OK) {
        free(out.p);
        *out_ptr = 0;
        return status;
    }
    *out_ptr = out.p;
    *out_len = out.len;
    return UPARC_OK;
}

/* ------------------------------------------------------------------ */
/* Canonical-Huffman decode.                                          */
/*                                                                    */
/* Codewords are reassigned canonically in (length, symbol) order, so */
/* at each length the codes form one consecutive range — the per-     */
/* length (first, count, symbols) tables below are exactly the        */
/* reference's (length, code) -> symbol map for every reachable code. */
/* Declared lengths above 32 are never reachable (the walk rejects    */
/* codes past 32 bits first), so table construction stops there.      */

#define HUF_MAX_CODE_LENGTH 32
#define HUF_PEEK_BITS 12

int uparc_huffman_decode(const uint8_t *body, size_t body_len,
                         int64_t output_length, const uint8_t *lengths,
                         uint8_t **out_ptr, int64_t *out_len)
{
    int max_length = 0;
    int present = 0;
    for (int symbol = 0; symbol < 256; symbol++) {
        if (lengths[symbol]) {
            present++;
            if (lengths[symbol] > max_length)
                max_length = lengths[symbol];
        }
    }
    if (!present) {
        *out_ptr = 0;
        return UPARC_ERR_EMPTY_TABLE;
    }
    int peek = max_length < HUF_PEEK_BITS ? max_length : HUF_PEEK_BITS;
    uint16_t ptable[1 << HUF_PEEK_BITS];
    memset(ptable, 0, sizeof(uint16_t) << peek);
    uint64_t first[HUF_MAX_CODE_LENGTH + 1] = {0};
    int count[HUF_MAX_CODE_LENGTH + 1] = {0};
    int base[HUF_MAX_CODE_LENGTH + 1] = {0};
    uint8_t syms[256];
    /* Walk symbols in (length, symbol) order, assigning canonical
     * codes; stop past 32 bits (unreachable, and the running code no
     * longer fits plain integers — the reference uses bigints).      */
    uint64_t code = 0;
    int previous_length = 0;
    int si = 0;
    for (int length = 1; length <= HUF_MAX_CODE_LENGTH && length <= 255;
         length++) {
        for (int symbol = 0; symbol < 256; symbol++) {
            if (lengths[symbol] != length)
                continue;
            code <<= (length - previous_length);
            previous_length = length;
            if (!count[length]) {
                first[length] = code;
                base[length] = si;
            }
            count[length]++;
            syms[si++] = (uint8_t)symbol;
            if (length <= peek) {
                if (code >> length) {
                    /* Over-subscribed short codes: corrupt table.    */
                    *out_ptr = 0;
                    return UPARC_ERR_CODE_TABLE;
                }
                uint32_t entry_base = (uint32_t)(code << (peek - length));
                uint16_t entry = (uint16_t)((length << 8) | symbol);
                for (uint32_t pad = 0;
                     pad < (1u << (peek - length)); pad++)
                    ptable[entry_base + pad] = entry;
            }
            code++;
        }
    }
    upbuf out = {0, 0, 0};
    bitreader br = {body, body_len, 0, 0, 0};
    int status = UPARC_OK;
    if (upbuf_reserve(&out, output_length) != 0) {
        *out_ptr = 0;
        return UPARC_ERR_NOMEM;
    }
    while (out.len < output_length) {
        br_fill(&br, peek);
        int avail = br.bits;
        uint32_t index;
        if (avail >= peek)
            index = (uint32_t)((br.acc >> (avail - peek))
                               & ((1u << peek) - 1));
        else
            index = (uint32_t)(((br.acc & ((1ULL << avail) - 1))
                                << (peek - avail)) & ((1u << peek) - 1));
        uint16_t entry = ptable[index];
        int elen = entry >> 8;
        if (entry && elen <= avail) {
            br.bits -= elen;
            out.p[out.len++] = (uint8_t)entry;
            continue;
        }
        /* Long code, or the stream ran dry mid-codeword: bit-by-bit
         * walk for exact error parity with the reference.            */
        uint64_t codeval = 0;
        int length = 0;
        for (;;) {
            uint64_t bit;
            if (br_read(&br, 1, &bit)) {
                status = UPARC_ERR_EXHAUSTED;
                break;
            }
            codeval = (codeval << 1) | bit;
            length++;
            if (length > HUF_MAX_CODE_LENGTH) {
                status = UPARC_ERR_CODEWORD;
                break;
            }
            if (count[length] && codeval >= first[length]
                && codeval < first[length] + (uint64_t)count[length]) {
                if (upbuf_reserve(&out, 1) != 0) {
                    status = UPARC_ERR_NOMEM;
                    break;
                }
                out.p[out.len++] =
                    syms[base[length] + (int)(codeval - first[length])];
                break;
            }
        }
        if (status != UPARC_OK)
            break;
    }
    if (status != UPARC_OK) {
        free(out.p);
        *out_ptr = 0;
        return status;
    }
    *out_ptr = out.p;
    *out_len = out.len;
    return UPARC_OK;
}

/* ------------------------------------------------------------------ */
/* Word-RLE decode.                                                   */

int uparc_rle_decode(const uint8_t *records, size_t record_len,
                     int64_t output_length, uint8_t **out_ptr,
                     int64_t *out_len)
{
    upbuf out = {0, 0, 0};
    size_t position = 0;
    int status = UPARC_OK;
    if (upbuf_reserve(&out, output_length + 8) != 0) {
        *out_ptr = 0;
        return UPARC_ERR_NOMEM;
    }
    while (position < record_len && out.len < output_length) {
        int control = records[position++];
        if (control < 0x80) {
            size_t need = ((size_t)control + 1) * 4;
            if (record_len - position < need) {
                status = UPARC_ERR_LITERAL;
                break;
            }
            if (upbuf_reserve(&out, (int64_t)need) != 0) {
                status = UPARC_ERR_NOMEM;
                break;
            }
            memcpy(out.p + out.len, records + position, need);
            out.len += (int64_t)need;
            position += need;
        } else {
            int64_t run = (control - 0x80) + 2;
            if (run == 129) {
                for (;;) {
                    if (position >= record_len) {
                        status = UPARC_ERR_EXTENSION;
                        break;
                    }
                    int extension = records[position++];
                    run += extension;
                    if (extension != 0xFF)
                        break;
                }
                if (status != UPARC_OK)
                    break;
            }
            if (record_len - position < 4) {
                status = UPARC_ERR_RUN_WORD;
                break;
            }
            if (upbuf_reserve(&out, 4 * run) != 0) {
                status = UPARC_ERR_NOMEM;
                break;
            }
            const uint8_t *word = records + position;
            position += 4;
            for (int64_t k = 0; k < run; k++) {
                memcpy(out.p + out.len, word, 4);
                out.len += 4;
            }
        }
    }
    if (status != UPARC_OK) {
        free(out.p);
        *out_ptr = 0;
        return status;
    }
    *out_ptr = out.p;
    *out_len = out.len;
    return UPARC_OK;
}

/* ------------------------------------------------------------------ */

void uparc_init(void)
{
    build_crc_tables();
    build_xmatch_tables();
}
