"""In-tree build entry point: ``python -m repro.accel._native.build``.

Compiles the ``_uparc_native`` extension and drops it next to the
package sources, so a source checkout gains the native backend without
reinstalling.  Requires cffi and a C compiler; the error message for a
missing toolchain comes from cffi/distutils unchanged.
"""

from __future__ import annotations

import os
import sys


def main() -> int:
    try:
        from repro.accel._native.build_native import ffibuilder
    except ImportError as error:
        print("native build requires cffi: %s" % error, file=sys.stderr)
        return 1
    # set_source names the module repro.accel._native._uparc_native, so
    # compiling relative to the source root places the artifact inside
    # this package.
    here = os.path.dirname(os.path.abspath(__file__))
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    ffibuilder.compile(tmpdir=src_root, verbose=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
