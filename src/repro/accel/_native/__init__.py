"""Build package for the compiled native kernels.

Holds the C sources (``uparc_kernels.c``), the cffi builder
(:mod:`repro.accel._native.build_native`) and, once built, the
compiled extension module ``_uparc_native``.  Importing this package
must stay free of side effects and third-party imports: the selection
logic in :func:`repro.accel.native_available` probes for the compiled
module through here, and that probe has to work (and fail cleanly) on
a base install without cffi or a C toolchain.

Build in-tree with ``python -m repro.accel._native.build``; installing
with the ``native`` extra (``pip install repro-uparc[native]``) runs
the same builder through setuptools' ``cffi_modules`` hook.
"""
