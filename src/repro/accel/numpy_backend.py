"""Vectorised numpy backend for the datapath kernels.

Byte-identical to :mod:`repro.accel.pure` by construction — both
backends compute the same functions; this one replaces Python-level
loops with array ops.  Each kernel keeps an internal size threshold
below which it delegates to the pure implementation: numpy's per-call
overhead makes it *slower* than the tuned stdlib forms on small
inputs, and delegating is output-identical so the switch is invisible.

Kernel notes:

* ``crc32c`` folds 64-byte chunks in parallel: ``_TABS[d][b]`` is the
  CRC contribution of byte ``b`` followed by ``d`` zero bytes, so one
  table-gather pass per chunk column yields every chunk's raw CRC at
  once; chunk CRCs are then combined pairwise with cached
  "advance-by-N-zero-bytes" GF(2) matrices (a log-depth tree).  The
  initial register is folded by XORing its four little-endian bytes
  into the first real data bytes — raw CRC from state 0 ignores
  leading zeros, which also makes front-padding to a power-of-two
  chunk count free.
* ``synthesize_payload`` views the plan's typed arrays zero-copy,
  expands ops with ``np.repeat``, and resolves copy-from-previous-
  frame references by peeling chains on the copy-owned subset: each
  pass steps every still-unresolved source back one frame, and the
  working set shrinks as chains bottom out on filled words.
* ``words_to_bytes`` and ``chunk_words`` intentionally delegate to
  the pure backend: both take a Python ``list`` of ints, and
  converting it into an ndarray costs more than the vector op saves
  at every measured size, so the stdlib forms are the honest winners.
* ``match_lengths`` also delegates permanently: the pure form's
  early-limit break usually ends the scan at the first candidate,
  while the vector form pays for the full candidate matrix up front.

numpy may only be imported inside ``repro.accel`` (lint rule A601);
every other module reaches these kernels through the dispatch
functions in :mod:`repro.accel`.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

import numpy as np

from repro.accel import pure
from repro.accel.plan import COPY, SynthesisPlan

name = "numpy"

# Below these sizes the pure kernels win; outputs are identical either
# way, so the cutovers only affect speed.  Chosen from the measured
# crossovers on CPython 3.12 / numpy 2.x.
_CRC_MIN_BYTES = 16384
_SYNTH_MIN_WORDS = 4096
_SCAN_MIN_WORDS = 64
_XMATCH_MIN_WORDS = 64
_BITPACK_MIN_TOKENS = 64
_LZ77_MIN_BYTES = 4096
_HUFF_MIN_BYTES = 1024
_RLE_MIN_WORDS = 64

_CHUNK = 64  # bytes folded per vector CRC step

_T0 = np.array(pure.CRC_TABLE, dtype=np.uint32)


def _build_chunk_tables(chunk: int) -> "np.ndarray":
    """``tabs[d][b]``: CRC of byte ``b`` followed by ``d`` zero bytes."""
    tabs = np.empty((chunk, 256), dtype=np.uint32)
    cur = _T0.copy()
    tabs[0] = cur
    for distance in range(1, chunk):
        cur = (cur >> np.uint32(8)) ^ _T0[cur & np.uint32(0xFF)]
        tabs[distance] = cur
    return tabs


_TABS = _build_chunk_tables(_CHUNK)


def _shift_basis(n_bytes: int) -> "np.ndarray":
    """Columns of the "advance register by ``n_bytes`` zeros" matrix."""
    basis = (np.uint32(1) << np.arange(32, dtype=np.uint32)).astype(np.uint32)
    for _ in range(n_bytes):
        basis = (basis >> np.uint32(8)) ^ _T0[basis & np.uint32(0xFF)]
    return basis


def _apply(cols: "np.ndarray", vec: "np.ndarray") -> "np.ndarray":
    """GF(2) matrix–vector product, vectorised over ``vec`` entries."""
    out = np.zeros_like(vec)
    for bit in range(32):
        out ^= cols[bit] * ((vec >> np.uint32(bit)) & np.uint32(1))
    return out

_LEVELS: List["np.ndarray"] = []  # [j]: shift by _CHUNK * 2**j bytes


def _level(j: int) -> "np.ndarray":
    while len(_LEVELS) <= j:
        if not _LEVELS:
            _LEVELS.append(_shift_basis(_CHUNK))
        else:
            prev = _LEVELS[-1]
            _LEVELS.append(_apply(prev, prev))
    return _LEVELS[j]


def crc32c(data: bytes, crc: int = 0) -> int:
    length = len(data)
    # The init-register fold below needs four real data bytes.
    if length < 4 or length < _CRC_MIN_BYTES:
        return pure.crc32c(data, crc)
    state = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
    raw = np.frombuffer(data, dtype=np.uint8)
    chunk_count = -(-length // _CHUNK)
    padded = 1
    while padded < chunk_count:
        padded <<= 1
    pad = padded * _CHUNK - length
    buf = np.zeros(padded * _CHUNK, dtype=np.uint8)
    buf[pad:] = raw
    # Fold the initial register into the first four real bytes (the
    # reflected CRC register maps to little-endian byte order).
    for i in range(4):
        buf[pad + i] ^= (state >> (8 * i)) & 0xFF
    chunks = buf.reshape(padded, _CHUNK)
    acc = np.zeros(padded, dtype=np.uint32)
    for column in range(_CHUNK):
        acc ^= _TABS[_CHUNK - 1 - column][chunks[:, column]]
    j = 0
    while len(acc) > 1:
        acc = _apply(_level(j), acc[0::2]) ^ acc[1::2]
        j += 1
    return int(acc[0]) ^ 0xFFFFFFFF


def words_to_bytes(words: Sequence[int]) -> bytes:
    # struct.pack beats list->ndarray conversion at every size tried;
    # see the module docstring.
    return pure.words_to_bytes(words)


def bytes_to_words(data: bytes) -> List[int]:
    if len(data) < 1024:
        return pure.bytes_to_words(data)
    if len(data) % 4:
        return pure.bytes_to_words(data)  # raises the formatting error
    return np.frombuffer(data, dtype=">u4").tolist()


def synthesize_payload(plan: SynthesisPlan) -> bytes:
    if plan.total_words < _SYNTH_MIN_WORDS:
        return pure.synthesize_payload(plan)
    kinds = np.frombuffer(plan.kinds, dtype=np.uint8)
    values = np.frombuffer(
        plan.values, dtype=np.dtype("u%d" % plan.values.itemsize))
    lengths = np.frombuffer(
        plan.lengths, dtype=np.dtype("u%d" % plan.lengths.itemsize))
    op_of_word = np.repeat(np.arange(len(kinds), dtype=np.intp), lengths)
    out = values[op_of_word]  # fresh array — safe to patch in place
    is_copy = (kinds == COPY)[op_of_word]
    active = np.flatnonzero(is_copy)
    if active.size:
        # A COPY-owned word at position p sources p - frame_words
        # (previous frame, same intra-frame offset).  Peel chains on
        # the copy subset only: step each still-unresolved source back
        # one frame per pass until it lands on a FILL-owned position.
        # Pass count equals the deepest copy-of-copy chain, and the
        # working set shrinks as chains bottom out.
        src = active - plan.frame_words
        deeper = is_copy[src]
        while bool(deeper.any()):
            src[deeper] -= plan.frame_words
            deeper[deeper] = is_copy[src[deeper]]
        out[active] = out[src]
    return out.astype(">u4").tobytes()


def equal_word_runs(data: bytes, word_count: int) -> List[int]:
    if word_count <= 0 or word_count < _SCAN_MIN_WORDS:
        return pure.equal_word_runs(data, word_count)
    words = np.frombuffer(data, dtype=">u4", count=word_count)
    boundaries = np.flatnonzero(words[1:] != words[:-1])
    return np.diff(
        np.concatenate(((-1,), boundaries, (word_count - 1,)))).tolist()


def zero_word_runs(data: bytes,
                   word_count: int) -> Tuple[List[int], List[int]]:
    if word_count < _SCAN_MIN_WORDS:
        return pure.zero_word_runs(data, word_count)
    words = np.frombuffer(data, dtype=">u4", count=word_count)
    flags = np.concatenate((
        (False,), words == 0, (False,))).astype(np.int8)
    edges = np.flatnonzero(np.diff(flags))
    starts = edges[0::2]
    return starts.tolist(), (edges[1::2] - starts).tolist()


def match_lengths(data: bytes, candidates: Sequence[int],
                  position: int, limit: int) -> List[int]:
    # Permanent delegate: the pure form's early-limit break ends the
    # scan at the first candidate reaching ``limit``, which on the LZ
    # chain walk's same-prefix candidate lists is usually the *first*
    # candidate — the vector form always materialises the full
    # candidates x limit matrix and loses at every measured size
    # (0.07-0.16x on chain-shaped inputs, ~1.08x at best on
    # adversarially break-free ones).
    return pure.match_lengths(data, candidates, position, limit)


def chunk_words(block: Sequence[int], offset: int,
                frame_words: int) -> Tuple[List[List[int]], List[int]]:
    # List->ndarray conversion dominates; see the module docstring.
    return pure.chunk_words(block, offset, frame_words)


def bitpack(values: Sequence[int], widths: Sequence[int]) -> bytes:
    if len(values) < _BITPACK_MIN_TOKENS:
        return pure.bitpack(values, widths)
    return _bitpack_arrays(np.asarray(values, dtype=np.uint64),
                           np.asarray(widths, dtype=np.uint8))


def _bitpack_arrays(values: "np.ndarray",
                    widths: "np.ndarray") -> bytes:
    """Vectorised MSB-first bit packing of ``(value, width)`` tokens.

    Explodes the stream into one entry per *output bit* (O(total
    bits), insensitive to width skew): global bit ``g`` inside token
    ``t`` sits ``ends[t] - 1 - g`` positions from the value's LSB,
    where ``ends`` is the cumulative bit offset — so a single gather
    and shift yields every bit in stream order, and ``np.packbits``
    folds them into bytes (zero-padding the final byte exactly like
    ``BitWriter.getvalue()``).
    """
    spans = widths.astype(np.int64)
    total = int(spans.sum())
    if total == 0:
        return b""
    token_of_bit = np.repeat(
        np.arange(len(spans), dtype=np.intp), spans)
    ends = np.cumsum(spans)
    shift = (ends[token_of_bit] - 1
             - np.arange(total, dtype=np.int64)).astype(np.uint64)
    bits = ((values[token_of_bit] >> shift) & np.uint64(1))
    return np.packbits(bits.astype(np.uint8)).tobytes()


def xmatch_tokens(data: bytes, word_count: int,
                  capacity: int) -> "pure.TokenStream":
    if word_count < _XMATCH_MIN_WORDS:
        return pure.xmatch_tokens(data, word_count, capacity)
    # The move-to-front dictionary makes every token depend on the
    # full history, so the scan itself stays sequential (the shared
    # SWAR loop in pure); the vector win is the zero-run pre-scan and
    # the bulk word decode.
    words = np.frombuffer(data, dtype=">u4", count=word_count).tolist()
    starts, lengths = zero_word_runs(data, word_count)
    return pure._xmatch_scan(words, dict(zip(starts, lengths)), capacity)


def lz77_tokens(data: bytes, window_bits: int, length_bits: int,
                min_match: int, max_chain: int) -> "pure.TokenStream":
    length = len(data)
    # ``min_match > 8``: the prefix key must fit a uint64.
    # ``length < min_match``: no match is possible, and the prefix
    # array below would be empty (guards the zero-threshold test mode).
    if length < _LZ77_MIN_BYTES or min_match > 8 or length < min_match:
        return pure.lz77_tokens(data, window_bits, length_bits,
                                min_match, max_chain)
    window = 1 << window_bits
    max_match = min_match + (1 << length_bits) - 1
    raw = np.frombuffer(data, dtype=np.uint8)
    prefix_count = length - min_match + 1
    # The hash-chain candidate set is position-determined: the pure
    # coder indexes *every* covered position, so at any position p the
    # chain holds exactly the previous occurrences of p's prefix —
    # independent of how earlier bytes were tokenised.  That lets the
    # whole search run for all positions at once: stable-argsort the
    # min_match-byte prefix keys (ties keep position order), and the
    # j-th most recent occurrence of position order[s] is order[s-j]
    # whenever both slots share a key group.
    key = np.zeros(prefix_count, dtype=np.uint64)
    for byte_index in range(min_match):
        key = (key << np.uint64(8)) | raw[
            byte_index:byte_index + prefix_count].astype(np.uint64)
    order = np.argsort(key, kind="stable").astype(np.int64)
    sorted_key = key[order]
    # depth[s]: how many earlier occurrences slot s's prefix has —
    # slot s has a candidate at chain distance j iff depth[s] >= j.
    new_group = np.empty(prefix_count, dtype=bool)
    new_group[0] = True
    if prefix_count > 1:
        np.not_equal(sorted_key[1:], sorted_key[:-1],
                     out=new_group[1:])
    slot_index = np.arange(prefix_count, dtype=np.int64)
    depth = slot_index - np.maximum.accumulate(
        np.where(new_group, slot_index, 0))
    padded = np.concatenate(
        (raw, np.zeros(max_match, dtype=np.uint8)))
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, max_match)  # zero-copy; rows gathered per chain step
    limits = np.minimum(max_match,
                        length - np.arange(prefix_count, dtype=np.int64))
    best_run = np.zeros(prefix_count, dtype=np.int64)
    best_source = np.zeros(prefix_count, dtype=np.int64)
    live = np.flatnonzero(depth >= 1)
    for j in range(1, max_chain + 1):
        if j > 1:
            # Shrink the working set: a slot leaves when its chain is
            # exhausted or its position already matched to its cap
            # (the update is strict, so it cannot improve) — this
            # collapses the dominant all-zero-prefix groups after the
            # first step.
            positions = order[live]
            live = live[(depth[live] >= j)
                        & (best_run[positions] < limits[positions])]
        if not live.size:
            break
        positions = order[live]
        sources = order[live - j]
        # Sources only age as j grows, so out-of-window slots are
        # done for good.
        in_window = sources >= positions - window
        if not bool(in_window.all()):
            live = live[in_window]
            positions = positions[in_window]
            sources = sources[in_window]
        if not positions.size:
            continue
        equal = windows[positions] == windows[sources]
        runs = np.where(equal.all(axis=1), max_match,
                        equal.argmin(axis=1))
        runs = np.minimum(runs, limits[positions])
        # j ascends most-recent-first and the update is strict, so the
        # most recent candidate reaching the best length wins — the
        # pure coder's tie-break exactly.
        improved = runs > best_run[positions]
        positions = positions[improved]
        best_run[positions] = runs[improved]
        best_source[positions] = sources[improved]
    run_list = best_run.tolist()
    source_list = best_source.tolist()
    values = array("Q")
    widths = array("B")
    append_value = values.append
    append_width = widths.append
    match_flag = 1 << (window_bits + length_bits)
    match_width = 1 + window_bits + length_bits
    position = 0
    while position < length:
        run = run_list[position] if position < prefix_count else 0
        if run >= min_match:
            append_value(match_flag
                         | ((position - source_list[position] - 1)
                            << length_bits)
                         | (run - min_match))
            append_width(match_width)
            position += run
        else:
            append_value(data[position])
            append_width(9)
            position += 1
    return values, widths


def huffman_code_table(frequencies: Sequence[int]
                       ) -> Tuple[List[int], List[int]]:
    # At most 255 heap merges over a 256-bin histogram: the sequential
    # heap dominates and list<->ndarray conversion would only add to
    # it, so the pure form is the honest winner at every size.
    return pure.huffman_code_table(frequencies)


def huffman_pack(data: bytes, codes: Sequence[int],
                 lengths: Sequence[int]) -> bytes:
    if len(data) < _HUFF_MIN_BYTES:
        return pure.huffman_pack(data, codes, lengths)
    raw = np.frombuffer(data, dtype=np.uint8)
    values = np.asarray(codes, dtype=np.uint64)[raw]
    widths = np.asarray(lengths, dtype=np.uint8)[raw]
    return _bitpack_arrays(values, widths)


def rle_records(data: bytes, word_count: int) -> bytes:
    if word_count < _RLE_MIN_WORDS:
        return pure.rle_records(data, word_count)
    # Vectorised run scan; the record emission is a short per-run loop
    # shared with the pure reference.
    return pure._rle_emit(data, equal_word_runs(data, word_count))


# The four bit-serial decoders delegate to the pure reference
# permanently: every token's position in the stream depends on every
# previous token (carried bit cursor, move-to-front dictionary, the
# growing output window), so there is no vector formulation — these
# loops are what the native backend exists for.


def xmatch_decode(body: bytes, output_length: int,
                  capacity: int) -> bytes:
    return pure.xmatch_decode(body, output_length, capacity)


def lz77_decode(body: bytes, output_length: int, window_bits: int,
                length_bits: int, min_match: int) -> bytes:
    return pure.lz77_decode(body, output_length, window_bits,
                            length_bits, min_match)


def huffman_decode(body: bytes, output_length: int,
                   lengths: bytes) -> bytes:
    return pure.huffman_decode(body, output_length, lengths)


def rle_decode(records: bytes, output_length: int) -> bytes:
    return pure.rle_decode(records, output_length)
