"""Vectorised numpy backend for the datapath kernels.

Byte-identical to :mod:`repro.accel.pure` by construction — both
backends compute the same functions; this one replaces Python-level
loops with array ops.  Each kernel keeps an internal size threshold
below which it delegates to the pure implementation: numpy's per-call
overhead makes it *slower* than the tuned stdlib forms on small
inputs, and delegating is output-identical so the switch is invisible.

Kernel notes:

* ``crc32c`` folds 64-byte chunks in parallel: ``_TABS[d][b]`` is the
  CRC contribution of byte ``b`` followed by ``d`` zero bytes, so one
  table-gather pass per chunk column yields every chunk's raw CRC at
  once; chunk CRCs are then combined pairwise with cached
  "advance-by-N-zero-bytes" GF(2) matrices (a log-depth tree).  The
  initial register is folded by XORing its four little-endian bytes
  into the first real data bytes — raw CRC from state 0 ignores
  leading zeros, which also makes front-padding to a power-of-two
  chunk count free.
* ``synthesize_payload`` views the plan's typed arrays zero-copy,
  expands ops with ``np.repeat``, and resolves copy-from-previous-
  frame references by peeling chains on the copy-owned subset: each
  pass steps every still-unresolved source back one frame, and the
  working set shrinks as chains bottom out on filled words.
* ``words_to_bytes`` and ``chunk_words`` intentionally delegate to
  the pure backend: both take a Python ``list`` of ints, and
  converting it into an ndarray costs more than the vector op saves
  at every measured size, so the stdlib forms are the honest winners.

numpy may only be imported inside ``repro.accel`` (lint rule A601);
every other module reaches these kernels through the dispatch
functions in :mod:`repro.accel`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.accel import pure
from repro.accel.plan import COPY, SynthesisPlan

name = "numpy"

# Below these sizes the pure kernels win; outputs are identical either
# way, so the cutovers only affect speed.  Chosen from the measured
# crossovers on CPython 3.12 / numpy 2.x.
_CRC_MIN_BYTES = 16384
_SYNTH_MIN_WORDS = 4096
_SCAN_MIN_WORDS = 64
_MATCH_MIN_WORK = 2048

_CHUNK = 64  # bytes folded per vector CRC step

_T0 = np.array(pure.CRC_TABLE, dtype=np.uint32)


def _build_chunk_tables(chunk: int) -> "np.ndarray":
    """``tabs[d][b]``: CRC of byte ``b`` followed by ``d`` zero bytes."""
    tabs = np.empty((chunk, 256), dtype=np.uint32)
    cur = _T0.copy()
    tabs[0] = cur
    for distance in range(1, chunk):
        cur = (cur >> np.uint32(8)) ^ _T0[cur & np.uint32(0xFF)]
        tabs[distance] = cur
    return tabs


_TABS = _build_chunk_tables(_CHUNK)


def _shift_basis(n_bytes: int) -> "np.ndarray":
    """Columns of the "advance register by ``n_bytes`` zeros" matrix."""
    basis = (np.uint32(1) << np.arange(32, dtype=np.uint32)).astype(np.uint32)
    for _ in range(n_bytes):
        basis = (basis >> np.uint32(8)) ^ _T0[basis & np.uint32(0xFF)]
    return basis


def _apply(cols: "np.ndarray", vec: "np.ndarray") -> "np.ndarray":
    """GF(2) matrix–vector product, vectorised over ``vec`` entries."""
    out = np.zeros_like(vec)
    for bit in range(32):
        out ^= cols[bit] * ((vec >> np.uint32(bit)) & np.uint32(1))
    return out

_LEVELS: List["np.ndarray"] = []  # [j]: shift by _CHUNK * 2**j bytes


def _level(j: int) -> "np.ndarray":
    while len(_LEVELS) <= j:
        if not _LEVELS:
            _LEVELS.append(_shift_basis(_CHUNK))
        else:
            prev = _LEVELS[-1]
            _LEVELS.append(_apply(prev, prev))
    return _LEVELS[j]


def crc32c(data: bytes, crc: int = 0) -> int:
    length = len(data)
    # The init-register fold below needs four real data bytes.
    if length < 4 or length < _CRC_MIN_BYTES:
        return pure.crc32c(data, crc)
    state = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
    raw = np.frombuffer(data, dtype=np.uint8)
    chunk_count = -(-length // _CHUNK)
    padded = 1
    while padded < chunk_count:
        padded <<= 1
    pad = padded * _CHUNK - length
    buf = np.zeros(padded * _CHUNK, dtype=np.uint8)
    buf[pad:] = raw
    # Fold the initial register into the first four real bytes (the
    # reflected CRC register maps to little-endian byte order).
    for i in range(4):
        buf[pad + i] ^= (state >> (8 * i)) & 0xFF
    chunks = buf.reshape(padded, _CHUNK)
    acc = np.zeros(padded, dtype=np.uint32)
    for column in range(_CHUNK):
        acc ^= _TABS[_CHUNK - 1 - column][chunks[:, column]]
    j = 0
    while len(acc) > 1:
        acc = _apply(_level(j), acc[0::2]) ^ acc[1::2]
        j += 1
    return int(acc[0]) ^ 0xFFFFFFFF


def words_to_bytes(words: Sequence[int]) -> bytes:
    # struct.pack beats list->ndarray conversion at every size tried;
    # see the module docstring.
    return pure.words_to_bytes(words)


def bytes_to_words(data: bytes) -> List[int]:
    if len(data) < 1024:
        return pure.bytes_to_words(data)
    if len(data) % 4:
        return pure.bytes_to_words(data)  # raises the formatting error
    return np.frombuffer(data, dtype=">u4").tolist()


def synthesize_payload(plan: SynthesisPlan) -> bytes:
    if plan.total_words < _SYNTH_MIN_WORDS:
        return pure.synthesize_payload(plan)
    kinds = np.frombuffer(plan.kinds, dtype=np.uint8)
    values = np.frombuffer(
        plan.values, dtype=np.dtype("u%d" % plan.values.itemsize))
    lengths = np.frombuffer(
        plan.lengths, dtype=np.dtype("u%d" % plan.lengths.itemsize))
    op_of_word = np.repeat(np.arange(len(kinds), dtype=np.intp), lengths)
    out = values[op_of_word]  # fresh array — safe to patch in place
    is_copy = (kinds == COPY)[op_of_word]
    active = np.flatnonzero(is_copy)
    if active.size:
        # A COPY-owned word at position p sources p - frame_words
        # (previous frame, same intra-frame offset).  Peel chains on
        # the copy subset only: step each still-unresolved source back
        # one frame per pass until it lands on a FILL-owned position.
        # Pass count equals the deepest copy-of-copy chain, and the
        # working set shrinks as chains bottom out.
        src = active - plan.frame_words
        deeper = is_copy[src]
        while bool(deeper.any()):
            src[deeper] -= plan.frame_words
            deeper[deeper] = is_copy[src[deeper]]
        out[active] = out[src]
    return out.astype(">u4").tobytes()


def equal_word_runs(data: bytes, word_count: int) -> List[int]:
    if word_count <= 0 or word_count < _SCAN_MIN_WORDS:
        return pure.equal_word_runs(data, word_count)
    words = np.frombuffer(data, dtype=">u4", count=word_count)
    boundaries = np.flatnonzero(words[1:] != words[:-1])
    return np.diff(
        np.concatenate(((-1,), boundaries, (word_count - 1,)))).tolist()


def zero_word_runs(data: bytes,
                   word_count: int) -> Tuple[List[int], List[int]]:
    if word_count < _SCAN_MIN_WORDS:
        return pure.zero_word_runs(data, word_count)
    words = np.frombuffer(data, dtype=">u4", count=word_count)
    flags = np.concatenate((
        (False,), words == 0, (False,))).astype(np.int8)
    edges = np.flatnonzero(np.diff(flags))
    starts = edges[0::2]
    return starts.tolist(), (edges[1::2] - starts).tolist()


def match_lengths(data: bytes, candidates: Sequence[int],
                  position: int, limit: int) -> List[int]:
    count = len(candidates)
    if count * limit < _MATCH_MIN_WORK:
        return pure.match_lengths(data, candidates, position, limit)
    raw = np.frombuffer(data, dtype=np.uint8)
    starts = np.asarray(candidates, dtype=np.intp)
    window = raw[starts[:, None] + np.arange(limit, dtype=np.intp)]
    equal = window == raw[position:position + limit]
    runs = np.where(equal.all(axis=1), limit, equal.argmin(axis=1))
    at_limit = np.flatnonzero(runs == limit)
    if at_limit.size:
        return runs[:int(at_limit[0]) + 1].tolist()
    return runs.tolist()


def chunk_words(block: Sequence[int], offset: int,
                frame_words: int) -> Tuple[List[List[int]], List[int]]:
    # List->ndarray conversion dominates; see the module docstring.
    return pure.chunk_words(block, offset, frame_words)
