"""repro.accel: swappable datapath backends for the hot kernels.

The simulation's datapath cost is concentrated in a handful of
operations: synthesising frame payloads, bulk word<->byte packing,
CRC-32C folding, splitting FDRI payloads into frames, and the byte
scan/match loops inside the compression codecs.  This package exposes
those operations as a small kernel API with two interchangeable
implementations:

* :mod:`repro.accel.pure` — tuned stdlib Python, always available,
  and the semantic reference;
* :mod:`repro.accel.numpy_backend` — vectorised numpy, used
  automatically when numpy is importable;
* :mod:`repro.accel.native_backend` — compiled C (cffi) for the
  sequential loops numpy cannot vectorise, used automatically when
  the optional extension is built (``pip install .[native]`` or
  ``python -m repro.accel._native.build``).

The backends are **byte-identical**: every golden digest, cache key
and compressed stream is the same whichever backend runs, so backend
choice is purely a speed decision and never enters sweep cache keys.

Selection precedence: an explicit :func:`select` (the CLI's
``--backend`` flag) wins over the ``REPRO_BACKEND`` environment
variable, which wins over auto-detection (native if built, else numpy
if importable, else pure).  Kernel dispatches record
``accel.<backend>.<kernel>.calls`` /
``.bytes`` counters in the active :mod:`repro.obs` metrics registry,
so an observed run shows which backend served it and how much data
each kernel moved.

numpy itself may only be imported inside this package (lint rule
A601); everything else goes through the dispatch functions below or
through :func:`active` for per-call-site inner loops.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.accel import pure
from repro.accel.plan import SynthesisPlan
from repro.accel.pure import XMATCH_MASK_CODES, TokenStream
from repro.errors import AccelError
from repro.obs import current_registry

__all__ = [
    "BACKEND_ENV",
    "SynthesisPlan",
    "TokenStream",
    "XMATCH_MASK_CODES",
    "active",
    "available_backends",
    "backend_name",
    "bitpack",
    "bytes_to_words",
    "chunk_words",
    "crc32c",
    "equal_word_runs",
    "huffman_code_table",
    "huffman_decode",
    "huffman_pack",
    "lz77_decode",
    "lz77_tokens",
    "match_lengths",
    "native_available",
    "numpy_available",
    "record",
    "rle_decode",
    "rle_records",
    "select",
    "synthesize_payload",
    "using",
    "words_to_bytes",
    "xmatch_decode",
    "xmatch_tokens",
    "zero_word_runs",
]

BACKEND_ENV = "REPRO_BACKEND"
_BACKEND_NAMES = ("pure", "numpy", "native")

_forced: Optional[str] = None       # select()/CLI override, resolved name
_active: Optional[ModuleType] = None
_active_name = "pure"


def numpy_available() -> bool:
    """True when the numpy backend could be loaded."""
    try:
        import numpy  # noqa: F401  (availability probe only)
    except ImportError:
        return False
    return True


def native_available() -> bool:
    """True when the compiled native extension could be loaded."""
    try:
        from repro.accel._native import _uparc_native  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """Backend names loadable in this environment, pure first."""
    names = ["pure"]
    if numpy_available():
        names.append("numpy")
    if native_available():
        names.append("native")
    return names


def _load(name: str) -> ModuleType:
    if name == "pure":
        return pure
    if name == "numpy":
        try:
            from repro.accel import numpy_backend
        except ImportError as exc:
            raise AccelError(
                "backend 'numpy' requested but numpy is not installed "
                "(pip install repro-uparc[accel])"
            ) from exc
        return numpy_backend
    if name == "native":
        try:
            from repro.accel import native_backend
        except ImportError as exc:
            raise AccelError(
                "backend 'native' requested but the compiled extension "
                "is not built (pip install repro-uparc[native] or "
                "python -m repro.accel._native.build)"
            ) from exc
        return native_backend
    raise AccelError(
        f"unknown accel backend {name!r}; "
        f"choose from {('auto',) + _BACKEND_NAMES}"
    )


def _resolve() -> ModuleType:
    """Load and cache the backend chosen by the selection precedence."""
    global _active, _active_name
    if _active is not None:
        return _active
    name = _forced
    if name is None:
        env = os.environ.get(BACKEND_ENV, "").strip()
        if env and env != "auto":
            if env not in _BACKEND_NAMES:
                raise AccelError(
                    f"{BACKEND_ENV}={env!r} is not a valid backend; "
                    f"choose from {('auto',) + _BACKEND_NAMES}"
                )
            name = env
    if name is None:
        if native_available():
            name = "native"
        elif numpy_available():
            name = "numpy"
        else:
            name = "pure"
    module = _load(name)
    _active = module
    _active_name = name
    return module


def active() -> ModuleType:
    """The resolved backend module (for per-call-site inner loops)."""
    backend = _active
    if backend is None:
        backend = _resolve()
    return backend


def backend_name() -> str:
    """Resolved backend name (``pure``, ``numpy`` or ``native``)."""
    if _active is None:
        _resolve()
    return _active_name


def select(name: Optional[str]) -> str:
    """Force a backend by name; returns the resolved backend name.

    ``None`` or ``"auto"`` clears any previous force and re-runs the
    normal precedence (environment variable, then auto-detection).
    Requesting ``"numpy"`` without numpy installed, or ``"native"``
    without the compiled extension built, raises
    :class:`~repro.errors.AccelError`.
    """
    global _forced, _active
    if name not in (None, "auto") and name not in _BACKEND_NAMES:
        raise AccelError(
            f"unknown accel backend {name!r}; "
            f"choose from {('auto',) + _BACKEND_NAMES}"
        )
    _forced = None if name in (None, "auto") else name
    _active = None
    return backend_name()


@contextmanager
def using(name: Optional[str]) -> Iterator[str]:
    """Temporarily select a backend (tests and benchmarks)."""
    saved = (_forced, _active, _active_name)
    try:
        yield select(name)
    finally:
        _restore(saved)


def _restore(saved: Tuple[Optional[str], Optional[ModuleType], str]) -> None:
    global _forced, _active, _active_name
    _forced, _active, _active_name = saved


def record(kernel: str, data_bytes: int, calls: int = 1) -> None:
    """Count a kernel use in the active metrics registry.

    No-op unless a registry is installed.  Call sites that invoke a
    backend kernel in a tight inner loop (the LZ match search) record
    one aggregate here per outer operation instead of per call.
    """
    registry = current_registry()
    if not registry.enabled:
        return
    prefix = f"accel.{_active_name}.{kernel}"
    registry.counter(prefix + ".calls").inc(calls)
    registry.counter(prefix + ".bytes").inc(data_bytes)


# -- dispatch ---------------------------------------------------------


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C (Castagnoli) over ``data``, chained through ``crc``."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("crc32c", len(data))
    return backend.crc32c(data, crc)


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Big-endian 32-bit word serialization."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("words_to_bytes", 4 * len(words))
    return backend.words_to_bytes(words)


def bytes_to_words(data: bytes) -> List[int]:
    """Big-endian 32-bit word deserialization."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("bytes_to_words", len(data))
    return backend.bytes_to_words(data)


def synthesize_payload(plan: SynthesisPlan) -> bytes:
    """Materialise a :class:`SynthesisPlan` into packed payload bytes."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("synthesize_payload", 4 * plan.total_words)
    return backend.synthesize_payload(plan)


def equal_word_runs(data: bytes, word_count: int) -> List[int]:
    """Lengths of maximal equal-word runs (see the pure reference)."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("equal_word_runs", 4 * word_count)
    return backend.equal_word_runs(data, word_count)


def zero_word_runs(data: bytes,
                   word_count: int) -> Tuple[List[int], List[int]]:
    """Starts and lengths of maximal zero-word runs."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("zero_word_runs", 4 * word_count)
    return backend.zero_word_runs(data, word_count)


def match_lengths(data: bytes, candidates: Sequence[int],
                  position: int, limit: int) -> List[int]:
    """Match length at ``position`` per candidate (early limit break).

    Inner-loop callers should fetch :func:`active` once and call the
    backend directly, recording an aggregate with :func:`record`.
    """
    backend = _active
    if backend is None:
        backend = _resolve()
    record("match_lengths", limit * len(candidates))
    return backend.match_lengths(data, candidates, position, limit)


def chunk_words(block: Sequence[int], offset: int,
                frame_words: int) -> Tuple[List[List[int]], List[int]]:
    """Split ``block[offset:]`` into full frames plus the tail."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("chunk_words", 4 * max(0, len(block) - offset))
    return backend.chunk_words(block, offset, frame_words)


def bitpack(values: Sequence[int], widths: Sequence[int]) -> bytes:
    """MSB-first bit packing of ``(value, width)`` token pairs."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("bitpack", 8 * len(values))
    return backend.bitpack(values, widths)


def xmatch_tokens(data: bytes, word_count: int,
                  capacity: int) -> TokenStream:
    """X-MatchPRO token stream over the word-aligned prefix of ``data``."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("xmatch_tokens", 4 * word_count)
    return backend.xmatch_tokens(data, word_count, capacity)


def lz77_tokens(data: bytes, window_bits: int, length_bits: int,
                min_match: int, max_chain: int) -> TokenStream:
    """LZSS literal/match token stream over ``data``."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("lz77_tokens", len(data))
    return backend.lz77_tokens(data, window_bits, length_bits,
                               min_match, max_chain)


def huffman_code_table(frequencies: Sequence[int]
                       ) -> Tuple[List[int], List[int]]:
    """Canonical Huffman ``(codes, lengths)`` from a 256-bin histogram."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("huffman_code_table", 256)
    return backend.huffman_code_table(frequencies)


def huffman_pack(data: bytes, codes: Sequence[int],
                 lengths: Sequence[int]) -> bytes:
    """Encode ``data`` through a 256-entry code table and bit-pack it."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("huffman_pack", len(data))
    return backend.huffman_pack(data, codes, lengths)


def rle_records(data: bytes, word_count: int) -> bytes:
    """Word-RLE record stream (no header) over ``data``."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("rle_records", 4 * word_count)
    return backend.rle_records(data, word_count)


def xmatch_decode(body: bytes, output_length: int,
                  capacity: int) -> bytes:
    """Decode an X-MatchPRO token-stream body (see the pure reference)."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("xmatch_decode", output_length)
    return backend.xmatch_decode(body, output_length, capacity)


def lz77_decode(body: bytes, output_length: int, window_bits: int,
                length_bits: int, min_match: int) -> bytes:
    """Decode an LZSS token-stream body."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("lz77_decode", output_length)
    return backend.lz77_decode(body, output_length, window_bits,
                               length_bits, min_match)


def huffman_decode(body: bytes, output_length: int,
                   lengths: bytes) -> bytes:
    """Decode a canonical-Huffman body against a 256-byte length table."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("huffman_decode", output_length)
    return backend.huffman_decode(body, output_length, lengths)


def rle_decode(records: bytes, output_length: int) -> bytes:
    """Decode a word-RLE record stream (no header)."""
    backend = _active
    if backend is None:
        backend = _resolve()
    record("rle_decode", output_length)
    return backend.rle_decode(records, output_length)
