"""Content-addressed on-disk artifact cache for the sweep engine.

Every artifact is stored under the SHA-256 of its *parameters* — the
canonical JSON of everything that determines the bytes (artifact kind,
format version, generator spec, codec name, controller/frequency).
Identical parameters always hash to the same key, so

* a second sweep over the same grid reads generated bitstreams,
  compressed payloads and finished run records straight from disk, and
* any parameter change (a different seed, a retuned generator mixture,
  a new format version) lands on a fresh key — stale entries are never
  *read*, they are simply orphaned (``clear()`` reclaims the space).

Layout::

    <root>/objects/<key[:2]>/<key[2:]>

two-level fan-out keeps directories small.  Writes go through a
temporary file in the same directory followed by ``os.replace``, so a
crashed or concurrent writer can never leave a half-written artifact
behind — concurrent workers racing on the same key both write the same
bytes and the atomic rename picks a winner.

Cached bitstreams are stored as a JSON metadata header (header fields
and frame bookkeeping) followed by the raw configuration words, so a
hit reconstructs the full :class:`PartialBitstream` without re-running
the generator *or* re-deriving the configuration CRC.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.bitstream.format import bytes_to_words
from repro.bitstream.generator import (
    BitstreamSpec,
    PartialBitstream,
    generate_bitstream,
)
from repro.bitstream.header import BitstreamHeader
from repro.compress.base import CompressionResult
from repro.compress.registry import codec_by_name

#: Bump when any serialised artifact layout changes; every key embeds
#: it, so old cache directories are silently orphaned, never misread.
CACHE_FORMAT_VERSION = 1


def artifact_key(params: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``params``."""
    canonical = json.dumps(params, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def bitstream_params(spec: BitstreamSpec) -> Dict[str, Any]:
    """Everything that determines a generated bitstream's bytes."""
    return {
        "kind": "bitstream",
        "version": CACHE_FORMAT_VERSION,
        "device": spec.device.name,
        "size_bytes": spec.size.bytes,
        "origin": spec.origin.pack(),
        "utilization": spec.utilization,
        "motif_pool": spec.motif_pool,
        "zero_run_weight": spec.zero_run_weight,
        "zero_run_mean": spec.zero_run_mean,
        "motif_run_weight": spec.motif_run_weight,
        "motif_run_mean": spec.motif_run_mean,
        "copy_weight": spec.copy_weight,
        "copy_run_mean": spec.copy_run_mean,
        "sparse_weight": spec.sparse_weight,
        "dense_weight": spec.dense_weight,
        "seed": spec.seed,
        "design_name": spec.design_name,
    }


@dataclass
class CacheStats:
    """Hit/miss and byte-traffic counters one engine run accumulates.

    ``bytes_read`` counts blob bytes served from the cache (hits);
    ``bytes_written`` counts blob bytes stored on misses.  Both refer
    to artifact payloads, not filesystem overhead.
    """

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written


class ArtifactCache:
    """Content-addressed blob store rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._objects = os.path.join(root, "objects")

    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key[2:])

    def get(self, key: str) -> Optional[bytes]:
        """The stored blob, or ``None`` on a miss."""
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put(self, key: str, blob: bytes) -> None:
        """Store ``blob`` under ``key`` atomically (tmp + rename)."""
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, tmp_path = tempfile.mkstemp(dir=directory,
                                                prefix=".tmp-")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def clear(self) -> None:
        """Delete every cached artifact."""
        shutil.rmtree(self._objects, ignore_errors=True)

    # -- bitstreams ---------------------------------------------------

    def load_bitstream(self, spec: BitstreamSpec,
                       stats: Optional[CacheStats] = None,
                       ) -> PartialBitstream:
        """The bitstream for ``spec`` — from cache, or generated.

        A miss generates, stores and returns; a hit reconstructs the
        exact :class:`PartialBitstream` (same ``raw_bytes``, header
        and frame bookkeeping) without running the generator.
        """
        key = artifact_key(bitstream_params(spec))
        blob = self.get(key)
        if blob is not None:
            if stats is not None:
                stats.hits += 1
                stats.bytes_read += len(blob)
            return _decode_bitstream(spec, blob)
        if stats is not None:
            stats.misses += 1
        bitstream = generate_bitstream(spec)
        encoded = _encode_bitstream(bitstream)
        self.put(key, encoded)
        if stats is not None:
            stats.bytes_written += len(encoded)
        return bitstream

    # -- compressed payloads ------------------------------------------

    def load_compressed(self, spec: BitstreamSpec, codec_name: str,
                        stats: Optional[CacheStats] = None,
                        ) -> CompressionResult:
        """Compression result of ``codec_name`` over ``spec``'s bytes.

        The compressed payload itself is the cached artifact; the
        result record is derived from its length, so hits skip both
        the generator and the compressor.
        """
        params = bitstream_params(spec)
        params["kind"] = "compressed"
        params["codec"] = codec_name
        key = artifact_key(params)
        blob = self.get(key)
        if blob is not None:
            if stats is not None:
                stats.hits += 1
                stats.bytes_read += len(blob)
            (original_size,) = struct.unpack_from(">I", blob, 0)
            return CompressionResult(codec_name=codec_name,
                                     original_size=original_size,
                                     compressed_size=len(blob) - 4)
        if stats is not None:
            stats.misses += 1
        raw = self.load_bitstream(spec).raw_bytes
        compressed = codec_by_name(codec_name).compress(raw)
        encoded = struct.pack(">I", len(raw)) + compressed
        self.put(key, encoded)
        if stats is not None:
            stats.bytes_written += len(encoded)
        return CompressionResult(codec_name=codec_name,
                                 original_size=len(raw),
                                 compressed_size=len(compressed))

    # -- run records --------------------------------------------------

    def load_record(self, params: Dict[str, Any],
                    stats: Optional[CacheStats] = None,
                    ) -> Optional[Dict[str, Any]]:
        """A finished run record for ``params``, or ``None``.

        Hit/miss accounting stays with the caller (the engine counts a
        record miss only once per cell); ``stats`` only accumulates
        the byte traffic.
        """
        blob = self.get(artifact_key(params))
        if blob is None:
            return None
        if stats is not None:
            stats.bytes_read += len(blob)
        return json.loads(blob.decode("utf-8"))

    def store_record(self, params: Dict[str, Any],
                     record: Dict[str, Any],
                     stats: Optional[CacheStats] = None) -> None:
        """Store a run record (floats survive the JSON round trip
        exactly — ``repr`` is shortest-roundtrip in Python 3)."""
        blob = json.dumps(record, sort_keys=True).encode("utf-8")
        self.put(artifact_key(params), blob)
        if stats is not None:
            stats.bytes_written += len(blob)


def _encode_bitstream(bitstream: PartialBitstream) -> bytes:
    header = bitstream.header
    meta = json.dumps({
        "design_name": header.design_name,
        "part_name": header.part_name,
        "date": header.date,
        "time": header.time,
        "payload_length": header.payload_length,
        "frame_count": bitstream.frame_count,
        "frame_payload_offset": bitstream.frame_payload_offset,
        "frame_payload_words": bitstream.frame_payload_words,
    }, sort_keys=True).encode("utf-8")
    return struct.pack(">I", len(meta)) + meta + bitstream.raw_bytes


def _decode_bitstream(spec: BitstreamSpec,
                      blob: bytes) -> PartialBitstream:
    (meta_length,) = struct.unpack_from(">I", blob, 0)
    meta = json.loads(blob[4:4 + meta_length].decode("utf-8"))
    raw = blob[4 + meta_length:]
    header = BitstreamHeader(
        design_name=meta["design_name"],
        part_name=meta["part_name"],
        date=meta["date"],
        time=meta["time"],
        payload_length=meta["payload_length"],
    )
    # The blob already holds the serialized stream; only the thin
    # shell around the FDRI payload is decoded into words — the
    # payload stays bytes, exactly as generated, so a cache hit skips
    # the word-level decode entirely.
    start = meta["frame_payload_offset"] * 4
    stop = start + meta["frame_payload_words"] * 4
    return PartialBitstream(
        spec=spec,
        header=header,
        shell_prologue=bytes_to_words(raw[:start]),
        shell_epilogue=bytes_to_words(raw[stop:]),
        payload_data=raw[start:stop],
        frame_count=meta["frame_count"],
    )
