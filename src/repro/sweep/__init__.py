"""Experiment sweep engine: grids, artifact cache, process fan-out.

The paper's evaluation is a set of parameter sweeps (controller x
frequency x payload x seed); this package turns them into declarative
grids executed by a process-parallel engine with a content-addressed
artifact cache:

* :mod:`repro.sweep.spec`   — :class:`RunSpec`, :class:`SweepGrid`
  and the named grids (``fig5``, ``table1``, ``smoke``);
* :mod:`repro.sweep.cache`  — SHA-256 content-addressed store for
  bitstreams, compressed payloads and finished run records;
* :mod:`repro.sweep.engine` — :class:`SweepEngine` and the
  module-level :func:`execute_spec` worker;
* :mod:`repro.sweep.cli`    — ``python -m repro sweep``.

Results are deterministic by construction: cells are sorted by
canonical key before dispatch and re-sorted after collection, so a
``-j 8`` run is byte-identical to a serial one.
"""

from repro.sweep.cache import ArtifactCache, CacheStats, artifact_key
from repro.sweep.engine import (
    SweepEngine,
    SweepResult,
    build_controller,
    execute_spec,
    fan_out,
    table1_ratios,
    to_bandwidth_points,
)
from repro.sweep.spec import (
    FIG5_GRID,
    GRIDS,
    SMOKE_GRID,
    TABLE1_GRID,
    PayloadSpec,
    RunSpec,
    SweepGrid,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "artifact_key",
    "SweepEngine",
    "SweepResult",
    "build_controller",
    "execute_spec",
    "fan_out",
    "table1_ratios",
    "to_bandwidth_points",
    "FIG5_GRID",
    "GRIDS",
    "SMOKE_GRID",
    "TABLE1_GRID",
    "PayloadSpec",
    "RunSpec",
    "SweepGrid",
]
