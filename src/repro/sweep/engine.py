"""Process-parallel sweep execution with deterministic results.

The engine maps a list of independent :class:`RunSpec` cells onto
worker processes (``jobs > 1``) or runs them inline (``jobs <= 1``).
Determinism is structural, not accidental:

* specs are expanded and sorted by canonical key *before* dispatch,
* ``ProcessPoolExecutor.map`` preserves input order, and
* every cell builds its own fresh simulator, so no state leaks
  between cells regardless of which worker ran them.

A parallel sweep therefore returns the byte-identical result list of
a serial one — same values, same order.  (Verified empirically: a
fresh-system-per-cell run of the Fig. 5 grid reproduces
``repro.analysis.bandwidth.bandwidth_surface`` exactly, cell for
cell, because the simulation kernel is integer-picosecond and every
result is a Start-to-Finish difference.)

When a cache directory is given, three artifact kinds are reused
across runs (see :mod:`repro.sweep.cache`): generated bitstreams,
compressed payloads, and finished run records.  Records are safe to
cache because the simulation is fully deterministic — a record key
hashes everything that determines the outcome (generator parameters,
controller, frequency, codec, format version).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro import accel
from repro.analysis.bandwidth import BandwidthPoint
from repro.errors import ReproError
from repro.obs import install as obs_install
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import Timer, WallProfiler
from repro.sweep.cache import (
    ArtifactCache,
    CACHE_FORMAT_VERSION,
    CacheStats,
    bitstream_params,
)
from repro.sweep.spec import COMPRESS_CODECS, RunSpec, SweepGrid
from repro.units import DataSize, Frequency


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep cell (picklable, JSON-round-trippable).

    Reconfigure cells fill the bandwidth block; compress cells fill
    the size block.  Unused fields stay ``None``.  Floats survive the
    cache's JSON round trip exactly (shortest-roundtrip ``repr``), so
    a cached record compares equal to a freshly computed one.
    """

    key: str
    workload: str
    size_kb: float
    seed: int
    controller: Optional[str] = None
    frequency_mhz: Optional[float] = None
    codec: Optional[str] = None
    effective_mbps: Optional[float] = None
    theoretical_mbps: Optional[float] = None
    duration_ps: Optional[int] = None
    payload_crc: Optional[int] = None
    frames_written: Optional[int] = None
    verified: Optional[bool] = None
    original_size: Optional[int] = None
    compressed_size: Optional[int] = None
    ratio_percent: Optional[float] = None

    def to_record(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "SweepResult":
        return SweepResult(**record)


def _payload_spec(spec: RunSpec):
    """The generator spec a sweep payload denotes (defaults + size/seed)."""
    from repro.bitstream.generator import BitstreamSpec
    return BitstreamSpec(size=DataSize.from_kb(spec.payload.size_kb),
                         seed=spec.payload.seed)


def _record_params(spec: RunSpec) -> Dict[str, Any]:
    """Cache identity of a finished run record."""
    params = bitstream_params(_payload_spec(spec))
    params["kind"] = "run-record"
    params["version"] = CACHE_FORMAT_VERSION
    params["workload"] = spec.workload
    params["controller"] = spec.controller
    params["frequency_mhz"] = spec.frequency_mhz
    params["codec"] = spec.codec
    return params


def fan_out(items: List[Any], worker, jobs: int = 1) -> List[Any]:
    """Map ``worker`` over ``items``, preserving input order.

    ``jobs <= 1`` (or fewer than two items) runs inline; otherwise the
    calls fan out across ``jobs`` worker processes.  Like
    ``ProcessPoolExecutor.map``, results come back in input order, so
    parallelism never changes what the caller observes — which is why
    both the sweep engine and ``repro serve bench`` can treat the two
    paths as interchangeable.  ``worker`` must be picklable
    (module-level function or :func:`functools.partial` of one).
    """
    jobs = max(1, int(jobs))
    if jobs == 1 or len(items) <= 1:
        return [worker(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(worker, items))


def build_controller(name: str):
    """A fresh controller instance for a sweep/serve controller name."""
    from repro.controllers import (
        BramHwicap,
        Farm,
        FlashCap,
        MstIcap,
        UparcController,
        XpsHwicap,
    )
    factories = {
        "UPaRC_i": lambda: UparcController("i"),
        "UPaRC_ii": lambda: UparcController("ii"),
        "xps_hwicap[cached]": lambda: XpsHwicap(profile="cached"),
        "MST_ICAP": MstIcap,
        "FlashCAP_i": FlashCap,
        "BRAM_HWICAP": BramHwicap,
        "FaRM": Farm,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ReproError(
            f"unknown controller {name!r}; known: "
            f"{', '.join(sorted(factories))}") from None
    return factory()


def execute_spec(spec: RunSpec, cache_root: Optional[str] = None,
                 ) -> Tuple[SweepResult, CacheStats]:
    """Run one cell; module-level so worker processes can pickle it."""
    stats = CacheStats()
    cache = ArtifactCache(cache_root) if cache_root else None
    params = _record_params(spec) if cache else None
    if cache is not None:
        record = cache.load_record(params, stats)
        if record is not None:
            stats.hits += 1
            return SweepResult.from_record(record), stats
        stats.misses += 1

    generator_spec = _payload_spec(spec)
    if spec.workload == "reconfigure":
        if cache is not None:
            bitstream = cache.load_bitstream(generator_spec, stats)
        else:
            from repro.bitstream.generator import generate_bitstream
            bitstream = generate_bitstream(generator_spec)
        controller = build_controller(spec.controller)
        outcome = controller.reconfigure(
            bitstream, Frequency.from_mhz(spec.frequency_mhz))
        theoretical = Frequency.from_mhz(
            spec.frequency_mhz).hertz * 4 / 1e6
        result = SweepResult(
            key=spec.key,
            workload=spec.workload,
            size_kb=spec.payload.size_kb,
            seed=spec.payload.seed,
            controller=spec.controller,
            frequency_mhz=spec.frequency_mhz,
            effective_mbps=outcome.bandwidth_decimal_mbps,
            theoretical_mbps=theoretical,
            duration_ps=outcome.duration_ps,
            payload_crc=outcome.payload_crc,
            frames_written=outcome.frames_written,
            verified=outcome.verified,
        )
    else:
        if cache is not None:
            measure = cache.load_compressed(generator_spec, spec.codec,
                                            stats)
        else:
            from repro.bitstream.generator import generate_bitstream
            from repro.compress.registry import codec_by_name
            raw = generate_bitstream(generator_spec).raw_bytes
            measure = codec_by_name(spec.codec).measure(raw)
        result = SweepResult(
            key=spec.key,
            workload=spec.workload,
            size_kb=spec.payload.size_kb,
            seed=spec.payload.seed,
            codec=spec.codec,
            original_size=measure.original_size,
            compressed_size=measure.compressed_size,
            ratio_percent=measure.ratio_percent,
        )

    if cache is not None:
        cache.store_record(params, result.to_record(), stats)
    return result, stats


def _execute_cell(spec: RunSpec, cache_root: Optional[str] = None,
                  collect_metrics: bool = False,
                  backend: Optional[str] = None,
                  ) -> Tuple[SweepResult, CacheStats,
                             Optional[Dict[str, Any]], float]:
    """One cell plus its telemetry; module-level for worker pickling.

    With ``collect_metrics`` a fresh :class:`MetricsRegistry` is
    installed as the process registry for the duration of the cell, so
    the controllers and kernel instrument into it; the cell returns
    the registry's deterministic snapshot for the parent to merge.
    The wall duration is always measured (it is host telemetry,
    reported separately and never merged into deterministic state).

    ``backend`` pins the :mod:`repro.accel` backend in the worker
    process to the parent's resolved choice (worker processes do not
    inherit a ``--backend`` selection made after parent startup).
    Backends are byte-identical, so this never affects results or
    cache keys — only speed.
    """
    if backend is not None:
        accel.select(backend)
    registry = MetricsRegistry() if collect_metrics else None
    if registry is not None:
        obs_install(registry=registry)
    try:
        with Timer() as timer:
            result, stats = execute_spec(spec, cache_root=cache_root)
    finally:
        if registry is not None:
            obs_install()
    snapshot: Optional[Dict[str, Any]] = None
    if registry is not None:
        registry.counter("sweep.cells").inc()
        registry.counter("sweep.cache.hits").inc(stats.hits)
        registry.counter("sweep.cache.misses").inc(stats.misses)
        registry.counter("sweep.cache.bytes_read").inc(stats.bytes_read)
        registry.counter("sweep.cache.bytes_written").inc(
            stats.bytes_written)
        snapshot = registry.snapshot()
    return result, stats, snapshot, timer.elapsed_s


class SweepEngine:
    """Expand a grid (or spec list) and execute it, optionally cached.

    ``jobs <= 1`` runs inline; ``jobs > 1`` fans out across that many
    worker processes.  Results come back sorted by spec key either
    way, so callers never observe scheduling order.
    """

    def __init__(self, grid: Union[SweepGrid, Iterable[RunSpec]],
                 jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 collect_metrics: bool = False) -> None:
        if isinstance(grid, SweepGrid):
            self._specs = grid.expand()
        else:
            self._specs = sorted(grid, key=lambda spec: spec.key)
        keys = [spec.key for spec in self._specs]
        duplicates = {key for key in keys if keys.count(key) > 1}
        if duplicates:
            raise ReproError(
                f"duplicate sweep cells: {', '.join(sorted(duplicates))}")
        self.jobs = max(1, int(jobs))
        self.cache_dir = cache_dir
        self.collect_metrics = collect_metrics
        self.stats = CacheStats()
        #: Merged per-worker metrics from the last :meth:`run`.  The
        #: deterministic part (``snapshot(include_wall=False)``) is
        #: identical for every worker count; ``wall.*`` entries carry
        #: host timings on top.
        self.registry = MetricsRegistry()
        self.wall_s = 0.0
        #: Fraction of the fan-out's wall-clock capacity spent inside
        #: cells: sum(cell durations) / (elapsed * jobs).
        self.utilization = 0.0

    @property
    def specs(self) -> List[RunSpec]:
        return list(self._specs)

    def run(self) -> List[SweepResult]:
        """Execute every cell; deterministic result order by key."""
        worker = partial(_execute_cell, cache_root=self.cache_dir,
                         collect_metrics=self.collect_metrics,
                         backend=accel.backend_name())
        self.stats = CacheStats()
        self.registry = MetricsRegistry()
        with Timer() as timer:
            outcomes = fan_out(self._specs, worker, jobs=self.jobs)
        self.wall_s = timer.elapsed_s
        profiler = WallProfiler(self.registry)
        results = []
        busy_s = 0.0
        # `pool.map` preserves spec order, so the merge below folds
        # snapshots in the same (deterministic) order on every run;
        # the merge is commutative anyway, so -jN cannot change it.
        for result, stats, snapshot, cell_wall_s in outcomes:
            results.append(result)
            self.stats.merge(stats)
            if snapshot is not None:
                self.registry.merge_snapshot(snapshot)
            profiler.record_s("sweep.cell", cell_wall_s)
            busy_s += cell_wall_s
        if self.wall_s > 0 and self._specs:
            self.utilization = busy_s / (self.wall_s * self.jobs)
        results.sort(key=lambda result: result.key)
        return results


def to_bandwidth_points(results: Iterable[SweepResult],
                        ) -> List[BandwidthPoint]:
    """Reconfigure results as Fig. 5 surface points."""
    points = []
    for result in results:
        if result.workload != "reconfigure":
            continue
        points.append(BandwidthPoint(
            size=DataSize.from_kb(result.size_kb),
            frequency=Frequency.from_mhz(result.frequency_mhz),
            effective_mbps=result.effective_mbps,
            theoretical_mbps=result.theoretical_mbps,
            duration_ps=result.duration_ps,
        ))
    return points


def table1_ratios(results: Iterable[SweepResult]) -> Dict[str, float]:
    """Mean compression ratio per codec, in Table I row order."""
    by_codec: Dict[str, List[float]] = {}
    for result in results:
        if result.workload != "compress":
            continue
        by_codec.setdefault(result.codec, []).append(
            result.ratio_percent)
    return {name: sum(by_codec[name]) / len(by_codec[name])
            for name in COMPRESS_CODECS if name in by_codec}
