"""Declarative parameter grids and their expansion into run specs.

A :class:`SweepGrid` names the axes of one experiment — which
controllers (or codecs), which frequencies, which payloads — and
:meth:`SweepGrid.expand` turns it into a flat list of independent
:class:`RunSpec` records.  Every spec is self-contained (a worker
process can execute it with nothing but the spec and a cache
directory) and carries a canonical ``key`` string that doubles as

* the deterministic sort order of the sweep's results (so a parallel
  run is bit-identical to a serial one), and
* the human-readable identity printed by ``python -m repro sweep``.

The named grids at the bottom are the paper's experiments: the Fig. 5
bandwidth surface and the Table I compression corpus, plus a small
smoke grid for quick checks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.bandwidth import FIG5_FREQUENCIES_MHZ, FIG5_SIZES_KB
from repro.compress.registry import PAPER_TABLE1_RATIOS
from repro.errors import ReproError

#: Controllers a reconfigure sweep may name (Table III rows).  Kept as
#: an explicit tuple so a typo fails at grid build time, not inside a
#: worker process.
RECONFIGURE_CONTROLLERS: Tuple[str, ...] = (
    "UPaRC_i",
    "UPaRC_ii",
    "xps_hwicap[cached]",
    "MST_ICAP",
    "FlashCAP_i",
    "BRAM_HWICAP",
    "FaRM",
)

#: Codecs a compress sweep may name (Table I rows).
COMPRESS_CODECS: Tuple[str, ...] = tuple(PAPER_TABLE1_RATIOS)

_WORKLOADS = ("reconfigure", "compress")


@dataclass(frozen=True, order=True)
class PayloadSpec:
    """One synthetic bitstream: its size and generator seed.

    The pair fully determines the payload bytes (the generator is
    seeded and otherwise default-parameterised), which is what makes
    the artifact cache content-addressable.
    """

    size_kb: float
    seed: int

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ReproError(f"payload size must be positive, "
                             f"got {self.size_kb} KB")

    @property
    def label(self) -> str:
        return f"{self.size_kb:g}kb-s{self.seed}"


@dataclass(frozen=True)
class RunSpec:
    """One independent cell of a sweep.

    ``workload`` selects the experiment type:

    * ``"reconfigure"`` — run ``controller`` at ``frequency_mhz`` on
      the payload's bitstream; results carry bandwidth/duration/CRC.
    * ``"compress"`` — run ``codec`` on the payload's raw byte stream;
      results carry sizes and the Table I ratio.
    """

    workload: str
    payload: PayloadSpec
    controller: Optional[str] = None
    frequency_mhz: Optional[float] = None
    codec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload not in _WORKLOADS:
            raise ReproError(f"unknown workload {self.workload!r}; "
                             f"expected one of {_WORKLOADS}")
        if self.workload == "reconfigure":
            if self.controller not in RECONFIGURE_CONTROLLERS:
                raise ReproError(
                    f"unknown controller {self.controller!r}; known: "
                    f"{', '.join(RECONFIGURE_CONTROLLERS)}")
            if self.frequency_mhz is None or self.frequency_mhz <= 0:
                raise ReproError(
                    f"reconfigure spec needs a positive frequency, "
                    f"got {self.frequency_mhz!r}")
        else:
            if self.codec not in COMPRESS_CODECS:
                raise ReproError(f"unknown codec {self.codec!r}; known: "
                                 f"{', '.join(COMPRESS_CODECS)}")

    @property
    def key(self) -> str:
        """Canonical identity: the sort key and display name.

        Built only from values with exact string forms (``%g`` floats,
        ints), so equal specs always render the same key.
        """
        parts = [self.workload]
        if self.workload == "reconfigure":
            parts.append(str(self.controller))
            parts.append(f"{self.frequency_mhz:g}mhz")
        else:
            parts.append(str(self.codec))
        parts.append(self.payload.label)
        return "/".join(parts)


@dataclass(frozen=True)
class SweepGrid:
    """Axes of one sweep; ``expand()`` yields the cross product.

    ``payloads`` is an explicit tuple of (size, seed) pairs — *not*
    crossed with anything else — because corpora like Table I pair a
    specific seed with each size.
    """

    name: str
    workload: str
    payloads: Tuple[PayloadSpec, ...]
    controllers: Tuple[str, ...] = ()
    frequencies_mhz: Tuple[float, ...] = ()
    codecs: Tuple[str, ...] = ()
    description: str = ""

    def expand(self) -> List[RunSpec]:
        """All run specs of the grid, sorted by canonical key."""
        specs: List[RunSpec] = []
        if self.workload == "reconfigure":
            if not (self.controllers and self.frequencies_mhz):
                raise ReproError(
                    f"grid {self.name!r}: a reconfigure grid needs "
                    f"controllers and frequencies")
            for controller in self.controllers:
                for mhz in self.frequencies_mhz:
                    for payload in self.payloads:
                        specs.append(RunSpec(
                            workload="reconfigure",
                            controller=controller,
                            frequency_mhz=mhz,
                            payload=payload))
        elif self.workload == "compress":
            if not self.codecs:
                raise ReproError(f"grid {self.name!r}: a compress grid "
                                 f"needs codecs")
            for codec in self.codecs:
                for payload in self.payloads:
                    specs.append(RunSpec(workload="compress",
                                         codec=codec, payload=payload))
        else:
            raise ReproError(f"grid {self.name!r}: unknown workload "
                             f"{self.workload!r}")
        specs.sort(key=lambda spec: spec.key)
        return specs

    def __len__(self) -> int:
        if self.workload == "reconfigure":
            return (len(self.controllers) * len(self.frequencies_mhz)
                    * len(self.payloads))
        return len(self.codecs) * len(self.payloads)


#: Fig. 5: UPaRC_i over the full size x frequency surface.  Every
#: payload uses the library's default seed (2012) so the cells match
#: ``repro.analysis.bandwidth.bandwidth_surface`` exactly.
FIG5_GRID = SweepGrid(
    name="fig5",
    workload="reconfigure",
    controllers=("UPaRC_i",),
    frequencies_mhz=tuple(FIG5_FREQUENCIES_MHZ),
    payloads=tuple(PayloadSpec(size_kb=kb, seed=2012)
                   for kb in FIG5_SIZES_KB),
    description="Fig. 5 bandwidth surface (7 sizes x 7 frequencies)",
)

#: Table I: every codec over the paired (size, seed) corpus.  The
#: pairs are the corpus the compression table is calibrated against.
TABLE1_PAYLOADS = (PayloadSpec(size_kb=49.0, seed=101),
                   PayloadSpec(size_kb=81.0, seed=202),
                   PayloadSpec(size_kb=156.0, seed=303))

TABLE1_GRID = SweepGrid(
    name="table1",
    workload="compress",
    codecs=COMPRESS_CODECS,
    payloads=TABLE1_PAYLOADS,
    description="Table I compression ratios (7 codecs x 3 bitstreams)",
)

#: Tiny grid for smoke tests and CLI sanity checks (4 cells, < 1 s).
SMOKE_GRID = SweepGrid(
    name="smoke",
    workload="reconfigure",
    controllers=("UPaRC_i",),
    frequencies_mhz=(100.0, 362.5),
    payloads=(PayloadSpec(size_kb=6.5, seed=2012),
              PayloadSpec(size_kb=12.0, seed=7)),
    description="4-cell smoke sweep (fast sanity check)",
)

GRIDS: Dict[str, SweepGrid] = {
    grid.name: grid for grid in (FIG5_GRID, TABLE1_GRID, SMOKE_GRID)
}
