"""``python -m repro sweep`` — run a named experiment grid.

Usage::

    python -m repro sweep fig5                  # serial, cached
    python -m repro sweep fig5 -j 4             # four worker processes
    python -m repro sweep table1 --no-cache     # force recomputation
    python -m repro sweep smoke --json out.json # machine-readable dump

The cache directory defaults to ``.repro-cache`` in the working
directory (override with ``--cache-dir``); ``--no-cache`` disables
artifact reuse entirely.  Results are printed sorted by cell key and
are identical for any ``-j`` — parallelism never changes the output.
"""

from __future__ import annotations

import argparse
import json
from typing import List

from repro.analysis.report import render_table
from repro.sweep.engine import SweepEngine, SweepResult
from repro.sweep.spec import GRIDS

DEFAULT_CACHE_DIR = ".repro-cache"


def _human_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{count} B" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024
    return f"{count} B"


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("grid", choices=sorted(GRIDS),
                        help="named experiment grid to run")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (default 1: serial)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"artifact cache root (default "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write results as JSON to FILE")
    parser.add_argument("--metrics", action="store_true",
                        help="collect per-worker metrics registries, "
                             "merge them and print the roll-up")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the grid under the dynamic race "
                             "sanitizer (forces -j 1: instrumentation "
                             "is in-process; findings fail the sweep)")


def _result_rows(results: List[SweepResult]) -> List[List[object]]:
    rows: List[List[object]] = []
    for result in results:
        if result.workload == "reconfigure":
            rows.append([result.key, result.effective_mbps,
                         f"{result.duration_ps / 1e6:.1f} us",
                         "ok" if result.verified else "FAIL"])
        else:
            rows.append([result.key, result.ratio_percent,
                         f"{result.compressed_size} B", "ok"])
    return rows


def run_sweep(args: argparse.Namespace) -> int:
    grid = GRIDS[args.grid]
    cache_dir = None if args.no_cache else args.cache_dir
    sanitize = getattr(args, "sanitize", False)
    jobs = args.jobs
    if sanitize:
        # The sanitizer instruments classes in this process; worker
        # processes would escape it, and a sanitized sweep must also
        # actually execute every cell rather than replay the cache.
        jobs = 1
        cache_dir = None
    engine = SweepEngine(grid, jobs=jobs, cache_dir=cache_dir,
                         collect_metrics=getattr(args, "metrics", False))
    if sanitize:
        from repro.sanitize import sanitized
        with sanitized() as sanitizer:
            results = engine.run()
    else:
        results = engine.run()

    value_header = ("MB/s" if grid.workload == "reconfigure"
                    else "ratio %")
    detail_header = ("duration" if grid.workload == "reconfigure"
                     else "compressed")
    print(render_table(
        ["cell", value_header, detail_header, "crc"],
        _result_rows(results),
        title=f"sweep {grid.name} -- {grid.description}"))
    cache_note = ("cache off" if cache_dir is None else
                  f"cache {cache_dir}: {engine.stats.hits} hits, "
                  f"{engine.stats.misses} misses, "
                  f"{_human_bytes(engine.stats.bytes_read)} read, "
                  f"{_human_bytes(engine.stats.bytes_written)} written")
    print(f"\n{len(results)} cells in {engine.wall_s:.2f} s "
          f"(-j {engine.jobs}, {engine.utilization * 100:.0f}% "
          f"fan-out utilisation; {cache_note})")

    if getattr(args, "metrics", False):
        rows = engine.registry.rows(include_wall=False)
        print()
        print(render_table(["metric", "kind", "value"], rows,
                           title="merged worker metrics "
                                 "(deterministic for any -j)"))

    if args.json:
        with open(args.json, "w") as handle:
            json.dump([result.to_record() for result in results],
                      handle, indent=2, sort_keys=True)
        print(f"results written to {args.json}")

    failed = [result.key for result in results
              if result.workload == "reconfigure" and not result.verified]
    if sanitize:
        from repro import accel
        unjustified = [finding for finding in sanitizer.findings
                       if not finding.justified]
        for finding in unjustified:
            print(f"sanitize: {finding.describe()}")
        print(f"sanitize: {len(unjustified)} unjustified finding(s) "
              f"(accel.backend={accel.backend_name()})")
        if unjustified:
            return 1
    return 1 if failed else 0
