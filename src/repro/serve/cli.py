"""``python -m repro serve`` — fleet serving scenarios.

Usage::

    python -m repro serve run                    # default scenario
    python -m repro serve run --requests 20000 --load 1.5 --preempt
    python -m repro serve run --json report.json --metrics
    python -m repro serve run --sanitize         # S901-S903 checked
    python -m repro serve bench -j 4             # SLO curve, 4 workers
    python -m repro serve bench --output BENCH_serve.json

``run`` serves one scenario and prints its SLO report; ``bench``
sweeps the scenario across offered-load levels (reusing the sweep
engine's process fan-out) and emits the curve as JSON.  Everything is
sim-time deterministic: repeat runs, any ``-j``, and every installed
accel backend produce byte-identical reports; printed output and the
bench document name the active backend (``accel.backend``) for
attribution.
"""

from __future__ import annotations

import argparse
from typing import Tuple

from repro import accel
from repro.analysis.report import render_table
from repro.errors import ServeError
from repro.serve.spec import ARRIVAL_MODELS, ServeSpec

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="serve_command", required=True)

    run = sub.add_parser(
        "run", help="serve one scenario and print its SLO report")
    _add_spec_arguments(run)
    run.add_argument("--json", default=None, metavar="FILE",
                     help="also write the SLO report as JSON to FILE")
    run.add_argument("--metrics", action="store_true",
                     help="print the serve.* metrics registry after "
                          "the run")
    run.add_argument("--sanitize", action="store_true",
                     help="run under the dynamic race & determinism "
                          "sanitizers (implies a seeded re-run; "
                          "findings fail the command)")

    bench = sub.add_parser(
        "bench", help="sweep the scenario across load levels (SLO "
                      "curve)")
    _add_spec_arguments(bench)
    bench.add_argument("--loads", default=None, metavar="F[,F...]",
                       help="offered-load fractions to sweep "
                            "(default: 0.5,1,2,4,8)")
    bench.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (default 1: serial)")
    bench.add_argument("--output", default=None, metavar="FILE",
                       help="write the bench document as JSON to FILE")
    bench.add_argument("--metrics", action="store_true",
                       help="print the merged serve.* metrics "
                            "roll-up")


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--boards", type=int, default=4,
                        help="fleet size (default 4)")
    parser.add_argument("--controller", default="UPaRC_i",
                        help="reconfiguration controller (default "
                             "UPaRC_i)")
    parser.add_argument("--frequency-mhz", type=float, default=362.5,
                        help="ICAP clock (default 362.5)")
    parser.add_argument("--arrival", choices=ARRIVAL_MODELS,
                        default="poisson",
                        help="arrival process (default poisson)")
    parser.add_argument("--load", type=float, default=0.8,
                        help="offered load as a fraction of cold-"
                             "service capacity (default 0.8)")
    parser.add_argument("--rate-rps", type=float, default=0.0,
                        help="explicit aggregate rate in req/s "
                             "(overrides --load)")
    parser.add_argument("--requests", type=int, default=10_000,
                        help="stream length (default 10000)")
    parser.add_argument("--seed", type=int, default=2012,
                        help="workload seed (default 2012)")
    parser.add_argument("--queue-limit", type=int, default=512,
                        help="global queue bound (default 512)")
    parser.add_argument("--tenant-limit", type=int, default=256,
                        help="per-tenant queue bound (default 256)")
    parser.add_argument("--batch-limit", type=int, default=8,
                        help="max requests per coalesced dispatch "
                             "(default 8)")
    parser.add_argument("--shed-infeasible", action="store_true",
                        help="shed requests whose deadline cannot be "
                             "met even if dispatched immediately")
    parser.add_argument("--preempt", action="store_true",
                        help="let priority-0 requests preempt "
                             "background service")


def _spec_from_args(args: argparse.Namespace) -> ServeSpec:
    return ServeSpec(
        boards=args.boards,
        controller=args.controller,
        frequency_mhz=args.frequency_mhz,
        arrival=args.arrival,
        load=args.load,
        rate_rps=args.rate_rps,
        requests=args.requests,
        seed=args.seed,
        queue_limit=args.queue_limit,
        tenant_limit=args.tenant_limit,
        batch_limit=args.batch_limit,
        shed_infeasible=args.shed_infeasible,
        preempt=args.preempt,
    )


def _parse_loads(raw: str) -> Tuple[float, ...]:
    try:
        loads = tuple(float(part) for part in raw.split(",") if part)
    except ValueError:
        raise SystemExit(EXIT_USAGE)
    if not loads:
        raise SystemExit(EXIT_USAGE)
    return loads


def _print_report(report) -> None:
    data = report.to_dict()
    latency = data["latency_us"]
    rows = [
        ["requests", data["requests"]],
        ["completed", data["completed"]],
        ["shed", f"{data['shed']} ({data['shed_pct']:.2f}%)"],
        ["deadline missed",
         f"{data['deadline_missed']} "
         f"({data['deadline_miss_pct']:.2f}%)"],
        ["throughput", f"{data['throughput_rps']:.0f} req/s"],
        ["goodput", f"{data['goodput_rps']:.0f} req/s"],
        ["latency p50/p95/p99",
         f"{latency['p50']:.1f} / {latency['p95']:.1f} / "
         f"{latency['p99']:.1f} us"],
        ["warm completions", data["warm_completions"]],
        ["batches", data["batches"]],
        ["preemptions", data["preemptions"]],
        ["makespan", f"{data['makespan_s'] * 1e3:.3f} ms (sim)"],
        # Attribution only: the report JSON and its digest stay
        # backend-free (they are byte-identical across backends).
        ["accel.backend", accel.backend_name()],
    ]
    print(render_table(["SLO", "value"], rows,
                       title=f"serve -- {data['spec_key']}"))
    tenant_rows = [[name, stats["completed"], stats["shed"],
                    stats["deadline_missed"],
                    f"{stats['p95_us']:.1f} us"]
                   for name, stats in sorted(data["tenants"].items())]
    print()
    print(render_table(
        ["tenant", "completed", "shed", "missed", "p95"],
        tenant_rows, title="per-tenant"))


def _serve_once(args: argparse.Namespace) -> int:
    from repro.serve.fleet import ServiceTimeTable
    from repro.serve.service import FleetService
    from repro.serve.slo import build_report
    from repro.serve.workload import generate_requests

    spec = _spec_from_args(args)
    table = ServiceTimeTable(spec)
    requests = generate_requests(spec, table.resolved_rate_rps())
    outcome = FleetService(spec, table=table).run(requests)
    report = build_report(outcome)
    _print_report(report)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"\nreport written to {args.json}")
    return EXIT_CLEAN


def _run_serve_run(args: argparse.Namespace) -> int:
    if args.sanitize:
        from repro.sanitize.cli import run_sanitized_command
        return run_sanitized_command(_serve_once, args, "serve run")
    if args.metrics:
        from repro import obs
        with obs.observed(metrics=True) as observation:
            result = _serve_once(args)
        print()
        print(render_table(
            ["metric", "kind", "value"],
            observation.registry.rows(include_wall=False),
            title="metrics -- serve run"))
        return result
    return _serve_once(args)


def _run_serve_bench(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.bench import (
        DEFAULT_LOADS,
        bench_serve,
        render_bench,
    )

    spec = _spec_from_args(args)
    loads = (_parse_loads(args.loads) if args.loads
             else DEFAULT_LOADS)
    document = bench_serve(spec, loads=loads, jobs=args.jobs)
    rows = []
    for cell in document["levels"]:
        report = cell["report"]
        latency = report["latency_us"]
        rows.append([
            f"{cell['load']:g}", f"{cell['rate_rps']:.0f}",
            f"{report['throughput_rps']:.0f}",
            f"{report['goodput_rps']:.0f}",
            f"{latency['p50']:.1f}", f"{latency['p99']:.1f}",
            f"{report['deadline_miss_pct']:.2f}",
            f"{report['shed_pct']:.2f}",
        ])
    print(render_table(
        ["load", "req/s", "thr", "goodput", "p50 us", "p99 us",
         "miss %", "shed %"],
        rows, title=f"serve bench -- {document['base_key']}"))
    print(f"\n{document['total_requests']} requests across "
          f"{len(document['levels'])} load levels in "
          f"{document['_wall_s']:.2f} s of cell time (-j {args.jobs}, "
          f"accel.backend={document['accel.backend']})")
    if args.metrics:
        registry = MetricsRegistry()
        registry.merge_snapshot(document["merged_metrics"])
        print()
        print(render_table(
            ["metric", "kind", "value"],
            registry.rows(include_wall=False),
            title="merged serve metrics (deterministic for any -j)"))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(render_bench(document))
            handle.write("\n")
        print(f"\nbench document written to {args.output}")
    return EXIT_CLEAN


def run_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "run":
        return _run_serve_run(args)
    if args.serve_command == "bench":
        return _run_serve_bench(args)
    raise ServeError(f"unknown serve command {args.serve_command!r}")
