"""Open-loop arrival-process workload generation.

The request stream is generated *ahead of* simulation from one seeded
``random.Random``, so a workload is a pure function of its
:class:`~repro.serve.spec.ServeSpec` (plus the resolved aggregate
rate): replaying the same spec replays byte-identical requests, and
the stream digest in every SLO report proves it.

Three arrival models, all open-loop (arrivals never react to service
— the service's backpressure answer is admission control, not source
throttling):

* ``poisson`` — memoryless arrivals at the aggregate rate;
* ``burst``  — a two-state Markov-modulated Poisson process (ON
  periods at :data:`BURST_ON_FACTOR` times the base rate, OFF periods
  at :data:`BURST_OFF_FACTOR`; mean rate equals the base rate);
* ``diurnal`` — sinusoidal rate modulation (a compressed "day" of
  :data:`DIURNAL_PERIOD_S`) realised by thinning a peak-rate Poisson
  stream, which keeps the sampler exact for any modulation depth.

Arrival timestamps are strictly increasing integer picoseconds (equal
draws are bumped by 1 ps), so no two arrival events ever share a
simulation instant — one of the structural properties that keeps the
fleet scheduler order-independent under same-instant perturbation.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import List, Tuple

from repro.errors import ServeError
from repro.serve.spec import RequestSpec, ServeSpec, TenantSpec

__all__ = [
    "BURST_OFF_FACTOR",
    "BURST_ON_FACTOR",
    "BURST_PERIOD_S",
    "DIURNAL_DEPTH",
    "DIURNAL_PERIOD_S",
    "generate_requests",
]

PS_PER_S = 1_000_000_000_000

#: Burst model: ON/OFF rate multipliers and mean phase length.  The
#: factors are chosen so equal mean phase lengths preserve the base
#: rate: (1.8 + 0.2) / 2 = 1.
BURST_ON_FACTOR = 1.8
BURST_OFF_FACTOR = 0.2
BURST_PERIOD_S = 0.02

#: Diurnal model: modulation depth and period of the compressed day.
DIURNAL_DEPTH = 0.6
DIURNAL_PERIOD_S = 0.5


def _tenant_picker(tenants: Tuple[TenantSpec, ...]):
    """Weighted tenant selection via cumulative weights + bisect."""
    cumulative: List[float] = []
    total = 0.0
    for tenant in tenants:
        total += tenant.weight
        cumulative.append(total)

    def pick(rng: random.Random) -> TenantSpec:
        return tenants[bisect_right(cumulative, rng.random() * total)]

    return pick


def _arrival_seconds(spec: ServeSpec, rate_rps: float,
                     rng: random.Random) -> List[float]:
    """Float arrival times (seconds) for ``spec.requests`` arrivals."""
    count = spec.requests
    times: List[float] = []
    now = 0.0
    if spec.arrival == "poisson":
        for _ in range(count):
            now += rng.expovariate(rate_rps)
            times.append(now)
    elif spec.arrival == "burst":
        on = True
        phase_end = rng.expovariate(1.0 / BURST_PERIOD_S)
        while len(times) < count:
            factor = BURST_ON_FACTOR if on else BURST_OFF_FACTOR
            gap = rng.expovariate(rate_rps * factor)
            if now + gap >= phase_end:
                # The gap crosses a phase boundary: restart the
                # memoryless wait at the boundary under the new rate.
                now = phase_end
                on = not on
                phase_end = now + rng.expovariate(1.0 / BURST_PERIOD_S)
                continue
            now += gap
            times.append(now)
    else:  # diurnal (spec validated the model name)
        peak = rate_rps * (1.0 + DIURNAL_DEPTH)
        omega = 2.0 * math.pi / DIURNAL_PERIOD_S
        while len(times) < count:
            now += rng.expovariate(peak)
            instantaneous = rate_rps * (
                1.0 + DIURNAL_DEPTH * math.sin(omega * now))
            if rng.random() * peak < instantaneous:
                times.append(now)
    return times


def generate_requests(spec: ServeSpec,
                      rate_rps: float) -> List[RequestSpec]:
    """The spec's deterministic request stream at ``rate_rps``.

    Returns requests sorted by (strictly increasing) arrival time,
    with ``request_id`` equal to the arrival index.
    """
    if rate_rps <= 0:
        raise ServeError(f"aggregate rate must be positive, got "
                         f"{rate_rps} req/s")
    rng = random.Random(spec.seed)
    pick_tenant = _tenant_picker(spec.tenants)
    requests: List[RequestSpec] = []
    previous_ps = -1
    for request_id, seconds in enumerate(
            _arrival_seconds(spec, rate_rps, rng)):
        arrival_ps = max(previous_ps + 1, round(seconds * PS_PER_S))
        previous_ps = arrival_ps
        tenant = pick_tenant(rng)
        module = tenant.modules[rng.randrange(len(tenant.modules))]
        deadline_ps = arrival_ps + round(tenant.deadline_us * 1e6)
        requests.append(RequestSpec(
            request_id=request_id,
            tenant=tenant.name,
            module=module,
            arrival_ps=arrival_ps,
            deadline_ps=deadline_ps,
            priority=tenant.priority,
        ))
    return requests
