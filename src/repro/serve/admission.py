"""Admission control: bounded queues, deterministic shedding.

The admission controller owns the serve queues — one sorted list per
tenant — and is the only component that drops work.  Policy is
*insert-then-enforce*: an arriving request is always inserted in its
tenant's queue first, then the per-tenant bound and the global bound
are enforced by shedding the **worst** queued request (highest
:attr:`~repro.serve.spec.RequestSpec.sort_key`, i.e. lowest urgency).
A new urgent request therefore displaces queued background work
rather than being turned away by it.

Every decision is a pure function of queue contents, so shedding is
deterministic: ties cannot occur (``sort_key`` ends in the unique
request id) and global-bound victims are compared by
``(sort_key, tenant name)``.

Backpressure is explicit: :attr:`AdmissionController.backpressure`
reports when total depth crosses the high-water mark (80% of the
global bound), and the service mirrors it into the
``serve.queue.backpressure`` gauge so an operator can see saturation
before sheds start.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.serve.spec import RequestSpec, ServeSpec

__all__ = ["AdmissionController", "SHED_INFEASIBLE", "SHED_QUEUE_FULL"]

#: Shed because a queue bound was exceeded.
SHED_QUEUE_FULL = "queue_full"
#: Shed because the deadline cannot be met even if dispatched now.
SHED_INFEASIBLE = "infeasible"

#: Queue entry: the sort key first, so ``insort`` keeps tenant queues
#: ordered by dispatch urgency.
_Entry = Tuple[Tuple[int, int, int, int], RequestSpec]


class AdmissionController:
    """Bounded per-tenant queues with worst-first shedding."""

    def __init__(self, spec: ServeSpec) -> None:
        self._spec = spec
        self._queues: Dict[str, List[_Entry]] = {
            tenant.name: [] for tenant in spec.tenants}
        #: Tenant names in deterministic iteration order.
        self.tenant_names: Tuple[str, ...] = tuple(sorted(self._queues))
        self._depth = 0

    # -- queue state ---------------------------------------------------

    @property
    def depth(self) -> int:
        """Total queued requests across all tenants."""
        return self._depth

    def tenant_depth(self, tenant: str) -> int:
        return len(self._queues[tenant])

    @property
    def backpressure(self) -> bool:
        """True once depth crosses 80% of the global bound."""
        return self._depth * 5 >= self._spec.queue_limit * 4

    def head(self, tenant: str) -> Optional[RequestSpec]:
        """The tenant's most urgent queued request, if any."""
        queue = self._queues[tenant]
        return queue[0][1] if queue else None

    def queued(self, tenant: str) -> List[RequestSpec]:
        """The tenant's queue in dispatch order (copy)."""
        return [request for _, request in self._queues[tenant]]

    # -- admission -----------------------------------------------------

    def offer(self, request: RequestSpec, now_ps: int,
              cold_service_ps: int,
              ) -> List[Tuple[RequestSpec, str]]:
        """Admit one request; return the resulting shed decisions.

        The shed victim of a bound violation is usually *not* the
        offered request — insert-then-enforce evicts the worst queued
        entry, which may be older background work.
        """
        if request.tenant not in self._queues:
            raise ServeError(f"request {request.request_id}: unknown "
                             f"tenant {request.tenant!r}")
        if self._spec.shed_infeasible \
                and now_ps + cold_service_ps > request.deadline_ps:
            return [(request, SHED_INFEASIBLE)]
        shed: List[Tuple[RequestSpec, str]] = []
        queue = self._queues[request.tenant]
        insort(queue, (request.sort_key, request))
        self._depth += 1
        if len(queue) > self._spec.tenant_limit:
            shed.append((self._evict(request.tenant), SHED_QUEUE_FULL))
        if self._depth > self._spec.queue_limit:
            shed.append((self._evict_global(), SHED_QUEUE_FULL))
        return shed

    def _evict(self, tenant: str) -> RequestSpec:
        """Drop and return the tenant's worst queued request."""
        self._depth -= 1
        return self._queues[tenant].pop()[1]

    def _evict_global(self) -> RequestSpec:
        """Drop the globally worst request, ties broken by tenant."""
        victim_tenant = ""
        victim_key = None
        for tenant in self.tenant_names:
            queue = self._queues[tenant]
            if not queue:
                continue
            key = (queue[-1][0], tenant)
            if victim_key is None or key > victim_key:
                victim_key = key
                victim_tenant = tenant
        if victim_key is None:  # pragma: no cover - depth>0 guarantees
            raise ServeError("global eviction from empty queues")
        return self._evict(victim_tenant)

    # -- removal (dispatch and preemption requeue) ---------------------

    def take(self, request: RequestSpec) -> None:
        """Remove a specific queued request (it is being dispatched)."""
        queue = self._queues[request.tenant]
        entry = (request.sort_key, request)
        for index, candidate in enumerate(queue):
            if candidate == entry:
                del queue[index]
                self._depth -= 1
                return
        raise ServeError(f"request {request.request_id} is not queued")

    def match(self, module: str, limit: int,
              exclude_id: int) -> List[RequestSpec]:
        """Queued requests for ``module``, most urgent first.

        Scans every tenant queue (they are sorted, so per-tenant order
        is already dispatch order) and merges by ``sort_key``; used by
        the scheduler to coalesce a batch.  ``exclude_id`` skips the
        request that seeded the batch.
        """
        found: List[RequestSpec] = []
        for tenant in self.tenant_names:
            for _, request in self._queues[tenant]:
                if request.module == module \
                        and request.request_id != exclude_id:
                    found.append(request)
        found.sort(key=lambda request: request.sort_key)
        return found[:limit]
