"""The fleet service: an event-driven pump over the sim kernel.

One :class:`FleetService` drives a board fleet against a pre-generated
request stream on a single :class:`~repro.sim.kernel.Simulator`.  The
design goal is *order-independence under same-instant perturbation*
(the S903 determinism contract) while still putting real concurrency
on the kernel — several boards complete at one instant, arrivals
collide with completions — so the race sanitizers have something to
check.

The structure that achieves it:

* All shared scheduler state (queues, deficits, board bookkeeping) is
  owned by **pass** events.  At most one pass runs per instant (a set
  of scheduled pass times dedupes requests), so passes never race.
* Arrival and completion callbacks are pure mailbox appends: they
  record themselves and request a pass at ``now + 1``.  They touch no
  queue, no board, no counter.
* A pass at instant ``T`` consumes only mailbox items stamped
  **strictly before** ``T``.  Same-instant callbacks can only append
  items stamped ``T``, so the set a pass processes — and everything
  downstream of it — is independent of the order the kernel fired
  those callbacks in.  Items stamped ``T`` wait for the pass at
  ``T + 1`` that their own callback requested.
* Mailboxes are drained in sorted order (arrival time; then
  ``(finish, board)``), never in append order.
* Preemption never cancels events: the board's ``service_generation``
  is bumped, and the stale completion is discarded when drained.

Pass processing order is fixed — completions, admissions, preemption,
dispatch — so freed boards are visible to the dispatcher within the
same pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Set, Tuple

from repro.obs import current_registry
from repro.obs.tracing import TraceScope
from repro.serve.admission import AdmissionController
from repro.serve.fleet import ServiceTimeTable, build_fleet
from repro.serve.scheduler import Batch, FairScheduler
from repro.serve.spec import RequestSpec, ServeSpec
from repro.sim.kernel import Simulator

__all__ = ["CompletionRecord", "FleetService", "ServeOutcome",
           "ShedRecord"]

#: Latency histogram bucket bounds, in microseconds.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0,
    12800.0,
)


@dataclass(frozen=True)
class CompletionRecord:
    """One request served: where, when, and how."""

    request: RequestSpec
    finish_ps: int
    board_id: int
    warm: bool
    batch_size: int

    @property
    def latency_ps(self) -> int:
        return self.finish_ps - self.request.arrival_ps

    @property
    def missed(self) -> bool:
        return self.finish_ps > self.request.deadline_ps


@dataclass(frozen=True)
class ShedRecord:
    """One request dropped, with the admission decision behind it."""

    request: RequestSpec
    reason: str
    time_ps: int


@dataclass(frozen=True)
class ServeOutcome:
    """Everything a serve run produced, in deterministic order."""

    spec: ServeSpec
    requests: Tuple[RequestSpec, ...]
    completions: Tuple[CompletionRecord, ...]
    sheds: Tuple[ShedRecord, ...]
    end_ps: int
    preemptions: int
    stale_completions: int


@dataclass
class _Service:
    """One in-flight reconfiguration on one board."""

    generation: int
    batch: Batch
    finish_ps: int
    warm: bool
    started_ps: int

    @property
    def priority(self) -> int:
        """The batch's urgency: its most urgent rider."""
        return min(request.priority for request in self.batch.requests)


class FleetService:
    """Run one :class:`ServeSpec` scenario to completion."""

    def __init__(self, spec: ServeSpec,
                 table: Optional[ServiceTimeTable] = None,
                 sim: Optional[Simulator] = None,
                 scope: Optional[TraceScope] = None) -> None:
        self._spec = spec
        self._table = table if table is not None else ServiceTimeTable(spec)
        self._sim = sim if sim is not None else Simulator()
        self._fleet = build_fleet(spec)
        self._admission = AdmissionController(spec)
        self._scheduler = FairScheduler(spec, self._table)
        self._metrics = current_registry()
        self._scope = scope
        self._tracks = {}
        if scope is not None:
            self._tracks = {board.board_id:
                            scope.track(board.name, cat="serve")
                            for board in self._fleet}
        # Mailboxes (append-only from callbacks, drained by passes).
        self._inbox: List[RequestSpec] = []
        self._done_inbox: List[Tuple[int, int, int]] = []
        self._scheduled_passes: Set[int] = set()
        # Pass-owned state.
        self._busy: Dict[int, _Service] = {}
        self._completions: List[CompletionRecord] = []
        self._sheds: List[ShedRecord] = []
        self._preemptions = 0
        self._stale = 0

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def table(self) -> ServiceTimeTable:
        return self._table

    # -- top level -----------------------------------------------------

    def run(self, requests: List[RequestSpec]) -> ServeOutcome:
        """Serve the whole stream; returns when the fleet drains."""
        arrivals = [(request.arrival_ps, partial(self._arrive, request))
                    for request in requests]
        self._sim.schedule_batch(arrivals)
        end_ps = self._sim.run()
        self._completions.sort(
            key=lambda record: (record.finish_ps,
                                record.request.request_id))
        self._sheds.sort(
            key=lambda record: (record.time_ps,
                                record.request.request_id))
        return ServeOutcome(
            spec=self._spec,
            requests=tuple(requests),
            completions=tuple(self._completions),
            sheds=tuple(self._sheds),
            end_ps=end_ps,
            preemptions=self._preemptions,
            stale_completions=self._stale,
        )

    # -- callbacks (mailbox appends only) ------------------------------

    def _arrive(self, request: RequestSpec) -> None:
        self._inbox.append(request)
        self._request_pass(self._sim.now + 1)

    def _finish(self, finish_ps: int, board_id: int,
                generation: int) -> None:
        self._done_inbox.append((finish_ps, board_id, generation))
        self._request_pass(finish_ps + 1)

    def _request_pass(self, time_ps: int) -> None:
        if time_ps not in self._scheduled_passes:
            self._scheduled_passes.add(time_ps)
            self._sim.call_at(time_ps, self._pass)

    def _schedule_completion(self, finish_ps: int, board_id: int,
                             generation: int) -> None:
        self._sim.call_at(finish_ps, partial(self._finish, finish_ps,
                                             board_id, generation))

    # -- the pass ------------------------------------------------------

    def _pass(self) -> None:
        now = self._sim.now
        self._scheduled_passes.discard(now)
        self._metrics.counter("serve.passes").inc()
        self._drain_completions(now)
        self._admit_due(now)
        if self._spec.preempt:
            self._preempt_urgent(now)
        self._dispatch(now)
        self._metrics.gauge("serve.queue.depth").high_water(
            self._admission.depth)
        self._metrics.gauge("serve.queue.backpressure").set(
            1 if self._admission.backpressure else 0)

    def _drain_completions(self, now: int) -> None:
        ready = [entry for entry in self._done_inbox if entry[0] < now]
        if not ready:
            return
        self._done_inbox = [entry for entry in self._done_inbox
                            if entry[0] >= now]
        latency = self._metrics.histogram("serve.latency_us",
                                          bounds=LATENCY_BUCKETS_US)
        for finish_ps, board_id, generation in sorted(ready):
            board = self._fleet[board_id]
            service = self._busy.get(board_id)
            if service is None or service.generation != generation \
                    or board.service_generation != generation:
                self._stale += 1
                self._metrics.counter("serve.completions.stale").inc()
                continue
            del self._busy[board_id]
            track = self._tracks.get(board_id)
            if track is not None:
                track.exit()
            size = len(service.batch.requests)
            for request in service.batch.requests:
                record = CompletionRecord(
                    request=request, finish_ps=finish_ps,
                    board_id=board_id, warm=service.warm,
                    batch_size=size)
                self._completions.append(record)
                self._metrics.counter("serve.requests.completed").inc()
                latency.observe(record.latency_ps / 1e6)
                if record.missed:
                    self._metrics.counter("serve.deadline.missed").inc()

    def _admit_due(self, now: int) -> None:
        due = [request for request in self._inbox
               if request.arrival_ps < now]
        if not due:
            return
        self._inbox = [request for request in self._inbox
                       if request.arrival_ps >= now]
        due.sort(key=lambda request: request.arrival_ps)
        offered = self._metrics.counter("serve.requests.offered")
        for request in due:
            offered.inc()
            self._offer(request, now)

    def _offer(self, request: RequestSpec, now: int) -> None:
        cold = self._table.service_ps(request.module, warm=False)
        for victim, reason in self._admission.offer(request, now, cold):
            self._sheds.append(ShedRecord(victim, reason, now))
            self._metrics.counter("serve.requests.shed").inc()
            self._metrics.counter(f"serve.requests.shed.{reason}").inc()

    def _preempt_urgent(self, now: int) -> None:
        """Preempt a background board for a deadline-critical request.

        Only when every board is busy, only for priority-0 work that
        would miss by waiting but can still make it now, and only at
        the expense of a batch with no priority-0 riders.
        """
        while len(self._busy) >= len(self._fleet):
            urgent = self._scheduler.urgent_head(self._admission)
            if urgent is None:
                return
            cold = self._table.service_ps(urgent.module, warm=False)
            if now + cold > urgent.deadline_ps:
                return  # already infeasible; preempting gains nothing
            earliest = min(service.finish_ps
                           for service in self._busy.values())
            if earliest + 1 + cold <= urgent.deadline_ps:
                return  # waiting for a natural completion still works
            victim_id = self._preemption_victim()
            if victim_id is None:
                return
            self._preempt(victim_id, now)

    def _preemption_victim(self) -> Optional[int]:
        """The busy board running the least urgent preemptable batch."""
        best: Optional[Tuple[int, int, int]] = None
        for board_id in sorted(self._busy):
            service = self._busy[board_id]
            if service.priority == 0:
                continue  # never preempt urgent work
            key = (service.priority, service.finish_ps, board_id)
            if best is None or key > best:
                best = key
        return best[2] if best is not None else None

    def _preempt(self, board_id: int, now: int) -> None:
        service = self._busy.pop(board_id)
        board = self._fleet[board_id]
        board.invalidate()  # stale-ify the in-flight completion
        self._preemptions += 1
        self._metrics.counter("serve.preemptions").inc()
        track = self._tracks.get(board_id)
        if track is not None:
            track.exit()
        # The interrupted requests rejoin the queues as fresh offers
        # (they keep their original arrival, so their latency keeps
        # accruing); bounds may shed them.
        for request in service.batch.requests:
            self._offer(request, now)

    def _dispatch(self, now: int) -> None:
        while len(self._busy) < len(self._fleet):
            batch = self._scheduler.next_batch(self._admission)
            if batch is None:
                return
            free = [board for board in self._fleet
                    if board.board_id not in self._busy]
            board, warm = FairScheduler.pick_board(free, batch.module)
            duration = self._table.service_ps(batch.module, warm)
            self._scheduler.charge(batch, duration)
            generation = board.service_generation
            board.loaded_module = batch.module
            if not warm:
                board.reconfigurations += 1
            finish = now + duration
            self._busy[board.board_id] = _Service(
                generation=generation, batch=batch, finish_ps=finish,
                warm=warm, started_ps=now)
            self._metrics.counter("serve.dispatch.batches").inc()
            self._metrics.counter(
                "serve.dispatch.warm" if warm
                else "serve.dispatch.cold").inc()
            self._metrics.counter(
                f"serve.board.{board.board_id}.dispatches").inc()
            self._metrics.gauge("serve.inflight").high_water(
                len(self._busy))
            track = self._tracks.get(board.board_id)
            if track is not None:
                track.enter(batch.module, warm=warm,
                            requests=len(batch.requests))
            self._schedule_completion(finish, board.board_id,
                                      generation)
