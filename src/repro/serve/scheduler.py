"""Per-tenant fair scheduling: weighted DRR, EDF override, batching.

The scheduler decides *what to reconfigure next* given the admission
queues and the free boards.  Three policies compose:

* **Deadline override** — if any priority-0 request is queued, the one
  with the earliest deadline dispatches next, regardless of fairness
  state.  Urgency classes above 0 never bypass fairness.
* **Weighted deficit round-robin** — otherwise tenants are visited in
  a fixed ring (sorted names); a visited tenant earns its quantum
  (base quantum x its weight) and dispatches its head request once its
  deficit covers the request's estimated cold service time.  Service
  actually consumed is charged back (batch-shared), so tenants pay
  for what they use, not for what was estimated.
* **Batching** — the selected request's module defines a batch: up to
  ``batch_limit - 1`` further queued requests for the same module
  (any tenant, most urgent first) ride along and are satisfied by the
  single reconfiguration.

Board choice is affinity-first: a free board that already holds the
module serves the batch warm; otherwise the lowest-numbered free
board takes a cold load.  Every decision iterates sorted structures,
so scheduling is a deterministic function of (queues, deficits, ring
position, free boards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.fpga.fleet import FleetBoard
from repro.serve.admission import AdmissionController
from repro.serve.fleet import ServiceTimeTable
from repro.serve.spec import RequestSpec, ServeSpec

__all__ = ["Batch", "FairScheduler"]


@dataclass(frozen=True)
class Batch:
    """One dispatch decision: a module load serving several requests."""

    module: str
    requests: Tuple[RequestSpec, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ServeError("a batch needs at least one request")


class FairScheduler:
    """Weighted-DRR selector over the admission queues."""

    def __init__(self, spec: ServeSpec,
                 table: ServiceTimeTable) -> None:
        self._spec = spec
        self._table = table
        self._ring: Tuple[str, ...] = tuple(
            sorted(tenant.name for tenant in spec.tenants))
        self._quantum: Dict[str, int] = {
            tenant.name: max(1, round(table.quantum_ps * tenant.weight))
            for tenant in spec.tenants}
        self._deficit: Dict[str, int] = {
            name: 0 for name in self._ring}
        self._position = 0
        self._turn_credited = False

    # -- selection -----------------------------------------------------

    def deficit(self, tenant: str) -> int:
        return self._deficit[tenant]

    def urgent_head(self, admission: AdmissionController,
                    ) -> Optional[RequestSpec]:
        """The earliest-deadline queued priority-0 request, if any."""
        best: Optional[RequestSpec] = None
        for tenant in admission.tenant_names:
            head = admission.head(tenant)
            if head is None or head.priority != 0:
                continue
            if best is None or (head.deadline_ps, head.request_id) \
                    < (best.deadline_ps, best.request_id):
                best = head
        return best

    def _advance(self) -> None:
        self._position = (self._position + 1) % len(self._ring)
        self._turn_credited = False

    def _drr_head(self, admission: AdmissionController,
                  ) -> Optional[RequestSpec]:
        """The next head request weighted round-robin can afford.

        Classic DRR turns: the tenant at the ring position earns its
        quantum once when its turn starts, then keeps dispatching
        while its deficit covers its head request; when it cannot
        afford the next one (or runs dry) the turn passes on, deficit
        carried.  An expensive head may need several turns of credit;
        an idle tenant's deficit resets, so idleness banks no credit.
        """
        if not any(admission.tenant_depth(name)
                   for name in self._ring):
            return None
        # A full cycle credits every backlogged tenant one quantum, so
        # some head becomes affordable within max_cost / min_quantum
        # cycles; the bound is a backstop against a broken cost model.
        for _ in range(len(self._ring) * 64):
            name = self._ring[self._position]
            head = admission.head(name)
            if head is None:
                self._deficit[name] = 0
                self._advance()
                continue
            if not self._turn_credited:
                self._deficit[name] += self._quantum[name]
                self._turn_credited = True
            cost = self._table.service_ps(head.module, warm=False)
            if self._deficit[name] >= cost:
                return head
            self._advance()
        raise ServeError("deficit round-robin failed to converge; "
                         "quantum is implausibly small")

    def next_batch(self, admission: AdmissionController,
                   ) -> Optional[Batch]:
        """Select and dequeue the next batch, or ``None`` if idle."""
        head = self.urgent_head(admission) or self._drr_head(admission)
        if head is None:
            return None
        admission.take(head)
        riders = admission.match(head.module,
                                 limit=self._spec.batch_limit - 1,
                                 exclude_id=head.request_id)
        for rider in riders:
            admission.take(rider)
        return Batch(module=head.module,
                     requests=(head, *riders))

    def charge(self, batch: Batch, duration_ps: int) -> None:
        """Charge the batch's actual service time to its tenants.

        The load is split evenly: each request's tenant pays
        ``duration // batch size``.  Deadline overrides may drive a
        deficit negative — that tenant then waits out its debt in
        subsequent DRR rounds, which is exactly the fairness
        correction wanted.
        """
        share = duration_ps // len(batch.requests)
        for request in batch.requests:
            self._deficit[request.tenant] -= share

    # -- board choice --------------------------------------------------

    @staticmethod
    def pick_board(free: List[FleetBoard],
                   module: str) -> Tuple[FleetBoard, bool]:
        """Affinity-first board choice: ``(board, warm)``.

        ``free`` may arrive in any order; both picks minimise over
        ``board_id``, so the choice is order-independent.
        """
        if not free:
            raise ServeError("no free board to pick from")
        warm = [board for board in free if board.loaded_module == module]
        if warm:
            return min(warm, key=lambda board: board.board_id), True
        return min(free, key=lambda board: board.board_id), False
