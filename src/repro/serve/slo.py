"""SLO reporting: latency percentiles, goodput, miss and shed rates.

A report is a pure function of a :class:`ServeOutcome` — every number
derives from integer picosecond timestamps and counts, percentiles
are nearest-rank over sorted integer latencies, and the JSON
rendering sorts its keys — so equal runs serialise byte-identically
and the report's SHA-256 digest pins a whole serve run the way a
sweep record key pins one cell.  The digest-pinned replay tests and
the S903 determinism scenario both compare exactly these bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.serve.service import ServeOutcome
from repro.serve.spec import request_stream_digest

__all__ = ["SLOReport", "build_report", "percentile"]

PS_PER_S = 1_000_000_000_000

#: The percentiles every report carries.
PERCENTILES: Tuple[int, ...] = (50, 95, 99)


def percentile(sorted_values: List[int], percent: int) -> int:
    """Nearest-rank percentile of an ascending integer list."""
    if not sorted_values:
        return 0
    if not 0 < percent <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percent}")
    rank = -(-percent * len(sorted_values) // 100)  # ceil division
    return sorted_values[rank - 1]


def _us(value_ps: int) -> float:
    """Picoseconds to microseconds (exact float, round-trip safe)."""
    return value_ps / 1e6


@dataclass(frozen=True)
class SLOReport:
    """One serve run's service-level numbers (JSON-serialisable)."""

    spec_key: str
    stream_digest: str
    requests: int
    completed: int
    shed: int
    shed_by_reason: Dict[str, int]
    deadline_missed: int
    preemptions: int
    stale_completions: int
    warm_completions: int
    batches: int
    makespan_s: float
    throughput_rps: float
    goodput_rps: float
    deadline_miss_pct: float
    shed_pct: float
    latency_us: Dict[str, float]
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_key": self.spec_key,
            "stream_digest": self.stream_digest,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "deadline_missed": self.deadline_missed,
            "preemptions": self.preemptions,
            "stale_completions": self.stale_completions,
            "warm_completions": self.warm_completions,
            "batches": self.batches,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "deadline_miss_pct": self.deadline_miss_pct,
            "shed_pct": self.shed_pct,
            "latency_us": dict(sorted(self.latency_us.items())),
            "tenants": {name: dict(sorted(stats.items()))
                        for name, stats
                        in sorted(self.tenants.items())},
        }

    def to_json(self) -> str:
        """Canonical rendering: sorted keys, no insignificant spaces."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the replay-test anchor."""
        return hashlib.sha256(self.to_json().encode("ascii")).hexdigest()


def _latency_block(latencies: List[int]) -> Dict[str, float]:
    """Percentile block over latencies given in picoseconds."""
    ordered = sorted(latencies)
    block = {f"p{percent}": _us(percentile(ordered, percent))
             for percent in PERCENTILES}
    block["mean"] = (_us(round(sum(ordered) / len(ordered)))
                     if ordered else 0.0)
    block["max"] = _us(ordered[-1]) if ordered else 0.0
    return block


def build_report(outcome: ServeOutcome) -> SLOReport:
    """Condense a serve outcome into its SLO report."""
    completions = outcome.completions
    requests = len(outcome.requests)
    completed = len(completions)
    shed = len(outcome.sheds)
    missed = sum(1 for record in completions if record.missed)
    warm = sum(1 for record in completions if record.warm)
    shed_by_reason: Dict[str, int] = {}
    for record in outcome.sheds:
        shed_by_reason[record.reason] = \
            shed_by_reason.get(record.reason, 0) + 1
    # A batch of size k appears as k completion records that share a
    # (finish, board) slot; count distinct slots.
    batches = len({(record.finish_ps, record.board_id)
                   for record in completions})
    last_finish = max((record.finish_ps for record in completions),
                      default=0)
    makespan_s = last_finish / PS_PER_S
    throughput = completed / makespan_s if makespan_s > 0 else 0.0
    goodput = ((completed - missed) / makespan_s
               if makespan_s > 0 else 0.0)

    tenants: Dict[str, Dict[str, Any]] = {}
    by_tenant: Dict[str, List[int]] = {}
    for record in completions:
        by_tenant.setdefault(record.request.tenant, []).append(
            record.latency_ps)
    for spec in outcome.spec.tenants:
        name = spec.name
        latencies = sorted(by_tenant.get(name, []))
        tenants[name] = {
            "completed": len(latencies),
            "shed": sum(1 for record in outcome.sheds
                        if record.request.tenant == name),
            "deadline_missed": sum(
                1 for record in completions
                if record.request.tenant == name and record.missed),
            "p95_us": _us(percentile(latencies, 95)),
        }

    return SLOReport(
        spec_key=outcome.spec.key,
        stream_digest=request_stream_digest(outcome.requests),
        requests=requests,
        completed=completed,
        shed=shed,
        shed_by_reason=shed_by_reason,
        deadline_missed=missed,
        preemptions=outcome.preemptions,
        stale_completions=outcome.stale_completions,
        warm_completions=warm,
        batches=batches,
        makespan_s=makespan_s,
        throughput_rps=throughput,
        goodput_rps=goodput,
        deadline_miss_pct=(100.0 * missed / completed
                           if completed else 0.0),
        shed_pct=100.0 * shed / requests if requests else 0.0,
        latency_us=_latency_block(
            [record.latency_ps for record in completions]),
        tenants=tenants,
    )
