"""Declarative serve specs: requests, tenants, fleet, policies.

Everything the fleet scheduler consumes is a frozen dataclass with a
canonical ``key``, mirroring ``repro.sweep``'s :class:`RunSpec`
discipline: a serve run is fully determined by its
:class:`ServeSpec`, so replays are deterministic and reports are
content-addressable.  A :class:`RequestSpec` is one reconfiguration
request of the open-loop workload — tenant, module, absolute arrival
and deadline, priority — generated ahead of simulation by
:mod:`repro.serve.workload` and identified by a monotonically
increasing ``request_id`` that breaks every scheduling tie
deterministically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Tuple

from repro.errors import ServeError
from repro.fpga.fleet import ModuleImage
from repro.sweep.spec import RECONFIGURE_CONTROLLERS

__all__ = [
    "ARRIVAL_MODELS",
    "DEFAULT_CATALOG",
    "DEFAULT_TENANTS",
    "RequestSpec",
    "ServeSpec",
    "TenantSpec",
    "request_stream_digest",
]

#: Supported arrival-process models (see repro.serve.workload).
ARRIVAL_MODELS: Tuple[str, ...] = ("poisson", "burst", "diurnal")

#: The Algorithm-On-Demand module catalog: a small library of
#: co-processor modules of varied size, each content-addressed by
#: (size, seed).  Sizes stay modest so measuring every module's true
#: reconfiguration latency (one full controller run each) is cheap.
DEFAULT_CATALOG: Tuple[ModuleImage, ...] = (
    ModuleImage("aes_core", size_kb=16.0, seed=411),
    ModuleImage("fir_filter", size_kb=24.0, seed=412),
    ModuleImage("viterbi", size_kb=32.0, seed=413),
    ModuleImage("fft_engine", size_kb=48.0, seed=414),
    ModuleImage("matrix_mult", size_kb=64.0, seed=415),
    ModuleImage("turbo_decoder", size_kb=96.0, seed=416),
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the multi-tenant fleet.

    ``weight`` is the tenant's share of the aggregate arrival rate;
    ``modules`` the subset of the catalog it requests (uniformly);
    ``priority`` its scheduling class (0 = most urgent); and
    ``deadline_us`` the relative deadline stamped on each request.
    """

    name: str
    weight: float
    modules: Tuple[str, ...]
    priority: int = 2
    deadline_us: float = 1000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant needs a non-empty name")
        if self.weight <= 0:
            raise ServeError(f"tenant {self.name!r}: weight must be "
                             f"positive, got {self.weight}")
        if not self.modules:
            raise ServeError(f"tenant {self.name!r}: needs at least "
                             f"one module")
        if self.priority < 0:
            raise ServeError(f"tenant {self.name!r}: priority must be "
                             f">= 0, got {self.priority}")
        if self.deadline_us <= 0:
            raise ServeError(f"tenant {self.name!r}: deadline must be "
                             f"positive, got {self.deadline_us} us")


#: Four tenant classes spanning the interesting scheduling space:
#: an urgent low-rate class with tight deadlines, two interactive
#: classes, and a background batch class that soaks spare capacity.
DEFAULT_TENANTS: Tuple[TenantSpec, ...] = (
    TenantSpec("radar", weight=1.0,
               modules=("fir_filter", "viterbi"),
               priority=0, deadline_us=250.0),
    TenantSpec("video", weight=3.0,
               modules=("fft_engine", "matrix_mult"),
               priority=1, deadline_us=900.0),
    TenantSpec("iot", weight=2.0,
               modules=("aes_core", "fir_filter"),
               priority=2, deadline_us=1500.0),
    TenantSpec("batch", weight=2.0,
               modules=("turbo_decoder", "matrix_mult"),
               priority=3, deadline_us=20000.0),
)


@dataclass(frozen=True)
class RequestSpec:
    """One reconfiguration request of the open-loop stream.

    All times are absolute integer picoseconds on the serve
    simulation's clock.  ``request_id`` is unique and increases with
    arrival time, which makes it the deterministic last-resort
    tie-break in every queue ordering.
    """

    request_id: int
    tenant: str
    module: str
    arrival_ps: int
    deadline_ps: int
    priority: int

    def __post_init__(self) -> None:
        if self.arrival_ps < 0:
            raise ServeError(f"request {self.request_id}: arrival must "
                             f"be >= 0, got {self.arrival_ps}")
        if self.deadline_ps <= self.arrival_ps:
            raise ServeError(f"request {self.request_id}: deadline "
                             f"{self.deadline_ps} ps is not after "
                             f"arrival {self.arrival_ps} ps")

    @property
    def sort_key(self) -> Tuple[int, int, int, int]:
        """Dispatch order: urgency class, deadline, arrival, id."""
        return (self.priority, self.deadline_ps, self.arrival_ps,
                self.request_id)

    def canonical(self) -> str:
        """Exact one-line rendering (the stream-digest unit)."""
        return (f"{self.request_id}|{self.tenant}|{self.module}|"
                f"{self.arrival_ps}|{self.deadline_ps}|{self.priority}")


def request_stream_digest(requests: Iterable[RequestSpec]) -> str:
    """SHA-256 over the canonical renderings, in request-id order.

    The stream is generated sorted by arrival (and ids follow
    arrivals), but sort defensively so the digest is a pure function
    of the *set* of requests.
    """
    digest = hashlib.sha256()
    for request in sorted(requests, key=lambda r: r.request_id):
        digest.update(request.canonical().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class ServeSpec:
    """One fleet-serving scenario: fleet, workload, and policies.

    ``rate_rps`` of 0 (the default) resolves the offered load from
    ``load`` as a fraction of measured fleet capacity — the natural
    axis for SLO curves.  Every field participates in :attr:`key`
    (floats via ``%g``), so equal specs render identical keys and a
    key names exactly one reproducible run.
    """

    name: str = "default"
    boards: int = 4
    controller: str = "UPaRC_i"
    frequency_mhz: float = 362.5
    arrival: str = "poisson"
    load: float = 0.8
    rate_rps: float = 0.0
    requests: int = 10_000
    seed: int = 2012
    modules: Tuple[ModuleImage, ...] = DEFAULT_CATALOG
    tenants: Tuple[TenantSpec, ...] = DEFAULT_TENANTS
    #: Global bound on requests queued awaiting dispatch.
    queue_limit: int = 512
    #: Per-tenant bound (enforced before the global bound).
    tenant_limit: int = 256
    #: Maximum requests coalesced into one reconfiguration.
    batch_limit: int = 8
    #: Deficit-round-robin quantum in ps (0: mean cold service time).
    quantum_ps: int = 0
    #: Service time when the board already holds the module.
    warm_ps: int = 2_000_000
    #: Fixed dispatch overhead added to every cold reconfiguration.
    overhead_ps: int = 500_000
    #: Shed requests whose deadline cannot be met even if dispatched
    #: immediately onto a cold board.
    shed_infeasible: bool = False
    #: Allow priority-0 requests to preempt lower-priority service.
    preempt: bool = False
    _module_names: Tuple[str, ...] = field(init=False, repr=False,
                                           compare=False, default=())

    def __post_init__(self) -> None:
        if self.boards < 1:
            raise ServeError(f"fleet needs >= 1 board, got {self.boards}")
        if self.controller not in RECONFIGURE_CONTROLLERS:
            raise ServeError(
                f"unknown controller {self.controller!r}; known: "
                f"{', '.join(RECONFIGURE_CONTROLLERS)}")
        if self.frequency_mhz <= 0:
            raise ServeError(f"frequency must be positive, got "
                             f"{self.frequency_mhz} MHz")
        if self.arrival not in ARRIVAL_MODELS:
            raise ServeError(f"unknown arrival model {self.arrival!r}; "
                             f"known: {', '.join(ARRIVAL_MODELS)}")
        if self.rate_rps < 0:
            raise ServeError(f"rate must be >= 0, got {self.rate_rps}")
        if self.rate_rps <= 0 and self.load <= 0:
            raise ServeError(f"load must be positive when no explicit "
                             f"rate is given, got {self.load}")
        if self.requests < 1:
            raise ServeError(f"need >= 1 request, got {self.requests}")
        if not self.modules:
            raise ServeError("module catalog is empty")
        if not self.tenants:
            raise ServeError("tenant set is empty")
        if self.queue_limit < 1 or self.tenant_limit < 1:
            raise ServeError("queue limits must be >= 1")
        if self.batch_limit < 1:
            raise ServeError(f"batch limit must be >= 1, got "
                             f"{self.batch_limit}")
        if self.warm_ps < 1 or self.overhead_ps < 0 \
                or self.quantum_ps < 0:
            raise ServeError("warm/overhead/quantum times out of range")
        names = tuple(sorted(module.name for module in self.modules))
        if len(set(names)) != len(names):
            raise ServeError("duplicate module names in catalog")
        tenant_names = [tenant.name for tenant in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ServeError("duplicate tenant names")
        catalog = set(names)
        for tenant in self.tenants:
            missing = sorted(set(tenant.modules) - catalog)
            if missing:
                raise ServeError(
                    f"tenant {tenant.name!r} requests modules not in "
                    f"the catalog: {', '.join(missing)}")
        object.__setattr__(self, "_module_names", names)

    @property
    def module_names(self) -> Tuple[str, ...]:
        """Catalog module names, sorted."""
        return self._module_names

    @property
    def key(self) -> str:
        """Canonical identity: the sort key and display name."""
        rate = (f"rate{self.rate_rps:g}" if self.rate_rps > 0
                else f"load{self.load:g}")
        flags = ""
        if self.shed_infeasible:
            flags += "+shed"
        if self.preempt:
            flags += "+preempt"
        return (f"serve/{self.name}/{self.controller}"
                f"/{self.frequency_mhz:g}mhz/b{self.boards}"
                f"/{self.arrival}/{rate}/n{self.requests}"
                f"/s{self.seed}{flags}")

    def with_load(self, load: float) -> "ServeSpec":
        """The same scenario at a different offered-load fraction."""
        return replace(self, load=load, rate_rps=0.0)
