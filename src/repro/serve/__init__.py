"""Fleet serving: a scheduler for many boards under live traffic.

The paper evaluates one controller reconfiguring one region; this
package scales that model out to an *Algorithm-On-Demand* fleet —
N boards (each an ICAP + controller + bitstream library,
:class:`repro.fpga.FleetBoard`) served against an open-loop stream of
reconfiguration requests on one simulation kernel:

* :mod:`repro.serve.spec`      — declarative :class:`RequestSpec` /
  :class:`TenantSpec` / :class:`ServeSpec` with canonical keys;
* :mod:`repro.serve.workload`  — seeded Poisson / burst / diurnal
  arrival generation, strictly increasing picosecond arrivals;
* :mod:`repro.serve.fleet`     — fleet construction and *measured*
  per-module service times (one full controller run each);
* :mod:`repro.serve.admission` — bounded queues, explicit
  backpressure, deterministic worst-first shedding;
* :mod:`repro.serve.scheduler` — weighted deficit-round-robin
  fairness, earliest-deadline override, same-module batching;
* :mod:`repro.serve.service`   — the event-driven pump (order-
  independent under same-instant perturbation: S903-clean);
* :mod:`repro.serve.slo`       — latency percentiles, throughput,
  goodput, miss/shed rates; digest-pinned canonical JSON;
* :mod:`repro.serve.bench`     — SLO curves across load levels via
  the sweep engine's process fan-out;
* :mod:`repro.serve.cli`       — ``python -m repro serve``.

Every number is sim-time deterministic: repeat runs, both accel
backends, any ``-j``, and any legal same-instant event reordering
produce byte-identical SLO reports.
"""

from repro.serve.admission import (
    AdmissionController,
    SHED_INFEASIBLE,
    SHED_QUEUE_FULL,
)
from repro.serve.bench import DEFAULT_LOADS, bench_serve, render_bench
from repro.serve.fleet import ServiceTimeTable, build_fleet
from repro.serve.scheduler import Batch, FairScheduler
from repro.serve.service import (
    CompletionRecord,
    FleetService,
    ServeOutcome,
    ShedRecord,
)
from repro.serve.slo import SLOReport, build_report, percentile
from repro.serve.spec import (
    ARRIVAL_MODELS,
    DEFAULT_CATALOG,
    DEFAULT_TENANTS,
    RequestSpec,
    ServeSpec,
    TenantSpec,
    request_stream_digest,
)
from repro.serve.workload import generate_requests

__all__ = [
    "AdmissionController",
    "ARRIVAL_MODELS",
    "Batch",
    "CompletionRecord",
    "DEFAULT_CATALOG",
    "DEFAULT_LOADS",
    "DEFAULT_TENANTS",
    "FairScheduler",
    "FleetService",
    "RequestSpec",
    "SHED_INFEASIBLE",
    "SHED_QUEUE_FULL",
    "SLOReport",
    "ServeOutcome",
    "ServeSpec",
    "ServiceTimeTable",
    "ShedRecord",
    "TenantSpec",
    "bench_serve",
    "build_fleet",
    "build_report",
    "generate_requests",
    "percentile",
    "render_bench",
    "request_stream_digest",
]
