"""Fleet construction and measured per-module service times.

The fleet simulation never approximates reconfiguration latency: each
module's cold load time is *measured* by running the spec's
controller's full cycle-level model once per module (through
:meth:`repro.fpga.FleetBoard.reconfigure`), and the scheduler then
replays those integer-picosecond durations as lightweight events.
That keeps a 100k-request serve run fast while every service time
remains exactly what the paper's controller model produces — and,
because the model is bit-reproducible across accel backends, so is
the whole serve run.

Measurements are memoised process-wide by their full content identity
(controller, frequency, module name/size/seed), so a bench sweeping
many load levels of the same scenario pays the controller runs once.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ServeError
from repro.fpga.fleet import BitstreamLibrary, FleetBoard
from repro.serve.spec import ServeSpec
from repro.sweep.engine import build_controller
from repro.units import Frequency

__all__ = ["ServiceTimeTable", "build_fleet"]

PS_PER_S = 1_000_000_000_000

#: Process-wide memo of measured cold durations, keyed by everything
#: that determines them.  Floats render via ``%g`` (the repo's
#: canonical-key discipline) so equal values share an entry.
_COLD_CACHE: Dict[Tuple[str, str, str, str, int], int] = {}


def build_fleet(spec: ServeSpec) -> List[FleetBoard]:
    """The spec's boards, each with its own controller instance.

    Boards share one (memoising) :class:`BitstreamLibrary` — the
    bitstream bytes are immutable — but never a controller: a
    controller carries per-run device state.
    """
    library = BitstreamLibrary(spec.modules)
    return [FleetBoard(board_id, build_controller(spec.controller),
                       library)
            for board_id in range(spec.boards)]


class ServiceTimeTable:
    """Measured cold service time per module, plus derived rates.

    ``cold_ps`` is the controller's measured reconfiguration duration;
    ``service_ps`` adds the spec's dispatch overhead (cold) or
    substitutes the warm-hit time when the board already holds the
    module.  ``capacity_rps`` is the fleet's aggregate cold-service
    throughput under the tenant traffic mix — the conservative
    denominator the ``load`` axis of SLO curves is defined against
    (warm hits and batching only add headroom above it).
    """

    def __init__(self, spec: ServeSpec) -> None:
        self._spec = spec
        self._cold: Dict[str, int] = {}
        frequency = Frequency.from_mhz(spec.frequency_mhz)
        scratch = None
        for module in sorted(spec.modules, key=lambda m: m.name):
            cache_key = (spec.controller, f"{spec.frequency_mhz:g}",
                         module.name, f"{module.size_kb:g}", module.seed)
            cold = _COLD_CACHE.get(cache_key)
            if cold is None:
                if scratch is None:
                    scratch = FleetBoard(
                        0, build_controller(spec.controller),
                        BitstreamLibrary(spec.modules))
                result = scratch.reconfigure(module.name, frequency)
                cold = _COLD_CACHE[cache_key] = result.duration_ps
            self._cold[module.name] = cold

    def cold_ps(self, module: str) -> int:
        """Measured cold reconfiguration duration (no overhead)."""
        try:
            return self._cold[module]
        except KeyError:
            raise ServeError(
                f"module {module!r} not in the service-time table; "
                f"known: {', '.join(sorted(self._cold))}") from None

    def service_ps(self, module: str, warm: bool) -> int:
        """Service time for one dispatch of ``module``."""
        if warm:
            return self._spec.warm_ps
        return self.cold_ps(module) + self._spec.overhead_ps

    @property
    def mean_cold_ps(self) -> int:
        """Tenant-mix-weighted mean cold service time (with overhead).

        Each tenant contributes its arrival weight spread uniformly
        over its modules — exactly the workload generator's sampling
        distribution.
        """
        weighted = 0.0
        total = 0.0
        for tenant in self._spec.tenants:
            share = tenant.weight / len(tenant.modules)
            for module in tenant.modules:
                weighted += share * self.service_ps(module, warm=False)
            total += tenant.weight
        return max(1, round(weighted / total))

    @property
    def quantum_ps(self) -> int:
        """The DRR quantum: explicit spec value or mean cold time."""
        return self._spec.quantum_ps or self.mean_cold_ps

    @property
    def capacity_rps(self) -> float:
        """Aggregate cold-service throughput of the fleet (req/s)."""
        return self._spec.boards * PS_PER_S / self.mean_cold_ps

    def resolved_rate_rps(self) -> float:
        """The spec's offered rate: explicit, or load x capacity."""
        if self._spec.rate_rps > 0:
            return self._spec.rate_rps
        return self._spec.load * self.capacity_rps
