"""Serve benchmark: one scenario swept across offered-load levels.

``python -m repro serve bench`` runs the same :class:`ServeSpec` at
several load fractions and emits the resulting SLO curve — latency
percentiles, throughput, goodput, deadline-miss and shed rates per
level — as one JSON document (``BENCH_serve.json`` in CI).

The fan-out reuses :func:`repro.sweep.engine.fan_out`: load levels
are independent cells, each cell worker pins the parent's accel
backend, runs its scenario on a fresh simulator under a private
metrics registry, and ships back the report plus the registry
snapshot.  Results are keyed and sorted, and everything in the
document derives from sim-time integers, so the file is byte-
identical for any ``-j`` and across repeat runs — the acceptance
property the replay tests pin.  The document records which accel
backend produced it (``accel.backend``) so BENCH_serve.json rows are
attributable; every *report* row and digest inside it is still
byte-identical across backends — only the attribution field differs.
"""

from __future__ import annotations

import json
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro import accel
from repro.obs import install as obs_install
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import Timer
from repro.serve.fleet import ServiceTimeTable
from repro.serve.service import FleetService
from repro.serve.slo import build_report
from repro.serve.spec import ServeSpec
from repro.serve.workload import generate_requests
from repro.sweep.engine import fan_out

__all__ = ["DEFAULT_LOADS", "bench_serve", "render_bench", "run_level"]

#: Default offered-load fractions: from comfortable to saturating.
#: (Batching coalesces up to ``batch_limit`` same-module requests per
#: reconfiguration, so the fleet tracks offered loads well above 1.0
#: of its cold-service capacity; the latency knee and shed onset sit
#: near the top of this range.)
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0)


def run_level(spec: ServeSpec, backend: Optional[str] = None,
              ) -> Dict[str, Any]:
    """One bench cell: serve ``spec`` and report (worker-safe).

    Module-level so :func:`fan_out` can pickle it; ``backend`` pins
    the worker's accel backend to the parent's resolved choice.
    """
    if backend is not None:
        accel.select(backend)
    registry = MetricsRegistry()
    obs_install(registry=registry)
    try:
        with Timer() as timer:
            table = ServiceTimeTable(spec)
            rate = table.resolved_rate_rps()
            requests = generate_requests(spec, rate)
            outcome = FleetService(spec, table=table).run(requests)
            report = build_report(outcome)
    finally:
        obs_install()
    # Only ``serve.*`` metrics travel with the cell: controller-level
    # instrumentation (icap.*, dma.*) fires only when the process-wide
    # service-time memo misses, which depends on how cells were packed
    # into workers — exactly the worker-count dependence the document
    # must not have.
    snapshot = registry.snapshot()
    metrics = {kind: {name: value for name, value in instruments.items()
                      if name.startswith("serve.")}
               for kind, instruments in sorted(snapshot.items())}
    return {
        "key": spec.key,
        "load": spec.load,
        "rate_rps": rate,
        "capacity_rps": table.capacity_rps,
        "report": report.to_dict(),
        "report_digest": report.digest,
        "metrics": metrics,
        "wall_s": timer.elapsed_s,  # host telemetry; never serialised
    }


def bench_serve(spec: ServeSpec,
                loads: Tuple[float, ...] = DEFAULT_LOADS,
                jobs: int = 1) -> Dict[str, Any]:
    """Sweep ``spec`` across ``loads``; return the bench document.

    The returned dict is deterministic (no wall-clock content); the
    caller may serialise it directly.  Merged per-level metrics are
    folded in sorted key order via
    :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so the
    roll-up — including the per-board ``serve.*`` counters — is
    identical for any worker count.
    """
    if not loads:
        raise ValueError("bench needs at least one load level")
    specs = [spec.with_load(load) for load in sorted(loads)]
    worker = partial(run_level, backend=accel.backend_name())
    cells = fan_out(specs, worker, jobs=jobs)
    merged = MetricsRegistry()
    levels: List[Dict[str, Any]] = []
    wall_s = 0.0
    for cell in cells:
        merged.merge_snapshot(cell["metrics"])
        wall_s += cell.pop("wall_s")
        levels.append(cell)
    levels.sort(key=lambda cell: cell["load"])
    document = {
        "kind": "serve-bench",
        "accel.backend": accel.backend_name(),
        "base_key": spec.key,
        "controller": spec.controller,
        "frequency_mhz": spec.frequency_mhz,
        "boards": spec.boards,
        "arrival": spec.arrival,
        "requests_per_level": spec.requests,
        "total_requests": spec.requests * len(levels),
        "seed": spec.seed,
        "loads": [cell["load"] for cell in levels],
        "levels": levels,
        "merged_metrics": merged.snapshot(),
    }
    document["_wall_s"] = wall_s  # stripped before serialisation
    return document


def render_bench(document: Dict[str, Any]) -> str:
    """The bench document as canonical JSON (wall telemetry removed)."""
    body = {key: value for key, value in document.items()
            if not key.startswith("_")}
    return json.dumps(body, indent=2, sort_keys=True)
