"""Fig. 5 — reconfiguration bandwidth vs. frequency vs. bitstream size.

The paper's surface plot: UPaRC_i (preloading without compression)
swept over bitstream sizes {6.5 ... 247 KB} and ICAP frequencies
{50 ... 362.5 MHz}.  The physics is the constant manager/control
overhead: small bitstreams amortize it poorly (78.8 % of theoretical
at 6.5 KB and 362.5 MHz), large ones approach the theoretical plane
(99 % at 247 KB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.bitstream.generator import BitstreamSpec, generate_bitstream
from repro.core.system import UPaRCSystem
from repro.units import DataSize, Frequency

# The axes Fig. 5 plots (sizes in KB, frequencies in MHz).
FIG5_SIZES_KB = (6.5, 12.0, 30.0, 49.0, 81.0, 156.0, 247.0)
FIG5_FREQUENCIES_MHZ = (50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 362.5)


@dataclass(frozen=True)
class BandwidthPoint:
    """One cell of the Fig. 5 surface."""

    size: DataSize
    frequency: Frequency
    effective_mbps: float       # decimal MB/s, paper convention
    theoretical_mbps: float
    duration_ps: int

    @property
    def efficiency_percent(self) -> float:
        return self.effective_mbps / self.theoretical_mbps * 100.0


def bandwidth_surface(sizes_kb: Iterable[float] = FIG5_SIZES_KB,
                      frequencies_mhz: Iterable[float] = FIG5_FREQUENCIES_MHZ,
                      spec: Optional[BitstreamSpec] = None,
                      collect_power: bool = False) -> List[BandwidthPoint]:
    """Measure the full surface with real UPaRC_i runs.

    One system per size (the bitstream stays preloaded while the
    frequency sweeps — exactly how the measurement would run on the
    board: retune DyCloGen, pulse Start, repeat).
    """
    points: List[BandwidthPoint] = []
    for size_kb in sizes_kb:
        size = DataSize.from_kb(size_kb)
        bitstream = generate_bitstream(spec, size=size)
        system = UPaRCSystem(decompressor=None)
        system.preload(bitstream)
        for mhz in frequencies_mhz:
            frequency = Frequency.from_mhz(mhz)
            system.set_frequency(frequency)
            result = system.reconfigure(collect_power=collect_power)
            theoretical = frequency.hertz * 4 / 1e6
            points.append(BandwidthPoint(
                size=size,
                frequency=frequency,
                effective_mbps=result.bandwidth_decimal_mbps,
                theoretical_mbps=theoretical,
                duration_ps=result.duration_ps,
            ))
    return points


def anchor_points(points: List[BandwidthPoint]) -> dict:
    """The two calibration anchors the paper quotes for Fig. 5.

    Returns efficiency percentages at (6.5 KB, 362.5 MHz) and
    (247 KB, 362.5 MHz); the paper reports 78.8 % and 99 %.
    """
    anchors = {}
    for point in points:
        if abs(point.frequency.mhz - 362.5) < 1e-6:
            if abs(point.size.kb - 6.5) < 1e-6:
                anchors["small"] = point.efficiency_percent
            if abs(point.size.kb - 247.0) < 1e-6:
                anchors["large"] = point.efficiency_percent
    return anchors


def mode_ii_bandwidth_sweep(sizes_kb: Iterable[float] = FIG5_SIZES_KB,
                            spec: Optional[BitstreamSpec] = None,
                            ) -> List[BandwidthPoint]:
    """Compressed-mode (UPaRC_ii) bandwidth vs bitstream size.

    The companion curve Fig. 5 does not show: in mode ii the ceiling
    is the decompressor's output rate (~1 GB/s for the 64-bit
    X-MatchPRO), so the curve saturates there rather than at the CLK_2
    theoretical plane, with the same control-overhead penalty at small
    sizes.
    """
    from repro.core.system import UPaRCSystem
    from repro.core.urec import OperationMode
    points: List[BandwidthPoint] = []
    frequency = Frequency.from_mhz(255)
    for size_kb in sizes_kb:
        size = DataSize.from_kb(size_kb)
        bitstream = generate_bitstream(spec, size=size)
        system = UPaRCSystem()
        result = system.run(bitstream, frequency=frequency,
                            mode=OperationMode.COMPRESSED)
        decompressor_ceiling = (
            system.decompressor.output_bandwidth_mbps() * 1.048576)
        points.append(BandwidthPoint(
            size=size,
            frequency=frequency,
            effective_mbps=result.bandwidth_decimal_mbps,
            theoretical_mbps=decompressor_ceiling,
            duration_ps=result.duration_ps,
        ))
    return points
