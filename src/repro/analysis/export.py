"""CSV export of experiment results.

The offline environment has no plotting stack; these writers dump the
Fig. 5 surface, Fig. 7 traces and Table III rows as CSV so users can
plot them with whatever they have.  Everything goes through
:func:`write_csv`, which is deliberately dependency-free (the csv
module handles quoting).
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, List, Sequence, Union

from repro.analysis.bandwidth import BandwidthPoint
from repro.analysis.comparison import ComparisonRow
from repro.analysis.powersweep import PowerSweepPoint

PathLike = Union[str, "os.PathLike[str]"]


def write_csv(path: PathLike, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> int:
    """Write one CSV file; returns the row count written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_bandwidth_surface(points: List[BandwidthPoint],
                             path: PathLike) -> int:
    """Fig. 5 surface: one row per (size, frequency) cell."""
    return write_csv(
        path,
        ["size_kb", "frequency_mhz", "effective_mbps",
         "theoretical_mbps", "efficiency_percent", "duration_us"],
        ([point.size.kb, point.frequency.mhz, point.effective_mbps,
          point.theoretical_mbps, point.efficiency_percent,
          point.duration_ps / 1e6]
         for point in points),
    )


def export_power_traces(points: List[PowerSweepPoint],
                        path: PathLike) -> int:
    """Fig. 7 traces: (frequency, time, power) samples, long format."""
    def rows():
        for point in points:
            for sample in point.trace.samples:
                yield [point.frequency.mhz, sample.time_ps / 1e6,
                       sample.value]
    return write_csv(path, ["frequency_mhz", "time_us", "power_mw"],
                     rows())


def export_comparison(rows: List[ComparisonRow], path: PathLike) -> int:
    """Table III rows."""
    return write_csv(
        path,
        ["controller", "measured_mbps", "paper_mbps",
         "relative_error_percent", "capacity_grade", "fmax_mhz",
         "verified"],
        ([row.controller, row.measured_mbps, row.paper_mbps,
          row.relative_error_percent, row.grade,
          row.max_frequency_mhz, row.verified]
         for row in rows),
    )
