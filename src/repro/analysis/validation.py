"""The reproduction acceptance gate.

Every claim EXPERIMENTS.md makes, encoded as data and checked by one
function call.  ``python -m repro selftest`` covers smoke-level
correctness; :func:`validate_reproduction` is the full gate — the
integration test suite and the release process both run it, so "the
paper is reproduced" is a program output, not prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis.bandwidth import anchor_points, bandwidth_surface
from repro.analysis.comparison import compare_controllers
from repro.analysis.powersweep import (
    PAPER_FIG7,
    energy_comparison,
    fig7_power_sweep,
)
from repro.bitstream.generator import generate_bitstream
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.fpga.area import slices_for
from repro.units import DataSize


@dataclass(frozen=True)
class Claim:
    """One checkable reproduction claim."""

    source: str          # where in the paper
    statement: str       # what must hold
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    claims: List[Claim]

    @property
    def passed(self) -> bool:
        return all(claim.passed for claim in self.claims)

    @property
    def summary(self) -> str:
        good = sum(1 for claim in self.claims if claim.passed)
        return f"{good}/{len(self.claims)} claims hold"

    def failures(self) -> List[Claim]:
        return [claim for claim in self.claims if not claim.passed]


def _claim(source: str, statement: str, condition: bool,
           detail: str = "") -> Claim:
    return Claim(source=source, statement=statement, passed=condition,
                 detail=detail)


def validate_reproduction(quick: bool = False) -> ValidationReport:
    """Run every experiment and check every claim.

    ``quick=True`` shrinks workloads (smaller bitstreams, fewer grid
    points) for a sub-30-second gate; the full gate uses the paper's
    exact conditions.
    """
    claims: List[Claim] = []

    # ---- Table I ------------------------------------------------------
    corpus_kb = (32.0,) if quick else (49.0, 81.0, 156.0)
    corpus = [generate_bitstream(size=DataSize.from_kb(kb),
                                 seed=int(kb) * 2 + 37)
              for kb in corpus_kb]
    measured = {}
    for codec in all_codecs():
        values = [codec.measure(bs.raw_bytes).ratio_percent
                  for bs in corpus]
        measured[codec.name] = sum(values) / len(values)
    ranking = sorted(measured, key=measured.get)
    claims.append(_claim(
        "Table I", "codec ranking matches the paper",
        ranking == list(PAPER_TABLE1_RATIOS),
        detail=str(ranking)))
    worst = max(abs(measured[name] - paper)
                for name, paper in PAPER_TABLE1_RATIOS.items())
    claims.append(_claim(
        "Table I", "every ratio within 5 pp of the paper",
        worst < 5.0, detail=f"worst delta {worst:.1f} pp"))

    # ---- Table II ------------------------------------------------------
    table2 = {("dyclogen", "virtex5"): 24, ("dyclogen", "virtex6"): 18,
              ("urec", "virtex5"): 26, ("urec", "virtex6"): 26,
              ("decompressor", "virtex5"): 1035,
              ("decompressor", "virtex6"): 900}
    exact = all(slices_for(module, family) == expected
                for (module, family), expected in table2.items())
    claims.append(_claim("Table II", "slice counts exact", exact))

    # ---- Table III ------------------------------------------------------
    rows = compare_controllers(size_kb=48.0 if quick else 216.5)
    claims.append(_claim(
        "Table III", "all seven transfers CRC-verified",
        all(row.verified for row in rows)))
    bandwidths = [row.measured_mbps for row in rows]
    claims.append(_claim(
        "Table III", "controller ranking matches the paper",
        bandwidths == sorted(bandwidths)))
    worst_row = max(rows, key=lambda row:
                    abs(row.relative_error_percent))
    claims.append(_claim(
        "Table III", "every bandwidth within 8 % of the paper",
        abs(worst_row.relative_error_percent) < 8.0,
        detail=f"worst: {worst_row.controller} "
               f"{worst_row.relative_error_percent:+.1f}%"))
    by_name = {row.controller: row.measured_mbps for row in rows}
    factor = by_name["UPaRC_i"] / by_name["FaRM"]
    claims.append(_claim(
        "§IV", "UPaRC_i beats FaRM by ~1.8x",
        1.7 < factor < 1.9, detail=f"{factor:.2f}x"))

    # ---- Fig. 5 ------------------------------------------------------------
    surface = bandwidth_surface(
        sizes_kb=(6.5, 247.0),
        frequencies_mhz=(362.5,) if quick else (100.0, 362.5))
    anchors = anchor_points(surface)
    claims.append(_claim(
        "Fig. 5", "6.5 KB anchor near 78.8 % of theoretical",
        abs(anchors["small"] - 78.8) < 1.5,
        detail=f"{anchors['small']:.1f}%"))
    claims.append(_claim(
        "Fig. 5", "247 KB anchor near 99 % of theoretical",
        abs(anchors["large"] - 99.0) < 1.0,
        detail=f"{anchors['large']:.1f}%"))

    # ---- Fig. 7 --------------------------------------------------------------
    points = fig7_power_sweep(size_kb=32.0 if quick else 216.5)
    plateau_ok = all(
        abs(point.plateau_mw - PAPER_FIG7[point.frequency.mhz][0])
        / PAPER_FIG7[point.frequency.mhz][0] < 0.005
        for point in points)
    claims.append(_claim(
        "Fig. 7", "power plateaus match at all four frequencies",
        plateau_ok))
    if not quick:
        timing_ok = all(
            abs(point.reconfiguration_us
                - PAPER_FIG7[point.frequency.mhz][1])
            / PAPER_FIG7[point.frequency.mhz][1] < 0.03
            for point in points)
        claims.append(_claim(
            "Fig. 7", "reconfiguration times within 3 %", timing_ok))
    energies = [point.energy_uj for point in points]
    claims.append(_claim(
        "§V", "energy decreases with frequency (active wait)",
        energies == sorted(energies, reverse=True)))

    # ---- §V energy -------------------------------------------------------------
    comparison = energy_comparison(size_kb=64.0 if quick else 216.5)
    claims.append(_claim(
        "§V", "efficiency ratio ~45x",
        40.0 < comparison.efficiency_ratio < 50.0,
        detail=f"{comparison.efficiency_ratio:.1f}x"))

    return ValidationReport(claims=claims)
