"""Multi-seed robustness campaigns.

The synthetic-bitstream substitution raises an obvious question: do
the reproduced results depend on the particular random seed?  These
campaigns re-run Table I and Table III across many generator seeds and
summarize the spread, so the claim "the ranking is a property of the
content *regime*, not of one lucky sample" is itself tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.bitstream.generator import generate_bitstream
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.units import DataSize


@dataclass(frozen=True)
class Spread:
    """Mean / standard deviation / extremes of one measured quantity."""

    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Spread":
        if not values:
            raise ValueError("no samples")
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) \
            / len(values)
        return cls(mean=mean, std=math.sqrt(variance),
                   minimum=min(values), maximum=max(values),
                   samples=len(values))


@dataclass(frozen=True)
class Table1Campaign:
    """Per-codec compression-ratio spread across seeds."""

    spreads: Dict[str, Spread]
    rankings: List[List[str]]      # measured ranking per seed

    @property
    def mean_ranking(self) -> List[str]:
        """Codecs ordered by their mean ratio across seeds."""
        return sorted(self.spreads, key=lambda name:
                      self.spreads[name].mean)

    @property
    def mean_ranking_matches_paper(self) -> bool:
        return self.mean_ranking == list(PAPER_TABLE1_RATIOS)

    @property
    def max_rank_displacement(self) -> int:
        """Worst per-seed deviation from the paper's ordering.

        0 = every seed ranks exactly like the paper; 1 = at most
        adjacent near-ties swap (the paper's own gaps between LZ77/
        Huffman and X-MatchPRO/LZ78 are under one percentage point,
        so single-sample swaps there are expected).
        """
        paper_rank = {name: rank for rank, name
                      in enumerate(PAPER_TABLE1_RATIOS)}
        worst = 0
        for ranking in self.rankings:
            for rank, name in enumerate(ranking):
                worst = max(worst, abs(rank - paper_rank[name]))
        return worst


def table1_campaign(seeds: Iterable[int] = range(1, 9),
                    size_kb: float = 48.0) -> Table1Campaign:
    """Table I across generator seeds."""
    per_codec: Dict[str, List[float]] = {codec.name: []
                                         for codec in all_codecs()}
    rankings: List[List[str]] = []
    for seed in seeds:
        bitstream = generate_bitstream(size=DataSize.from_kb(size_kb),
                                       seed=seed)
        measured = {}
        for codec in all_codecs():
            ratio = codec.measure(bitstream.raw_bytes).ratio_percent
            per_codec[codec.name].append(ratio)
            measured[codec.name] = ratio
        rankings.append(sorted(measured, key=measured.get))
    return Table1Campaign(
        spreads={name: Spread.of(values)
                 for name, values in per_codec.items()},
        rankings=rankings,
    )


@dataclass(frozen=True)
class Table3Campaign:
    """Per-controller bandwidth spread across seeds."""

    spreads: Dict[str, Spread]

    def coefficient_of_variation(self, controller: str) -> float:
        spread = self.spreads[controller]
        return spread.std / spread.mean if spread.mean else 0.0


def table3_campaign(seeds: Iterable[int] = range(1, 6),
                    size_kb: float = 64.0) -> Table3Campaign:
    """Table III across generator seeds.

    Bandwidths are timing-dominated, so the spread should be tiny for
    the raw-path controllers and content-driven only where compression
    ratios enter (staging capacity, not bandwidth) — a useful sanity
    property.
    """
    from repro.analysis.comparison import table3_controllers
    per_controller: Dict[str, List[float]] = {}
    for seed in seeds:
        bitstream = generate_bitstream(size=DataSize.from_kb(size_kb),
                                       seed=seed)
        for controller in table3_controllers():
            result = controller.best_result(bitstream)
            per_controller.setdefault(result.controller, []).append(
                result.bandwidth_decimal_mbps)
    return Table3Campaign(
        spreads={name: Spread.of(values)
                 for name, values in per_controller.items()},
    )
