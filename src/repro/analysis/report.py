"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows/curves the paper's tables
and figures report; these helpers keep that output aligned and
dependency-free (no plotting stack is available offline).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    formatted: List[List[str]] = []
    for row in rows:
        formatted.append([
            f"{cell:.1f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index])
                         for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in formatted)
    return "\n".join(lines)


def render_heatmap(row_labels: Sequence[str],
                   column_labels: Sequence[str],
                   values: Sequence[Sequence[float]],
                   title: str = "",
                   corner: str = "") -> str:
    """ASCII heat map: one shaded cell per value (row-major input).

    Shading uses a 5-level ramp scaled to the global maximum — enough
    to see the Fig. 5 surface's shape in a terminal.
    """
    ramp = " .:*#"
    flat = [value for row in values for value in row]
    if len(values) != len(row_labels) or any(
            len(row) != len(column_labels) for row in values):
        raise ValueError("heatmap dimensions do not match labels")
    peak = max(flat) if flat else 0.0
    lines = []
    if title:
        lines.append(title)
    label_width = max([len(label) for label in row_labels] + [len(corner)])
    cell_width = max(len(label) for label in column_labels) + 1
    header = corner.rjust(label_width) + "".join(
        label.rjust(cell_width) for label in column_labels)
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = []
        for value in row:
            level = (min(len(ramp) - 1,
                         int(value / peak * (len(ramp) - 1) + 0.5))
                     if peak > 0 else 0)
            cells.append((ramp[level] * 2).rjust(cell_width))
        lines.append(label.rjust(label_width) + "".join(cells))
    return "\n".join(lines)


def render_series(points: Sequence[Tuple[float, float]],
                  title: str = "",
                  width: int = 60,
                  y_label: str = "y",
                  x_label: str = "x") -> str:
    """A horizontal ASCII bar chart of (x, y) points."""
    if not points:
        return f"{title}\n(no data)"
    peak = max(y for _, y in points)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>10}  {y_label}")
    for x, y in points:
        bar = "#" * max(1, round(y / peak * width)) if peak > 0 else ""
        lines.append(f"{x:>10.1f}  {bar} {y:.1f}")
    return "\n".join(lines)
