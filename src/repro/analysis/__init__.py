"""Experiment harnesses: one module per paper table/figure family.

* :mod:`repro.analysis.bandwidth`  — Fig. 5's bandwidth-vs-frequency-
  vs-size surface.
* :mod:`repro.analysis.comparison` — Table III's controller shoot-out.
* :mod:`repro.analysis.powersweep` — Fig. 7's power traces and the
  Section V energy figures.
* :mod:`repro.analysis.report`     — plain-text table/plot rendering
  shared by the benchmarks.
"""

from repro.analysis.bandwidth import BandwidthPoint, bandwidth_surface
from repro.analysis.comparison import ComparisonRow, compare_controllers
from repro.analysis.powersweep import (
    PowerSweepPoint,
    fig7_power_sweep,
    energy_comparison,
)
from repro.analysis.report import render_table, render_series
from repro.analysis.reliability import (
    ControllerReliability,
    ScrubPolicy,
    controller_reliability,
    optimal_scrub_period,
)
from repro.analysis.sensitivity import (
    bram_capacity_tradeoff,
    compression_threshold,
    control_overhead_sensitivity,
)
from repro.analysis.campaign import (
    Spread,
    table1_campaign,
    table3_campaign,
)
from repro.analysis.export import (
    export_bandwidth_surface,
    export_comparison,
    export_power_traces,
    write_csv,
)

__all__ = [
    "BandwidthPoint",
    "bandwidth_surface",
    "ComparisonRow",
    "compare_controllers",
    "PowerSweepPoint",
    "fig7_power_sweep",
    "energy_comparison",
    "render_table",
    "render_series",
    "ControllerReliability",
    "ScrubPolicy",
    "controller_reliability",
    "optimal_scrub_period",
    "bram_capacity_tradeoff",
    "compression_threshold",
    "control_overhead_sensitivity",
    "Spread",
    "table1_campaign",
    "table3_campaign",
    "export_bandwidth_surface",
    "export_comparison",
    "export_power_traces",
    "write_csv",
]
