"""Fig. 7 power traces and the Section V energy comparison.

``fig7_power_sweep`` reruns the paper's measurement campaign: a
216.5 KB uncompressed bitstream reconfigured at 50/100/200/300 MHz on
the simulated ML605, recording the full power trace of each run (the
manager's pre-start control peak, the frequency-dependent plateau,
the decay to idle).

``energy_comparison`` reproduces the 30 vs 0.66 uJ/KB (45x) result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bitstream.device import VIRTEX6_LX240T
from repro.bitstream.generator import BitstreamSpec, generate_bitstream
from repro.controllers.xps_hwicap import XpsHwicap
from repro.core.system import UPaRCSystem
from repro.power.energy import EnergyReport
from repro.sim import ValueTrace
from repro.units import DataSize, Frequency

FIG7_FREQUENCIES_MHZ = (50.0, 100.0, 200.0, 300.0)
FIG7_SIZE_KB = 216.5

# The published Fig. 7 plateau (mW) and duration (us) per frequency.
PAPER_FIG7 = {
    50.0: (183.0, 1100.0),
    100.0: (259.0, 550.0),
    200.0: (394.0, 270.0),
    300.0: (453.0, 180.0),
}


@dataclass(frozen=True)
class PowerSweepPoint:
    """One Fig. 7 curve: plateau power, duration, full trace."""

    frequency: Frequency
    plateau_mw: float
    reconfiguration_us: float
    peak_mw: float
    idle_mw: float
    energy_uj: float
    trace: ValueTrace

    @property
    def uj_per_kb(self) -> float:
        return self.energy_uj / FIG7_SIZE_KB


def fig7_power_sweep(frequencies_mhz: Tuple[float, ...]
                     = FIG7_FREQUENCIES_MHZ,
                     size_kb: float = FIG7_SIZE_KB,
                     spec: Optional[BitstreamSpec] = None,
                     ) -> List[PowerSweepPoint]:
    """Re-run the Fig. 7 measurement campaign in simulation.

    On the paper's measurement platform: the ML605's Virtex-6 ("ML605
    includes a shunt resistor ... which is not possible using ML506").
    """
    bitstream = generate_bitstream(spec, size=DataSize.from_kb(size_kb),
                                   device=VIRTEX6_LX240T)
    points: List[PowerSweepPoint] = []
    for mhz in frequencies_mhz:
        system = UPaRCSystem(device=VIRTEX6_LX240T, decompressor=None)
        result = system.run(bitstream, frequency=Frequency.from_mhz(mhz))
        assert result.energy is not None and result.power_trace is not None
        points.append(PowerSweepPoint(
            frequency=result.frequency,
            plateau_mw=result.energy.mean_power_mw,
            reconfiguration_us=result.transfer_ps / 1e6,
            peak_mw=result.power_trace.peak(),
            idle_mw=system.power_model.idle_mw(),
            energy_uj=result.energy.energy_uj,
            trace=result.power_trace,
        ))
    return points


@dataclass(frozen=True)
class EnergyComparison:
    """The Section V head-to-head."""

    xps: EnergyReport
    uparc: EnergyReport

    @property
    def efficiency_ratio(self) -> float:
        """How many times more efficient UPaRC is (paper: 45x)."""
        return self.xps.uj_per_kb / self.uparc.uj_per_kb


def energy_comparison(size_kb: float = FIG7_SIZE_KB,
                      manager_frequency_mhz: float = 100.0,
                      spec: Optional[BitstreamSpec] = None,
                      ) -> EnergyComparison:
    """Same conditions as the paper: MicroBlaze at 100 MHz, 216.5 KB
    bitstream in 256 KB of 32-bit BRAM, xps without optimizations."""
    bitstream = generate_bitstream(spec, size=DataSize.from_kb(size_kb),
                                   device=VIRTEX6_LX240T)
    frequency = Frequency.from_mhz(manager_frequency_mhz)

    xps = XpsHwicap(profile="unoptimized", device=VIRTEX6_LX240T)
    xps_result = xps.reconfigure(bitstream, frequency)

    system = UPaRCSystem(device=VIRTEX6_LX240T, decompressor=None)
    uparc_result = system.run(bitstream, frequency=frequency)

    assert xps_result.energy is not None
    assert uparc_result.energy is not None
    return EnergyComparison(xps=xps_result.energy,
                            uparc=uparc_result.energy)
