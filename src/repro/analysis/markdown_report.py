"""Generate the full paper-vs-measured report as Markdown.

``python -m repro report`` regenerates an EXPERIMENTS.md-style
document from *live runs* — the single command that demonstrates the
whole reproduction.  Everything is recomputed; nothing is pasted in,
so the document can never drift from the code.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.bandwidth import anchor_points, bandwidth_surface
from repro.analysis.comparison import compare_controllers
from repro.analysis.powersweep import (
    PAPER_FIG7,
    energy_comparison,
    fig7_power_sweep,
)
from repro.bitstream.generator import generate_bitstream
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.fpga.area import slices_for
from repro.units import DataSize


def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> List[str]:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(fmt(cell) for cell in row) + " |"
              for row in rows]
    return lines


def _section_table1() -> List[str]:
    corpus = [generate_bitstream(size=DataSize.from_kb(kb), seed=seed)
              for kb, seed in ((49, 101), (81, 202), (156, 303))]
    rows = []
    for codec in all_codecs():
        values = [codec.measure(bs.raw_bytes).ratio_percent
                  for bs in corpus]
        measured = sum(values) / len(values)
        paper = PAPER_TABLE1_RATIOS[codec.name]
        rows.append([codec.name, paper, measured, measured - paper])
    lines = ["## Table I — compression ratios", ""]
    lines += _md_table(["algorithm", "paper %", "measured %", "delta"],
                       rows)
    measured_order = sorted(
        (row[0] for row in rows),
        key=lambda name: next(r[2] for r in rows if r[0] == name))
    verdict = ("identical to the paper's"
               if measured_order == list(PAPER_TABLE1_RATIOS)
               else f"DIFFERS: {measured_order}")
    lines += ["", f"Ranking: {verdict}.", ""]
    return lines


def _section_table2() -> List[str]:
    paper = {"dyclogen": ("DyCloGen", 24, 18),
             "urec": ("UReC", 26, 26),
             "decompressor": ("Decompressor", 1035, 900)}
    rows = []
    exact = True
    for module, (label, v5, v6) in paper.items():
        measured_v5 = slices_for(module, "virtex5")
        measured_v6 = slices_for(module, "virtex6")
        exact &= (measured_v5, measured_v6) == (v5, v6)
        rows.append([label, v5, measured_v5, v6, measured_v6])
    lines = ["## Table II — slice counts", ""]
    lines += _md_table(["module", "V5 paper", "V5 measured",
                        "V6 paper", "V6 measured"], rows)
    lines += ["", "Exact match." if exact else "MISMATCH.", ""]
    return lines


def _section_table3() -> List[str]:
    rows = compare_controllers(size_kb=216.5)
    table = [[row.controller, row.paper_mbps, row.measured_mbps,
              f"{row.relative_error_percent:+.1f}%", row.grade]
             for row in rows]
    lines = ["## Table III — controller comparison (216.5 KB)", ""]
    lines += _md_table(["controller", "paper MB/s", "measured MB/s",
                        "error", "capacity"], table)
    by_name = {row.controller: row.measured_mbps for row in rows}
    factor = by_name["UPaRC_i"] / by_name["FaRM"]
    lines += ["", f"UPaRC_i / FaRM = {factor:.2f}x "
              f"(paper: 1.8x). All transfers CRC-verified: "
              f"{all(row.verified for row in rows)}.", ""]
    return lines


def _section_fig5() -> List[str]:
    points = bandwidth_surface(sizes_kb=(6.5, 49.0, 247.0),
                               frequencies_mhz=(100.0, 250.0, 362.5))
    rows = [[point.size.kb, point.frequency.mhz, point.effective_mbps,
             point.efficiency_percent] for point in points]
    lines = ["## Fig. 5 — bandwidth vs frequency vs size (excerpt)", ""]
    lines += _md_table(["size KB", "MHz", "effective MB/s",
                        "efficiency %"], rows)
    anchors = anchor_points(points)
    lines += ["", f"Anchors at 362.5 MHz: 6.5 KB → "
              f"{anchors['small']:.1f}% (paper 78.8%), 247 KB → "
              f"{anchors['large']:.1f}% (paper 99%).", ""]
    return lines


def _section_fig7() -> List[str]:
    points = fig7_power_sweep()
    rows = []
    for point in points:
        paper_mw, paper_us = PAPER_FIG7[point.frequency.mhz]
        rows.append([point.frequency.mhz, paper_mw, point.plateau_mw,
                     paper_us, point.reconfiguration_us,
                     point.energy_uj])
    lines = ["## Fig. 7 — power during reconfiguration", ""]
    lines += _md_table(["MHz", "paper mW", "measured mW", "paper µs",
                        "measured µs", "energy µJ"], rows)
    lines.append("")
    return lines


def _section_energy() -> List[str]:
    comparison = energy_comparison()
    rows = [
        ["xps_hwicap (unoptimized)", 30.0, comparison.xps.uj_per_kb],
        ["UPaRC_i @ 100 MHz", 0.66, comparison.uparc.uj_per_kb],
    ]
    lines = ["## Section V — energy efficiency", ""]
    lines += _md_table(["controller", "paper µJ/KB", "measured µJ/KB"],
                       rows)
    lines += ["", f"Efficiency ratio: "
              f"{comparison.efficiency_ratio:.1f}x (paper: 45x).", ""]
    return lines


def build_report() -> str:
    """Run every experiment and assemble the Markdown document."""
    lines = [
        "# UPaRC reproduction — live report",
        "",
        "Regenerated by `python -m repro report`; every number below",
        "comes from a run executed just now (deterministic seeds).",
        "",
    ]
    for section in (_section_table1, _section_table2, _section_table3,
                    _section_fig5, _section_fig7, _section_energy):
        lines += section()
    return "\n".join(lines)
