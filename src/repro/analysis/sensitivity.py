"""Sensitivity studies extending the paper's evaluation.

Three questions the paper leaves implicit, answered with the same
models:

* **Control overhead** — Fig. 5's small-bitstream efficiency collapse
  is driven entirely by the manager's constant control cost.  How does
  the 6.5 KB anchor move if the manager is a hardware module (paper
  Section III-A: "they can be handled by three different smaller
  hardware modules")?
* **BRAM provisioning** — mode i handles bitstreams up to the BRAM
  size, mode ii up to ~4x that.  For a given module-size distribution,
  how much BRAM buys how much raw-mode coverage?
* **Compression threshold** — at which bitstream size does compressed
  preloading become *mandatory*, as a function of BRAM capacity (the
  paper's 256 KB / 992 KB datapoint, generalized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.bitstream.generator import BitstreamSpec, generate_bitstream
from repro.compress.xmatchpro import XMatchProCodec
from repro.units import DataSize, Frequency


@dataclass(frozen=True)
class OverheadPoint:
    """Fig. 5 small-bitstream efficiency for one control cost."""

    control_cycles: int
    control_us: float
    efficiency_percent: float       # at 6.5 KB, 362.5 MHz
    bandwidth_mbps: float


def control_overhead_sensitivity(
        control_cycles: Iterable[int] = (0, 12, 40, 120, 400, 1200),
        manager_mhz: float = 100.0,
        size_kb: float = 6.5,
        reconfiguration_mhz: float = 362.5) -> List[OverheadPoint]:
    """Small-bitstream efficiency vs manager control cost.

    Analytic over the same timing model the simulator uses: the burst
    takes (words + setup) cycles of CLK_2; the control cost is the
    variable under study.
    """
    frequency = Frequency.from_mhz(reconfiguration_mhz)
    manager = Frequency.from_mhz(manager_mhz)
    size = DataSize.from_kb(size_kb)
    theoretical = frequency.hertz * 4 / 1e6
    points = []
    for cycles in control_cycles:
        control_ps = manager.duration_of(cycles)
        burst_ps = frequency.duration_of(size.words + 3)
        total_ps = control_ps + burst_ps
        bandwidth = size.bytes / 1e6 * 1e12 / total_ps
        points.append(OverheadPoint(
            control_cycles=cycles,
            control_us=control_ps / 1e6,
            efficiency_percent=bandwidth / theoretical * 100.0,
            bandwidth_mbps=bandwidth,
        ))
    return points


@dataclass(frozen=True)
class CapacityPoint:
    """Mode coverage for one BRAM size."""

    bram: DataSize
    raw_limit: DataSize          # largest raw-mode bitstream
    compressed_limit: DataSize   # largest mode-ii bitstream (measured)
    stretch_factor: float


def bram_capacity_tradeoff(
        bram_kb: Iterable[float] = (64.0, 128.0, 256.0, 512.0),
        spec: Optional[BitstreamSpec] = None,
        sample_kb: float = 156.0) -> List[CapacityPoint]:
    """Raw vs compressed capacity limits per BRAM size.

    The stretch factor is *measured* by compressing a representative
    bitstream with the X-MatchPRO codec (content-dependent, as the
    paper stresses for FaRM's variable ratios).
    """
    sample = generate_bitstream(spec, size=DataSize.from_kb(sample_kb))
    result = XMatchProCodec().measure(sample.raw_bytes)
    stretch = result.factor
    points = []
    for kb in bram_kb:
        bram = DataSize.from_kb(kb)
        header = DataSize(4)
        raw_limit = DataSize(bram.bytes - header.bytes)
        compressed_limit = DataSize(round(raw_limit.bytes * stretch))
        points.append(CapacityPoint(
            bram=bram,
            raw_limit=raw_limit,
            compressed_limit=compressed_limit,
            stretch_factor=stretch,
        ))
    return points


@dataclass(frozen=True)
class ThresholdPoint:
    """Where compression becomes mandatory for a module population."""

    bram: DataSize
    modules_total: int
    modules_raw: int            # fit without compression
    modules_compressed: int     # need mode ii
    modules_rejected: int       # exceed even compressed capacity


def compression_threshold(module_sizes_kb: Iterable[float],
                          bram_kb: float = 256.0,
                          spec: Optional[BitstreamSpec] = None,
                          ) -> ThresholdPoint:
    """Classify a module population by required operating mode."""
    capacity = bram_capacity_tradeoff((bram_kb,), spec=spec)[0]
    raw = compressed = rejected = 0
    total = 0
    for kb in module_sizes_kb:
        total += 1
        size = DataSize.from_kb(kb)
        if size.bytes <= capacity.raw_limit.bytes:
            raw += 1
        elif size.bytes <= capacity.compressed_limit.bytes:
            compressed += 1
        else:
            rejected += 1
    return ThresholdPoint(
        bram=capacity.bram,
        modules_total=total,
        modules_raw=raw,
        modules_compressed=compressed,
        modules_rejected=rejected,
    )
