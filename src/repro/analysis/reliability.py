"""Availability analysis for scrub-based SEU mitigation.

The paper's introduction motivates fast reconfiguration with
fault-tolerant systems ("a long inactive period of a part inside a
system may be prohibited").  This module quantifies that argument:
given a configuration-upset rate and a reconfiguration controller's
repair time, it computes the region's availability under periodic
scrubbing and finds the optimal scrub period.

Model (standard scrubbing analysis):

* upsets arrive Poisson at rate ``lambda`` (upsets/s) in the region;
* the region is scrubbed every ``T`` seconds; a scrub costs
  ``t_scrub`` seconds of region downtime (readback + compare) and, if
  an upset is present, an additional repair of ``t_repair`` seconds;
* the region is corrupted from the *first* upset in a period until the
  period's repairing scrub: expected corrupted time per period is
  ``T − (1 − e^(−lambda·T)) / lambda``.

Availability = 1 − (scrub overhead + expected upset exposure) /
period.  Faster controllers shrink both ``t_scrub`` and ``t_repair``,
which both raises the availability ceiling and moves the optimal
period earlier — the quantitative version of the paper's claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PolicyError


@dataclass(frozen=True)
class ScrubPolicy:
    """Periodic scrub with the given repair characteristics."""

    period_s: float
    scrub_s: float      # readback + compare time per scrub
    repair_s: float     # region rewrite time when an upset is found
    upset_rate_per_s: float

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.scrub_s < 0 or self.repair_s < 0:
            raise PolicyError("scrub times must be positive")
        if self.upset_rate_per_s < 0:
            raise PolicyError("upset rate must be non-negative")
        if self.scrub_s >= self.period_s:
            raise PolicyError(
                f"scrub time {self.scrub_s}s leaves no service time in "
                f"a {self.period_s}s period"
            )

    @property
    def upset_probability_per_period(self) -> float:
        """P(at least one upset within a scrub period)."""
        return 1.0 - math.exp(-self.upset_rate_per_s * self.period_s)

    @property
    def expected_downtime_per_period_s(self) -> float:
        """Scrub overhead + expected corrupted-service exposure.

        Exposure runs from the first upset of the period to the end of
        the repairing scrub: E[T − min(tau, T)] = T − (1 − e^(−λT))/λ,
        plus the repair itself when an upset occurred.
        """
        if self.upset_rate_per_s <= 0.0:
            return self.scrub_s
        rate = self.upset_rate_per_s
        exposure = self.period_s \
            - (1.0 - math.exp(-rate * self.period_s)) / rate
        repair = self.upset_probability_per_period * self.repair_s
        return self.scrub_s + exposure + repair

    @property
    def availability(self) -> float:
        downtime = self.expected_downtime_per_period_s
        return max(0.0, 1.0 - downtime / self.period_s)


def optimal_scrub_period(scrub_s: float, repair_s: float,
                         upset_rate_per_s: float,
                         low_s: float = 1e-4,
                         high_s: float = 3600.0) -> ScrubPolicy:
    """Scrub period maximizing availability (golden-section search).

    The trade-off: short periods waste time scrubbing, long periods
    leave upsets unrepaired.  Availability is unimodal in the period,
    so golden-section search converges.
    """
    if upset_rate_per_s <= 0:
        # No upsets: scrub as rarely as allowed.
        return ScrubPolicy(high_s, scrub_s, repair_s, upset_rate_per_s)
    low = max(low_s, scrub_s * 1.01)
    high = high_s
    inverse_phi = (math.sqrt(5.0) - 1.0) / 2.0

    def availability(period: float) -> float:
        return ScrubPolicy(period, scrub_s, repair_s,
                           upset_rate_per_s).availability

    left = high - (high - low) * inverse_phi
    right = low + (high - low) * inverse_phi
    for _ in range(200):
        if availability(left) < availability(right):
            low = left
            left = right
            right = low + (high - low) * inverse_phi
        else:
            high = right
            right = left
            left = high - (high - low) * inverse_phi
        if high - low < 1e-9 * high:
            break
    best = (low + high) / 2.0
    return ScrubPolicy(best, scrub_s, repair_s, upset_rate_per_s)


@dataclass(frozen=True)
class ControllerReliability:
    """Availability summary for one controller's repair speed."""

    controller: str
    scrub_s: float
    repair_s: float
    policy: ScrubPolicy

    @property
    def availability(self) -> float:
        return self.policy.availability

    @property
    def downtime_s_per_day(self) -> float:
        return (1.0 - self.availability) * 86400.0


def controller_reliability(controller_name: str,
                           repair_s: float,
                           upset_rate_per_s: float,
                           readback_s: float = 0.0,
                           ) -> ControllerReliability:
    """Optimal-scrub availability for a controller's repair time.

    ``readback_s`` defaults to the repair time when not given (reading
    a region back costs about as long as rewriting it).
    """
    scrub_s = readback_s if readback_s > 0 else repair_s
    policy = optimal_scrub_period(scrub_s, repair_s, upset_rate_per_s)
    return ControllerReliability(
        controller=controller_name,
        scrub_s=scrub_s,
        repair_s=repair_s,
        policy=policy,
    )
