"""Table III — the reconfiguration-controller shoot-out.

Runs every controller at its reference conditions on the same
bitstream and tabulates bandwidth, capacity grade and maximum
frequency next to the paper's published row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bitstream.generator import BitstreamSpec, generate_bitstream
from repro.controllers import (
    BramHwicap,
    Farm,
    FlashCap,
    MstIcap,
    ReconfigurationController,
    UparcController,
    XpsHwicap,
)
from repro.units import DataSize

# The published Table III, keyed by our controller display names.
PAPER_TABLE3 = {
    "xps_hwicap[cached]": {"bandwidth": 14.5, "grade": "+++", "fmax": 120.0},
    "MST_ICAP": {"bandwidth": 235.0, "grade": "+++", "fmax": 120.0},
    "FlashCAP_i": {"bandwidth": 358.0, "grade": "++", "fmax": 120.0},
    "BRAM_HWICAP": {"bandwidth": 371.0, "grade": "-", "fmax": 120.0},
    "FaRM": {"bandwidth": 800.0, "grade": "++", "fmax": 200.0},
    "UPaRC_ii": {"bandwidth": 1008.0, "grade": "++", "fmax": 255.0},
    "UPaRC_i": {"bandwidth": 1433.0, "grade": "-", "fmax": 362.5},
}


@dataclass(frozen=True)
class ComparisonRow:
    """One Table III row: measured next to the paper's value."""

    controller: str
    measured_mbps: float
    paper_mbps: float
    grade: str
    paper_grade: str
    max_frequency_mhz: float
    paper_fmax_mhz: float
    verified: bool

    @property
    def relative_error_percent(self) -> float:
        return (self.measured_mbps - self.paper_mbps) \
            / self.paper_mbps * 100.0


def table3_controllers() -> List[ReconfigurationController]:
    """The seven Table III contenders in the paper's row order."""
    return [
        XpsHwicap(profile="cached"),
        MstIcap(),
        FlashCap(),
        BramHwicap(),
        Farm(),
        UparcController("ii"),
        UparcController("i"),
    ]


def compare_controllers(size_kb: float = 216.5,
                        spec: Optional[BitstreamSpec] = None,
                        controllers: Optional[
                            List[ReconfigurationController]] = None,
                        ) -> List[ComparisonRow]:
    """Run the shoot-out and pair each row with the paper's number."""
    bitstream = generate_bitstream(spec, size=DataSize.from_kb(size_kb))
    rows: List[ComparisonRow] = []
    for controller in (controllers if controllers is not None
                       else table3_controllers()):
        result = controller.best_result(bitstream)
        reference: Dict[str, float] = PAPER_TABLE3.get(
            result.controller, {"bandwidth": float("nan"),
                                "grade": "?", "fmax": float("nan")})
        rows.append(ComparisonRow(
            controller=result.controller,
            measured_mbps=result.bandwidth_decimal_mbps,
            paper_mbps=reference["bandwidth"],
            grade=str(controller.large_bitstream),
            paper_grade=reference["grade"],
            max_frequency_mhz=controller.max_frequency.mhz,
            paper_fmax_mhz=reference["fmax"],
            verified=result.verified,
        ))
    return rows
