"""Discrete-event simulation kernel.

A small, deterministic event-driven kernel in the style of hardware
simulators: integer-picosecond timestamps, generator-based processes,
signals with edge callbacks, and clock domains whose frequency can be
retuned at run time (the mechanism DyCloGen exercises).

Public surface::

    from repro.sim import Simulator, Process, Delay, WaitEvent, Event
    from repro.sim import Signal, Clock, WaitCycles
    from repro.sim import ActivityTrace, ValueTrace
"""

from repro.sim.kernel import Simulator
from repro.sim.process import Delay, Process, WaitCycles, WaitEvent
from repro.sim.signal import Event, Signal
from repro.sim.clock import Clock
from repro.sim.trace import ActivityTrace, ValueTrace

__all__ = [
    "Simulator",
    "Process",
    "Delay",
    "WaitEvent",
    "WaitCycles",
    "Event",
    "Signal",
    "Clock",
    "ActivityTrace",
    "ValueTrace",
]
