"""Trace recorders: value waveforms and activity intervals.

Two recorders support the paper's measurements:

* :class:`ValueTrace` — a timestamped series of samples, used for the
  Fig. 7 power-vs-time curves.
* :class:`ActivityTrace` — open/close intervals during which a
  component is *active* (clock enabled, toggling).  The power model
  integrates dynamic energy over these intervals; the EN gating that
  UReC applies after "Finish" shows up as the interval closing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
# The shared telemetry value types live in repro.obs.primitives now;
# re-exported here because this module is their historical home.
from repro.obs.primitives import Interval, Sample  # noqa: F401
from repro.sim.kernel import Simulator


class ValueTrace:
    """Timestamped samples of a scalar quantity (e.g. power in mW)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Sample] = []

    def record(self, time_ps: int, value: float) -> None:
        if self.samples and time_ps < self.samples[-1].time_ps:
            raise SimulationError(
                f"trace {self.name!r}: samples must be time-ordered"
            )
        self.samples.append(Sample(time_ps, value))

    def value_at(self, time_ps: int) -> float:
        """Zero-order hold lookup (value of the latest sample <= t)."""
        if not self.samples:
            raise SimulationError(f"trace {self.name!r} is empty")
        result = self.samples[0].value
        for sample in self.samples:
            if sample.time_ps > time_ps:
                break
            result = sample.value
        return result

    def integral(self) -> float:
        """Integral of value dt over the trace (zero-order hold).

        With power in milliwatts and time in picoseconds the result is
        mW*ps; callers convert (``repro.power.energy`` does).
        """
        total = 0.0
        for left, right in zip(self.samples, self.samples[1:]):
            total += left.value * (right.time_ps - left.time_ps)
        return total

    def peak(self) -> float:
        if not self.samples:
            raise SimulationError(f"trace {self.name!r} is empty")
        return max(sample.value for sample in self.samples)

    def __len__(self) -> int:
        return len(self.samples)


class ActivityTrace:
    """Intervals during which a component is active.

    Components call :meth:`begin` / :meth:`end`; nested begins are legal
    (reference counted) because e.g. the BRAM is active both while the
    manager preloads it and while UReC drains it.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        #: Closed intervals; :class:`Interval` is tuple-compatible, so
        #: code treating entries as ``(begin, end)`` pairs still works.
        self.intervals: List[Interval] = []
        self._depth = 0
        self._opened_at: Optional[int] = None

    @property
    def active(self) -> bool:
        return self._depth > 0

    def begin(self) -> None:
        if self._depth == 0:
            self._opened_at = self._sim.now
        self._depth += 1

    def end(self) -> None:
        if self._depth == 0:
            raise SimulationError(
                f"activity {self.name!r}: end() without matching begin()"
            )
        self._depth -= 1
        if self._depth == 0:
            assert self._opened_at is not None
            self.intervals.append(Interval(self._opened_at, self._sim.now))
            self._opened_at = None

    def close(self) -> None:
        """Force-close any open interval (end of simulation cleanup)."""
        while self._depth > 0:
            self.end()

    def total_active_ps(self, start_ps: int = 0,
                        end_ps: Optional[int] = None) -> int:
        """Active picoseconds within ``[start_ps, end_ps)``.

        An interval still open when called is counted up to ``now``.
        """
        bound = end_ps if end_ps is not None else self._sim.now
        total = 0
        intervals = list(self.intervals)
        if self._depth > 0 and self._opened_at is not None:
            intervals.append((self._opened_at, self._sim.now))
        for begin, end in intervals:
            lo = max(begin, start_ps)
            hi = min(end, bound)
            if lo < hi:
                total += hi - lo
        return total

    def active_at(self, time_ps: int) -> bool:
        """Whether the component was active at the given instant."""
        if self._depth > 0 and self._opened_at is not None \
                and self._opened_at <= time_ps:
            return True
        return any(begin <= time_ps < end for begin, end in self.intervals)
