"""Run-time retunable clock domains.

A :class:`Clock` converts cycle counts into simulated durations at its
*current* frequency.  DyCloGen's whole purpose is to retune these clocks
while the system runs, so the frequency is mutable — but only through
:meth:`retune`, which also enforces an optional maximum (the component
envelope, e.g. 300 MHz for BRAM reads or 362.5 MHz for UReC on
Virtex-5) and records the retuning history for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ClockError, FrequencyError
from repro.sim.kernel import Simulator
from repro.units import Frequency


@dataclass(frozen=True)
class RetuneRecord:
    """One frequency change: when it happened and the new frequency."""

    time_ps: int
    frequency: Frequency


class Clock:
    """A clock domain with a mutable frequency and retune history."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        frequency: Frequency,
        max_frequency: Optional[Frequency] = None,
    ) -> None:
        if max_frequency is not None and frequency > max_frequency:
            raise FrequencyError(
                f"clock {name!r}: initial {frequency} exceeds maximum "
                f"{max_frequency}"
            )
        self._sim = sim
        self.name = name
        self.max_frequency = max_frequency
        self._frequency = frequency
        self.history: List[RetuneRecord] = [RetuneRecord(sim.now, frequency)]

    @property
    def frequency(self) -> Frequency:
        return self._frequency

    @property
    def period_ps(self) -> int:
        return self._frequency.period_ps

    def retune(self, frequency: Frequency) -> None:
        """Change the output frequency (DyCloGen's DRP reprogramming).

        The change is instantaneous from the clock's point of view; the
        DCM model layers its lock time *around* this call.
        """
        if frequency.hertz <= 0:
            raise ClockError(f"clock {self.name!r}: non-positive frequency")
        if self.max_frequency is not None and frequency > self.max_frequency:
            raise FrequencyError(
                f"clock {self.name!r}: {frequency} exceeds maximum "
                f"{self.max_frequency}"
            )
        if frequency == self._frequency:
            return
        self._frequency = frequency
        self.history.append(RetuneRecord(self._sim.now, frequency))

    def cycles_duration(self, cycles: int) -> int:
        """Duration of ``cycles`` ticks at the current frequency, in ps."""
        if cycles < 0:
            raise ClockError("cycle count must be non-negative")
        return self._frequency.duration_of(cycles)

    def cycles_between(self, start_ps: int, end_ps: int) -> int:
        """Whole cycles elapsed between two timestamps.

        Walks the retune history so a window spanning a frequency change
        is counted piecewise — needed when energy is integrated over a
        run that retunes mid-flight.
        """
        if end_ps < start_ps:
            raise ClockError("end before start")
        total = 0
        segments = self._segments(start_ps, end_ps)
        for seg_start, seg_end, freq in segments:
            total += freq.cycles_in(seg_end - seg_start)
        return total

    def _segments(self, start_ps: int, end_ps: int):
        """Yield (start, end, frequency) pieces of [start_ps, end_ps)."""
        records = self.history
        pieces = []
        for index, record in enumerate(records):
            seg_start = record.time_ps
            seg_end = records[index + 1].time_ps if index + 1 < len(records) else end_ps
            lo = max(seg_start, start_ps)
            hi = min(seg_end, end_ps)
            if lo < hi:
                pieces.append((lo, hi, record.frequency))
        return pieces

    def __repr__(self) -> str:
        return f"Clock({self.name} @ {self._frequency})"
